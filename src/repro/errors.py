"""Exception hierarchy for the Maestro reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SymbolicError(ReproError):
    """Raised when symbolic execution encounters an unsupported construct."""


class PathExplosionError(SymbolicError):
    """Raised when ESE exceeds the configured path budget.

    The paper requires statically-bounded loops (limitation (ii) in §5);
    this error is how we surface violations of that requirement.
    """


class StateModelError(ReproError):
    """Raised on misuse of the stateful data structures (Table 1)."""


class ShardingError(ReproError):
    """Raised when the Constraints Generator cannot produce a verdict."""


class RssUnsatisfiableError(ReproError):
    """Raised when no RSS key satisfies the sharding constraints.

    Mirrors Maestro's behaviour of warning the user with the fundamental
    reason why a shared-nothing approach is infeasible (§3.4, R3/R4).
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


class NicCapabilityError(ReproError):
    """Raised when a required packet field cannot be hashed by the NIC."""


class SimulationError(ReproError):
    """Raised on inconsistent simulator configuration."""


class ChainError(ReproError):
    """Raised on malformed chain descriptions or broken chain wiring.

    Covers both parse-time problems in ``.chain`` files (unknown hop
    aliases, duplicate wires) and run-time wiring violations (a packet
    forwarded out of a port with no wire or egress attached).
    """


class WaiverError(ReproError):
    """Raised when a ``# maestro: waive[...]`` comment names an unknown
    diagnostic code — a typo'd waiver would otherwise silently fail to
    suppress anything (or worse, suggest a finding was reviewed when it
    never fired)."""


class EquivalenceViolation(ReproError):
    """Raised when a parallel NF diverges from its sequential counterpart."""
