"""Symbolic kernel interpreter: re-run lowered path programs over exprs.

The compiled dataplane (:mod:`repro.sim.compiled`) lowers each execution
-tree path into a column program — an interleaving of branch predicates
and vectorized stateful steps.  Translation validation (the MAE3xx plan
certifier, DESIGN §14) needs the *symbolic* meaning of that lowered
program so it can be proved equivalent to the source path: this module
re-executes a path program over the same symbol environment the engine
used — packet fields and state-read results stay symbolic — and returns
the program's predicates, steps, writes, and bindings as expressions.

Layering: this module deliberately knows nothing about the compiled
dataplane's private step classes.  Steps are dispatched on ``step.sig``,
a plain tuple whose head is the op name and whose tail is the step's
expressions and bound symbol names — so the dependency points from the
analysis layer down to symbex only, never sideways into ``repro.sim``.

The interpreter is also a checker in its own right: a program whose
predicate or key expression consumes a symbol no earlier step bound (a
reordered or truncated lowering) raises :class:`SymKernelError` rather
than producing a bogus outcome.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.symbex import expr as E

__all__ = [
    "SymKernelError",
    "SymStep",
    "SymOutcome",
    "base_symbols",
    "strip_zext",
    "interpret_program",
]

_BASE_SYMBOLS: frozenset | None = None


def base_symbols() -> frozenset:
    """Symbols bound before any stateful op runs — the engine's initial
    environment: packet fields, the wire size, and virtual time.

    Resolved lazily: :mod:`repro.nf.packet` itself imports the expr IR,
    so a module-level import here would be circular.
    """
    global _BASE_SYMBOLS
    if _BASE_SYMBOLS is None:
        from repro.nf.packet import PACKET_FIELDS

        _BASE_SYMBOLS = frozenset(
            {"time", "pkt.wire_size"}
            | {f"pkt.{name}" for name in PACKET_FIELDS}
        )
    return _BASE_SYMBOLS

#: Ops a lowered step may carry, with the shape of its ``sig`` tail.
#: Anything else is an unknown kernel and is rejected conservatively.
_READ_OPS = ("map_get", "vector_borrow", "dchain_is_allocated")
_WRITE_OPS = ("dchain_rejuvenate", "vector_put")


class SymKernelError(Exception):
    """The lowered program is not a well-formed symbolic computation."""


def strip_zext(expr: E.Expr) -> E.Expr:
    """Normalize away zero-extensions, recursively.

    The engine widens values with ``Concat(0, x)``; the lowerer passes
    the tail through untouched (its concrete value is unchanged).  Both
    sides of an equivalence check are normalized with this so a source
    predicate ``Eq(k, Concat(0, x))`` and its lowered twin compare
    structurally equal regardless of extension width.
    """
    if isinstance(expr, (E.Const, E.Sym)):
        return expr
    if isinstance(expr, E.Concat):
        if all(
            isinstance(p, E.Const) and p.value == 0 for p in expr.parts[:-1]
        ):
            return strip_zext(expr.parts[-1])
        parts = tuple(strip_zext(p) for p in expr.parts)
        return E.Concat(sum(p.width for p in parts), parts)
    if isinstance(expr, E.Extract):
        inner = strip_zext(expr.expr)
        if expr.lo == 0 and expr.hi >= inner.width - 1:
            # The slice covers the (narrowed) value entirely: identity.
            return inner
        if expr.lo >= inner.width:
            # The slice lies entirely in stripped zero-extension bits.
            return E.Const(expr.width, 0)
        hi = min(expr.hi, inner.width - 1)
        return E.Extract(hi - expr.lo + 1, inner, hi, expr.lo)
    if isinstance(expr, E.Not):
        return E.Not(strip_zext(expr.expr))
    if isinstance(
        expr,
        (E.Eq, E.Ne, E.Ult, E.Ugt, E.And, E.Or),
    ):
        return type(expr)(strip_zext(expr.lhs), strip_zext(expr.rhs))
    if isinstance(expr, (E.Add, E.Sub, E.Mul, E.BitAnd, E.BitOr)):
        lhs, rhs = strip_zext(expr.lhs), strip_zext(expr.rhs)
        if lhs.width != rhs.width:
            # Arithmetic nodes demand equal widths; re-extend the
            # narrower side (zero-extension, the only kind the engine
            # emits) so the node rebuilds.
            wide = max(lhs.width, rhs.width)
            lhs, rhs = _zext_to(lhs, wide), _zext_to(rhs, wide)
        return type(expr)(lhs, rhs)
    if isinstance(expr, E.Uninterp):
        return E.Uninterp(
            expr.width, expr.fn, tuple(strip_zext(a) for a in expr.args)
        )
    return expr


def _zext_to(expr: E.Expr, width: int) -> E.Expr:
    if expr.width >= width:
        return expr
    pad = E.Const(width - expr.width, 0)
    return E.Concat(width, (pad, expr))


@dataclass(frozen=True)
class SymStep:
    """One stateful step of a lowered program, symbolically.

    ``key`` holds the (normalized) key/index expressions the step
    evaluates; ``binds`` the result-symbol names it introduces;
    ``stored`` the (field, expr) writes it performs.
    """

    op: str
    obj: str
    key: tuple
    binds: tuple
    stored: tuple
    write: bool


@dataclass(frozen=True)
class SymOutcome:
    """Everything a lowered program computes, as expressions.

    ``constraints`` and ``steps`` appear in program order (the order the
    classifier evaluates them); ``port`` is an int for constant forwards,
    an :class:`~repro.symbex.expr.Expr` for computed ones, and ``None``
    for drops; ``mods`` are the terminal header rewrites.
    """

    constraints: tuple
    steps: tuple
    kind: object
    port: object
    mods: tuple
    bound: frozenset


def _check_bound(expr: E.Expr, bound: set, what: str) -> None:
    missing = sorted(
        s.name for s in E.free_symbols(expr) if s.name not in bound
    )
    if missing:
        raise SymKernelError(
            f"{what} consumes symbol(s) not bound at this point: "
            f"{', '.join(missing)}"
        )


def _interpret_step(step, bound: set) -> SymStep:
    sig = getattr(step, "sig", None)
    if not isinstance(sig, tuple) or not sig:
        raise SymKernelError(f"step without a sig tuple: {step!r}")
    op = sig[0]
    if op == "map_get":
        _, obj, keys, found, value = sig
        for k in keys:
            _check_bound(k, bound, f"map_get({obj!r}) key")
        bound.add(found)
        bound.add(value)
        return SymStep(
            op, obj, tuple(strip_zext(k) for k in keys),
            (found, value), (), False,
        )
    if op == "vector_borrow":
        _, obj, index, fields = sig
        _check_bound(index, bound, f"vector_borrow({obj!r}) index")
        names = tuple(name for _, name in fields)
        bound.update(names)
        return SymStep(op, obj, (strip_zext(index),), names, (), False)
    if op == "dchain_is_allocated":
        _, obj, index, res = sig
        _check_bound(index, bound, f"dchain_is_allocated({obj!r}) index")
        bound.add(res)
        return SymStep(op, obj, (strip_zext(index),), (res,), (), False)
    if op == "dchain_rejuvenate":
        _, obj, index = sig
        _check_bound(index, bound, f"dchain_rejuvenate({obj!r}) index")
        return SymStep(op, obj, (strip_zext(index),), (), (), True)
    if op == "vector_put":
        _, obj, index, stored = sig
        _check_bound(index, bound, f"vector_put({obj!r}) index")
        for fname, expr in stored:
            _check_bound(expr, bound, f"vector_put({obj!r}).{fname}")
        return SymStep(
            op, obj, (strip_zext(index),), (),
            tuple((f, strip_zext(e)) for f, e in stored), True,
        )
    raise SymKernelError(f"unknown lowered op {op!r}")


def interpret_program(prog, *, base_syms=None) -> SymOutcome:
    """Symbolically execute a lowered path program.

    ``prog`` is any object with the path-program shape: ``items`` (an
    interleaving of ``("c", expr)`` predicates and ``("op", step)``
    stateful steps), plus the terminal-action fields ``kind`` /
    ``port_const`` / ``port_expr`` / ``mods``.  Raises
    :class:`SymKernelError` when the program consumes an unbound symbol,
    carries an unknown op, or is otherwise malformed.
    """
    bound = set(base_symbols() if base_syms is None else base_syms)
    constraints = []
    steps = []
    for item in prog.items:
        if not (isinstance(item, tuple) and len(item) == 2):
            raise SymKernelError(f"malformed program item: {item!r}")
        tag, payload = item
        if tag == "c":
            _check_bound(payload, bound, "predicate")
            constraints.append(strip_zext(payload))
        elif tag == "op":
            steps.append(_interpret_step(payload, bound))
        else:
            raise SymKernelError(f"unknown program item tag {tag!r}")
    port = None
    mods = ()
    if prog.supported:
        if prog.port_expr is not None:
            _check_bound(prog.port_expr, bound, "port expression")
            port = strip_zext(prog.port_expr)
        else:
            port = prog.port_const
        for fname, expr in prog.mods:
            _check_bound(expr, bound, f"header rewrite {fname!r}")
        mods = tuple((f, strip_zext(e)) for f, e in prog.mods)
    return SymOutcome(
        constraints=tuple(constraints),
        steps=tuple(steps),
        kind=prog.kind,
        port=port,
        mods=mods,
        bound=frozenset(bound),
    )
