"""Symbolic bit-vector expression language.

This is the IR shared by the whole Maestro pipeline: the ESE engine traces
packet fields and stateful data as symbols (§3.3 of the paper: "Both the
packet and stateful data are traced as symbols"), the Constraints Generator
reasons about key expressions built from them, and RS3 compiles equalities
between them down to bit-level RSS constraints.

Expressions are immutable, hashable, and structurally comparable.  Widths
are in bits.  Boolean expressions are 1-bit vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.errors import SymbolicError

__all__ = [
    "Expr",
    "Const",
    "Sym",
    "Concat",
    "Extract",
    "Eq",
    "Ne",
    "Ult",
    "Ugt",
    "Not",
    "And",
    "Or",
    "Add",
    "Sub",
    "Mul",
    "Uninterp",
    "TRUE",
    "FALSE",
    "bitand",
    "bitor",
    "free_symbols",
    "substitute",
    "evaluate",
    "structurally_equal",
]


@dataclass(frozen=True)
class Expr:
    """Base class for all symbolic expressions."""

    width: int

    def children(self) -> tuple["Expr", ...]:
        return ()

    # Convenience builders so NF code reads naturally.
    def eq(self, other: "Expr | int") -> "Eq":
        return Eq(_coerce(other, self.width), self)

    def ne(self, other: "Expr | int") -> "Ne":
        return Ne(_coerce(other, self.width), self)

    def ult(self, other: "Expr | int") -> "Ult":
        return Ult(self, _coerce(other, self.width))

    def ugt(self, other: "Expr | int") -> "Ugt":
        return Ugt(self, _coerce(other, self.width))

    def add(self, other: "Expr | int") -> "Add":
        return Add(self, _coerce(other, self.width))

    def sub(self, other: "Expr | int") -> "Sub":
        return Sub(self, _coerce(other, self.width))

    def extract(self, hi: int, lo: int) -> "Extract":
        return Extract(hi - lo + 1, self, hi, lo)


def _coerce(value: "Expr | int", width: int) -> Expr:
    if isinstance(value, Expr):
        return value
    return Const(width, int(value))


@dataclass(frozen=True)
class Const(Expr):
    """A concrete bit-vector constant."""

    value: int

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise SymbolicError(f"constant width must be positive: {self.width}")
        object.__setattr__(self, "value", self.value & ((1 << self.width) - 1))

    def __repr__(self) -> str:
        return f"0x{self.value:x}:{self.width}"


@dataclass(frozen=True)
class Sym(Expr):
    """A free symbol, e.g. a packet field or a traced state read."""

    name: str

    def __repr__(self) -> str:
        return f"{self.name}:{self.width}"


@dataclass(frozen=True)
class Concat(Expr):
    """Bit concatenation; ``parts[0]`` holds the most significant bits."""

    parts: tuple[Expr, ...]

    @staticmethod
    def of(*parts: Expr) -> "Concat":
        return Concat(sum(p.width for p in parts), tuple(parts))

    def __post_init__(self) -> None:
        if self.width != sum(p.width for p in self.parts):
            raise SymbolicError("Concat width mismatch")
        if not self.parts:
            raise SymbolicError("Concat needs at least one part")

    def children(self) -> tuple[Expr, ...]:
        return self.parts

    def __repr__(self) -> str:
        return "(" + " ++ ".join(map(repr, self.parts)) + ")"


@dataclass(frozen=True)
class Extract(Expr):
    """Bit slice ``expr[hi:lo]`` (inclusive, LSB-numbered)."""

    expr: Expr
    hi: int
    lo: int

    def __post_init__(self) -> None:
        if not (0 <= self.lo <= self.hi < self.expr.width):
            raise SymbolicError(
                f"Extract [{self.hi}:{self.lo}] out of range for width "
                f"{self.expr.width}"
            )
        if self.width != self.hi - self.lo + 1:
            raise SymbolicError("Extract width mismatch")

    def children(self) -> tuple[Expr, ...]:
        return (self.expr,)

    def __repr__(self) -> str:
        return f"{self.expr!r}[{self.hi}:{self.lo}]"


def _binary_bool(name: str):
    @dataclass(frozen=True, repr=False)
    class _Op(Expr):
        lhs: Expr
        rhs: Expr

        def __init__(self, lhs: Expr, rhs: Expr):
            object.__setattr__(self, "width", 1)
            object.__setattr__(self, "lhs", lhs)
            object.__setattr__(self, "rhs", rhs)

        def children(self) -> tuple[Expr, ...]:
            return (self.lhs, self.rhs)

        def __repr__(self) -> str:
            return f"({self.lhs!r} {name} {self.rhs!r})"

    _Op.__name__ = _Op.__qualname__ = name
    return _Op


class Eq(_binary_bool("Eq")):
    """Bit-vector equality (1-bit result)."""


class Ne(_binary_bool("Ne")):
    """Bit-vector disequality (1-bit result)."""


class Ult(_binary_bool("Ult")):
    """Unsigned less-than."""


class Ugt(_binary_bool("Ugt")):
    """Unsigned greater-than."""


class And(_binary_bool("And")):
    """Boolean conjunction of 1-bit expressions."""


class Or(_binary_bool("Or")):
    """Boolean disjunction of 1-bit expressions."""


@dataclass(frozen=True)
class Not(Expr):
    """Boolean negation of a 1-bit expression."""

    expr: Expr

    def __init__(self, expr: Expr):
        object.__setattr__(self, "width", 1)
        object.__setattr__(self, "expr", expr)

    def children(self) -> tuple[Expr, ...]:
        return (self.expr,)

    def __repr__(self) -> str:
        return f"!{self.expr!r}"


def _binary_arith(name: str):
    @dataclass(frozen=True, repr=False)
    class _Op(Expr):
        lhs: Expr
        rhs: Expr

        def __init__(self, lhs: Expr, rhs: Expr):
            if lhs.width != rhs.width:
                raise SymbolicError(f"{name}: width mismatch {lhs.width} vs {rhs.width}")
            object.__setattr__(self, "width", lhs.width)
            object.__setattr__(self, "lhs", lhs)
            object.__setattr__(self, "rhs", rhs)

        def children(self) -> tuple[Expr, ...]:
            return (self.lhs, self.rhs)

        def __repr__(self) -> str:
            return f"({self.lhs!r} {name} {self.rhs!r})"

    _Op.__name__ = _Op.__qualname__ = name
    return _Op


class Add(_binary_arith("Add")):
    """Modular bit-vector addition."""


class Sub(_binary_arith("Sub")):
    """Modular bit-vector subtraction."""


class Mul(_binary_arith("Mul")):
    """Modular bit-vector multiplication."""


class BitAnd(_binary_arith("BitAnd")):
    """Bitwise AND."""


class BitOr(_binary_arith("BitOr")):
    """Bitwise OR."""


def bitand(lhs: Expr, rhs: Expr | int) -> BitAnd:
    return BitAnd(lhs, _coerce(rhs, lhs.width))


def bitor(lhs: Expr, rhs: Expr | int) -> BitOr:
    return BitOr(lhs, _coerce(rhs, lhs.width))


@dataclass(frozen=True)
class Uninterp(Expr):
    """An uninterpreted function application, e.g. a hash.

    Used for computations whose exact value is irrelevant to sharding but
    whose *dependency set* matters (e.g. the Maglev consistent-hash index).
    Concrete evaluation uses a stable keyed hash so the functional
    simulator still behaves deterministically.
    """

    fn: str
    args: tuple[Expr, ...]

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __repr__(self) -> str:
        return f"{self.fn}({', '.join(map(repr, self.args))})"


TRUE = Const(1, 1)
FALSE = Const(1, 0)


def _walk(expr: Expr) -> Iterator[Expr]:
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.children())


def free_symbols(expr: Expr) -> frozenset[Sym]:
    """All :class:`Sym` leaves occurring in ``expr``."""
    return frozenset(node for node in _walk(expr) if isinstance(node, Sym))


def substitute(expr: Expr, mapping: Mapping[Sym, Expr]) -> Expr:
    """Replace symbols per ``mapping``, rebuilding the tree bottom-up."""
    if isinstance(expr, Sym):
        replacement = mapping.get(expr)
        if replacement is None:
            return expr
        if replacement.width != expr.width:
            raise SymbolicError(
                f"substitution width mismatch for {expr!r}: "
                f"{replacement.width} != {expr.width}"
            )
        return replacement
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Concat):
        return Concat(expr.width, tuple(substitute(p, mapping) for p in expr.parts))
    if isinstance(expr, Extract):
        return Extract(expr.width, substitute(expr.expr, mapping), expr.hi, expr.lo)
    if isinstance(expr, Not):
        return Not(substitute(expr.expr, mapping))
    if isinstance(expr, (Eq, Ne, Ult, Ugt, And, Or, Add, Sub, Mul, BitAnd, BitOr)):
        return type(expr)(substitute(expr.lhs, mapping), substitute(expr.rhs, mapping))
    if isinstance(expr, Uninterp):
        return Uninterp(
            expr.width, expr.fn, tuple(substitute(a, mapping) for a in expr.args)
        )
    raise SymbolicError(f"substitute: unsupported node {type(expr).__name__}")


def evaluate(expr: Expr, env: Mapping[str, int]) -> int:
    """Evaluate ``expr`` to an int given concrete values for every symbol.

    ``env`` maps symbol *names* to unsigned integers.  Raises
    :class:`SymbolicError` when a symbol has no binding.
    """
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Sym):
        if expr.name not in env:
            raise SymbolicError(f"no binding for symbol {expr.name!r}")
        return env[expr.name] & ((1 << expr.width) - 1)
    if isinstance(expr, Concat):
        value = 0
        for part in expr.parts:
            value = (value << part.width) | evaluate(part, env)
        return value
    if isinstance(expr, Extract):
        return (evaluate(expr.expr, env) >> expr.lo) & ((1 << expr.width) - 1)
    if isinstance(expr, Not):
        return 1 - (evaluate(expr.expr, env) & 1)
    if isinstance(expr, Uninterp):
        import hashlib

        material = expr.fn.encode() + b"|".join(
            str(evaluate(arg, env)).encode() for arg in expr.args
        )
        digest = hashlib.blake2b(material, digest_size=8).digest()
        return int.from_bytes(digest, "little") & ((1 << expr.width) - 1)
    lhs = evaluate(expr.lhs, env)
    rhs = evaluate(expr.rhs, env)
    if isinstance(expr, Eq):
        return int(lhs == rhs)
    if isinstance(expr, Ne):
        return int(lhs != rhs)
    if isinstance(expr, Ult):
        return int(lhs < rhs)
    if isinstance(expr, Ugt):
        return int(lhs > rhs)
    if isinstance(expr, And):
        return lhs & rhs & 1
    if isinstance(expr, Or):
        return (lhs | rhs) & 1
    if isinstance(expr, Add):
        return (lhs + rhs) & ((1 << expr.width) - 1)
    if isinstance(expr, Sub):
        return (lhs - rhs) & ((1 << expr.width) - 1)
    if isinstance(expr, Mul):
        return (lhs * rhs) & ((1 << expr.width) - 1)
    if isinstance(expr, BitAnd):
        return lhs & rhs
    if isinstance(expr, BitOr):
        return lhs | rhs
    raise SymbolicError(f"evaluate: unsupported node {type(expr).__name__}")


def structurally_equal(lhs: Expr, rhs: Expr) -> bool:
    """Structural (syntactic) equality; dataclass ``__eq__`` already is."""
    return lhs == rhs
