"""Exhaustive Symbolic Execution (ESE) substrate.

Replaces the paper's KLEE-based analysis: NFs written against the
:mod:`repro.nf.api` context are explored path-by-path via re-execution
forking, producing the execution tree of §3.3.
"""

from repro.symbex import expr
from repro.symbex.engine import SymbolicEngine, explore_nf, replay_path
from repro.symbex.lower import (
    Column,
    KernelBail,
    LowerError,
    as_bool,
    check_expr,
    eval_expr,
)
from repro.symbex.symkernel import (
    SymKernelError,
    SymOutcome,
    SymStep,
    base_symbols,
    interpret_program,
    strip_zext,
)
from repro.symbex.tree import (
    Action,
    ActionKind,
    ExecutionTree,
    Path,
    TraceEntry,
)

__all__ = [
    "expr",
    "SymbolicEngine",
    "explore_nf",
    "replay_path",
    "Action",
    "ActionKind",
    "ExecutionTree",
    "Path",
    "TraceEntry",
    "Column",
    "KernelBail",
    "LowerError",
    "as_bool",
    "check_expr",
    "eval_expr",
    "base_symbols",
    "SymKernelError",
    "SymOutcome",
    "SymStep",
    "interpret_program",
    "strip_zext",
]
