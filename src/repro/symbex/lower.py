"""Lowering symbolic expressions to vectorized NumPy column programs.

The compiled dataplane (:mod:`repro.sim.compiled`) evaluates branch
predicates and state-update expressions over whole packet matrices at
once.  This module is the expression half of that compiler: it checks at
compile time whether an :class:`repro.symbex.expr.Expr` can be evaluated
column-wise, and evaluates it at run time over NumPy arrays.

The evaluator implements the **concrete** semantics of
:class:`repro.nf.runtime.ConcreteContext` — plain unbounded Python
arithmetic, signed comparisons, ``int()`` truncation in ``extract`` — not
the modular bit-vector semantics of :func:`repro.symbex.expr.evaluate`.
The two agree wherever the engine's zero-extension discipline holds, but
the kernels must be bit-identical to the interpreter, so the interpreter's
semantics win.  Where int64/float64 arithmetic could diverge from
unbounded Python (overflow past 2**62, float rounding past 2**53) the
evaluator raises :class:`KernelBail` and the caller falls back to the
interpreter for the chunk instead of silently wrapping.
"""

from __future__ import annotations

import numpy as np

from repro.symbex import expr as E

__all__ = [
    "Column",
    "LowerError",
    "KernelBail",
    "check_expr",
    "eval_expr",
    "as_bool",
]

#: Pre-operation magnitude ceiling for int64 arithmetic: if the result
#: bound could reach this, int64 might wrap where Python would not.
INT_SAFE = 1 << 62
#: Magnitude ceiling for exact integer representation in float64.
FLOAT_EXACT = float(1 << 53)


class LowerError(Exception):
    """Compile-time: the expression cannot be lowered to columns."""


class KernelBail(Exception):
    """Run-time: column evaluation would diverge from Python semantics."""


class Column:
    """A lane-wise value: an array, a magnitude bound, per-lane floatness.

    ``arr`` is int64, float64, or bool.  ``bound`` is a scalar upper bound
    on ``abs(arr)`` used for overflow/rounding pre-checks.  ``fmask`` is
    only meaningful for float64 arrays holding a *mixture* of lanes that
    were Python ints and Python floats (e.g. a vector column where some
    slots still hold their integer initializer): True lanes are floats.
    ``fmask is None`` means the array is homogeneous — all-float if the
    dtype is float64, all-int otherwise.
    """

    __slots__ = ("arr", "bound", "fmask")

    def __init__(self, arr, bound=None, fmask=None):
        self.arr = arr
        if bound is None:
            bound = float(np.abs(arr).max()) if arr.size else 0.0
        self.bound = float(bound)
        self.fmask = fmask

    @property
    def is_float(self) -> bool:
        return self.arr.dtype == np.float64


def as_bool(col: Column) -> np.ndarray:
    """Python truthiness (``bool(value)``) of every lane."""
    arr = col.arr
    if arr.dtype == np.bool_:
        return arr
    return arr != 0


def check_expr(expr: E.Expr, known: set, used: set) -> None:
    """Verify ``expr`` is lowerable given bindings ``known``.

    Records every symbol name the expression consumes into ``used``.
    Raises :class:`LowerError` otherwise.  Mirrors :func:`eval_expr`:
    anything this accepts, the evaluator handles (up to run-time bails).
    """
    if isinstance(expr, E.Const):
        if expr.value >= INT_SAFE:
            raise LowerError(f"constant too large for int64 lanes: {expr!r}")
        return
    if isinstance(expr, E.Sym):
        if expr.name not in known:
            raise LowerError(f"unbound symbol {expr.name!r}")
        used.add(expr.name)
        return
    if isinstance(expr, E.Concat):
        # The engine only builds Concat for zero-extension; concretely the
        # value is untouched, so lowering is a pass-through of the tail.
        for part in expr.parts[:-1]:
            if not (isinstance(part, E.Const) and part.value == 0):
                raise LowerError(f"non-zext Concat: {expr!r}")
        check_expr(expr.parts[-1], known, used)
        return
    if isinstance(expr, (E.Extract, E.Not)):
        check_expr(expr.expr, known, used)
        return
    if isinstance(
        expr,
        (E.Eq, E.Ne, E.Ult, E.Ugt, E.And, E.Or, E.Add, E.Sub, E.Mul,
         E.BitAnd, E.BitOr),
    ):
        check_expr(expr.lhs, known, used)
        check_expr(expr.rhs, known, used)
        return
    raise LowerError(f"cannot lower {type(expr).__name__}: {expr!r}")


def _lane_float(col: Column):
    """Per-lane floatness as an array-or-scalar usable in ``|``."""
    if col.fmask is not None:
        return col.fmask
    return col.is_float


def _num(arr: np.ndarray) -> np.ndarray:
    """Bool lanes participate in arithmetic as Python ints would."""
    if arr.dtype == np.bool_:
        return arr.astype(np.int64)
    return arr


def _to_int(col: Column) -> np.ndarray:
    """``int(value)`` per lane: truncation toward zero, exactness-checked."""
    arr = col.arr
    if arr.dtype == np.bool_:
        return arr.astype(np.int64)
    if arr.dtype == np.float64:
        if col.bound >= FLOAT_EXACT:
            raise KernelBail("float column too large for exact truncation")
        return arr.astype(np.int64)
    return arr


def eval_expr(expr: E.Expr, env: dict, cache: dict) -> Column:
    """Evaluate ``expr`` column-wise under concrete (Python) semantics.

    ``env`` maps symbol names to :class:`Column`; ``cache`` memoizes by
    expression value (frozen dataclasses hash structurally), which is what
    de-duplicates the shared constraint prefixes of sibling paths.
    """
    col = cache.get(expr)
    if col is None:
        col = _eval(expr, env, cache)
        cache[expr] = col
    return col


def _eval(expr: E.Expr, env: dict, cache: dict) -> Column:
    if isinstance(expr, E.Const):
        return Column(np.int64(expr.value), float(expr.value))
    if isinstance(expr, E.Sym):
        try:
            return env[expr.name]
        except KeyError:
            raise KernelBail(f"no binding for {expr.name!r}") from None
    if isinstance(expr, E.Concat):
        # check_expr guaranteed a zero-extension; concrete value unchanged.
        return eval_expr(expr.parts[-1], env, cache)
    if isinstance(expr, E.Extract):
        return _eval_extract(expr, env, cache)
    if isinstance(expr, E.Not):
        inner = as_bool(eval_expr(expr.expr, env, cache))
        return Column(~inner, 1.0)
    if isinstance(expr, (E.And, E.Or)):
        lhs = as_bool(eval_expr(expr.lhs, env, cache))
        rhs = as_bool(eval_expr(expr.rhs, env, cache))
        out = (lhs & rhs) if isinstance(expr, E.And) else (lhs | rhs)
        return Column(out, 1.0)
    if isinstance(expr, (E.Eq, E.Ne, E.Ult, E.Ugt)):
        return _eval_compare(expr, env, cache)
    if isinstance(expr, (E.Add, E.Sub, E.Mul)):
        return _eval_arith(expr, env, cache)
    if isinstance(expr, (E.BitAnd, E.BitOr)):
        lhs = eval_expr(expr.lhs, env, cache)
        rhs = eval_expr(expr.rhs, env, cache)
        if lhs.is_float or rhs.is_float:
            raise KernelBail("bitwise op on float lanes")
        a, b = _num(lhs.arr), _num(rhs.arr)
        out = (a & b) if isinstance(expr, E.BitAnd) else (a | b)
        # Any int64 & / | int64 stays in int64; bound conservatively.
        return Column(out, max(lhs.bound, rhs.bound, 1.0))
    raise KernelBail(f"cannot evaluate {type(expr).__name__}")


def _eval_extract(expr: E.Extract, env: dict, cache: dict) -> Column:
    inner = eval_expr(expr.expr, env, cache)
    arr = _to_int(inner)  # int(value), truncation toward zero
    width = expr.hi - expr.lo + 1
    if width <= 62:
        mask = (1 << width) - 1
        # np's arithmetic >> and two's-complement & match Python here.
        return Column((arr >> expr.lo) & mask, float(mask))
    if expr.lo == 0 and width == 63:
        mask = (1 << 63) - 1  # == int64 max: representable, & is exact
        return Column(arr & mask, float(mask))
    if expr.lo == 0 and width >= 64:
        # Full-width pass-through; Python's mask of a negative value
        # would produce a huge positive int64 can't hold.
        if np.any(arr < 0):
            raise KernelBail("wide extract of negative lanes")
        return Column(arr, inner.bound)
    raise KernelBail(f"extract width {width} at lo={expr.lo}")


def _eval_compare(expr, env: dict, cache: dict) -> Column:
    lhs = eval_expr(expr.lhs, env, cache)
    rhs = eval_expr(expr.rhs, env, cache)
    a, b = _num(lhs.arr), _num(rhs.arr)
    if lhs.is_float != rhs.is_float:
        # Mixed int/float compare: Python compares exactly; numpy converts
        # the int side to float64, which rounds past 2**53.
        int_side = rhs if lhs.is_float else lhs
        if int_side.bound >= FLOAT_EXACT:
            raise KernelBail("mixed compare with large int lanes")
    if isinstance(expr, E.Eq):
        out = a == b
    elif isinstance(expr, E.Ne):
        out = a != b
    elif isinstance(expr, E.Ult):
        # ConcreteContext.lt is plain Python ``<`` (signed), not unsigned.
        out = a < b
    else:
        out = a > b
    return Column(out if isinstance(out, np.ndarray) else np.bool_(out), 1.0)


def _eval_arith(expr, env: dict, cache: dict) -> Column:
    lhs = eval_expr(expr.lhs, env, cache)
    rhs = eval_expr(expr.rhs, env, cache)
    mul = isinstance(expr, E.Mul)
    bound = lhs.bound * rhs.bound if mul else lhs.bound + rhs.bound
    if lhs.is_float or rhs.is_float:
        # Result lanes: float wherever either operand lane was float
        # (Python: int+float=float).  Int lanes ride along in float64 and
        # must stay exactly representable.
        if max(bound, lhs.bound, rhs.bound) >= FLOAT_EXACT:
            raise KernelBail("float arithmetic beyond exact range")
        a = _num(lhs.arr).astype(np.float64, copy=False)
        b = _num(rhs.arr).astype(np.float64, copy=False)
        out = a * b if mul else (a + b if isinstance(expr, E.Add) else a - b)
        lf = _lane_float(lhs) | _lane_float(rhs)
        fmask = None
        if isinstance(lf, np.ndarray) and not lf.all():
            fmask = lf
        return Column(out, bound, fmask)
    if bound >= INT_SAFE:
        raise KernelBail("integer arithmetic beyond int64 range")
    a, b = _num(lhs.arr), _num(rhs.arr)
    out = a * b if mul else (a + b if isinstance(expr, E.Add) else a - b)
    return Column(out, bound)
