"""Execution-tree artifacts produced by the ESE engine (§3.3).

"The extracted model is an execution tree containing all the possible code
execution paths a packet can trigger.  Each node on this graph is either
conditional ..., a stateful operation ..., or packet operation" — here the
tree is stored path-wise: every :class:`Path` carries its branch decisions,
accumulated constraints, stateful-operation trace, and terminal action,
which is the exact information the Stateful Report builder consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from repro.nf.api import ActionKind
from repro.symbex import expr as E

__all__ = ["Action", "ActionKind", "TraceEntry", "Path", "ExecutionTree"]


@dataclass(frozen=True)
class Action:
    """A terminal packet operation: forward/drop/flood plus header rewrites."""

    kind: ActionKind
    port: E.Expr | int | None = None
    mods: tuple[tuple[str, E.Expr], ...] = ()

    def describe(self) -> str:
        if self.kind is ActionKind.FORWARD:
            target = f"port {self.port!r}"
            rewrites = f" with {len(self.mods)} rewrites" if self.mods else ""
            return f"forward to {target}{rewrites}"
        return self.kind.value


@dataclass(frozen=True)
class TraceEntry:
    """One stateful operation observed on a path.

    ``key`` is the symbolic key expression tuple (None for key-less writes
    such as expiry sweeps or bulk fills — the rule-R4 triggers).
    ``results`` names the fresh symbols this operation introduced;
    ``stored`` records, for writes, the expression written into each slot
    (the provenance that rule R5 consumes).  ``pc_len`` is the number of
    path constraints that were active when the operation ran.
    """

    index: int
    obj: str
    op: str
    write: bool
    key: tuple[E.Expr, ...] | None
    results: tuple[tuple[str, E.Sym], ...] = ()
    stored: tuple[tuple[str, E.Expr], ...] = ()
    pc_len: int = 0
    maintenance: bool = False

    def result(self, name: str) -> E.Sym:
        for field_name, sym in self.results:
            if field_name == name:
                return sym
        raise KeyError(f"{self.op} on {self.obj}: no result field {name!r}")


@dataclass(frozen=True)
class Path:
    """One complete execution path for a packet arriving on ``port``."""

    port: int
    decisions: tuple[bool, ...]
    constraints: tuple[E.Expr, ...]
    trace: tuple[TraceEntry, ...]
    action: Action
    #: symbol name -> (trace index, result field) for state-derived values
    origins: Mapping[str, tuple[int, str]] = field(default_factory=dict)

    def constraints_at(self, entry: TraceEntry) -> tuple[E.Expr, ...]:
        """Constraints that were active when ``entry`` executed."""
        return self.constraints[: entry.pc_len]

    def stateful_entries(self) -> Iterator[TraceEntry]:
        return (entry for entry in self.trace if not entry.maintenance)


@dataclass
class ExecutionTree:
    """The complete model of an NF: all paths, per ingress port."""

    nf_name: str
    paths_by_port: dict[int, list[Path]]

    @property
    def ports(self) -> list[int]:
        return sorted(self.paths_by_port)

    def paths(self, port: int | None = None) -> list[Path]:
        if port is not None:
            return list(self.paths_by_port.get(port, []))
        return [p for port_paths in self.paths_by_port.values() for p in port_paths]

    def entries(self) -> Iterator[tuple[Path, TraceEntry]]:
        """Every (path, stateful entry) pair across all ports."""
        for path in self.paths():
            for entry in path.stateful_entries():
                yield path, entry

    def objects(self) -> set[str]:
        return {entry.obj for _, entry in self.entries()}

    def summary(self) -> str:
        lines = [f"execution tree for {self.nf_name}:"]
        for port in self.ports:
            for path in self.paths_by_port[port]:
                ops = ", ".join(
                    f"{e.op}({e.obj})" for e in path.trace if not e.maintenance
                )
                lines.append(
                    f"  port {port}: [{ops or 'stateless'}] -> "
                    f"{path.action.describe()}"
                )
        return "\n".join(lines)
