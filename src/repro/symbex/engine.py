"""The ESE engine: exhaustive symbolic execution by re-execution forking.

The paper uses KLEE; this engine achieves the same artifact for NFs
written against :class:`repro.nf.api.NfContext` without interpreter
instrumentation.  Each exploration replays ``process()`` from the start
with a *decision log*: recorded branch outcomes are replayed, and the
first undecided ``ctx.cond`` takes one branch while queueing the other as
a new decision prefix.  Provably-infeasible branches (checked with the
equality-logic solver) are pruned, keeping the tree sound and complete for
the supported NF class (§5: bounded loops, well-defined state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro import obs
from repro.errors import PathExplosionError, SymbolicError
from repro.nf.api import NF, NfContext, PacketDone, StateDecl, StateKind
from repro.solver import eqsmt
from repro.symbex import expr as E
from repro.symbex.tree import Action, ExecutionTree, Path, TraceEntry

__all__ = ["SymbolicEngine", "explore_nf", "replay_path"]

#: Widths of the fresh symbols introduced by stateful operations.
_FOUND_WIDTH = 1
_INDEX_WIDTH = 16
_VALUE_WIDTH = 16
_COUNT_WIDTH = 32
_TIME_WIDTH = 64


class _Infeasible(Exception):
    """Internal: the current decision prefix has no feasible continuation."""


def _zext(value: E.Expr, width: int) -> E.Expr:
    """Zero-extend ``value`` to ``width`` bits."""
    if value.width == width:
        return value
    if value.width > width:
        return E.Extract(width, value, width - 1, 0)
    return E.Concat.of(E.Const(width - value.width, 0), value)


def _align(lhs: E.Expr, rhs: E.Expr) -> tuple[E.Expr, E.Expr]:
    width = max(lhs.width, rhs.width)
    return _zext(lhs, width), _zext(rhs, width)


def _as_expr(value: Any, width: int = _VALUE_WIDTH) -> E.Expr:
    if isinstance(value, E.Expr):
        return value
    if isinstance(value, bool):
        return E.Const(1, int(value))
    if isinstance(value, int):
        # Exactly ``width`` bits, always: mixing widths for large constants
        # (the old ``max(width, bit_length)``) made structurally-identical
        # keys unequal and broke positional unification downstream.
        if value.bit_length() > width:
            raise SymbolicError(
                f"constant {value:#x} does not fit in {width} bits; "
                "lift it explicitly with ctx.const(value, width)"
            )
        return E.Const(width, value)
    raise SymbolicError(f"cannot lift {value!r} into a symbolic expression")


class _SymbolicContext(NfContext):
    """One re-execution of ``process`` under a fixed decision prefix."""

    def __init__(self, nf: NF, decls: Mapping[str, StateDecl], prefix: Sequence[bool]):
        self.nf = nf
        self.decls = decls
        self.prefix = list(prefix)
        self.cursor = 0
        self.decisions: list[bool] = []
        self.pc: list[E.Expr] = []
        self.trace: list[TraceEntry] = []
        self.origins: dict[str, tuple[int, str]] = {}
        self.forks: list[tuple[bool, ...]] = []
        self.mods: dict[str, E.Expr] = {}
        self.pruned = 0
        self._op_counter = 0

    # -------------------------------------------------------------- #
    # Branching
    # -------------------------------------------------------------- #
    def cond(self, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if not isinstance(value, E.Expr):
            return bool(value)
        expr = value if value.width == 1 else E.Ne(value, E.Const(value.width, 0))
        if self.cursor < len(self.prefix):
            taken = self.prefix[self.cursor]
        else:
            taken = None
        self.cursor += 1

        def literal(branch: bool) -> E.Expr:
            return expr if branch else E.Not(expr)

        if taken is not None:
            # Replay: the parent run proved this branch feasible.
            self.pc.append(literal(taken))
            self.decisions.append(taken)
            return taken

        true_feasible = not eqsmt.is_definitely_unsat(self.pc + [literal(True)])
        false_feasible = not eqsmt.is_definitely_unsat(self.pc + [literal(False)])
        if not true_feasible and not false_feasible:
            raise _Infeasible()
        take = True if true_feasible else False
        if true_feasible and false_feasible:
            self.forks.append(tuple(self.decisions) + (not take,))
        else:
            self.pruned += 1  # exactly one side feasible: branch pruned
        self.pc.append(literal(take))
        self.decisions.append(take)
        return take

    # -------------------------------------------------------------- #
    # Value algebra over expressions
    # -------------------------------------------------------------- #
    def const(self, value: int, width: int) -> E.Expr:
        return E.Const(width, value)

    def eq(self, lhs: Any, rhs: Any) -> E.Expr:
        return E.Eq(*_align(_as_expr(lhs), _as_expr(rhs)))

    def lt(self, lhs: Any, rhs: Any) -> E.Expr:
        return E.Ult(*_align(_as_expr(lhs), _as_expr(rhs)))

    def add(self, lhs: Any, rhs: Any) -> E.Expr:
        return E.Add(*_align(_as_expr(lhs), _as_expr(rhs)))

    def sub(self, lhs: Any, rhs: Any) -> E.Expr:
        return E.Sub(*_align(_as_expr(lhs), _as_expr(rhs)))

    def mul(self, lhs: Any, rhs: Any) -> E.Expr:
        return E.Mul(*_align(_as_expr(lhs), _as_expr(rhs)))

    def extract(self, value: Any, hi: int, lo: int) -> E.Expr:
        return E.Extract(hi - lo + 1, _as_expr(value), hi, lo)

    def lnot(self, value: Any) -> E.Expr:
        return E.Not(_as_expr(value, 1))

    def land(self, lhs: Any, rhs: Any) -> E.Expr:
        return E.And(_as_expr(lhs, 1), _as_expr(rhs, 1))

    def lor(self, lhs: Any, rhs: Any) -> E.Expr:
        return E.Or(_as_expr(lhs, 1), _as_expr(rhs, 1))

    def hash_value(self, fn: str, values: Sequence[Any], width: int) -> E.Expr:
        return E.Uninterp(width, fn, tuple(_as_expr(v) for v in values))

    def now(self) -> E.Expr:
        return E.Sym(_TIME_WIDTH, "time")

    # -------------------------------------------------------------- #
    # Stateful operations: fresh symbols + trace entries
    # -------------------------------------------------------------- #
    def _fresh(self, obj: str, field: str, width: int) -> E.Sym:
        return E.Sym(width, f"{obj}.{self._op_counter}.{field}")

    def _emit(
        self,
        obj: str,
        op: str,
        *,
        write: bool,
        key: tuple[E.Expr, ...] | None,
        results: tuple[tuple[str, E.Sym], ...] = (),
        stored: tuple[tuple[str, E.Expr], ...] = (),
        maintenance: bool = False,
    ) -> TraceEntry:
        entry = TraceEntry(
            index=len(self.trace),
            obj=obj,
            op=op,
            write=write,
            key=key,
            results=results,
            stored=stored,
            pc_len=len(self.pc),
            maintenance=maintenance,
        )
        for field_name, sym in results:
            self.origins[sym.name] = (entry.index, field_name)
        self.trace.append(entry)
        self._op_counter += 1
        return entry

    def _key(self, key: Sequence[Any]) -> tuple[E.Expr, ...]:
        return tuple(_as_expr(part) for part in key)

    def map_get(self, name: str, key: Sequence[Any]) -> tuple[E.Expr, E.Expr]:
        found = self._fresh(name, "found", _FOUND_WIDTH)
        value = self._fresh(name, "value", _VALUE_WIDTH)
        self._emit(
            name,
            "map_get",
            write=False,
            key=self._key(key),
            results=(("found", found), ("value", value)),
        )
        return found, value

    def map_put(self, name: str, key: Sequence[Any], value: Any) -> E.Expr:
        ok = self._fresh(name, "ok", _FOUND_WIDTH)
        self._emit(
            name,
            "map_put",
            write=True,
            key=self._key(key),
            results=(("ok", ok),),
            stored=(("value", _as_expr(value)),),
        )
        return ok

    def map_erase(self, name: str, key: Sequence[Any]) -> None:
        self._emit(name, "map_erase", write=True, key=self._key(key))

    def vector_borrow(self, name: str, index: Any) -> Mapping[str, E.Expr]:
        decl = self.decls[name]
        results = tuple(
            (field_name, self._fresh(name, field_name, width))
            for field_name, width in decl.value_layout
        )
        self._emit(
            name,
            "vector_borrow",
            write=False,
            key=(_as_expr(index),),
            results=results,
        )
        return dict(results)

    def vector_put(self, name: str, index: Any, record: Mapping[str, Any]) -> None:
        self._emit(
            name,
            "vector_put",
            write=True,
            key=(_as_expr(index),),
            stored=tuple((f, _as_expr(v)) for f, v in record.items()),
        )

    def vector_fill(self, name: str, records: Sequence[Mapping[str, Any]]) -> None:
        self._emit(name, "vector_fill", write=True, key=None)

    def dchain_allocate(self, name: str) -> tuple[E.Expr, E.Expr]:
        ok = self._fresh(name, "ok", _FOUND_WIDTH)
        index = self._fresh(name, "index", _INDEX_WIDTH)
        self._emit(
            name,
            "dchain_allocate",
            write=True,
            key=None,
            results=(("ok", ok), ("index", index)),
        )
        return ok, index

    def dchain_is_allocated(self, name: str, index: Any) -> E.Expr:
        allocated = self._fresh(name, "allocated", _FOUND_WIDTH)
        self._emit(
            name,
            "dchain_is_allocated",
            write=False,
            key=(_as_expr(index),),
            results=(("allocated", allocated),),
        )
        return allocated

    def dchain_rejuvenate(self, name: str, index: Any) -> None:
        self._emit(
            name,
            "dchain_rejuvenate",
            write=True,
            key=(_as_expr(index),),
            maintenance=True,
        )

    def sketch_fetch(self, name: str, key: Sequence[Any]) -> E.Expr:
        count = self._fresh(name, "count", _COUNT_WIDTH)
        self._emit(
            name,
            "sketch_fetch",
            write=False,
            key=self._key(key),
            results=(("count", count),),
        )
        return count

    def sketch_touch(self, name: str, key: Sequence[Any]) -> None:
        self._emit(name, "sketch_touch", write=True, key=self._key(key))

    def expire_flows(self, map_name: str, chain_name: str) -> None:
        # Maintenance sweep: local to a shard under shared-nothing, so it
        # is excluded from key analysis (but still a write for cost models).
        self._emit(chain_name, "expire", write=True, key=None, maintenance=True)
        self._emit(map_name, "expire", write=True, key=None, maintenance=True)

    # -------------------------------------------------------------- #
    # Packet operations
    # -------------------------------------------------------------- #
    def set_field(self, name: str, value: Any) -> None:
        self.mods[name] = _as_expr(value)


@dataclass
class SymbolicEngine:
    """Explore all execution paths of an NF, per ingress port."""

    max_paths: int = 4096

    def explore_port(self, nf: NF, port: int) -> list[Path]:
        """All feasible paths for packets arriving on ``port``."""
        # Imported here to keep repro.nf.packet importable on its own
        # (it depends on repro.symbex.expr, not on this engine).
        from repro.nf.packet import SymbolicPacket

        decls = {decl.name: decl for decl in nf.state()}
        paths: list[Path] = []
        pending: list[tuple[bool, ...]] = [()]
        pkt = SymbolicPacket()
        forks = 0
        pruned = 0
        infeasible = 0
        max_depth = 0
        while pending:
            prefix = pending.pop()
            ctx = _SymbolicContext(nf, decls, prefix)
            try:
                nf.process(ctx, port, pkt)
            except PacketDone as done:
                action = Action(
                    kind=done.kind,
                    port=done.port,
                    mods=tuple(sorted(ctx.mods.items())),
                )
                paths.append(
                    Path(
                        port=port,
                        decisions=tuple(ctx.decisions),
                        constraints=tuple(ctx.pc),
                        trace=tuple(ctx.trace),
                        action=action,
                        origins=dict(ctx.origins),
                    )
                )
                forks += len(ctx.forks)
                pruned += ctx.pruned
                max_depth = max(max_depth, len(ctx.decisions))
                pending.extend(ctx.forks)
            except _Infeasible:
                infeasible += 1
                pruned += ctx.pruned
                continue
            else:
                raise SymbolicError(
                    f"{nf.name}.process(port={port}) returned without a "
                    "packet operation"
                )
            if len(paths) + len(pending) > self.max_paths:
                raise PathExplosionError(
                    f"{nf.name}: more than {self.max_paths} paths; are all "
                    "loops statically bounded?"
                )
        obs.counter("symbex.paths", len(paths), nf=nf.name, port=port)
        obs.counter("symbex.forks", forks, nf=nf.name, port=port)
        obs.counter("symbex.pruned", pruned, nf=nf.name, port=port)
        obs.counter("symbex.infeasible", infeasible, nf=nf.name, port=port)
        obs.histogram("symbex.max_depth", max_depth, nf=nf.name, port=port)
        return paths

    def explore(self, nf: NF) -> ExecutionTree:
        """Build the full execution tree of ``nf`` (§3.3)."""
        with obs.span("symbex.explore", nf=nf.name) as sp:
            paths_by_port = {
                port: self.explore_port(nf, port) for port in nf.port_ids()
            }
            sp.set("paths", sum(len(p) for p in paths_by_port.values()))
            sp.set("ports", len(paths_by_port))
        return ExecutionTree(nf_name=nf.name, paths_by_port=paths_by_port)


def explore_nf(nf: NF, *, max_paths: int = 4096) -> ExecutionTree:
    """Convenience wrapper around :class:`SymbolicEngine`."""
    return SymbolicEngine(max_paths=max_paths).explore(nf)


def replay_path(nf: NF, port: int, decisions: Sequence[bool]) -> tuple:
    """Re-execute ``process`` under a fixed decision log and fingerprint it.

    ESE is only sound if ``process`` is deterministic given the branch
    decisions: replaying the same decision prefix must reproduce the same
    constraints, stateful trace, and terminal action.  The determinism
    auditor (:mod:`repro.analysis`) replays every path twice and diffs the
    fingerprints this function returns; any divergence means the NF
    consults state outside the traced model (wall-clock time, ``random``,
    mutable attributes, ...).
    """
    from repro.nf.packet import SymbolicPacket

    decls = {decl.name: decl for decl in nf.state()}
    ctx = _SymbolicContext(nf, decls, decisions)
    try:
        nf.process(ctx, port, SymbolicPacket())
    except PacketDone as done:
        action = (
            done.kind.value,
            repr(done.port),
            tuple(sorted((name, repr(mod)) for name, mod in ctx.mods.items())),
        )
        return (
            tuple(ctx.decisions),
            tuple(repr(c) for c in ctx.pc),
            tuple(
                (e.obj, e.op, e.write, repr(e.key), e.maintenance)
                for e in ctx.trace
            ),
            action,
        )
    except _Infeasible:
        return ("infeasible", tuple(ctx.decisions))
    raise SymbolicError(
        f"{nf.name}.process(port={port}) returned without a packet operation"
    )
