"""The Maestro pipeline (Figure 1): ESE -> Constraints Generator -> RS3 ->
Code Generator.

>>> maestro = Maestro()
>>> result = maestro.analyze(Firewall())
>>> result.solution.verdict
<Verdict.SHARED_NOTHING: 'shared-nothing'>
>>> parallel = maestro.parallelize(Firewall(), n_cores=8)

Every run records an observability trace (``repro.obs``): stage spans,
symbex path counters, and RS3 key-search counters land in
``result.trace``, and ``result.timings`` is a view over the recorded
stage spans.  The Figure 6 benchmark aggregates them over repeated
invocations; attach a global :class:`repro.obs.JsonlCollector` to export
the same events to disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.codegen import ParallelNF, Strategy
from repro.core.report import StatefulReport, build_report
from repro.core.rss_compile import RssCompilation, compile_rss
from repro.core.sharding import ConstraintsGenerator, ShardingSolution, Verdict
from repro.nf.api import NF
from repro.rs3.config import RssConfiguration
from repro.rs3.fields import E810, NicModel
from repro.rs3.solver import KeySearchStats, RssKeySolver
from repro.symbex import ExecutionTree, explore_nf

__all__ = ["PIPELINE_STAGES", "MaestroResult", "Maestro"]

#: Span names of the four pipeline stages, in execution order.
PIPELINE_STAGES: tuple[str, ...] = (
    "symbolic_execution",
    "constraints_generator",
    "rs3",
    "code_generator",
)


@dataclass
class MaestroResult:
    """Everything the pipeline produced for one NF."""

    nf: NF
    tree: ExecutionTree
    report: StatefulReport
    solution: ShardingSolution
    compilation: RssCompilation
    keys: dict[int, bytes]
    key_stats: KeySearchStats
    trace: obs.MemoryCollector = field(default_factory=obs.MemoryCollector)
    #: lint findings (populated by ``Maestro.analyze(..., lint=True)``)
    diagnostics: list = field(default_factory=list)

    @property
    def timings(self) -> dict[str, float]:
        """Per-stage wall times, read from the recorded stage spans."""
        out: dict[str, float] = {}
        for record in self.trace.spans:
            if record.name in PIPELINE_STAGES:
                out[record.name] = out.get(record.name, 0.0) + record.duration_s
        return out

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())

    def rss_configuration(self, n_cores: int, reta_size: int = 512) -> RssConfiguration:
        return RssConfiguration.build(
            self.keys, self.compilation.port_options, n_cores, reta_size
        )

    def describe(self) -> str:
        lines = [self.solution.describe()]
        for port in sorted(self.keys):
            lines.append(f"  key port {port}: {self.keys[port].hex()}")
        lines.append(
            "  timings: "
            + ", ".join(f"{k}={v * 1e3:.1f}ms" for k, v in self.timings.items())
        )
        stats = self.key_stats
        lines.append(
            "  rs3: "
            f"attempts={stats.attempts}, rows={stats.constraint_rows}, "
            f"rank={stats.gf2_rank}, free_bits={stats.free_bits}, "
            f"rejected_quality={stats.rejected_quality}, "
            f"elapsed={stats.elapsed_s * 1e3:.1f}ms"
        )
        return "\n".join(lines)


class Maestro:
    """Automatic NF parallelization (the paper's headline tool)."""

    def __init__(
        self,
        nic: NicModel = E810,
        *,
        seed: int | None = None,
        n_queues: int = 16,
    ):
        self.nic = nic
        self.n_queues = n_queues
        self._rng = np.random.default_rng(seed)

    def analyze(self, nf: NF, *, lint: bool = False) -> MaestroResult:
        """Run ESE, the Constraints Generator, and RS3 for ``nf``.

        The run is traced end to end: a per-result
        :class:`repro.obs.MemoryCollector` captures stage spans plus every
        counter the lower layers emit, alongside any globally attached
        collectors.

        With ``lint=True`` the :mod:`repro.analysis` passes also run over
        the freshly built artifacts (no extra symbolic execution) and
        their findings land in :attr:`MaestroResult.diagnostics`.
        """
        trace = obs.MemoryCollector()
        with obs.attached(trace):
            with obs.span("maestro.analyze", nf=nf.name) as root:
                with obs.span("symbolic_execution", nf=nf.name):
                    tree = explore_nf(nf)
                with obs.span("constraints_generator", nf=nf.name):
                    report = build_report(nf, tree)
                    solution = ConstraintsGenerator(report).solve()
                with obs.span("rs3", nf=nf.name):
                    compilation = compile_rss(nf, solution, self.nic)
                    solver = RssKeySolver(
                        self.nic, compilation.port_options, n_queues=self.n_queues
                    )
                    stats = KeySearchStats()
                    keys = solver.solve(
                        compilation.requirements, rng=self._rng, stats=stats
                    )
                    solver.verify(
                        compilation.requirements, keys, rng=self._rng, samples=32
                    )
                root.set("verdict", solution.verdict.value)

            diagnostics: list = []
            if lint:
                # Imported lazily: repro.analysis depends on this module's
                # siblings, and linting is opt-in on the hot path.
                from repro.analysis import lint_nf

                diagnostics = lint_nf(
                    nf, tree=tree, report=report, solution=solution
                )

        return MaestroResult(
            nf=nf,
            tree=tree,
            report=report,
            solution=solution,
            compilation=compilation,
            keys=keys,
            key_stats=stats,
            trace=trace,
            diagnostics=diagnostics,
        )

    def parallelize(
        self,
        nf: NF,
        n_cores: int,
        *,
        strategy: Strategy | None = None,
        result: MaestroResult | None = None,
    ) -> ParallelNF:
        """Analyze (or reuse an analysis) and generate a parallel NF.

        ``strategy`` overrides the analysis verdict (the paper's §6.4:
        "Maestro can specifically generate parallel implementations using
        read/write locks and TM for any of the NFs, upon request"), except
        that shared-nothing cannot be forced where the analysis ruled it
        out.
        """
        if result is None:
            result = self.analyze(nf)
        with obs.attached(result.trace):
            with obs.span("code_generator", nf=nf.name):
                rss = result.rss_configuration(n_cores)
                parallel = ParallelNF.generate(
                    nf, result.solution, rss, n_cores, strategy=strategy
                )
        # The analysis already explored the NF exhaustively; hand the
        # tree to the compiled dataplane so it never re-explores.
        parallel.symbex_tree = result.tree
        return parallel
