"""The Maestro pipeline (Figure 1): ESE -> Constraints Generator -> RS3 ->
Code Generator.

>>> maestro = Maestro()
>>> result = maestro.analyze(Firewall())
>>> result.solution.verdict
<Verdict.SHARED_NOTHING: 'shared-nothing'>
>>> parallel = maestro.parallelize(Firewall(), n_cores=8)

Stage wall-times are recorded per run; the Figure 6 benchmark aggregates
them over repeated invocations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.codegen import ParallelNF, Strategy
from repro.core.report import StatefulReport, build_report
from repro.core.rss_compile import RssCompilation, compile_rss
from repro.core.sharding import ConstraintsGenerator, ShardingSolution, Verdict
from repro.errors import RssUnsatisfiableError
from repro.nf.api import NF
from repro.rs3.config import RssConfiguration
from repro.rs3.fields import E810, NicModel
from repro.rs3.solver import KeySearchStats, RssKeySolver
from repro.symbex import ExecutionTree, explore_nf

__all__ = ["MaestroResult", "Maestro"]


@dataclass
class MaestroResult:
    """Everything the pipeline produced for one NF."""

    nf: NF
    tree: ExecutionTree
    report: StatefulReport
    solution: ShardingSolution
    compilation: RssCompilation
    keys: dict[int, bytes]
    key_stats: KeySearchStats
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def total_time(self) -> float:
        return sum(self.timings.values())

    def rss_configuration(self, n_cores: int, reta_size: int = 512) -> RssConfiguration:
        return RssConfiguration.build(
            self.keys, self.compilation.port_options, n_cores, reta_size
        )

    def describe(self) -> str:
        lines = [self.solution.describe()]
        for port in sorted(self.keys):
            lines.append(f"  key port {port}: {self.keys[port].hex()}")
        lines.append(
            "  timings: "
            + ", ".join(f"{k}={v * 1e3:.1f}ms" for k, v in self.timings.items())
        )
        return "\n".join(lines)


class Maestro:
    """Automatic NF parallelization (the paper's headline tool)."""

    def __init__(
        self,
        nic: NicModel = E810,
        *,
        seed: int | None = None,
        n_queues: int = 16,
    ):
        self.nic = nic
        self.n_queues = n_queues
        self._rng = np.random.default_rng(seed)

    def analyze(self, nf: NF) -> MaestroResult:
        """Run ESE, the Constraints Generator, and RS3 for ``nf``."""
        timings: dict[str, float] = {}

        start = time.perf_counter()
        tree = explore_nf(nf)
        timings["symbolic_execution"] = time.perf_counter() - start

        start = time.perf_counter()
        report = build_report(nf, tree)
        solution = ConstraintsGenerator(report).solve()
        timings["constraints_generator"] = time.perf_counter() - start

        start = time.perf_counter()
        compilation = compile_rss(nf, solution, self.nic)
        solver = RssKeySolver(
            self.nic, compilation.port_options, n_queues=self.n_queues
        )
        stats = KeySearchStats()
        keys = solver.solve(compilation.requirements, rng=self._rng, stats=stats)
        solver.verify(compilation.requirements, keys, rng=self._rng, samples=32)
        timings["rs3"] = time.perf_counter() - start

        return MaestroResult(
            nf=nf,
            tree=tree,
            report=report,
            solution=solution,
            compilation=compilation,
            keys=keys,
            key_stats=stats,
            timings=timings,
        )

    def parallelize(
        self,
        nf: NF,
        n_cores: int,
        *,
        strategy: Strategy | None = None,
        result: MaestroResult | None = None,
    ) -> ParallelNF:
        """Analyze (or reuse an analysis) and generate a parallel NF.

        ``strategy`` overrides the analysis verdict (the paper's §6.4:
        "Maestro can specifically generate parallel implementations using
        read/write locks and TM for any of the NFs, upon request"), except
        that shared-nothing cannot be forced where the analysis ruled it
        out.
        """
        if result is None:
            result = self.analyze(nf)
        start = time.perf_counter()
        rss = result.rss_configuration(n_cores)
        parallel = ParallelNF.generate(
            nf, result.solution, rss, n_cores, strategy=strategy
        )
        result.timings["code_generator"] = time.perf_counter() - start
        return parallel
