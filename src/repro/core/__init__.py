"""Maestro's core pipeline: the paper's primary contribution.

Stateful Report -> Constraints Generator (R1-R5) -> RSS compilation ->
Code Generator, orchestrated by :class:`repro.core.pipeline.Maestro`.
"""

from repro.core.codegen import CoreInstance, ParallelNF, Strategy
from repro.core.emit_c import emit_c
from repro.core.pipeline import Maestro, MaestroResult
from repro.core.report import SREntry, StatefulReport, build_report
from repro.core.rss_compile import RssCompilation, compile_rss
from repro.core.sharding import (
    ConstraintsGenerator,
    PairMap,
    ShardingSolution,
    Verdict,
)

__all__ = [
    "CoreInstance",
    "ParallelNF",
    "Strategy",
    "emit_c",
    "Maestro",
    "MaestroResult",
    "SREntry",
    "StatefulReport",
    "build_report",
    "RssCompilation",
    "compile_rss",
    "ConstraintsGenerator",
    "PairMap",
    "ShardingSolution",
    "Verdict",
]
