"""The Stateful Report (SR) builder (§3.4).

"The Constraints Generator starts by analyzing the NF's model and builds a
stateful report (SR) of all the performed stateful operations.  Each SR
entry specifies the operation's name, object instance, and other relevant
arguments, and all the possible constraints on both the received packet
and other stateful data when the operation was performed."

This module also performs the *filtering* step: entries touching read-only
objects (populated at setup and never written in ``process``) are removed;
if nothing remains, the NF only needs RSS for load balancing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.nf.api import NF, StateDecl
from repro.symbex import expr as E
from repro.symbex.tree import ExecutionTree, Path, TraceEntry

__all__ = ["SREntry", "StatefulReport", "build_report"]


@dataclass(frozen=True)
class SREntry:
    """One stateful operation together with its execution context."""

    port: int
    path: Path
    entry: TraceEntry

    @property
    def obj(self) -> str:
        return self.entry.obj

    @property
    def op(self) -> str:
        return self.entry.op

    @property
    def write(self) -> bool:
        return self.entry.write

    @property
    def key(self) -> tuple[E.Expr, ...] | None:
        return self.entry.key

    def constraints(self) -> tuple[E.Expr, ...]:
        """Path constraints active when the operation ran."""
        return self.path.constraints_at(self.entry)

    def describe(self) -> str:
        key = "-" if self.key is None else ", ".join(map(repr, self.key))
        rw = "W" if self.write else "R"
        return f"[port {self.port}][{rw}] {self.op}({self.obj}; key=({key}))"


@dataclass
class StatefulReport:
    """The filtered SR: the input to the sharding rules R1-R5."""

    nf_name: str
    decls: dict[str, StateDecl]
    entries: list[SREntry]
    read_only_objects: frozenset[str]
    tree: ExecutionTree

    def objects(self) -> set[str]:
        return {entry.obj for entry in self.entries}

    def by_object(self) -> dict[str, list[SREntry]]:
        grouped: dict[str, list[SREntry]] = {}
        for entry in self.entries:
            grouped.setdefault(entry.obj, []).append(entry)
        return grouped

    @property
    def stateless(self) -> bool:
        """True when nothing is left after filtering (§3.4): RSS becomes a
        pure load balancer."""
        return not self.entries

    def describe(self) -> str:
        lines = [f"stateful report for {self.nf_name}:"]
        if self.read_only_objects:
            lines.append(
                "  filtered read-only objects: "
                + ", ".join(sorted(self.read_only_objects))
            )
        for entry in self.entries:
            lines.append("  " + entry.describe())
        return "\n".join(lines)


def build_report(nf: NF, tree: ExecutionTree) -> StatefulReport:
    """Build and filter the stateful report from an execution tree."""
    decls = {decl.name: decl for decl in nf.state()}

    written: set[str] = set()
    for _, entry in tree.entries():
        if entry.write:
            written.add(entry.obj)

    read_only = {
        name
        for name, decl in decls.items()
        if decl.read_only or (name in tree.objects() and name not in written)
    }

    entries = [
        SREntry(port=path.port, path=path, entry=entry)
        for path, entry in tree.entries()
        if entry.obj not in read_only
    ]
    return StatefulReport(
        nf_name=nf.name,
        decls=decls,
        entries=entries,
        read_only_objects=frozenset(read_only),
        tree=tree,
    )
