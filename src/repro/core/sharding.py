"""The Constraints Generator: finding the sharding solution (§3.4).

Implements the paper's rule set over the Stateful Report:

* **R1 — key equality**: packets whose keys to the same object are equal
  must land on the same core; positional unification of key expressions
  yields per-port footprints and cross-port field maps (Figure 3).
* **R2 — subsumption**: a coarser footprint wins; generalized here to the
  intersection of footprints per port (any non-empty subset of every
  object's key fields is a valid sharding).
* **R3 — disjoint dependencies**: an empty intersection means no RSS
  configuration can satisfy both objects; fall back to locks with an
  explanation naming the culprits.
* **R4 — incompatible dependencies**: constant keys, allocator-assigned
  keys with no keyed owner, data-dependent keys, or non-RSS-hashable
  fields (MAC addresses) block shared-nothing — unless R5 applies.
* **R5 — interchangeable constraints**: when a mismatch on a guarded read
  provably triggers the same behaviour as a lookup miss, the sharding key
  can be replaced by the packet fields in the guard (the NAT/bridge
  pattern of Figure 2, example 5).

The *derived-key propagation* used by the map+dchain+vector idiom (a
vector indexed by an allocator index owned by a keyed map inherits that
map's footprint) is how the paper's per-data-structure reasoning composes;
it is sound because allocator indices are unique per map key.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import ShardingError
from repro.nf.packet import PACKET_FIELDS
from repro.symbex import expr as E
from repro.symbex.tree import ActionKind, Path, TraceEntry
from repro.core.report import SREntry, StatefulReport

__all__ = [
    "Verdict",
    "PairMap",
    "ShardingSolution",
    "ConstraintsGenerator",
]

#: Packet fields RSS can hash (rule R4's compatibility check).
RSS_HASHABLE = frozenset({"src_ip", "dst_ip", "src_port", "dst_port"})

#: Canonical ordering used when presenting field sets.
_FIELD_ORDER = {name: i for i, name in enumerate(PACKET_FIELDS)}


class Verdict(enum.Enum):
    """Outcome of the analysis (§3.4 / §3.6)."""

    SHARED_NOTHING = "shared-nothing"
    LOAD_BALANCE = "load-balance"  # stateless / read-only: RSS spreads load
    LOCKS = "locks"  # fall back to read/write locks


# ------------------------------------------------------------------ #
# Key atoms
# ------------------------------------------------------------------ #
@dataclass(frozen=True)
class _FieldAtom:
    """A packet field, possibly a bit slice of it (subnet prefixes)."""

    field: str
    hi: int = -1  # -1 = full width
    lo: int = 0

    def bits(self) -> frozenset[int]:
        width = PACKET_FIELDS[self.field]
        hi = width - 1 if self.hi < 0 else self.hi
        return frozenset(range(self.lo, hi + 1))

    @property
    def full(self) -> bool:
        width = PACKET_FIELDS[self.field]
        return self.lo == 0 and self.hi in (-1, width - 1)


@dataclass(frozen=True)
class _ConstAtom:
    value: int


@dataclass(frozen=True)
class _HashAtom:
    fn: str
    fields: tuple[str, ...]


@dataclass(frozen=True)
class _DerivedAtom:
    origin_index: int
    origin_obj: str
    origin_op: str
    origin_field: str


@dataclass(frozen=True)
class _OpaqueAtom:
    reason: str


_Atom = _FieldAtom | _ConstAtom | _HashAtom | _DerivedAtom | _OpaqueAtom


def _pkt_fields_of(expr: E.Expr) -> set[str] | None:
    """Packet fields in ``expr``; None if any non-packet symbol occurs."""
    fields: set[str] = set()
    for sym in E.free_symbols(expr):
        if sym.name.startswith("pkt."):
            fields.add(sym.name[len("pkt.") :])
        else:
            return None
    return fields


def _classify(expr: E.Expr, path: Path) -> _Atom:
    """Classify one key component into an atom."""
    if isinstance(expr, E.Const):
        return _ConstAtom(expr.value)
    if isinstance(expr, E.Sym):
        if expr.name.startswith("pkt."):
            return _FieldAtom(expr.name[len("pkt.") :])
        origin = path.origins.get(expr.name)
        if origin is not None:
            index, result_field = origin
            entry = path.trace[index]
            return _DerivedAtom(index, entry.obj, entry.op, result_field)
        return _OpaqueAtom(f"free symbol {expr.name}")
    if isinstance(expr, E.Extract) and isinstance(expr.expr, E.Sym):
        inner = expr.expr
        if inner.name.startswith("pkt."):
            # A subnet/prefix key (§3.5's Hierarchical Heavy Hitter case):
            # only the extracted bits may shard traffic — hashing the full
            # field would split the prefix's packets across cores.
            return _FieldAtom(inner.name[len("pkt.") :], expr.hi, expr.lo)
    if isinstance(expr, E.Uninterp):
        arg_fields: list[str] = []
        for arg in expr.args:
            fields = _pkt_fields_of(arg)
            if fields is None:
                return _OpaqueAtom(f"hash over non-packet data: {expr!r}")
            arg_fields.extend(sorted(fields, key=_FIELD_ORDER.get))
        return _HashAtom(expr.fn, tuple(dict.fromkeys(arg_fields)))
    fields = _pkt_fields_of(expr)
    if fields is not None and len(fields) == 1:
        # An invertible-enough transform of a single field (e.g. the NAT's
        # dst_port - base): footprint is the field itself.
        return _FieldAtom(next(iter(fields)))
    if fields is not None and not fields:
        return _ConstAtom(0)
    return _OpaqueAtom(f"complex key expression: {expr!r}")


# ------------------------------------------------------------------ #
# Access resolution (derived-key propagation)
# ------------------------------------------------------------------ #
@dataclass
class _Access:
    """One SR entry, with its key resolved into atoms."""

    sr: SREntry
    atoms: tuple[_Atom, ...] | None = None
    inherited_from: str | None = None
    problem: str | None = None

    @property
    def port(self) -> int:
        return self.sr.port


def _index_valued_map(report: StatefulReport, map_name: str) -> bool:
    """True when every ``map_put`` on ``map_name`` stores an allocator
    index — the precondition for derived-key propagation to be sound."""
    for entry in report.entries:
        if entry.obj != map_name or entry.op != "map_put":
            continue
        stored = dict(entry.entry.stored)
        value = stored.get("value")
        if value is None:
            return False
        if not isinstance(value, E.Sym):
            return False
        origin = entry.path.origins.get(value.name)
        if origin is None:
            return False
        if entry.path.trace[origin[0]].op != "dchain_allocate":
            return False
    return True


def _owning_map_for_allocation(
    sr: SREntry, alloc_entry: TraceEntry
) -> str | None:
    """The map that a same-path ``map_put`` pairs with this allocation."""
    index_syms = {sym.name for _, sym in alloc_entry.results}
    for other in sr.path.trace:
        if other.op != "map_put":
            continue
        stored = dict(other.stored)
        value = stored.get("value")
        if isinstance(value, E.Sym) and value.name in index_syms:
            return other.obj
    return None


def _normalize_literal(literal: E.Expr) -> tuple[E.Expr, bool]:
    """Strip (possibly nested) negations; returns ``(atom, polarity)``."""
    polarity = True
    while isinstance(literal, E.Not):
        literal = literal.expr
        polarity = not polarity
    return literal, polarity


def _allocation_failed(sr: SREntry, alloc_entry: TraceEntry) -> bool:
    """True when this path's constraints assert the allocation failed.

    A failed ``dchain_allocate`` hands out no index and stores nothing, so
    it imposes no sharding constraint.
    """
    ok_syms = {
        sym.name for field_name, sym in alloc_entry.results if field_name == "ok"
    }
    for literal in sr.path.constraints:
        atom, polarity = _normalize_literal(literal)
        if not polarity and isinstance(atom, E.Sym) and atom.name in ok_syms:
            return True
    return False


def _resolve_access(report: StatefulReport, sr: SREntry) -> _Access:
    """Resolve one SR entry's key into atoms / inheritance / problem."""
    access = _Access(sr=sr)
    entry = sr.entry

    if entry.key is None:
        if entry.op == "dchain_allocate":
            owner = _owning_map_for_allocation(sr, entry)
            if owner is not None and _index_valued_map(report, owner):
                access.inherited_from = owner
            elif _allocation_failed(sr, entry):
                # A failed allocation stores nothing: no constraint.
                access.inherited_from = "(allocation failed)"
            else:
                access.problem = (
                    f"{entry.obj}: allocator-assigned state with no keyed "
                    "owner (R4)"
                )
        else:
            access.problem = (
                f"{entry.obj}: {entry.op} writes state without a "
                "packet-derived key (R4)"
            )
        return access

    atoms = tuple(_classify(part, sr.path) for part in entry.key)
    inherited: set[str] = set()
    keyed = False
    for atom in atoms:
        if isinstance(atom, _OpaqueAtom):
            access.problem = f"{entry.obj}: {atom.reason} (R4)"
            return access
        if isinstance(atom, (_FieldAtom, _HashAtom)):
            keyed = True
        elif isinstance(atom, _DerivedAtom):
            if atom.origin_op == "map_get" and atom.origin_field == "value":
                if _index_valued_map(report, atom.origin_obj):
                    inherited.add(atom.origin_obj)
                else:
                    access.problem = (
                        f"{entry.obj}: keyed by a data value read from "
                        f"{atom.origin_obj} (R4)"
                    )
                    return access
            elif atom.origin_op == "dchain_allocate":
                origin_entry = sr.path.trace[atom.origin_index]
                owner = _owning_map_for_allocation(sr, origin_entry)
                if owner is not None and _index_valued_map(report, owner):
                    inherited.add(owner)
                else:
                    access.problem = (
                        f"{entry.obj}: keyed by an allocator index with no "
                        "keyed owner (R4)"
                    )
                    return access
            else:
                access.problem = (
                    f"{entry.obj}: data-dependent key via "
                    f"{atom.origin_op}({atom.origin_obj}) (R4)"
                )
                return access

    if keyed and inherited:
        access.problem = (
            f"{entry.obj}: mixes packet-derived and state-derived key parts"
        )
        return access
    if inherited:
        if len(inherited) > 1:
            access.problem = (
                f"{entry.obj}: key derived from multiple owners "
                f"{sorted(inherited)}"
            )
            return access
        access.inherited_from = next(iter(inherited))
        return access
    if all(isinstance(a, _ConstAtom) for a in atoms):
        access.problem = (
            f"{entry.obj}: constant key — every packet shares this entry (R4)"
        )
        return access
    access.atoms = atoms
    return access


# ------------------------------------------------------------------ #
# Per-object requirements
# ------------------------------------------------------------------ #
@dataclass(frozen=True)
class PairMap:
    """Cross- (or same-) port colocation: packets on ``port_a`` and
    ``port_b`` whose mapped fields agree must reach the same core."""

    port_a: int
    port_b: int
    field_map: tuple[tuple[str, str], ...]

    def mapping(self) -> dict[str, str]:
        return dict(self.field_map)


#: A footprint: for each packet field, the bits the key depends on.
_Footprint = dict[str, frozenset[int]]


@dataclass
class _Requirement:
    """What one object demands of the sharding solution."""

    obj: str
    footprints: dict[int, list[_Footprint]] = field(default_factory=dict)
    pair_maps: list[PairMap] = field(default_factory=list)


@dataclass
class _Conflict:
    obj: str
    reasons: list[str]


def _full_bits(field_name: str) -> frozenset[int]:
    return frozenset(range(PACKET_FIELDS[field_name]))


def _atoms_footprint(atoms: Sequence[_Atom]) -> _Footprint:
    """The bits of each packet field one key shape depends on."""
    out: dict[str, frozenset[int]] = {}
    for atom in atoms:
        if isinstance(atom, _FieldAtom):
            out[atom.field] = out.get(atom.field, frozenset()) | atom.bits()
        elif isinstance(atom, _HashAtom):
            for name in atom.fields:
                out[name] = _full_bits(name)
    return out


def _unify_object(
    obj: str, accesses: list[_Access]
) -> _Requirement | _Conflict | None:
    """Positional unification of all keyed accesses of one object (R1)."""
    problems = [a.problem for a in accesses if a.problem]
    keyed = [a for a in accesses if a.atoms is not None]
    inherited = [a for a in accesses if a.inherited_from]
    if problems:
        return _Conflict(obj, sorted(set(problems)))
    if keyed and inherited:
        return _Conflict(
            obj,
            [
                f"{obj}: some accesses are keyed by packet fields while "
                "others are reached through an allocator (R4)"
            ],
        )
    if not keyed:
        return None  # fully inherited: covered by the owning map

    # Distinct key shapes, per port.
    shapes: dict[int, list[tuple[_Atom, ...]]] = {}
    for access in keyed:
        per_port = shapes.setdefault(access.port, [])
        if access.atoms not in per_port:
            per_port.append(access.atoms)

    requirement = _Requirement(obj=obj)
    all_shapes = [(port, atoms) for port, lst in shapes.items() for atoms in lst]
    arities = {len(atoms) for _, atoms in all_shapes}
    if len(arities) != 1:
        return _Conflict(
            obj, [f"{obj}: accesses use keys of different arity (R4)"]
        )

    for port, atoms in all_shapes:
        requirement.footprints.setdefault(port, []).append(
            _atoms_footprint(atoms)
        )

    # Pairwise positional maps between distinct shapes (R1 across shapes).
    for i, (port_a, atoms_a) in enumerate(all_shapes):
        for port_b, atoms_b in all_shapes[i + 1 :]:
            mapping: list[tuple[str, str]] = []
            collides = True
            for atom_a, atom_b in zip(atoms_a, atoms_b):
                if isinstance(atom_a, _ConstAtom) and isinstance(
                    atom_b, _ConstAtom
                ):
                    if atom_a.value != atom_b.value:
                        collides = False  # disjoint key spaces: no constraint
                        break
                    continue
                if isinstance(atom_a, _FieldAtom) and isinstance(
                    atom_b, _FieldAtom
                ):
                    if not (atom_a.full and atom_b.full):
                        if port_a == port_b and atom_a == atom_b:
                            continue  # identical slices: trivially colocated
                        return _Conflict(
                            obj,
                            [
                                f"{obj}: sliced fields cannot be matched "
                                "across different keys (R4)"
                            ],
                        )
                    if PACKET_FIELDS[atom_a.field] != PACKET_FIELDS[atom_b.field]:
                        return _Conflict(
                            obj,
                            [
                                f"{obj}: cannot match {atom_a.field} against "
                                f"{atom_b.field} (different widths)"
                            ],
                        )
                    mapping.append((atom_a.field, atom_b.field))
                    continue
                if isinstance(atom_a, _HashAtom) and isinstance(
                    atom_b, _HashAtom
                ):
                    if atom_a.fn != atom_b.fn or len(atom_a.fields) != len(
                        atom_b.fields
                    ):
                        return _Conflict(
                            obj,
                            [
                                f"{obj}: accessed through unrelated hash "
                                f"functions {atom_a.fn} vs {atom_b.fn} (R4)"
                            ],
                        )
                    mapping.extend(zip(atom_a.fields, atom_b.fields))
                    continue
                return _Conflict(
                    obj,
                    [
                        f"{obj}: key shapes mix constants and packet fields "
                        "at the same position (R4)"
                    ],
                )
            if not collides:
                continue
            mapping = [m for m in mapping if True]
            nontrivial = [m for m in mapping if m[0] != m[1] or port_a != port_b]
            if nontrivial:
                requirement.pair_maps.append(
                    PairMap(port_a, port_b, tuple(dict.fromkeys(mapping)))
                )
    return requirement


# ------------------------------------------------------------------ #
# R5: interchangeable constraints
# ------------------------------------------------------------------ #
def _flatten_positive(literal: E.Expr) -> list[E.Expr]:
    """Decompose a positive literal's conjunction into atoms."""
    if isinstance(literal, E.And):
        return _flatten_positive(literal.lhs) + _flatten_positive(literal.rhs)
    return [literal]


def _guard_of(atom: E.Expr, result_syms: dict[str, tuple[str, str]]):
    """If ``atom`` is Eq(cluster-read result, packet field), return
    ``(obj, result_field, packet_field)``."""
    if not isinstance(atom, E.Eq):
        return None
    for lhs, rhs in ((atom.lhs, atom.rhs), (atom.rhs, atom.lhs)):
        if isinstance(lhs, E.Sym) and lhs.name in result_syms:
            fields = _pkt_fields_of(rhs)
            if fields is not None and len(fields) == 1:
                obj, result_field = result_syms[lhs.name]
                return obj, result_field, next(iter(fields))
    return None


def _action_signature(path: Path):
    action = path.action
    port = action.port if isinstance(action.port, int) else repr(action.port)
    return (action.kind, port)


def _try_r5(
    report: StatefulReport,
    conflicts: list[_Conflict],
    inherits: dict[str, set[str]],
) -> tuple[_Requirement | None, list[str]]:
    """Attempt rule R5 over the cluster of conflicted objects.

    The cluster also pulls in objects *owned by* a conflicted object
    (``inherits`` maps object -> owners): in the Figure 2 bridge example
    the guarded IP value lives in a vector owned by the MAC-keyed map.
    Paths that *write* cluster state (learning/registration paths) are
    writers, not guarded readers, and are excluded from the
    miss-vs-mismatch behaviour comparison.

    Returns ``(requirement, notes)``; requirement is None when the
    constraints are not interchangeable.
    """
    cluster = {c.obj for c in conflicts}
    for obj, owners in inherits.items():
        if owners & cluster:
            cluster.add(obj)
    notes: list[str] = []

    # 1. Collect guards per port and the fail/mismatch/success partition.
    guards_by_port: dict[int, dict[tuple[str, str], str]] = {}
    fail_actions: set = set()
    mismatch_actions: set = set()
    success_paths: list[tuple[Path, set[tuple[str, str, str]]]] = []

    for path in report.tree.paths():
        result_syms: dict[str, tuple[str, str]] = {}
        existence_syms: set[str] = set()
        has_cluster_write = False
        for entry in path.stateful_entries():
            if entry.obj not in cluster:
                continue
            if entry.write:
                has_cluster_write = True
                continue
            for result_field, sym in entry.results:
                result_syms[sym.name] = (entry.obj, result_field)
                if result_field in ("found", "allocated"):
                    existence_syms.add(sym.name)
        if not result_syms or has_cluster_write:
            # Writer paths (learning/registration) are colocated by the
            # writer-side sharding fields, not by guards.
            continue

        path_guards: set[tuple[str, str, str]] = set()
        is_fail = False
        is_mismatch = False
        for literal in path.constraints:
            inner, polarity = _normalize_literal(literal)
            if not polarity:
                if isinstance(inner, E.Sym) and inner.name in existence_syms:
                    is_fail = True
                    continue
                inner_atoms = _flatten_positive(inner)
                if any(
                    _guard_of(a, result_syms) is not None for a in inner_atoms
                ):
                    is_mismatch = True
                continue
            for atom in _flatten_positive(inner):
                guard = _guard_of(atom, result_syms)
                if guard is not None:
                    path_guards.add(guard)

        if is_fail:
            fail_actions.add(_action_signature(path))
        elif is_mismatch:
            mismatch_actions.add(_action_signature(path))
        else:
            success_paths.append((path, path_guards))
            for obj, result_field, pkt_field in path_guards:
                guards_by_port.setdefault(path.port, {})[
                    (obj, result_field)
                ] = pkt_field

    if not guards_by_port:
        return None, ["R5: no guard equalities against packet fields found"]

    # 2. Interchangeability: a guard mismatch must behave exactly like a
    # lookup miss (§3.4, R5).
    if not mismatch_actions:
        return None, ["R5: guarded reads have no mismatch path"]
    if fail_actions and mismatch_actions != fail_actions:
        return None, [
            "R5: mismatch behaviour differs from lookup-miss behaviour "
            f"({mismatch_actions} vs {fail_actions})"
        ]

    # 3. Every successful path must check every guard of its port.
    for path, path_guards in success_paths:
        expected = {
            (obj, rf, pf)
            for (obj, rf), pf in guards_by_port.get(path.port, {}).items()
        }
        if expected and not expected <= path_guards:
            return None, [
                "R5: a successful path skips some guard equalities"
            ]

    # 4. Reader-side footprints and writer-side provenance mapping.
    requirement = _Requirement(obj="+".join(sorted(cluster)))
    for reader_port, guards in guards_by_port.items():
        reader_fields: list[str] = []
        writer_port: int | None = None
        writer_fields: list[str] = []
        for (obj, result_field), pkt_field in sorted(
            guards.items(), key=lambda kv: _FIELD_ORDER.get(kv[1], 99)
        ):
            reader_fields.append(pkt_field)
            # Find the write that stored this compared slot.
            provenance: tuple[int, str] | None = None
            for entry in report.entries:
                if entry.obj != obj or not entry.write:
                    continue
                stored = dict(entry.entry.stored)
                expr = stored.get(result_field)
                if expr is None:
                    continue
                fields = _pkt_fields_of(expr)
                if fields is None or len(fields) != 1:
                    return None, [
                        f"R5: stored slot {obj}.{result_field} is not a "
                        "single packet field"
                    ]
                src_field = next(iter(fields))
                if provenance is None:
                    provenance = (entry.port, src_field)
                elif provenance != (entry.port, src_field):
                    return None, [
                        f"R5: writers disagree on {obj}.{result_field}"
                    ]
            if provenance is None:
                return None, [
                    f"R5: no writer found for guarded slot {obj}.{result_field}"
                ]
            if writer_port is None:
                writer_port = provenance[0]
            elif writer_port != provenance[0]:
                return None, ["R5: guarded slots written from different ports"]
            writer_fields.append(provenance[1])

        requirement.footprints.setdefault(reader_port, []).append(
            {name: _full_bits(name) for name in reader_fields}
        )
        assert writer_port is not None
        requirement.footprints.setdefault(writer_port, []).append(
            {name: _full_bits(name) for name in writer_fields}
        )
        if writer_port != reader_port or writer_fields != reader_fields:
            requirement.pair_maps.append(
                PairMap(
                    writer_port,
                    reader_port,
                    tuple(zip(writer_fields, reader_fields)),
                )
            )
        notes.append(
            f"R5: {'+'.join(sorted(cluster))} guarded by "
            f"{list(zip(writer_fields, reader_fields))}; mismatch behaves "
            "like a miss, so sharding on the guard fields is equivalent"
        )
    return requirement, notes


# ------------------------------------------------------------------ #
# Solution assembly (R2/R3 + cross-port consistency)
# ------------------------------------------------------------------ #
@dataclass
class ShardingSolution:
    """The Constraints Generator's output.

    For :data:`Verdict.SHARED_NOTHING`, ``per_port`` gives the fields each
    port's RSS hash must shard on (ports absent from the dict are
    unconstrained and get a random key over all fields), and ``pairs``
    lists the field bijections RS3 must honor across/within ports.
    """

    nf_name: str
    verdict: Verdict
    per_port: dict[int, tuple[str, ...]] = field(default_factory=dict)
    #: exact bits to shard on per port/field (LSB indices); fields absent
    #: from a port's dict are not hashed at all.  Partial bit sets arise
    #: from prefix/subnet keys (the §3.5 HHH case).
    per_port_bits: dict[int, dict[str, frozenset[int]]] = field(
        default_factory=dict
    )
    pairs: list[PairMap] = field(default_factory=list)
    explanation: list[str] = field(default_factory=list)
    rules_applied: list[str] = field(default_factory=list)

    def _render_field(self, port: int, name: str) -> str:
        bits = self.per_port_bits.get(port, {}).get(name)
        if bits is None or bits == frozenset(range(PACKET_FIELDS[name])):
            return name
        return f"{name}[{max(bits)}:{min(bits)}]"

    def describe(self) -> str:
        lines = [f"{self.nf_name}: {self.verdict.value}"]
        for port in sorted(self.per_port):
            rendered = [
                self._render_field(port, name) for name in self.per_port[port]
            ]
            lines.append(f"  port {port}: shard on {rendered}")
        for pm in self.pairs:
            lines.append(
                f"  map port {pm.port_a} -> port {pm.port_b}: "
                f"{list(pm.field_map)}"
            )
        for note in self.explanation:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


class ConstraintsGenerator:
    """Drives R1-R5 over a stateful report to a sharding verdict."""

    def __init__(self, report: StatefulReport):
        self.report = report

    def solve(self) -> ShardingSolution:
        report = self.report
        if report.stateless:
            reason = (
                "all state is read-only"
                if report.read_only_objects
                else "the NF keeps no state"
            )
            return ShardingSolution(
                nf_name=report.nf_name,
                verdict=Verdict.LOAD_BALANCE,
                explanation=[f"{reason}; RSS used purely for load balancing"],
                rules_applied=["filter-read-only"],
            )

        rules: list[str] = []
        notes: list[str] = []
        requirements: list[_Requirement] = []
        conflicts: list[_Conflict] = []
        inherits: dict[str, set[str]] = {}

        for obj, entries in sorted(report.by_object().items()):
            accesses = [_resolve_access(report, sr) for sr in entries]
            for access in accesses:
                owner = access.inherited_from
                if owner and not owner.startswith("("):
                    inherits.setdefault(obj, set()).add(owner)
            outcome = _unify_object(obj, accesses)
            if outcome is None:
                notes.append(
                    f"{obj}: reached only through an owning map "
                    "(derived-key propagation)"
                )
                continue
            if isinstance(outcome, _Conflict):
                conflicts.append(outcome)
                continue
            rules.append("R1")
            # R4 compatibility: every footprint field must be hashable.
            bad_fields = {
                f
                for shapes in outcome.footprints.values()
                for shape in shapes
                for f in shape
                if f not in RSS_HASHABLE
            }
            if bad_fields:
                conflicts.append(
                    _Conflict(
                        obj,
                        [
                            f"{obj}: keyed by non-RSS-hashable fields "
                            f"{sorted(bad_fields)} (R4)"
                        ],
                    )
                )
                continue
            requirements.append(outcome)

        if conflicts:
            rules.append("R4")
            r5_requirement, r5_notes = _try_r5(report, conflicts, inherits)
            notes.extend(r5_notes)
            if r5_requirement is None:
                return ShardingSolution(
                    nf_name=report.nf_name,
                    verdict=Verdict.LOCKS,
                    explanation=[r for c in conflicts for r in c.reasons]
                    + notes,
                    rules_applied=rules,
                )
            rules.append("R5")
            requirements.append(r5_requirement)

        return self._reduce(requirements, rules, notes)

    # -------------------------------------------------------------- #
    def _reduce(
        self,
        requirements: list[_Requirement],
        rules: list[str],
        notes: list[str],
    ) -> ShardingSolution:
        """Apply R2/R3 and cross-port consistency to assemble the verdict."""
        report = self.report

        # Per-port candidate = intersection of all footprints' allowed
        # (field, bit) sets (generalized R2: any subset of every key's
        # bits is valid sharding — including subnet prefixes).
        active: dict[int, set[tuple[str, int]]] = {}
        owners: dict[int, list[str]] = {}
        for requirement in requirements:
            for port, shapes in requirement.footprints.items():
                for shape in shapes:
                    allowed = {
                        (name, bit)
                        for name, bits in shape.items()
                        for bit in bits
                    }
                    if port in active:
                        if active[port] != allowed:
                            rules.append("R2")
                        active[port] &= allowed
                    else:
                        active[port] = set(allowed)
                    owners.setdefault(port, []).append(requirement.obj)

        for port, fields in active.items():
            if not fields:
                rules.append("R3")
                return ShardingSolution(
                    nf_name=report.nf_name,
                    verdict=Verdict.LOCKS,
                    explanation=[
                        f"port {port}: objects "
                        f"{sorted(set(owners.get(port, [])))} shard on "
                        "disjoint packet fields — no RSS configuration can "
                        "satisfy both (R3)"
                    ]
                    + notes,
                    rules_applied=rules,
                )

        # Cross-port fixpoint: active sets must be images of each other
        # under every pair map.
        pair_maps = [pm for req in requirements for pm in req.pair_maps]
        for _ in range(8):
            changed = False
            for pm in pair_maps:
                forward = pm.mapping()
                backward = {b: a for a, b in pm.field_map}
                side_a = active.get(pm.port_a)
                side_b = active.get(pm.port_b)
                if side_a is None or side_b is None:
                    continue
                if not {name for name, _ in side_a} <= set(forward):
                    return self._locks_for_pair(pm, rules, notes)
                if not {name for name, _ in side_b} <= set(backward):
                    return self._locks_for_pair(pm, rules, notes)
                image = {(forward[name], bit) for name, bit in side_a}
                if image != side_b:
                    narrowed = side_b & image
                    if not narrowed:
                        return self._locks_for_pair(pm, rules, notes)
                    active[pm.port_b] = narrowed
                    active[pm.port_a] = {
                        (backward[name], bit) for name, bit in narrowed
                    }
                    changed = True
            if not changed:
                break

        # Restrict pair maps to active fields and drop duplicates.
        final_pairs: list[PairMap] = []
        seen: set[tuple] = set()
        for pm in pair_maps:
            active_names_a = {name for name, _ in active.get(pm.port_a, set())}
            restricted = tuple(
                (a, b) for a, b in pm.field_map if a in active_names_a
            )
            if not restricted:
                continue
            signature = (pm.port_a, pm.port_b, restricted)
            if signature in seen:
                continue
            # Consistency between objects (incompatible maps -> locks).
            for other in final_pairs:
                if (other.port_a, other.port_b) == (pm.port_a, pm.port_b):
                    merged = dict(other.field_map)
                    for a, b in restricted:
                        if merged.get(a, b) != b:
                            return self._locks_for_pair(pm, rules, notes)
            seen.add(signature)
            final_pairs.append(PairMap(pm.port_a, pm.port_b, restricted))

        per_port: dict[int, tuple[str, ...]] = {}
        per_port_bits: dict[int, dict[str, frozenset[int]]] = {}
        for port, pairs in active.items():
            bits_by_field: dict[str, set[int]] = {}
            for name, bit in pairs:
                bits_by_field.setdefault(name, set()).add(bit)
            per_port[port] = tuple(
                sorted(bits_by_field, key=_FIELD_ORDER.get)
            )
            per_port_bits[port] = {
                name: frozenset(bits) for name, bits in bits_by_field.items()
            }
        return ShardingSolution(
            nf_name=report.nf_name,
            verdict=Verdict.SHARED_NOTHING,
            per_port=per_port,
            per_port_bits=per_port_bits,
            pairs=final_pairs,
            explanation=notes,
            rules_applied=sorted(set(rules)),
        )

    def _locks_for_pair(
        self, pm: PairMap, rules: list[str], notes: list[str]
    ) -> ShardingSolution:
        rules.append("R3")
        return ShardingSolution(
            nf_name=self.report.nf_name,
            verdict=Verdict.LOCKS,
            explanation=[
                f"incompatible cross-interface requirements between ports "
                f"{pm.port_a} and {pm.port_b} (R3)"
            ]
            + notes,
            rules_applied=rules,
        )
