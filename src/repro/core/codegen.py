"""The Code Generator (§3.6): build runnable parallel NFs.

The paper's code generator emits DPDK C; here it produces a
:class:`ParallelNF` — per-core state instances (with capacities divided
across cores, §4 *State sharding*), the RSS configuration installed on
every port, and the coordination strategy:

* ``SHARED_NOTHING`` — each core owns a full state shard; RSS guarantees
  packets needing the same state reach the same core.
* ``LOCKS`` — one shared state store guarded by the optimized per-core
  read/write lock (§3.6); RSS gets a random key over all fields.
* ``TM`` — one shared store accessed in hardware transactions (§6,
  Intel RTM baseline).

A C-like rendering of the generated program (mirroring Appendix A.1) is
available through :mod:`repro.core.emit_c`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.errors import SimulationError
from repro.core.sharding import ShardingSolution, Verdict
from repro.nf.api import NF
from repro.nf.packet import Packet
from repro.nf.runtime import ConcreteContext, PacketResult, StateStore
from repro.rs3.config import RssConfiguration

__all__ = ["Strategy", "LockPlan", "CoreInstance", "ParallelNF"]


class Strategy(enum.Enum):
    """How the generated implementation coordinates state."""

    SHARED_NOTHING = "shared-nothing"
    LOCKS = "locks"
    TM = "tm"

    @classmethod
    def default_for(cls, verdict: Verdict) -> "Strategy":
        if verdict is Verdict.LOCKS:
            return cls.LOCKS
        return cls.SHARED_NOTHING


@dataclass(frozen=True)
class LockPlan:
    """The lock assignment a LOCKS/TM implementation commits to (§3.6).

    ``locked`` names every stateful object guarded by a read/write lock
    (TM uses the same set as its abort-fallback locks); ``order`` is the
    single global acquisition order all cores follow, which is what makes
    the generated code deadlock-free.  Shared-nothing plans are empty.
    The parallelization-safety auditor (:mod:`repro.analysis`) checks both
    properties against the execution tree independently of this builder.
    """

    strategy: Strategy
    locked: frozenset[str]
    order: tuple[str, ...]

    @classmethod
    def build(cls, nf: NF, strategy: Strategy) -> "LockPlan":
        if strategy is Strategy.SHARED_NOTHING:
            return cls(strategy=strategy, locked=frozenset(), order=())
        # Read-only tables are replicated, never locked; everything else
        # gets one lock, acquired in declaration order on every core.
        names = tuple(
            decl.name for decl in nf.state() if not decl.read_only
        )
        return cls(strategy=strategy, locked=frozenset(names), order=names)

    def covers(self, obj: str) -> bool:
        return obj in self.locked

    def position(self, obj: str) -> int:
        """Rank of ``obj`` in the global acquisition order."""
        try:
            return self.order.index(obj)
        except ValueError:
            raise SimulationError(
                f"{obj!r} has no position in the lock acquisition order "
                f"(order covers: {', '.join(self.order) or 'nothing'})"
            ) from None

    def acquisition_sequence(self, objs: Iterable[str]) -> tuple[str, ...]:
        """The order in which a packet touching ``objs`` takes its locks.

        Each lock appears at most once (at its first position), even if a
        corrupted ``order`` names an object repeatedly — re-acquiring a
        held lock would self-deadlock.
        """
        needed = {obj for obj in objs if obj in self.locked}
        return tuple(
            obj for obj in dict.fromkeys(self.order) if obj in needed
        )


@dataclass
class CoreInstance:
    """One worker core: its context and counters."""

    core_id: int
    ctx: ConcreteContext
    packets: int = 0
    reads: int = 0
    writes: int = 0
    new_flows: int = 0

    def run(self, port: int, pkt: Packet) -> PacketResult:
        result = self.ctx.run(port, pkt)
        self.packets += 1
        # One pass over the ops instead of the two the reads/writes
        # properties would make — this is the per-packet hot path.
        writes = 0
        for op in result.ops:
            writes += op.write
        self.writes += writes
        self.reads += len(result.ops) - writes
        self.new_flows += int(result.new_flow)
        return result


@dataclass
class ParallelNF:
    """A generated parallel implementation, runnable in the simulator."""

    nf: NF
    n_cores: int
    strategy: Strategy
    solution: ShardingSolution
    rss: RssConfiguration
    cores: list[CoreInstance] = field(default_factory=list)
    shared_store: StateStore | None = None
    lock_plan: LockPlan = field(
        default_factory=lambda: LockPlan(
            strategy=Strategy.SHARED_NOTHING, locked=frozenset(), order=()
        )
    )
    #: Set by :func:`repro.scale.elastic.enable_elastic`.  Elastic mode
    #: tags every packet with its indirection-table bucket (so live
    #: migration knows which keys each bucket owns) and allows the active
    #: core count to change at runtime.  ``cores`` then holds the
    #: high-water set; only the first :attr:`active_cores` receive traffic.
    elastic: bool = False

    @property
    def active_cores(self) -> int:
        """Cores currently receiving traffic (= RSS queue count).

        Equal to :attr:`n_cores` for static plans; under elastic scaling
        it follows the indirection table as the controller grows/shrinks.
        """
        return self.rss.n_queues

    @classmethod
    def generate(
        cls,
        nf: NF,
        solution: ShardingSolution,
        rss: RssConfiguration,
        n_cores: int,
        strategy: Strategy | None = None,
    ) -> "ParallelNF":
        """Instantiate per-core (or shared) state and worker contexts."""
        if n_cores <= 0:
            raise SimulationError(f"n_cores must be positive: {n_cores}")
        if strategy is None:
            strategy = Strategy.default_for(solution.verdict)
        if (
            strategy is Strategy.SHARED_NOTHING
            and solution.verdict is Verdict.LOCKS
        ):
            raise SimulationError(
                f"{nf.name}: analysis ruled out shared-nothing "
                f"({'; '.join(solution.explanation[:1])})"
            )

        decls = nf.state()
        shared_store: StateStore | None = None
        cores: list[CoreInstance] = []
        if strategy is Strategy.SHARED_NOTHING:
            for core_id in range(n_cores):
                store = StateStore(decls, scale=n_cores)
                ctx = ConcreteContext(nf, store)
                nf.setup(ctx)
                cores.append(CoreInstance(core_id=core_id, ctx=ctx))
        else:
            shared_store = StateStore(decls, scale=1)
            for core_id in range(n_cores):
                ctx = ConcreteContext(nf, shared_store)
                if core_id == 0:
                    nf.setup(ctx)
                cores.append(CoreInstance(core_id=core_id, ctx=ctx))
        return cls(
            nf=nf,
            n_cores=n_cores,
            strategy=strategy,
            solution=solution,
            rss=rss,
            cores=cores,
            shared_store=shared_store,
            lock_plan=LockPlan.build(nf, strategy),
        )

    # -------------------------------------------------------------- #
    # Functional execution
    # -------------------------------------------------------------- #
    def core_for(self, port: int, pkt: Packet) -> int:
        return self.rss.core_for(port, pkt)

    def process(self, port: int, pkt: Packet) -> tuple[int, PacketResult]:
        """Steer one packet through RSS and process it on its core."""
        if self.elastic:
            # Resolve the table slot explicitly (not just the queue) so
            # the core's context can bucket-tag the state this packet
            # creates — the bookkeeping live migration depends on.
            config = self.rss.port_config(port)
            table = config.table
            slot = config.hash(pkt) & (table.size - 1)
            core_id = int(table.entries[slot])
            core = self.cores[core_id]
            core.ctx.current_bucket = slot
            return core_id, core.run(port, pkt)
        core_id = self.core_for(port, pkt)
        return core_id, self.cores[core_id].run(port, pkt)

    def process_trace(
        self, trace: list[tuple[int, Packet]]
    ) -> list[tuple[int, PacketResult]]:
        return [self.process(port, pkt) for port, pkt in trace]

    # -------------------------------------------------------------- #
    # Introspection used by the performance model
    # -------------------------------------------------------------- #
    def core_shares(self, trace: list[tuple[int, Packet]]) -> np.ndarray:
        """Fraction of ``trace`` RSS steers to each core (no processing)."""
        counts = np.zeros(self.n_cores, dtype=np.float64)
        for port, pkt in trace:
            counts[self.core_for(port, pkt)] += 1.0
        total = counts.sum()
        return counts / total if total else counts

    def write_fraction(self) -> float:
        """Observed fraction of packets that performed a state write."""
        packets = sum(core.packets for core in self.cores)
        if not packets:
            return 0.0
        writers = sum(core.new_flows for core in self.cores)
        return writers / packets

    def reset_stats(self) -> None:
        for core in self.cores:
            core.packets = core.reads = core.writes = core.new_flows = 0
