"""Compile a sharding solution into RS3 key requirements (§3.5).

Bridges the Constraints Generator and RS3: picks a NIC-supported field-set
option per port (§5 *RSS limitations* — the option may include fields the
sharding must ignore, which become cancellations), and turns every pair
map into bit-level field mappings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NicCapabilityError, RssUnsatisfiableError
from repro.core.sharding import ShardingSolution, Verdict
from repro.nf.api import NF
from repro.rs3.fields import FieldSetOption, IPV4_TCP, NicModel, RssField
from repro.rs3.solver import CancelBits, CancelField, MapFields

__all__ = ["RssCompilation", "compile_rss"]

_FIELD_BY_NAME = {f.value: f for f in RssField}


@dataclass
class RssCompilation:
    """Everything RS3 needs to search for keys."""

    port_options: dict[int, FieldSetOption]
    requirements: list["CancelField | CancelBits | MapFields"] = field(default_factory=list)
    #: ports whose key is entirely unconstrained (pure load balancing)
    free_ports: list[int] = field(default_factory=list)


def compile_rss(
    nf: NF, solution: ShardingSolution, nic: NicModel
) -> RssCompilation:
    """Translate a sharding solution into RS3 requirements.

    For :data:`Verdict.LOCKS` and :data:`Verdict.LOAD_BALANCE` there are no
    requirements: every port gets a random key over all available fields
    (§3.6, lock-based generation).
    """
    ports = nf.port_ids()
    if solution.verdict is not Verdict.SHARED_NOTHING or not solution.per_port:
        return RssCompilation(
            port_options={port: IPV4_TCP for port in ports},
            requirements=[],
            free_ports=list(ports),
        )

    port_options: dict[int, FieldSetOption] = {}
    requirements: list["CancelField | CancelBits | MapFields"] = []
    free_ports: list[int] = []

    for port in ports:
        active_names = solution.per_port.get(port)
        if not active_names:
            port_options[port] = IPV4_TCP
            free_ports.append(port)
            continue
        try:
            active = frozenset(_FIELD_BY_NAME[name] for name in active_names)
        except KeyError as exc:
            raise RssUnsatisfiableError(
                f"{nf.name}: field {exc} is not RSS-hashable"
            ) from exc
        try:
            option = nic.best_option_for(active)
        except NicCapabilityError as exc:
            raise RssUnsatisfiableError(str(exc)) from exc
        port_options[port] = option
        port_bits = solution.per_port_bits.get(port, {})
        for fld in option.fields:
            if fld not in active:
                requirements.append(CancelField(port, fld))
                continue
            # Partial bit sets (prefix/subnet sharding): cancel the bits
            # the sharding must not depend on.
            wanted = port_bits.get(fld.packet_field)
            full = frozenset(range(fld.width))
            if wanted is not None and wanted != full:
                requirements.append(CancelBits(port, fld, full - wanted))

    for pair in solution.pairs:
        for name_a, name_b in pair.field_map:
            field_a = _FIELD_BY_NAME.get(name_a)
            field_b = _FIELD_BY_NAME.get(name_b)
            if field_a is None or field_b is None:
                raise RssUnsatisfiableError(
                    f"{nf.name}: pair map uses non-RSS fields "
                    f"{name_a}->{name_b}"
                )
            if pair.port_a == pair.port_b and field_a == field_b:
                continue  # identity: trivially satisfied
            requirements.append(
                MapFields(pair.port_a, field_a, pair.port_b, field_b)
            )

    return RssCompilation(
        port_options=port_options,
        requirements=requirements,
        free_ports=free_ports,
    )
