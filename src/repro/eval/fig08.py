"""Figure 8: parallel NOP throughput vs packet size (16 cores).

Expected shape: 64 B packets hit the PCIe 3.0 x16 ceiling near ~90 Mpps
(~45-47 Gbps); from ~256 B upward the 100 Gbps line rate is reached; the
Internet mix also achieves line rate.
"""

from __future__ import annotations

from repro.core import Strategy
from repro.eval.runner import Experiment, Series
from repro.hw.cpu import profile_for
from repro.nf.nfs import Nop
from repro.sim.perf import PerformanceModel, Workload
from repro.traffic.generator import INTERNET_MIX

__all__ = ["run", "PACKET_SIZES"]

PACKET_SIZES = (64, 128, 256, 512, 1024, 1500)
N_CORES = 16
N_FLOWS = 40_000


def run(fast: bool = False) -> Experiment:
    profile = profile_for(Nop())
    model = PerformanceModel()
    labels = [str(size) for size in PACKET_SIZES] + ["internet"]
    experiment = Experiment(
        name="fig8",
        title="NOP on 16 cores vs packet size",
        x_label="pkt size [B]",
        x_values=labels,
        y_label="Gbps / Mpps",
    )
    avg_mix = sum(size * weight for size, weight in INTERNET_MIX)
    sizes = list(PACKET_SIZES) + [int(round(avg_mix))]
    gbps, mpps = [], []
    for size in sizes:
        result = model.throughput(
            profile,
            Strategy.SHARED_NOTHING,
            N_CORES,
            Workload(pkt_size=size, n_flows=N_FLOWS),
        )
        gbps.append(result.gbps)
        mpps.append(result.mpps)
    experiment.add(Series(label="Gbps", values=gbps))
    experiment.add(Series(label="Mpps", values=mpps))
    experiment.notes.append(
        "64B packets are PCIe-bound (~91 Mpps); larger sizes reach the "
        "100G line rate — the Figure 8 bottleneck structure"
    )
    return experiment


if __name__ == "__main__":
    print(run().render())
