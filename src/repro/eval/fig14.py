"""Figure 14: Figure 10 repeated with Zipfian traffic and balanced tables.

Expected: the same relative ordering as Figure 10 — shared-nothing best,
locks second, TM unreliable — but shared-nothing scaling is no longer
always monotonic: under Zipf a single elephant flow can bottleneck one
core.  State-intensive NFs (notably the CL) suffer the most relative to
their uniform-traffic results.
"""

from __future__ import annotations

import numpy as np

from repro.core import Maestro, Strategy, Verdict
from repro.eval.runner import CORE_COUNTS, FAST_CORE_COUNTS, Experiment, Series
from repro.eval.skew import flow_core_shares
from repro.hw.cpu import profile_for
from repro.nf.nfs import ALL_NFS
from repro.sim.perf import PerformanceModel, Workload
from repro.traffic import TrafficGenerator, paper_zipf_weights

__all__ = ["run"]

N_FLOWS = 1000


def run(fast: bool = False) -> Experiment:
    cores = list(FAST_CORE_COUNTS if fast else CORE_COUNTS)
    experiment = Experiment(
        name="fig14",
        title="Parallel NF scalability, Zipfian read-heavy 64B packets "
        "(balanced tables)",
        x_label="cores",
        x_values=cores,
        y_label="throughput [Mpps]",
    )
    model = PerformanceModel()
    generator = TrafficGenerator(seed=14)
    flows = generator.make_flows(N_FLOWS)
    zipf = paper_zipf_weights(N_FLOWS)
    names = ["fw", "nat", "cl", "lb"] if fast else list(ALL_NFS)

    for name in names:
        nf = ALL_NFS[name]()
        profile = profile_for(nf)
        maestro = Maestro(seed=14)
        result = maestro.analyze(nf)
        strategies = [Strategy.LOCKS, Strategy.TM]
        if result.solution.verdict is not Verdict.LOCKS:
            strategies.insert(0, Strategy.SHARED_NOTHING)
        # Measure skewed per-core shares through the actual generated key
        # on the NF's benchmark ingress port, with a balanced table (§4).
        port = nf.benchmark_traffic.get("forward_port", 0)
        key = result.keys[port]
        option = result.compilation.port_options[port]
        for strategy in strategies:
            values = []
            for n_cores in cores:
                shares = flow_core_shares(
                    key, option, flows, zipf, n_cores, balanced=True
                )
                workload = Workload(
                    pkt_size=64,
                    n_flows=N_FLOWS,
                    zipf_weights=zipf,
                    core_shares=shares,
                )
                values.append(
                    model.throughput(profile, strategy, n_cores, workload).mpps
                )
            experiment.add(Series(label=f"{name}/{strategy.value}", values=values))
    experiment.notes.append(
        "Zipf (top-48 flows = 80% of packets); indirection tables "
        "statically balanced; elephant flows bound the max per-core share"
    )
    return experiment


if __name__ == "__main__":
    print(run().render())
