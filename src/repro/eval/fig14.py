"""Figure 14: Figure 10 repeated with Zipfian traffic and balanced tables.

Expected: the same relative ordering as Figure 10 — shared-nothing best,
locks second, TM unreliable — but shared-nothing scaling is no longer
always monotonic: under Zipf a single elephant flow can bottleneck one
core.  State-intensive NFs (notably the CL) suffer the most relative to
their uniform-traffic results.
"""

from __future__ import annotations

from repro.core import Maestro, Strategy, Verdict
from repro.eval.runner import (
    CORE_COUNTS,
    FAST_CORE_COUNTS,
    Experiment,
    ParallelSweepRunner,
    Series,
)
from repro.eval.skew import flow_core_shares
from repro.hw.cpu import profile_for
from repro.nf.nfs import ALL_NFS
from repro.sim.perf import PerformanceModel, Workload
from repro.traffic import TrafficGenerator, paper_zipf_weights

__all__ = ["run"]

N_FLOWS = 1000


def _sweep_cell(cell: tuple[str, tuple[int, ...]]) -> list[Series]:
    """All strategy series of one NF under Zipf — one cell per NF.

    Pure function of its arguments: flows and weights come from
    ``TrafficGenerator(seed=14)``/``paper_zipf_weights`` and the RSS keys
    from ``Maestro(seed=14)``, so the cell is process-independent.
    """
    name, cores = cell
    model = PerformanceModel()
    flows = TrafficGenerator(seed=14).make_flows(N_FLOWS)
    zipf = paper_zipf_weights(N_FLOWS)
    nf = ALL_NFS[name]()
    profile = profile_for(nf)
    maestro = Maestro(seed=14)
    result = maestro.analyze(nf)
    strategies = [Strategy.LOCKS, Strategy.TM]
    if result.solution.verdict is not Verdict.LOCKS:
        strategies.insert(0, Strategy.SHARED_NOTHING)
    # Measure skewed per-core shares through the actual generated key
    # on the NF's benchmark ingress port, with a balanced table (§4).
    port = nf.benchmark_traffic.get("forward_port", 0)
    key = result.keys[port]
    option = result.compilation.port_options[port]
    series_group: list[Series] = []
    for strategy in strategies:
        values = []
        for n_cores in cores:
            shares = flow_core_shares(
                key, option, flows, zipf, n_cores, balanced=True
            )
            workload = Workload(
                pkt_size=64,
                n_flows=N_FLOWS,
                zipf_weights=zipf,
                core_shares=shares,
            )
            values.append(
                model.throughput(profile, strategy, n_cores, workload).mpps
            )
        series_group.append(Series(label=f"{name}/{strategy.value}", values=values))
    return series_group


def run(fast: bool = False, jobs: int = 1) -> Experiment:
    cores = tuple(FAST_CORE_COUNTS if fast else CORE_COUNTS)
    experiment = Experiment(
        name="fig14",
        title="Parallel NF scalability, Zipfian read-heavy 64B packets "
        "(balanced tables)",
        x_label="cores",
        x_values=list(cores),
        y_label="throughput [Mpps]",
    )
    names = ["fw", "nat", "cl", "lb"] if fast else list(ALL_NFS)
    cells = [(name, cores) for name in names]
    for series_group in ParallelSweepRunner(jobs).map(_sweep_cell, cells):
        for series in series_group:
            experiment.add(series)
    experiment.notes.append(
        "Zipf (top-48 flows = 80% of packets); indirection tables "
        "statically balanced; elephant flows bound the max per-core share"
    )
    return experiment


if __name__ == "__main__":
    print(run().render())
