"""CLI: ``python -m repro.eval <experiment> [--fast]``."""

from __future__ import annotations

import argparse
import inspect
import sys

from repro import obs
from repro.eval import EXPERIMENTS
from repro.eval.runner import capture_telemetry_report, trace_to


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Reproduce the Maestro paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure/table to reproduce",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smaller sweeps for a quick pass",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="fan independent sweep cells over N worker processes "
        "(figures 5/10/14; results are identical to a sequential run)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a JSONL observability trace of the run "
        "(inspect with `python -m repro.obs report PATH`)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="after the experiments, capture per-core telemetry for a "
        "uniform and a zipf run (skew + model-drift detectors) and "
        "write the report JSON to PATH",
    )
    parser.add_argument(
        "--lint",
        action="store_true",
        help="lint every bundled NF first and refuse to run experiments "
        "over NFs the analyzer rejects",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="run the race sanitizer over every bundled NF first and "
        "refuse to run experiments if any parallel plan races",
    )
    parser.add_argument(
        "--chain",
        action="store_true",
        help="analyze every bundled example chain first and refuse to "
        "run experiments if any chain has error-severity diagnostics",
    )
    parser.add_argument(
        "--certify",
        action="store_true",
        help="run the plan certifier (translation validation of lowered "
        "kernels, MAE3xx) over every bundled NF first and refuse to run "
        "experiments if any plan fails certification",
    )
    args = parser.parse_args(argv)
    if args.lint:
        from repro.analysis import lint_nf, render_text
        from repro.nf.nfs import ALL_NFS

        findings = []
        for nf_cls in ALL_NFS.values():
            findings.extend(lint_nf(nf_cls()))
        if any(d.is_error for d in findings):
            print(render_text(findings), file=sys.stderr)
            print("error: lint failed; not running experiments", file=sys.stderr)
            return 1
    if args.sanitize:
        from repro.analysis import render_text, sanitize_nf
        from repro.nf.nfs import ALL_NFS

        racy = []
        for nf_cls in ALL_NFS.values():
            report = sanitize_nf(nf_cls())
            print(report.describe(), file=sys.stderr)
            if not report.clean:
                racy.extend(report.diagnostics)
        if racy:
            print(render_text(racy), file=sys.stderr)
            print(
                "error: race sanitizer failed; not running experiments",
                file=sys.stderr,
            )
            return 1
    if args.certify:
        from repro.analysis import certify_nf, render_text
        from repro.nf.nfs import ALL_NFS

        uncertified = []
        for nf_cls in ALL_NFS.values():
            report = certify_nf(nf_cls())
            print(report.describe(), file=sys.stderr)
            if not report.clean:
                uncertified.extend(report.diagnostics)
        if uncertified:
            print(render_text(uncertified), file=sys.stderr)
            print(
                "error: plan certification failed; not running experiments",
                file=sys.stderr,
            )
            return 1
    if args.chain:
        from pathlib import Path

        from repro.analysis import analyze_chain, render_text
        from repro.chain import load_chain

        candidates = [
            Path(__file__).resolve().parents[3] / "examples" / "chains",
            Path.cwd() / "examples" / "chains",
        ]
        root = next((p for p in candidates if p.is_dir()), None)
        chain_errors = []
        for path in sorted(root.glob("*.chain")) if root else []:
            report = analyze_chain(load_chain(path))
            print(report.describe(), file=sys.stderr)
            chain_errors.extend(d for d in report.diagnostics if d.is_error)
        if chain_errors:
            print(render_text(chain_errors), file=sys.stderr)
            print(
                "error: chain analysis failed; not running experiments",
                file=sys.stderr,
            )
            return 1
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    try:
        with trace_to(args.trace):
            for name in names:
                run = EXPERIMENTS[name]
                kwargs = {"fast": args.fast}
                # Only the cell-parallel figures take a jobs parameter.
                if "jobs" in inspect.signature(run).parameters:
                    kwargs["jobs"] = args.jobs
                with obs.span("eval.experiment", experiment=name):
                    print(run(**kwargs).render())
                print()
    except OSError as exc:
        print(f"error: cannot write trace: {exc}", file=sys.stderr)
        return 1
    if args.trace:
        print(f"trace written to {args.trace}", file=sys.stderr)
    if args.telemetry:
        import json

        report = capture_telemetry_report(fast=args.fast)
        try:
            with open(args.telemetry, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"error: cannot write telemetry report: {exc}", file=sys.stderr)
            return 1
        print(f"telemetry report written to {args.telemetry}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
