"""CLI: ``python -m repro.eval <experiment> [--fast]``."""

from __future__ import annotations

import argparse
import sys

from repro.eval import EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.eval",
        description="Reproduce the Maestro paper's figures and tables.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which figure/table to reproduce",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="smaller sweeps for a quick pass",
    )
    args = parser.parse_args(argv)
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        print(EXPERIMENTS[name](fast=args.fast).render())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
