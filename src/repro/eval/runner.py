"""Common plumbing for the experiment harness.

Every figure module exposes ``run(fast=False) -> Experiment``; the CLI
(`python -m repro.eval <figure>`) prints the resulting tables, which hold
exactly the rows/series the corresponding paper figure plots.
"""

from __future__ import annotations

import multiprocessing
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence, TypeVar

from repro import obs

__all__ = [
    "Series",
    "Experiment",
    "CORE_COUNTS",
    "ParallelSweepRunner",
    "format_table",
    "trace_to",
    "capture_telemetry_report",
]

_Cell = TypeVar("_Cell")
_Result = TypeVar("_Result")

#: Core counts swept in the scalability studies (§6.2: 1..16 cores).
CORE_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 12, 16)
FAST_CORE_COUNTS: tuple[int, ...] = (1, 4, 16)


@dataclass
class Series:
    """One plotted line: a label and y-values over the x-axis."""

    label: str
    values: list[float]
    low: list[float] | None = None  # error-bar minima
    high: list[float] | None = None  # error-bar maxima


@dataclass
class Experiment:
    """One reproduced figure/table."""

    name: str
    title: str
    x_label: str
    x_values: list
    y_label: str
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, series: Series) -> None:
        self.series.append(series)

    def render(self) -> str:
        lines = [f"== {self.name}: {self.title} ==", f"y: {self.y_label}"]
        header = [self.x_label] + [str(x) for x in self.x_values]
        rows = []
        for s in self.series:
            def fmt(i: int) -> str:
                value = f"{s.values[i]:.2f}"
                if s.low is not None and s.high is not None:
                    value += f" [{s.low[i]:.2f},{s.high[i]:.2f}]"
                return value

            rows.append([s.label] + [fmt(i) for i in range(len(s.values))])
        lines.append(format_table(header, rows))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Plain-text aligned table."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(str(c).rjust(widths[i]) for i, c in enumerate(cells))

    out = [line(header), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


class ParallelSweepRunner:
    """Fan independent figure-sweep cells over worker processes.

    A *cell* is one independent unit of a figure sweep (one RSS key of
    Figure 5, one NF of Figures 10/14) expressed as a picklable argument
    to a module-level function.  Cell functions must be pure functions of
    their arguments: every figure regenerates its inputs inside the cell
    from fixed seeds (``TrafficGenerator(seed=...)``, ``Maestro(seed=...)``),
    so a cell computes the same numbers in any process and the merged
    figure is identical to a sequential run — ``--jobs N`` is purely a
    wall-clock knob.

    Results come back in submission order (``Pool.map`` semantics), which
    is what makes the merge deterministic.  With ``jobs <= 1`` (the
    default) everything runs in-process — no pool, no pickling — so the
    sequential path stays exactly the seed behaviour.

    Observability: the parent emits ``sweep.workers`` and ``sweep.cells``
    counters; spans/counters emitted *inside* worker processes stay in
    those processes (collectors are not shared across forks).
    """

    def __init__(self, jobs: int | None = None) -> None:
        self.jobs = max(1, int(jobs or 1))

    def map(
        self, fn: Callable[[_Cell], _Result], cells: Sequence[_Cell]
    ) -> list[_Result]:
        """``[fn(cell) for cell in cells]``, possibly across processes."""
        cells = list(cells)
        n_workers = min(self.jobs, len(cells))
        with obs.span(
            "eval.sweep", n_cells=len(cells), n_workers=max(n_workers, 1)
        ):
            obs.counter("sweep.cells", len(cells))
            if n_workers <= 1:
                return [fn(cell) for cell in cells]
            obs.counter("sweep.workers", n_workers)
            with multiprocessing.get_context().Pool(processes=n_workers) as pool:
                return pool.map(fn, cells)


def capture_telemetry_report(
    *,
    fast: bool = False,
    n_cores: int = 8,
    seed: int = 3,
    series_dir: str | None = None,
) -> dict:
    """Capture per-core telemetry for a uniform and a zipf-skewed run.

    The telemetry demonstrator behind ``python -m repro.eval ...
    --telemetry out.json``: pushes both workloads through the same
    parallelized Firewall with a :class:`~repro.obs.TelemetrySink`
    attached, then runs the detectors — skew should fire on the zipf
    run and stay quiet on the uniform one, and the perf model's
    uniform-share prior should drift against zipf telemetry.  Returns a
    JSON-able dict; ``series_dir`` additionally writes one
    ``telemetry-<label>.jsonl`` series file per run (renderable with
    ``python -m repro.obs top``).
    """
    # Lazy imports: the eval harness must stay importable without
    # dragging the whole simulator in at module load.
    from repro.core import Maestro
    from repro.nf.nfs import Firewall
    from repro.sim.functional import run_functional
    from repro.sim.perf import PerformanceModel, Workload
    from repro.traffic.generator import TrafficGenerator

    n_packets = 4_000 if fast else 20_000
    n_flows = 256 if fast else 2_048
    window_packets = 512
    model = PerformanceModel()
    report: dict = {
        "fast": fast,
        "n_cores": n_cores,
        "n_packets": n_packets,
        "n_flows": n_flows,
        "window_packets": window_packets,
        "workloads": {},
    }
    for label in ("uniform", "zipf"):
        gen = TrafficGenerator(seed=seed)
        make_trace = gen.uniform_trace if label == "uniform" else gen.zipf_trace
        trace, _flows = make_trace(
            n_packets, n_flows, reply_port=1, reply_fraction=0.3
        )
        parallel = Maestro(seed=7).parallelize(Firewall(), n_cores=n_cores)
        sink = obs.TelemetrySink(window_packets=window_packets, label=label)
        with obs.telemetry(sink):
            run = run_functional(parallel, trace)
        skew = obs.detect_skew(sink)
        drift = model.drift_report(
            parallel, Workload(n_flows=n_flows), run
        )
        report["workloads"][label] = {
            "telemetry": sink.summary(),
            "skew": skew.to_dict(),
            "drift": drift.to_dict(),
        }
        if series_dir is not None:
            import os

            obs.write_telemetry(
                os.path.join(series_dir, f"telemetry-{label}.jsonl"), sink
            )
    return report


@contextmanager
def trace_to(path: str | None) -> Iterator["obs.JsonlCollector | None"]:
    """Export every trace event in the block to a JSONL file.

    The hook behind ``python -m repro.eval <figure> --trace out.jsonl``
    and the benchmark harness: attaches a :class:`repro.obs.JsonlCollector`
    for the duration, so all pipeline spans/counters emitted while
    regenerating a figure land in a machine-readable trace.  A ``None``
    path makes the whole thing a no-op.
    """
    if path is None:
        yield None
        return
    with obs.JsonlCollector(path) as collector:
        with obs.attached(collector):
            yield collector
