"""§6.4 latency measurement: 1000 probes under 1 Gbps background traffic.

Expected: ~12 +/- 2 us for CL, ~11 +/- 1 us for every other NF, and no
noticeable difference between sequential and any parallel strategy.
"""

from __future__ import annotations

import numpy as np

from repro.core import Strategy
from repro.eval.runner import Experiment, Series
from repro.hw.cpu import profile_for
from repro.nf.nfs import ALL_NFS
from repro.sim.latency import latency_probe

__all__ = ["run"]


def run(fast: bool = False) -> Experiment:
    names = list(ALL_NFS)
    n_probes = 100 if fast else 1000
    experiment = Experiment(
        name="latency",
        title="Average latency under 1 Gbps background traffic",
        x_label="nf",
        x_values=names,
        y_label="latency [us] (mean; min/max = mean -/+ std)",
    )
    rng = np.random.default_rng(64)
    for strategy in (Strategy.SHARED_NOTHING, Strategy.LOCKS, Strategy.TM):
        means, lows, highs = [], [], []
        for name in names:
            profile = profile_for(ALL_NFS[name]())
            mean, std = latency_probe(
                profile, strategy, 16, n_probes=n_probes, rng=rng
            )
            means.append(mean)
            lows.append(mean - std)
            highs.append(mean + std)
        experiment.add(
            Series(label=strategy.value, values=means, low=lows, high=highs)
        )
    experiment.notes.append(
        "paper: 12+/-2us for CL, 11+/-1us for the rest, independent of "
        "parallelization strategy"
    )
    return experiment


if __name__ == "__main__":
    print(run().render())
