"""Figure 9: churn study of the parallel firewall.

Three panels (shared-nothing / lock-based / TM), each: throughput vs cores
for increasing churn.  Expected shape:

* shared-nothing: essentially flat in churn up to ~100M fpm;
* locks: fine at low churn, collapse starting around ~100k fpm (64 B
  packets), abysmal under heavy churn;
* TM: degrades even earlier and harder.

Churn is applied as *relative churn* (flows/Gbit, §6.3) so the
equilibrium is rate-independent; each cell also reports the resulting
*absolute* churn (fpm) computed from the achieved rate, exactly as the
paper derives it.
"""

from __future__ import annotations

from repro.core import Strategy
from repro.eval.runner import CORE_COUNTS, FAST_CORE_COUNTS, Experiment, Series
from repro.hw.cpu import profile_for
from repro.nf.nfs import Firewall
from repro.sim.perf import PerformanceModel, Workload
from repro.traffic import absolute_churn_fpm

__all__ = ["run", "CHURN_LEVELS_FPG"]

#: Relative churn levels (flows/Gbit).  At the achieved equilibrium rates
#: these span "no churn" through the paper's collapse region (~100k fpm)
#: up to heavy churn (tens of M fpm).
CHURN_LEVELS_FPG = (0.0, 20.0, 200.0, 2_000.0, 20_000.0)
N_FLOWS = 65_536


def run(fast: bool = False) -> Experiment:
    cores = list(FAST_CORE_COUNTS if fast else CORE_COUNTS)
    profile = profile_for(Firewall())
    model = PerformanceModel()
    experiment = Experiment(
        name="fig9",
        title="FW churn study (shared-nothing / locks / TM)",
        x_label="cores",
        x_values=cores,
        y_label="throughput [Mpps]",
    )
    for strategy in (Strategy.SHARED_NOTHING, Strategy.LOCKS, Strategy.TM):
        for churn in CHURN_LEVELS_FPG:
            values = []
            fpm_at_max = 0.0
            for n_cores in cores:
                workload = Workload(
                    pkt_size=64, n_flows=N_FLOWS, relative_churn_fpg=churn
                )
                result = model.throughput(profile, strategy, n_cores, workload)
                values.append(result.mpps)
                fpm_at_max = absolute_churn_fpm(churn, result.gbps)
            label = f"{strategy.value} @ {churn:g} f/Gb (~{fpm_at_max:.3g} fpm)"
            experiment.add(Series(label=label, values=values))
    experiment.notes.append(
        "absolute churn (fpm) shown for the 16-core equilibrium rate; "
        "shared-nothing stays flat, locks collapse as churn approaches "
        "the 100k-fpm region, TM collapses hardest"
    )
    return experiment


if __name__ == "__main__":
    print(run().render())
