"""Per-core load measurement under traffic skew (Figures 5 and 14).

Computes where the *actual* generated RSS keys and indirection tables send
each flow: per-flow Toeplitz hashes map flow popularity onto indirection-
table entries, whose per-queue aggregation gives the core shares the
throughput model consumes.  Balancing applies the static RSS++ rebalancer
(§4) to those measured entry loads.
"""

from __future__ import annotations

import numpy as np

from repro.nf.flow import FiveTuple
from repro.rs3.fields import FieldSetOption
from repro.rs3.indirection import IndirectionTable
from repro.rs3.toeplitz import hash_packets_batch

__all__ = ["flow_core_shares"]


def flow_core_shares(
    key: bytes,
    option: FieldSetOption,
    flows: list[FiveTuple],
    weights: np.ndarray | None,
    n_cores: int,
    *,
    reta_size: int = 512,
    balanced: bool = False,
) -> np.ndarray:
    """Fraction of traffic each core receives for this key/table.

    ``weights`` is the per-flow packet popularity (None = uniform).
    """
    if weights is None:
        weights = np.full(len(flows), 1.0 / len(flows))
    entry_loads = np.zeros(reta_size, dtype=np.float64)
    if flows:
        # One batched Toeplitz pass over every flow's representative
        # packet, scattered onto table entries by popularity weight.
        hashes = hash_packets_batch(key, [flow.packet() for flow in flows], option)
        slots = hashes.astype(np.int64) & (reta_size - 1)
        np.add.at(entry_loads, slots, np.asarray(weights, dtype=np.float64))
    table = IndirectionTable(n_cores, size=reta_size)
    if balanced:
        table.balance(entry_loads)
    shares = table.queue_loads(entry_loads)
    total = shares.sum()
    return shares / total if total else shares
