"""Figure 5: shared-nothing firewall under uniform vs Zipfian traffic,
with and without balanced indirection tables.

Paper setup: 50k packets, 1k flows, 48 of which carry 80% of the traffic;
RSS configured with five different random keys; error bars are min/max
over the keys.  Expected shape: uniform traffic scales cleanly; Zipfian
skews cores and loses throughput; balancing the indirection table recovers
much of the loss; with a single core Zipf is *faster* than uniform thanks
to cache locality on the hot flows.

The sweep is cell-parallel: one cell per (traffic config, RSS key), each
regenerating its inputs from fixed seeds, so ``--jobs N`` changes only
wall-clock time (see :class:`repro.eval.runner.ParallelSweepRunner`).
"""

from __future__ import annotations

import numpy as np

from repro.core import Maestro, Strategy
from repro.eval.runner import (
    CORE_COUNTS,
    FAST_CORE_COUNTS,
    Experiment,
    ParallelSweepRunner,
    Series,
)
from repro.eval.skew import flow_core_shares
from repro.hw.cpu import profile_for
from repro.nf.nfs import Firewall
from repro.sim.perf import PerformanceModel, Workload
from repro.traffic import TrafficGenerator, paper_zipf_weights

__all__ = ["run"]

N_FLOWS = 1000
N_KEYS = 5

#: (label, zipf traffic?, balanced tables?) — the three plotted series.
CONFIGS: tuple[tuple[str, bool, bool], ...] = (
    ("uniform", False, False),
    ("zipf unbalanced", True, False),
    ("zipf balanced", True, True),
)


def _sweep_cell(cell: tuple[str, bool, bool, int, tuple[int, ...]]) -> list[float]:
    """Throughput row of one (config, RSS key) cell over the core sweep.

    Pure function of its arguments: flows, weights, and the RSS key are
    all regenerated from fixed seeds, so the cell computes identical
    numbers in any process.
    """
    _, use_zipf, balanced, key_index, cores = cell
    profile = profile_for(Firewall())
    model = PerformanceModel()
    flows = TrafficGenerator(seed=5).make_flows(N_FLOWS)
    zipf = paper_zipf_weights(N_FLOWS)
    weights = zipf if use_zipf else None

    maestro = Maestro(seed=100 + key_index)
    result = maestro.analyze(Firewall())
    key = result.keys[0]
    option = result.compilation.port_options[0]
    row: list[float] = []
    for n_cores in cores:
        shares = flow_core_shares(
            key, option, flows, weights, n_cores, balanced=balanced
        )
        workload = Workload(
            pkt_size=64,
            n_flows=N_FLOWS,
            zipf_weights=zipf if use_zipf else None,
            core_shares=shares,
        )
        throughput = model.throughput(
            profile, Strategy.SHARED_NOTHING, n_cores, workload
        )
        row.append(throughput.mpps)
    return row


def run(fast: bool = False, jobs: int = 1) -> Experiment:
    cores = tuple(FAST_CORE_COUNTS if fast else CORE_COUNTS)
    n_keys = 2 if fast else N_KEYS

    experiment = Experiment(
        name="fig5",
        title="Shared-nothing FW under uniform and Zipfian traffic",
        x_label="cores",
        x_values=list(cores),
        y_label="throughput [Mpps]",
    )

    cells = [
        (label, use_zipf, balanced, key_index, cores)
        for label, use_zipf, balanced in CONFIGS
        for key_index in range(n_keys)
    ]
    rows = ParallelSweepRunner(jobs).map(_sweep_cell, cells)
    for c, (label, _, _) in enumerate(CONFIGS):
        per_key = np.array(rows[c * n_keys : (c + 1) * n_keys])
        experiment.add(
            Series(
                label=label,
                values=per_key.mean(axis=0).tolist(),
                low=per_key.min(axis=0).tolist(),
                high=per_key.max(axis=0).tolist(),
            )
        )

    single_core = {s.label: s.values[0] for s in experiment.series}
    if single_core.get("zipf balanced", 0) > single_core.get("uniform", 0):
        experiment.notes.append(
            "single-core Zipf beats uniform (hot flows cache better), as in "
            "the paper"
        )
    experiment.notes.append(
        f"{N_FLOWS} flows, top-48 flows carry 80% of packets; "
        f"{n_keys} random keys; error bars = min/max over keys"
    )
    return experiment


if __name__ == "__main__":
    print(run().render())
