"""Figure 10: scalability of all 8 NFs under the three parallelization
approaches, with uniformly distributed, read-heavy, small packets.

Expected shape: shared-nothing (where feasible — not for DBridge/LB)
scales linearly to the PCIe bottleneck and plateaus; locks scale well but
slower, not always reaching PCIe by 16 cores; the Policer's locks collapse
(every packet writes); TM works for simple NFs but collapses on complex
ones; PSD gains ~19x at 16 cores from the compound cache effect.
"""

from __future__ import annotations

from repro.core import Maestro, Strategy, Verdict
from repro.eval.runner import (
    CORE_COUNTS,
    FAST_CORE_COUNTS,
    Experiment,
    ParallelSweepRunner,
    Series,
)
from repro.hw.cpu import profile_for
from repro.nf.nfs import ALL_NFS
from repro.sim.perf import PerformanceModel, Workload

__all__ = ["run", "scalability_series"]

N_FLOWS = 40_000


def scalability_series(
    nf_name: str,
    cores: list[int],
    workload: Workload,
    *,
    model: PerformanceModel | None = None,
) -> list[Series]:
    """Throughput vs cores for every applicable strategy of one NF."""
    model = model or PerformanceModel()
    nf = ALL_NFS[nf_name]()
    profile = profile_for(nf)
    maestro = Maestro(seed=7)
    verdict = maestro.analyze(nf).solution.verdict
    strategies = [Strategy.LOCKS, Strategy.TM]
    if verdict is not Verdict.LOCKS:
        strategies.insert(0, Strategy.SHARED_NOTHING)
    series = []
    for strategy in strategies:
        values = [
            model.throughput(profile, strategy, n, workload).mpps
            for n in cores
        ]
        series.append(Series(label=f"{nf_name}/{strategy.value}", values=values))
    return series


def _sweep_cell(cell: tuple[str, tuple[int, ...]]) -> list[Series]:
    """All strategy series of one NF — one sweep cell per NF."""
    name, cores = cell
    workload = Workload(pkt_size=64, n_flows=N_FLOWS)
    return scalability_series(name, list(cores), workload)


def run(fast: bool = False, jobs: int = 1) -> Experiment:
    cores = tuple(FAST_CORE_COUNTS if fast else CORE_COUNTS)
    experiment = Experiment(
        name="fig10",
        title="Parallel NF scalability, uniform read-heavy 64B packets",
        x_label="cores",
        x_values=list(cores),
        y_label="throughput [Mpps]",
    )
    names = [n for n in ALL_NFS if n != "sbridge"] if fast else list(ALL_NFS)
    cells = [(name, cores) for name in names]
    for series_group in ParallelSweepRunner(jobs).map(_sweep_cell, cells):
        for series in series_group:
            experiment.add(series)
    experiment.notes.append(
        "no shared-nothing series for dbridge/lb: Maestro's analysis "
        "rules it out (MAC-keyed state / global backend view)"
    )
    return experiment


if __name__ == "__main__":
    print(run().render())
