"""Experiment harness: one module per paper figure/table.

Run individual figures with ``python -m repro.eval fig10`` or everything
with ``python -m repro.eval all`` (add ``--fast`` for a quick pass).
"""

from repro.eval import (
    fig05,
    fig06,
    fig08,
    fig09,
    fig10,
    fig11,
    fig14,
    latency,
    verdicts,
)
from repro.eval.runner import CORE_COUNTS, Experiment, Series, format_table

EXPERIMENTS = {
    "fig5": fig05.run,
    "fig6": fig06.run,
    "fig8": fig08.run,
    "fig9": fig09.run,
    "fig10": fig10.run,
    "fig11": fig11.run,
    "fig14": fig14.run,
    "latency": latency.run,
    "verdicts": verdicts.run,
}

__all__ = [
    "EXPERIMENTS",
    "CORE_COUNTS",
    "Experiment",
    "Series",
    "format_table",
]
