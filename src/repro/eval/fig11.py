"""Figure 11: Maestro NAT (shared-nothing and lock-based) vs VPP nat44-ei.

Expected shape: all three scale; Maestro's shared-nothing decisively wins,
reaching the PCIe bottleneck around 10 cores; the fairer shared-memory
comparison — Maestro's lock-based NAT vs VPP — has Maestro slightly ahead
(better cache locality: 55% vs 46% L1 hits in the paper's perf data),
with neither reaching PCIe by 16 cores.
"""

from __future__ import annotations

from repro.core import Strategy
from repro.eval.runner import CORE_COUNTS, FAST_CORE_COUNTS, Experiment, Series
from repro.hw.cpu import profile_for
from repro.nf.nfs import Nat
from repro.sim.perf import PerformanceModel, Workload

__all__ = ["run"]

N_FLOWS = 40_000


def run(fast: bool = False) -> Experiment:
    cores = list(FAST_CORE_COUNTS if fast else CORE_COUNTS)
    profile = profile_for(Nat())
    model = PerformanceModel()
    workload = Workload(pkt_size=64, n_flows=N_FLOWS)
    experiment = Experiment(
        name="fig11",
        title="VPP and Maestro NAT comparison",
        x_label="cores",
        x_values=cores,
        y_label="throughput [Mpps]",
    )
    experiment.add(
        Series(
            label="maestro shared-nothing",
            values=[
                model.throughput(
                    profile, Strategy.SHARED_NOTHING, n, workload
                ).mpps
                for n in cores
            ],
        )
    )
    experiment.add(
        Series(
            label="maestro locks",
            values=[
                model.throughput(profile, Strategy.LOCKS, n, workload).mpps
                for n in cores
            ],
        )
    )
    experiment.add(
        Series(
            label="vpp nat44-ei",
            values=[
                model.throughput(
                    profile, Strategy.LOCKS, n, workload, vpp_mode=True
                ).mpps
                for n in cores
            ],
        )
    )
    experiment.notes.append(
        "shared-nothing should reach the PCIe ceiling around 10 cores; "
        "the lock-based NAT should slightly outperform VPP"
    )
    return experiment


if __name__ == "__main__":
    print(run().render())
