"""Figure 6: time for Maestro to generate a parallel implementation.

The paper reports minutes per NF on their machine, dominated by Z3's key
search (the Policer — whose key must cancel the port bits forced in by the
NIC — takes longest).  Our pipeline reports seconds, but the *relative*
cost structure is preserved: NFs needing cancellation-heavy or cross-port
symmetric keys spend the most time in RS3.  Averaged over 10 runs, like
the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core import Maestro
from repro.eval.runner import Experiment, Series
from repro.nf.nfs import ALL_NFS

__all__ = ["run"]

N_RUNS = 10


def run(fast: bool = False) -> Experiment:
    n_runs = 3 if fast else N_RUNS
    names = list(ALL_NFS)
    experiment = Experiment(
        name="fig6",
        title="Time to generate parallel implementations",
        x_label="nf",
        x_values=names,
        y_label="seconds (mean over runs)",
    )
    totals = np.zeros((n_runs, len(names)))
    rs3_times = np.zeros((n_runs, len(names)))
    for run_index in range(n_runs):
        for col, name in enumerate(names):
            maestro = Maestro(seed=run_index)
            result = maestro.analyze(ALL_NFS[name]())
            maestro.parallelize(ALL_NFS[name](), n_cores=16, result=result)
            totals[run_index, col] = result.total_time
            rs3_times[run_index, col] = result.timings.get("rs3", 0.0)
    experiment.add(
        Series(
            label="total",
            values=totals.mean(axis=0).tolist(),
            low=totals.min(axis=0).tolist(),
            high=totals.max(axis=0).tolist(),
        )
    )
    experiment.add(Series(label="rs3 share", values=rs3_times.mean(axis=0).tolist()))
    experiment.notes.append(
        f"averaged over {n_runs} runs; the paper's absolute scale is "
        "minutes (KLEE+Z3), ours is seconds — shapes are comparable, not "
        "magnitudes"
    )
    return experiment


if __name__ == "__main__":
    print(run().render())
