"""§6.1 analysis outcomes: how Maestro parallelizes each NF.

Not a numbered figure, but the evaluation's qualitative backbone: the
verdict, sharding fields, and rules applied for every NF in the corpus.
"""

from __future__ import annotations

from repro.core import Maestro
from repro.eval.runner import Experiment, format_table
from repro.nf.nfs import ALL_NFS

__all__ = ["run", "verdict_rows"]


def verdict_rows() -> list[list[str]]:
    rows = []
    maestro = Maestro(seed=0)
    for name, cls in ALL_NFS.items():
        result = maestro.analyze(cls())
        solution = result.solution
        sharding = "; ".join(
            f"port{port}:{','.join(fields)}"
            for port, fields in sorted(solution.per_port.items())
        )
        rows.append(
            [
                name,
                solution.verdict.value,
                sharding or "-",
                ",".join(solution.rules_applied) or "-",
                f"{result.total_time:.2f}s",
            ]
        )
    return rows


def run(fast: bool = False) -> Experiment:
    experiment = Experiment(
        name="verdicts",
        title="Per-NF parallelization verdicts (§6.1)",
        x_label="nf",
        x_values=[],
        y_label="",
    )
    experiment.notes.append(
        "\n"
        + format_table(
            ["nf", "verdict", "sharding", "rules", "gen time"], verdict_rows()
        )
    )
    return experiment


if __name__ == "__main__":
    print(run().render())
