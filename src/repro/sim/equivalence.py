"""Semantic equivalence checking: parallel vs sequential (§1, §3).

Maestro's whole premise is that the generated parallel NF "preserves the
semantics of the sequential implementation".  This checker replays the
same trace through both and compares each packet's observable behaviour
(action, egress port, header rewrites).

Two documented divergences are permitted, matching the paper:

* **Allocator identities** (§6.1, NAT): the parallel NAT "does not enforce
  this uniqueness across cores, a feature that does not break semantic
  equivalence" — allocated values (external ports) may differ, so callers
  exclude those fields via ``ignore_mods``.
* **Capacity exhaustion** (§4, *State sharding*): a per-core shard can
  fill before the global table would; when a capacity divergence is
  detected it is reported separately, not as a violation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.codegen import ParallelNF
from repro.nf.api import NF, ActionKind
from repro.nf.runtime import PacketResult, SequentialRunner
from repro.traffic.generator import Trace

__all__ = ["Mismatch", "EquivalenceReport", "check_equivalence"]


@dataclass(frozen=True)
class Mismatch:
    """One packet whose parallel behaviour diverged."""

    index: int
    port: int
    sequential: tuple
    parallel: tuple
    capacity_related: bool


@dataclass
class EquivalenceReport:
    """Aggregate result of an equivalence run."""

    n_packets: int
    mismatches: list[Mismatch] = field(default_factory=list)
    capacity_divergences: int = 0

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        if self.equivalent:
            extra = (
                f" ({self.capacity_divergences} capacity divergences allowed)"
                if self.capacity_divergences
                else ""
            )
            return f"equivalent over {self.n_packets} packets{extra}"
        first = self.mismatches[0]
        return (
            f"{len(self.mismatches)}/{self.n_packets} packets diverge; "
            f"first at #{first.index}: sequential={first.sequential} "
            f"parallel={first.parallel}"
        )


def _observable(
    result: PacketResult, ignore_mods: frozenset[str]
) -> tuple:
    mods = tuple(
        sorted((k, v) for k, v in result.mods.items() if k not in ignore_mods)
    )
    return (result.kind, result.port, mods)


def check_equivalence(
    make_nf,
    parallel: ParallelNF,
    trace: Trace,
    *,
    ignore_mods: Iterable[str] = (),
    allow_capacity_divergence: bool = True,
) -> EquivalenceReport:
    """Replay ``trace`` through a fresh sequential NF and ``parallel``.

    ``make_nf`` is a zero-argument factory producing the sequential
    reference (fresh state).  ``ignore_mods`` names header rewrites with
    allocator-dependent values (e.g. the NAT's external ``src_port``).
    """
    ignored = frozenset(ignore_mods)
    sequential = SequentialRunner(make_nf())
    report = EquivalenceReport(n_packets=len(trace))
    for index, (port, pkt) in enumerate(trace):
        seq_result = sequential.process(port, pkt)
        _, par_result = parallel.process(port, pkt)
        seq_obs = _observable(seq_result, ignored)
        par_obs = _observable(par_result, ignored)
        if seq_obs == par_obs:
            continue
        # Capacity divergence: one side dropped/refused because its
        # (smaller) shard filled while the other still had room.
        capacity = (
            seq_result.kind != par_result.kind
            and ActionKind.DROP in (seq_result.kind, par_result.kind)
            and (seq_result.new_flow or par_result.new_flow)
        )
        if capacity and allow_capacity_divergence:
            report.capacity_divergences += 1
            continue
        report.mismatches.append(
            Mismatch(
                index=index,
                port=port,
                sequential=seq_obs,
                parallel=par_obs,
                capacity_related=capacity,
            )
        )
    return report
