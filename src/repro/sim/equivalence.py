"""Semantic equivalence checking: parallel vs sequential (§1, §3).

Maestro's whole premise is that the generated parallel NF "preserves the
semantics of the sequential implementation".  This checker replays the
same trace through both and compares each packet's observable behaviour
(action, egress port, header rewrites).

Two documented divergences are permitted, matching the paper:

* **Allocator identities** (§6.1, NAT): the parallel NAT "does not enforce
  this uniqueness across cores, a feature that does not break semantic
  equivalence" — allocated values (external ports) may differ, so callers
  exclude those fields via ``ignore_mods``.
* **Capacity exhaustion** (§4, *State sharding*): a per-core shard can
  fill before the global table would; when a capacity divergence is
  detected it is reported separately, not as a violation — attributed to
  the state object (allocator chain / table) that refused the insert.

``sanitize=True`` additionally runs the replay under the race sanitizer
(:mod:`repro.analysis.race`): single-threaded replay cannot observe
ordering hazards directly, so the sanitizer's lockset/ownership checks
are the way a racy-but-lucky plan gets caught here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.core.codegen import ParallelNF
from repro.nf.api import NF, ActionKind
from repro.nf.runtime import PacketResult, SequentialRunner
from repro.traffic.generator import Trace

__all__ = [
    "Mismatch",
    "EquivalenceReport",
    "check_equivalence",
    "check_chain_equivalence",
]

#: ``describe()`` lists at most this many mismatches before summarizing.
MISMATCH_DISPLAY_CAP = 5

#: Ops that can refuse an insert when a shard fills, in the order the
#: attribution prefers them (the allocator is usually the root cause).
_CAPACITY_OPS = ("dchain_allocate", "map_put", "sketch_touch")


@dataclass(frozen=True)
class Mismatch:
    """One packet whose parallel behaviour diverged."""

    index: int
    port: int
    sequential: tuple
    parallel: tuple
    capacity_related: bool


@dataclass
class EquivalenceReport:
    """Aggregate result of an equivalence run."""

    n_packets: int
    mismatches: list[Mismatch] = field(default_factory=list)
    capacity_divergences: int = 0
    #: state object blamed for each capacity divergence -> count
    capacity_by_object: dict[str, int] = field(default_factory=dict)
    #: active race-sanitizer findings (``check_equivalence(sanitize=True)``)
    race_diagnostics: list = field(default_factory=list)
    #: last-N-packets flight-recorder context, captured at the first real
    #: mismatch (or at replay end when the sanitizer found violations)
    flight_snapshot: list = field(default_factory=list)

    @property
    def equivalent(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        race = (
            f"; race sanitizer: {len(self.race_diagnostics)} violation(s)"
            if self.race_diagnostics
            else ""
        )
        if self.equivalent:
            extra = ""
            if self.capacity_divergences:
                blamed = ", ".join(
                    f"{obj} ×{count}"
                    for obj, count in sorted(self.capacity_by_object.items())
                )
                extra = (
                    f" ({self.capacity_divergences} capacity divergences "
                    f"allowed{': ' + blamed if blamed else ''})"
                )
            return f"equivalent over {self.n_packets} packets{extra}{race}"
        shown = self.mismatches[:MISMATCH_DISPLAY_CAP]
        lines = [f"{len(self.mismatches)}/{self.n_packets} packets diverge:"]
        lines.extend(
            f"  #{m.index} (port {m.port}): sequential={m.sequential} "
            f"parallel={m.parallel}"
            for m in shown
        )
        remaining = len(self.mismatches) - len(shown)
        if remaining:
            lines.append(f"  ... and {remaining} more")
        return "\n".join(lines) + race


def _observable(
    result: PacketResult, ignore_mods: frozenset[str]
) -> tuple:
    mods = tuple(
        sorted((k, v) for k, v in result.mods.items() if k not in ignore_mods)
    )
    return (result.kind, result.port, mods)


def _default_flow_keys(port: int, pkt) -> list[tuple]:
    """Both orientations of the packet's header identity, untagged.

    Used to taint a flow once a capacity divergence is excused for it:
    the reply direction carries swapped addresses, and symmetric
    sharding sends it to the same diverged shard, so both orientations
    inherit the taint.  ``port`` is deliberately excluded — the reply
    arrives on the other port.  The ``None`` tag matches any culprit
    object; callers that know the NF's real key structure pass
    ``flow_keys`` with per-state-object tags instead (partial keys like
    a src-port-only table alias many header tuples onto one entry,
    which header identity alone cannot see).
    """
    fwd = (
        pkt.src_ip, pkt.dst_ip, pkt.src_port, pkt.dst_port,
        pkt.proto, pkt.src_mac, pkt.dst_mac,
    )
    rev = (
        pkt.dst_ip, pkt.src_ip, pkt.dst_port, pkt.src_port,
        pkt.proto, pkt.dst_mac, pkt.src_mac,
    )
    return [(None, fwd), (None, rev)]


def _matches_culprit(tag: str | None, culprit: str) -> bool:
    """A tagged key is relevant when its state-object prefix matches."""
    return tag is None or culprit == tag or culprit.startswith(tag + "_")


def _capacity_culprit(
    seq_result: PacketResult, par_result: PacketResult
) -> str:
    """Name the state object whose full shard caused the divergence.

    The dropping side is the one whose insert was refused; its op record
    ends at (or contains) the allocator/table op that said no.  Prefer
    the allocator chain — exhaustion surfaces there first.
    """
    dropping = (
        par_result if par_result.kind is ActionKind.DROP else seq_result
    )
    for wanted in _CAPACITY_OPS:
        for op in reversed(dropping.ops):
            if op.op == wanted:
                return op.obj
    for op in reversed(dropping.ops):
        if op.write:
            return op.obj
    return "unknown"


def check_equivalence(
    make_nf,
    parallel: ParallelNF,
    trace: Trace,
    *,
    ignore_mods: Iterable[str] = (),
    allow_capacity_divergence: bool = True,
    sanitize: bool = False,
    tree=None,
    flow_keys=None,
    flight=None,
    rescale_events: Iterable[tuple[int, int]] | None = None,
) -> EquivalenceReport:
    """Replay ``trace`` through a fresh sequential NF and ``parallel``.

    ``make_nf`` is a zero-argument factory producing the sequential
    reference (fresh state).  ``ignore_mods`` names header rewrites with
    allocator-dependent values (e.g. the NAT's external ``src_port``).

    ``sanitize=True`` installs the race sanitizer's event probes on the
    parallel NF for the duration of the replay and attaches the active
    findings as ``report.race_diagnostics``; pass the analysis ``tree``
    (``MaestroResult.tree``) to also enable the MAE104 footprint
    cross-validation and the R5 ownership excusals.

    ``flow_keys`` customizes capacity-divergence tainting: a callable
    ``(port, pkt) -> [(tag, key), ...]`` naming every NF flow identity
    the packet belongs to, where ``tag`` is the state-object prefix the
    key addresses (``None`` = matches any object).  Defaults to the
    packet's full header identity in both orientations, which is
    correct for NFs keyed on (subsets including) the five-tuple but too
    narrow for partial keys — a src-port-only table aliases many header
    tuples onto one entry.

    ``flight`` accepts a :class:`repro.obs.flight.FlightRecorder`: the
    replay then records every parallel-side packet (core, flow hash,
    path id, state ops) into its ring and the buffer is snapshotted into
    ``report.flight_snapshot`` at the first genuine mismatch — the
    last-N-packets context a reproducer ships with — or at replay end
    when the sanitizer reported violations.

    ``rescale_events`` makes the run *elastic-aware*: a sequence of
    ``(packet_index, n_cores)`` pairs, each applied via
    :func:`repro.scale.migrate.rescale_parallel` immediately **before**
    the packet at that index is processed.  The parallel NF must have
    elastic mode enabled (``repro.scale.enable_elastic``).  The
    sequential reference is untouched — the whole point is proving that
    a mid-trace grow/shrink is behaviour-preserving.  Under
    ``sanitize=True`` the migrations are reported to the race monitor,
    so MAE103 checks the ownership handoffs and MAE105 the quiesce
    epochs.
    """
    if flow_keys is None:
        flow_keys = _default_flow_keys
    ignored = frozenset(ignore_mods)
    sequential = SequentialRunner(make_nf())
    report = EquivalenceReport(n_packets=len(trace))
    monitor = None
    if sanitize:
        from repro.analysis.race import RaceMonitor

        monitor = RaceMonitor(parallel).install()
    rescales: dict[int, int] = {}
    if rescale_events:
        # Lazy import: repro.scale imports the codegen/runtime layers,
        # so the equivalence module must not import it at module level.
        from repro.scale.migrate import rescale_parallel

        for at_packet, n_cores in rescale_events:
            rescales[int(at_packet)] = int(n_cores)
    tainted: set[tuple] = set()
    #: (obj, key) map entries a rescale refused to install — the flow's
    #: state vanished exactly as a capacity refusal would make it, so
    #: later drop-vs-forward disagreements on those keys are excused.
    refused_state: set[tuple] = set()
    try:
        for index, (port, pkt) in enumerate(trace):
            target = rescales.get(index)
            if target is not None:
                stats = rescale_parallel(parallel, target)
                refused_state.update(stats.refused_keys)
            seq_result = sequential.process(port, pkt)
            core_id, par_result = parallel.process(port, pkt)
            if flight is not None:
                flight.record(
                    index,
                    port,
                    core_id,
                    par_result.kind.value,
                    par_result.port,
                    (
                        pkt.src_ip, pkt.dst_ip, pkt.src_port,
                        pkt.dst_port, pkt.proto,
                    ),
                    par_result.ops,
                )
            seq_obs = _observable(seq_result, ignored)
            par_obs = _observable(par_result, ignored)
            if seq_obs == par_obs:
                continue
            # Capacity divergence: one side dropped/refused because its
            # (smaller) shard filled while the other still had room.
            # ``new_flow`` marks the establishing packet; once a flow's
            # establishment diverged, its state differs on the two sides
            # for good, so every later drop-vs-forward disagreement on
            # the same flow keys is the same capacity story, not a bug
            # (repeat packets of a refused flow re-fail the allocator
            # without ever raising ``new_flow``).
            capacity = False
            drop_mismatch = (
                seq_result.kind != par_result.kind
                and ActionKind.DROP in (seq_result.kind, par_result.kind)
            )
            if drop_mismatch:
                culprit = _capacity_culprit(seq_result, par_result)
                relevant = [
                    tagged
                    for tagged in flow_keys(port, pkt)
                    if _matches_culprit(tagged[0], culprit)
                ]
                capacity = (
                    seq_result.new_flow
                    or par_result.new_flow
                    or any(tagged in tainted for tagged in relevant)
                    or any(
                        rkey == tagged[1] and _matches_culprit(tagged[0], robj)
                        for (robj, rkey) in refused_state
                        for tagged in relevant
                    )
                )
            if capacity and allow_capacity_divergence:
                tainted.update(relevant)
                report.capacity_divergences += 1
                report.capacity_by_object[culprit] = (
                    report.capacity_by_object.get(culprit, 0) + 1
                )
                continue
            report.mismatches.append(
                Mismatch(
                    index=index,
                    port=port,
                    sequential=seq_obs,
                    parallel=par_obs,
                    capacity_related=capacity,
                )
            )
            if flight is not None and not report.flight_snapshot:
                # First genuine mismatch: freeze the tail of the run.
                report.flight_snapshot = flight.snapshot()
    finally:
        if monitor is not None:
            monitor.remove()
    if monitor is not None:
        from repro.analysis.race import analyze_monitor

        report.race_diagnostics = analyze_monitor(
            monitor, tree=tree
        ).diagnostics
    if (
        flight is not None
        and not report.flight_snapshot
        and report.race_diagnostics
    ):
        # Sanitizer-only findings surface after the replay; attach the
        # final ring so MAE1xx reports still carry packet context.
        report.flight_snapshot = flight.snapshot()
    return report


def _chain_observable(result, ignored: frozenset[str]) -> tuple:
    mods = tuple(
        sorted((k, v) for k, v in result.mods.items() if k not in ignored)
    )
    return (result.kind, result.port, mods)


def _chain_capacity_culprit(dropping_steps) -> str:
    """Blame the state object of the hop that refused the insert.

    The chain-level drop originates in the *last* hop the dropping side
    executed; scan its op record like the single-NF attribution does.
    """
    if not dropping_steps:
        return "unknown"
    ops = dropping_steps[-1].result.ops
    for wanted in _CAPACITY_OPS:
        for op in reversed(ops):
            if op.op == wanted:
                return op.obj
    for op in reversed(ops):
        if op.write:
            return op.obj
    return "unknown"


def check_chain_equivalence(
    chain,
    parallel,
    trace: Trace,
    *,
    registry: dict[str, type] | None = None,
    ignore_mods: Iterable[str] = (),
    allow_capacity_divergence: bool = True,
    sanitize: bool = False,
    trees: dict | None = None,
) -> EquivalenceReport:
    """Differentially validate a parallel chain against its sequential
    reference.

    Replays ``trace`` through a fresh
    :class:`repro.chain.runtime.SequentialChainRunner` (every hop a
    single-core NF with full-capacity state) and through ``parallel``
    (a :class:`repro.chain.runtime.ParallelChain` in joint or fallback
    mode), comparing each packet's chain-level observable: terminal
    action, chain egress port, and accumulated header rewrites.

    Capacity divergences are excused per flow exactly like the
    single-NF checker: a drop-vs-forward disagreement whose dropping
    side's last hop refused an insert (or whose flow was already
    tainted) is counted, attributed to the refusing state object, and
    not reported as a violation.

    ``sanitize=True`` installs a race monitor on *every* hop's
    generated ParallelNF for the duration of the replay; pass ``trees``
    (hop alias -> execution tree) to enable the MAE104 footprint
    cross-validation per hop.  All hops' findings are concatenated into
    ``report.race_diagnostics``.
    """
    from repro.chain.runtime import SequentialChainRunner

    ignored = frozenset(ignore_mods)
    sequential = SequentialChainRunner(chain, registry)
    report = EquivalenceReport(n_packets=len(trace))
    monitors = {}
    if sanitize:
        from repro.analysis.race import RaceMonitor

        monitors = {
            alias: RaceMonitor(hop_parallel).install()
            for alias, hop_parallel in parallel.hops.items()
        }
    tainted: set[tuple] = set()
    try:
        for index, (port, pkt) in enumerate(trace):
            seq_result = sequential.process(port, pkt)
            par_result = parallel.process(port, pkt)
            seq_obs = _chain_observable(seq_result, ignored)
            par_obs = _chain_observable(par_result, ignored)
            if seq_obs == par_obs:
                continue
            capacity = False
            culprit = "unknown"
            relevant: list[tuple] = []
            drop_mismatch = (
                seq_result.kind != par_result.kind
                and ActionKind.DROP in (seq_result.kind, par_result.kind)
            )
            if drop_mismatch:
                dropping = (
                    par_result
                    if par_result.kind is ActionKind.DROP
                    else seq_result
                )
                culprit = _chain_capacity_culprit(dropping.steps)
                relevant = [
                    tagged
                    for tagged in _default_flow_keys(port, pkt)
                    if _matches_culprit(tagged[0], culprit)
                ]
                new_flow = any(
                    step.result.new_flow
                    for result in (seq_result, par_result)
                    for step in result.steps
                )
                capacity = new_flow or any(
                    tagged in tainted for tagged in relevant
                )
            if capacity and allow_capacity_divergence:
                tainted.update(relevant)
                report.capacity_divergences += 1
                report.capacity_by_object[culprit] = (
                    report.capacity_by_object.get(culprit, 0) + 1
                )
                continue
            report.mismatches.append(
                Mismatch(
                    index=index,
                    port=port,
                    sequential=seq_obs,
                    parallel=par_obs,
                    capacity_related=capacity,
                )
            )
    finally:
        for monitor in monitors.values():
            monitor.remove()
    if monitors:
        from repro.analysis.race import analyze_monitor

        trees = trees or {}
        for alias, monitor in monitors.items():
            report.race_diagnostics.extend(
                analyze_monitor(monitor, tree=trees.get(alias)).diagnostics
            )
    return report
