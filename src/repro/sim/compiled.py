"""Compiled batch dataplane: vectorized kernels from the execution tree.

The paper's observation is that the symbolic execution tree *is* the NF:
every per-packet behavior is one path — a constraint prefix, a sequence
of stateful operations, and a terminal action.  This module compiles
each path into a **column program** and executes whole packet chunks at
once:

* **Stage 1 (classify)** evaluates every path's branch predicates
  column-wise over the chunk (:mod:`repro.symbex.lower`), interleaved
  with vectorized state reads (map probes, vector gathers, dchain flag
  reads) against the frozen pre-chunk state, assigning each packet lane
  to exactly one path.
* **Stage 2 (apply)** materializes the per-lane results from the lowered
  action (port/mods expressions) and applies the paths' state writes as
  scatters (dchain timestamp refreshes, vector slot stores).

Lanes on paths the lowerer cannot express (allocations, sketch paths,
hash functions) fall back to the packet-at-a-time interpreter, which
remains the oracle: kernel output is bit-identical to
:meth:`repro.nf.runtime.ConcreteContext.run`.

Correctness hinges on the *frozen-prefix* discipline.  Classification
reads pre-chunk state, so a kernel lane is only kept when no interpreter
lane (or other kernel lane) in the same chunk invalidates what it read
or re-orders what it writes.  This is resolved by a chunk-local hazard
fixpoint over a "dirt board" of keys/cells written by fallback lanes:
kernel lanes whose reads/writes collide are demoted to the interpreter,
and each demotion publishes that lane's own writes as new dirt.  Expiry
sweeps are hoisted to chunk boundaries: the exact positions where
``expire_flows`` fires are precomputed (the once-per-simulated-second
gate is a pure function of the trace timestamps) and chunks are split
there, so no sweep ever mutates state mid-chunk.

Classifications are memoized per (shard, port, flow) — keyed on the
packet fields a port's programs consume and guarded by state version
counters — and the whole memo is flushed whenever
``rss.steering_generation`` bumps, because re-steering moves flows
between shards and a cached classification is only valid against the
shard whose state it was computed from.
"""

from __future__ import annotations

import operator
from itertools import starmap

import numpy as np

from repro import obs
from repro.core.codegen import ParallelNF, Strategy
from repro.nf.api import ActionKind
from repro.nf.packet import PACKET_FIELDS
from repro.nf.runtime import OpRecord, PacketResult
from repro.symbex import expr as E
from repro.symbex.engine import explore_nf
from repro.symbex.lower import (
    FLOAT_EXACT,
    INT_SAFE,
    Column,
    KernelBail,
    LowerError,
    as_bool,
    check_expr,
    eval_expr,
    _to_int,
)

__all__ = [
    "CompiledDispatcher", "compile_parallel", "DEFAULT_CHUNK", "LOWERED_OPS",
]

#: Lanes per kernel chunk (also the hazard-analysis horizon).
DEFAULT_CHUNK = 2048
#: Stateful ops the lowerer can express as column kernels; any path
#: containing another op kind (allocation, sketch, hash, ...) runs on
#: the interpreter.  DESIGN.md §13 documents each rule — kept in sync
#: by the doc tests.
LOWERED_OPS = (
    "map_get",
    "vector_borrow",
    "dchain_is_allocated",
    "dchain_rejuvenate",
    "vector_put",
)
#: Per-(shard, port) memo entries before the bucket is dropped wholesale.
_MEMO_MAX = 65536
#: Hazard-fixpoint iteration cap; on overrun the whole chunk is demoted.
_FIXPOINT_MAX = 64

#: The symbol bindings available before any stateful op runs.
_BASE_SYMS = frozenset(
    {"time", "pkt.wire_size"} | {f"pkt.{name}" for name in PACKET_FIELDS}
)


# ------------------------------------------------------------------ #
# Lowered steps: one per supported stateful-op kind.
# ------------------------------------------------------------------ #
class _MapGet:
    __slots__ = ("obj", "keys", "found", "value", "sig")

    def __init__(self, obj, keys, found, value):
        self.obj = obj
        self.keys = keys
        self.found = found
        self.value = value
        self.sig = ("map_get", obj, keys, found, value)


class _VecBorrow:
    __slots__ = ("obj", "index", "fields", "sig")

    def __init__(self, obj, index, fields):
        self.obj = obj
        self.index = index
        self.fields = fields
        self.sig = ("vector_borrow", obj, index, fields)


class _IsAlloc:
    __slots__ = ("obj", "index", "res", "sig")

    def __init__(self, obj, index, res):
        self.obj = obj
        self.index = index
        self.res = res
        self.sig = ("dchain_is_allocated", obj, index, res)


class _Rejuv:
    __slots__ = ("obj", "index", "sig")

    def __init__(self, obj, index):
        self.obj = obj
        self.index = index
        self.sig = ("dchain_rejuvenate", obj, index)


class _VecPut:
    __slots__ = ("obj", "index", "stored", "sig")

    def __init__(self, obj, index, stored):
        self.obj = obj
        self.index = index
        self.stored = stored
        self.sig = ("vector_put", obj, index, stored)


def _lower_entry(entry, known, used):
    """Lower one trace entry into a step, binding its result symbols."""
    op = entry.op
    if op == "map_get":
        for k in entry.key:
            check_expr(k, known, used)
        found = entry.result("found").name
        value = entry.result("value").name
        known.add(found)
        known.add(value)
        return _MapGet(entry.obj, tuple(entry.key), found, value)
    if op == "vector_borrow":
        check_expr(entry.key[0], known, used)
        fields = tuple((fname, sym.name) for fname, sym in entry.results)
        for _, name in fields:
            known.add(name)
        return _VecBorrow(entry.obj, entry.key[0], fields)
    if op == "dchain_is_allocated":
        check_expr(entry.key[0], known, used)
        res = entry.result("allocated").name
        known.add(res)
        return _IsAlloc(entry.obj, entry.key[0], res)
    if op == "dchain_rejuvenate":
        check_expr(entry.key[0], known, used)
        return _Rejuv(entry.obj, entry.key[0])
    if op == "vector_put":
        check_expr(entry.key[0], known, used)
        for _, expr in entry.stored:
            check_expr(expr, known, used)
        return _VecPut(entry.obj, entry.key[0], tuple(entry.stored))
    raise LowerError(f"cannot lower stateful op {op!r} on {entry.obj!r}")


#: Write/read aspects a step contributes when its lane runs interpreted.
def _step_dirt_aspect(step):
    if isinstance(step, _Rejuv):
        return "ts_w"
    if isinstance(step, _VecPut):
        return "vec_w"
    if isinstance(step, _VecBorrow):
        return "vec_r"
    return None


class _PathProgram:
    """One execution path, lowered (fully or as far as possible).

    ``items`` interleaves constraints and steps in path order.  When
    ``supported`` is False, ``items`` is the lowerable prefix (used to
    narrow which lanes sit on this path for hazard attribution) and
    ``dirt_descs`` describes the state the *unlowered* suffix touches.
    """

    __slots__ = (
        "pid", "port", "supported", "items", "steps", "dirt_descs",
        "kind", "port_const", "port_expr", "mods", "const_result",
        "ops_list", "bump_ops", "used", "wild", "source_path", "stop",
    )

    def __init__(self, pid, port):
        self.pid = pid
        self.port = port
        self.supported = False
        self.items = []
        self.steps = []
        self.dirt_descs = []
        self.kind = None
        self.port_const = None
        self.port_expr = None
        self.mods = ()
        self.const_result = None
        self.ops_list = []
        self.bump_ops = []
        self.used = set()
        self.wild = []
        # Provenance for the plan certifier (translation validation):
        # the source symbex path and, for demoted programs, the index of
        # the first non-expire entry the lowering gave up at.
        self.source_path = None
        self.stop = None


def _collect_dirt(entries, known, descs, wild):
    """Describe the state footprint of unlowered trace entries.

    Keyed where the key/index expressions are themselves lowerable
    against ``known`` (exact demotion), wildcard otherwise.  Result
    symbols of unlowered ops are *not* bound, so downstream expressions
    depending on them correctly degrade to wildcards.
    """

    def _keyed(exprs):
        for expr in exprs:
            try:
                check_expr(expr, known, set())
            except LowerError:
                return None
        return tuple(exprs)

    for e in entries:
        op = e.op
        if op == "expire":
            continue
        if op in ("map_put", "map_erase"):
            keys = _keyed(e.key) if e.key else None
            descs.append(("map_w", e.obj, keys))
            if keys is None:
                wild.append(("map_w", e.obj))
        elif op in ("vector_put", "vector_fill"):
            idx = _keyed(e.key) if e.key else None
            descs.append(("vec_w", e.obj, idx))
            if idx is None:
                wild.append(("vec_w", e.obj))
        elif op == "vector_borrow":
            idx = _keyed(e.key) if e.key else None
            descs.append(("vec_r", e.obj, idx))
            if idx is None:
                wild.append(("vec_r", e.obj))
        elif op == "dchain_allocate":
            descs.append(("alloc", e.obj, None))
            wild.append(("alloc", e.obj))
        elif op == "dchain_rejuvenate":
            idx = _keyed(e.key) if e.key else None
            descs.append(("ts_w", e.obj, idx))
            if idx is None:
                wild.append(("ts_w", e.obj))
        elif op in ("map_get", "dchain_is_allocated", "sketch_fetch",
                    "sketch_touch"):
            # Reads of state kernels never write (maps, flags, sketches)
            # and sketch writes kernels never read: hazard-free.
            pass
        else:  # unknown op: poison every aspect of the object
            for aspect in ("map_w", "vec_w", "vec_r", "ts_w"):
                descs.append((aspect, e.obj, None))
                wild.append((aspect, e.obj))
            descs.append(("alloc", e.obj, None))
            wild.append(("alloc", e.obj))


def _compile_path(path, pid):
    """Lower one path to a :class:`_PathProgram` (never raises)."""
    prog = _PathProgram(pid, path.port)
    prog.source_path = path
    prog.kind = path.action.kind
    # Expiry sweeps never lower inline: they are hoisted to chunk
    # boundaries (or disabled outright when expiration_time is None).
    entries = [e for e in path.trace if e.op != "expire"]
    # Concrete op records, in concrete order (expire entries only fire at
    # chunk boundaries and are prepended there; rejuvenation *is*
    # recorded concretely even though the engine marks it maintenance).
    prog.ops_list = [OpRecord(e.obj, e.op, e.write) for e in entries]
    prog.bump_ops = [
        ((e.obj, e.op, e.write),
         OpRecord(e.obj, e.op, e.write),
         (e.obj, "write" if e.write else "read"))
        for e in entries
    ]
    known = set(_BASE_SYMS)
    used = prog.used
    items = prog.items
    constraints = path.constraints
    ci = 0
    stop = len(entries)
    supported = True
    for idx, e in enumerate(entries):
        target = e.pc_len
        while ci < target:
            c = constraints[ci]
            try:
                check_expr(c, known, used)
            except LowerError:
                supported = False
                stop = idx
                break
            items.append(("c", c))
            ci += 1
        if not supported:
            break
        try:
            step = _lower_entry(e, known, used)
        except LowerError:
            supported = False
            stop = idx
            break
        items.append(("op", step))
        prog.steps.append(step)
    if supported:
        while ci < len(constraints):
            c = constraints[ci]
            try:
                check_expr(c, known, used)
            except LowerError:
                supported = False
                stop = len(entries)
                break
            items.append(("c", c))
            ci += 1
    if supported:
        # Terminal action: port expression and header rewrites.
        try:
            act = path.action
            if act.kind is ActionKind.FORWARD:
                p = act.port
                if isinstance(p, E.Const):
                    prog.port_const = int(p.value)
                elif isinstance(p, E.Expr):
                    check_expr(p, known, used)
                    prog.port_expr = p
                else:
                    prog.port_const = int(p)
            for _, expr in act.mods:
                check_expr(expr, known, used)
            prog.mods = tuple(act.mods)
        except LowerError:
            supported = False
            stop = len(entries)
    prog.supported = supported
    prog.stop = None if supported else stop
    if supported:
        if prog.port_expr is None and all(
            isinstance(expr, E.Const) for _, expr in prog.mods
        ):
            prog.const_result = PacketResult(
                prog.kind,
                prog.port_const,
                {name: int(expr.value) for name, expr in prog.mods},
                prog.ops_list,
                False,
            )
    else:
        _collect_dirt(entries[stop:], known, prog.dirt_descs, prog.wild)
    # Aspects this program's *lowered* write/read steps poison when the
    # program bails at run time (lanes unknown -> wildcard everything).
    for step in prog.steps:
        aspect = _step_dirt_aspect(step)
        if aspect is not None:
            prog.wild.append((aspect, step.obj))
    return prog


class _PortProgram:
    """All programs for one ingress port, plus shared-evaluation facts."""

    __slots__ = (
        "port", "programs", "pairs", "fields", "need_time", "memoizable",
        "shared_ok", "read_objs", "any_supported",
    )

    def __init__(self, port, programs, pairs):
        self.port = port
        self.programs = programs
        self.pairs = pairs
        used = set()
        for prog in programs:
            used |= prog.used
        self.fields = tuple(sorted(n for n in used if n.startswith("pkt.")))
        self.need_time = "time" in used
        self.any_supported = any(p.supported for p in programs)
        # A cached classification must be a pure function of (fields,
        # state): any supported program consuming ``time`` makes the
        # same flow classify differently across packets.
        self.memoizable = not any(
            "time" in p.used for p in programs if p.supported
        )
        # Can sibling programs share one env/cache?  Only if every
        # result symbol name is defined by the same step signature in
        # every program that binds it (the engine's per-path op counter
        # usually guarantees this for shared prefixes).
        sigs: dict[str, tuple] = {}
        self.shared_ok = True
        for prog in programs:
            for step in prog.steps:
                if isinstance(step, _MapGet):
                    bound = ((step.found, step.sig), (step.value, step.sig))
                elif isinstance(step, _VecBorrow):
                    bound = tuple((n, step.sig) for _, n in step.fields)
                elif isinstance(step, _IsAlloc):
                    bound = ((step.res, step.sig),)
                else:
                    bound = ()
                for name, sig in bound:
                    prev = sigs.setdefault(name, sig)
                    if prev != sig:
                        self.shared_ok = False
        # Ordered read-object versions guarding the memo: one (obj,
        # kind) per distinct read the supported programs perform.
        seen = set()
        self.read_objs = []
        for prog in programs:
            if not prog.supported:
                continue
            for step in prog.steps:
                if isinstance(step, _MapGet):
                    key = (step.obj, "map")
                elif isinstance(step, _VecBorrow):
                    key = (step.obj, "vec")
                elif isinstance(step, (_IsAlloc, _Rejuv)):
                    key = (step.obj, "chain")
                else:
                    continue
                if key not in seen:
                    seen.add(key)
                    self.read_objs.append(key)


def _compile_port(nf, port, paths, pid_start):
    """Compile one port's paths; raises LowerError on expiry shapes the
    chunk scheduler cannot hoist (non-prefix ``expire_flows`` calls)."""
    lead = []
    for e in paths[0].trace:
        if e.op == "expire":
            lead.append(e)
        else:
            break
    if len(lead) % 2:
        raise LowerError(f"odd expire prefix on port {port}")
    # The engine emits (chain, map) per expire_flows call; the concrete
    # call signature is expire_flows(map_name, chain_name).
    pairs = [
        (lead[i + 1].obj, lead[i].obj) for i in range(0, len(lead), 2)
    ]
    for path in paths:
        plead = []
        for e in path.trace:
            if e.op == "expire":
                plead.append(e)
            else:
                break
        total = sum(1 for e in path.trace if e.op == "expire")
        if total != len(plead) or len(plead) != len(lead):
            raise LowerError(f"non-prefix expire on port {port}")
        for a, b in zip(plead, lead):
            if a.obj != b.obj:
                raise LowerError(f"divergent expire prefix on port {port}")
    if nf.expiration_time is None:
        pairs = []
    programs = [
        _compile_path(path, pid_start + i) for i, path in enumerate(paths)
    ]
    return _PortProgram(port, programs, pairs)


def compile_parallel(parallel: ParallelNF, tree=None):
    """Compile a parallel NF's execution tree into a dispatcher.

    Returns ``None`` when nothing useful can be compiled (no supported
    path anywhere, or expiry shapes the scheduler cannot hoist) — the
    caller then stays on the interpreter fast path.
    """
    nf = parallel.nf
    if tree is None:
        tree = getattr(parallel, "symbex_tree", None)
    if tree is None:
        tree = explore_nf(nf)
    ports = {}
    pid = 0
    try:
        for port in tree.ports:
            pp = _compile_port(nf, port, tree.paths_by_port[port], pid)
            pid += len(pp.programs)
            ports[port] = pp
    except LowerError:
        return None
    if not any(pp.any_supported for pp in ports.values()):
        return None
    return CompiledDispatcher(parallel, ports, pid)


# ------------------------------------------------------------------ #
# Run-time: hazard board, per-chunk group state.
# ------------------------------------------------------------------ #
class _DirtBoard:
    """Chunk-local record of state touched by interpreter-bound lanes.

    Per aspect and object: ``None`` is a wildcard (everything dirty), a
    set holds the exact keys/cells.  ``alloc`` is inherently wildcard
    (allocation picks its index internally).
    """

    __slots__ = ("maps", "vec_w", "vec_r", "ts_w", "alloc", "wild_all")

    def __init__(self):
        self.maps = {}
        self.vec_w = {}
        self.vec_r = {}
        self.ts_w = {}
        self.alloc = set()
        self.wild_all = False

    def _table(self, aspect):
        if aspect == "map_w":
            return self.maps
        if aspect == "vec_w":
            return self.vec_w
        if aspect == "vec_r":
            return self.vec_r
        return self.ts_w

    def add(self, aspect, obj, values):
        if aspect == "alloc":
            self.alloc.add(obj)
            return
        table = self._table(aspect)
        if values is None:
            table[obj] = None
            return
        cur = table.get(obj, ())
        if cur is None:
            return
        if cur == ():
            cur = set()
            table[obj] = cur
        cur.update(values)

    def add_wild(self, pairs):
        for aspect, obj in pairs:
            self.add(aspect, obj, None)


class _ProgState:
    """Per-chunk evaluation state of one program over one port group."""

    __slots__ = (
        "prog", "match", "force_f", "kmask", "bailed", "arts",
        "dirt_vals", "port_vals", "mod_vals", "result_uids",
    )

    def __init__(self, prog):
        self.prog = prog
        self.match = None
        self.force_f = None
        self.kmask = None
        self.bailed = False
        self.arts = []
        self.dirt_vals = []
        self.port_vals = None
        self.mod_vals = None
        self.result_uids = None


class _Group:
    """One (domain, port) lane group and its classification state."""

    __slots__ = ("pp", "g_lanes", "progs", "assign", "from_memo")

    def __init__(self, pp, g_lanes):
        self.pp = pp
        self.g_lanes = g_lanes
        self.progs = [_ProgState(p) for p in pp.programs]
        self.assign = None
        self.from_memo = False


class _PortPlan:
    """Run-level flow table of one port: every packet of the port mapped
    to a dense *uid* (unique field-row id) in one vectorized pass, so
    per-chunk classification is a gather instead of a hash probe."""

    __slots__ = ("uid", "row_bytes")

    def __init__(self, uid, row_bytes):
        self.uid = uid
        self.row_bytes = row_bytes


class _UidGather:
    """Lazy per-lane view over a per-uid column (built only if indexed:
    map-key demotion checks and vector-store scatters touch a handful of
    lanes, so materializing the whole group column would be waste)."""

    __slots__ = ("by_uid", "uids")

    def __init__(self, by_uid, uids):
        self.by_uid = by_uid
        self.uids = uids

    def __getitem__(self, p):
        return self.by_uid[self.uids[p]]


class _Epoch:
    """Uid-indexed classification cache of one (shard, port) at one
    state-version vector.

    The persistent memo bucket is keyed by row *bytes* so it survives
    across runs; an epoch re-indexes it by this run's uids so the hot
    path never hashes rows.  ``assign[uid] >= 0`` means the uid's det is
    loaded: per-step scalar columns live in ``arts`` and the finished
    (shared) :class:`PacketResult` in ``results``.
    """

    __slots__ = ("pp", "versions", "U", "bucket", "assign", "arts", "results")

    def __init__(self, pp, versions, n_uids, bucket):
        self.pp = pp
        self.versions = versions
        self.U = n_uids
        self.bucket = bucket
        self.assign = np.full(n_uids, -1, np.int64)
        self.arts = [None] * len(pp.programs)
        self.results = [None] * n_uids

    def insert(self, u, det):
        pidx, step_scalars, action = det
        prog = self.pp.programs[pidx]
        arts = self.arts[pidx]
        if arts is None:
            arts = []
            for step in prog.steps:
                if isinstance(step, _MapGet):
                    arts.append(([None] * self.U,))
                elif isinstance(step, _VecPut):
                    arts.append(
                        (np.zeros(self.U, np.int64), [None] * self.U)
                    )
                elif isinstance(step, _VecBorrow):
                    arts.append((np.zeros(self.U, np.int64),))
                else:  # _IsAlloc / _Rejuv
                    arts.append(
                        (np.zeros(self.U, np.int64),
                         np.zeros(self.U, dtype=bool))
                    )
            self.arts[pidx] = arts
        for step, cols, sc in zip(prog.steps, arts, step_scalars):
            if isinstance(step, _MapGet):
                cols[0][u] = sc
            elif isinstance(step, _VecBorrow):
                cols[0][u] = sc[0]
            else:  # _VecPut / _IsAlloc / _Rejuv
                cols[0][u] = sc[0]
                cols[1][u] = sc[1]
        if prog.const_result is not None:
            self.results[u] = prog.const_result
        else:
            port, mods = action
            self.results[u] = PacketResult(
                prog.kind, port, dict(mods), prog.ops_list, False
            )
        self.assign[u] = pidx


def _ivals(col, g):
    """Column -> int64 array of length ``g`` (broadcasting scalars)."""
    arr = np.asarray(_to_int(col))
    if arr.ndim == 0:
        arr = np.broadcast_to(arr, (g,))
    return arr


def _bump(ctx, bump_ops, n):
    """Add ``n`` packets' worth of op counts to a context's intern table.

    Mirrors the interpreter's per-op ``nf.state_op`` counter emission in
    bulk (one counter event of weight ``n`` per op kind instead of ``n``
    events of weight 1), so attached collectors see identical totals per
    ``(nf, obj, kind)`` stream whether a lane ran compiled or not.
    """
    intern = ctx._op_intern
    emit = obs.enabled()
    for key, record, tkey in bump_ops:
        entry = intern.get(key)
        if entry is None:
            entry = [record, tkey, 0]
            intern[key] = entry
        entry[2] += n
        if emit:
            obs.counter(
                "nf.state_op", n, nf=ctx.nf.name, obj=tkey[0], kind=tkey[1]
            )


class CompiledDispatcher:
    """Executes traces through compiled kernels with interpreter fallback."""

    def __init__(self, parallel, ports, total_paths):
        self.parallel = parallel
        self.ports = ports
        self.chunk = DEFAULT_CHUNK
        self.fault = None
        self._fault_fired = False
        self._generation = parallel.rss.steering_generation
        self._memo = {}
        self.memo_enabled = True
        self.total_paths = total_paths
        self.supported_paths = sum(
            1 for pp in ports.values() for p in pp.programs if p.supported
        )
        self.kernel_packets = 0
        self.fallback_packets = 0
        self.chunks = 0
        self.bails = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.memo_invalidations = 0
        self.expire_ports = {
            port: pp.pairs for port, pp in ports.items() if pp.pairs
        }
        self.path_ids = np.zeros(0, dtype=np.int32)
        self._sn = parallel.strategy is Strategy.SHARED_NOTHING
        self._ctxs = [core.ctx for core in parallel.cores]
        self._bucket_ids = None
        self._trace = None
        self._trace_ref = None
        self._pkts = None
        self._fields = {}
        self._triggers = {}
        self._ts_pending = {}
        self._plans = {}
        self._epochs = {}

    # -------------------------------------------------------------- #
    # Memo/generation plumbing
    # -------------------------------------------------------------- #
    def _check_generation(self):
        gen = self.parallel.rss.steering_generation
        if gen != self._generation:
            # Re-steering moves flows between shards: every cached
            # classification was computed against the wrong shard.
            self._memo.clear()
            self._epochs.clear()
            self._generation = gen
            self.memo_invalidations += 1

    def _store_for(self, cid):
        if cid is None:
            return self._ctxs[0].store
        return self._ctxs[cid].store

    # -------------------------------------------------------------- #
    # Run setup
    # -------------------------------------------------------------- #
    def start_run(self, trace, core_ids, window_packets, bucket_ids=None):
        n = len(trace)
        self._trace = trace
        #: Per-packet indirection-table slots (elastic runs only): the
        #: fallback path installs them as ``ctx.current_bucket`` so
        #: establishment packets bucket-tag the state they create, and
        #: kernel vector scatters re-tag the rows they overwrite.
        self._bucket_ids = bucket_ids
        if trace is not self._trace_ref:
            # Packets are immutable, so the column/uid tables derived
            # from a trace stay valid for as long as the *same* trace
            # object is replayed (epochs additionally self-check their
            # state versions).  They're retained across runs for warm
            # replays and rebuilt only when a new trace shows up.
            self._trace_ref = trace
            self._pkts = [pkt for _, pkt in trace]
            self._ports_arr = np.fromiter(
                map(operator.itemgetter(0), trace), np.int64, count=n
            )
            self._ts = np.fromiter(
                map(operator.attrgetter("timestamp"), self._pkts),
                np.float64,
                count=n,
            )
            self._fields = {}
            self._plans = {}
            self._epochs = {}
        self._core_ids = core_ids
        self.path_ids = np.full(n, -1, dtype=np.int32)
        self._check_generation()
        self._triggers = self._plan_triggers()
        edges = {0, n}
        edges.update(range(self.chunk, n, self.chunk))
        if window_packets:
            edges.update(range(window_packets, n, window_packets))
        edges.update(self._triggers)
        return sorted(edges)

    def end_run(self):
        self._trace = None
        self._triggers = {}
        self._bucket_ids = None

    def _field_col(self, name):
        col = self._fields.get(name)
        if col is None:
            col = np.fromiter(
                map(operator.attrgetter(name[4:]), self._pkts),
                np.int64,
                count=len(self._pkts),
            )
            self._fields[name] = col
        return col

    def _plan_triggers(self):
        """Exact positions where ``expire_flows`` fires, per context.

        The gate is ``now - last_expiry >= 1.0`` evaluated packet-wise
        over each context's expire-port packets; replaying it over the
        trace timestamps up front lets the chunker split at precisely
        those packets so sweeps never happen mid-chunk.
        """
        triggers = {}
        if self.parallel.nf.expiration_time is None or not self.expire_ports:
            return triggers
        eports = np.fromiter(self.expire_ports, np.int64,
                             count=len(self.expire_ports))
        pmask = np.isin(self._ports_arr, eports)
        for ci, ctx in enumerate(self._ctxs):
            idxs = np.flatnonzero(pmask & (self._core_ids == ci))
            m = idxs.size
            if not m:
                continue
            tsub = self._ts[idxs]
            sorted_ts = bool(m < 2 or np.all(np.diff(tsub) >= 0))
            last = ctx._last_expiry
            j = 0
            while j < m:
                if tsub[j] - last >= 1.0:
                    triggers[int(idxs[j])] = ci
                    last = float(tsub[j])
                    if sorted_ts:
                        k = int(np.searchsorted(tsub, last + 1.0, side="left"))
                        if k <= j:
                            k = j + 1
                        while k > j + 1 and tsub[k - 1] - last >= 1.0:
                            k -= 1
                        while k < m and tsub[k] - last < 1.0:
                            k += 1
                        j = k
                    else:
                        j += 1
                else:
                    j += 1
        return triggers

    # -------------------------------------------------------------- #
    # Chunk execution
    # -------------------------------------------------------------- #
    def run_chunk(self, start, end, results):
        self.chunks += 1
        self._check_generation()
        captured = None
        ci = self._triggers.get(start)
        if ci is not None:
            ctx = self._ctxs[ci]
            port = int(self._ports_arr[start])
            ctx._now = float(self._ts[start])
            ctx._trace_on = ctx._tracer.enabled()
            ctx._ops = []
            for map_name, chain_name in self.expire_ports[port]:
                ctx.expire_flows(map_name, chain_name)
            captured = ctx._ops
            ctx._ops = []
        if self._sn:
            chunk_cores = self._core_ids[start:end]
            for cid in range(self.parallel.n_cores):
                lanes = np.flatnonzero(chunk_cores == cid) + start
                if lanes.size:
                    self._run_domain(lanes, results, cid)
        else:
            self._run_domain(np.arange(start, end), results, None)
        if captured:
            r = results[start]
            results[start] = PacketResult(
                r.kind, r.port, r.mods, list(captured) + list(r.ops),
                r.new_flow,
            )

    def _run_domain(self, lanes, results, cid):
        ports_l = self._ports_arr[lanes]
        store = self._store_for(cid)
        groups = []
        board = _DirtBoard()
        for port in np.unique(ports_l):
            g_lanes = lanes[ports_l == port]
            pp = self.ports.get(int(port))
            if pp is None:
                board.wild_all = True
                continue
            groups.append(self._classify(pp, g_lanes, cid, store))
        self._seed_board(groups, board)
        self._multi_touch(groups)
        self._fixpoint(groups, board)
        victim = self._inject_fault(groups)
        k_flag = np.zeros(lanes.size, dtype=bool)
        for g in groups:
            pos = np.searchsorted(lanes, g.g_lanes)
            for ps in g.progs:
                if ps.kmask is not None and ps.kmask.any():
                    k_flag[pos[ps.kmask]] = True
        if victim is not None:
            k_flag[np.searchsorted(lanes, victim[0])] = True
        f_lanes = lanes[~k_flag]
        self._run_fallback(f_lanes, results, cid)
        kept = 0
        for g in groups:
            kept += self._apply_group(g, results, cid, store)
        self._flush_ts(store)
        if victim is not None:
            self._apply_fault(victim, results)
            kept += 1
        self.kernel_packets += kept
        self.fallback_packets += f_lanes.size

    def _run_fallback(self, f_lanes, results, cid):
        if not f_lanes.size:
            return
        trace = self._trace
        idx = f_lanes.tolist()
        buckets = self._bucket_ids
        if cid is not None:
            ctx = self._ctxs[cid]
            if buckets is None:
                outs = starmap(ctx.run, [trace[i] for i in idx])
                for i, result in zip(idx, outs):
                    results[i] = result
            else:
                for i in idx:
                    ctx.current_bucket = int(buckets[i])
                    port, pkt = trace[i]
                    results[i] = ctx.run(port, pkt)
        else:
            ctxs = self._ctxs
            core_ids = self._core_ids
            for i in idx:
                port, pkt = trace[i]
                ctx = ctxs[core_ids[i]]
                if buckets is not None:
                    ctx.current_bucket = int(buckets[i])
                results[i] = ctx.run(port, pkt)

    # -------------------------------------------------------------- #
    # Stage 1: classification (with memoized fast path)
    # -------------------------------------------------------------- #
    def _classify(self, pp, g_lanes, cid, store):
        group = _Group(pp, g_lanes)
        plan = ep = uids = None
        if self.memo_enabled and pp.memoizable and pp.any_supported:
            plan = self._plan_for(pp)
            ep = self._epoch_for(pp, plan, cid, store)
            uids = plan.uid[g_lanes]
            assign = ep.assign[uids]
            if (assign >= 0).all():
                self._reconstruct(group, ep, uids, assign)
                self.memo_hits += g_lanes.size
                group.from_memo = True
                return group
            self.memo_misses += int((assign < 0).sum())
        self._eval_group(group, store)
        if ep is not None:
            self._memo_insert(group, plan, ep, uids)
        return group

    def _plan_for(self, pp):
        """Uid-number every packet of one port, once per run."""
        plan = self._plans.get(pp.port)
        if plan is None:
            idx = np.flatnonzero(self._ports_arr == pp.port)
            if pp.fields:
                mat = np.ascontiguousarray(
                    np.stack(
                        [self._field_col(f)[idx] for f in pp.fields], axis=1
                    )
                )
                rows = mat.view(np.dtype((np.void, mat.shape[1] * 8))).ravel()
                uniq, inverse = np.unique(rows, return_inverse=True)
                row_bytes = [u.tobytes() for u in uniq]
            else:
                row_bytes = [b""]
                inverse = np.zeros(idx.size, np.int64)
            uid = np.full(self._ports_arr.size, -1, np.int64)
            uid[idx] = inverse
            plan = _PortPlan(uid, row_bytes)
            self._plans[pp.port] = plan
        return plan

    def _epoch_for(self, pp, plan, cid, store):
        """The (shard, port) epoch for the *current* state versions."""
        versions = tuple(
            store[obj].alloc_version if kind == "chain"
            else store[obj].version
            for obj, kind in pp.read_objs
        )
        key = (cid if cid is not None else -1, pp.port)
        ep = self._epochs.get(key)
        if ep is not None and ep.versions == versions:
            return ep
        bucket_entry = self._memo.get(key)
        if bucket_entry is None or bucket_entry[0] != versions:
            bucket_entry = [versions, {}]
            self._memo[key] = bucket_entry
        bucket = bucket_entry[1]
        if len(bucket) > _MEMO_MAX:
            bucket.clear()
        ep = _Epoch(pp, versions, len(plan.row_bytes), bucket)
        if bucket:
            # Re-index the persistent (cross-run) bucket by this run's
            # uids so chunk classification is a pure array gather.
            get = bucket.get
            for u, rb in enumerate(plan.row_bytes):
                det = get(rb)
                if det is not None:
                    ep.insert(u, det)
        self._epochs[key] = ep
        return ep

    def _reconstruct(self, group, ep, uids, assign):
        """Rebuild per-program artifacts by gathering epoch columns."""
        group.assign = assign
        for pidx, ps in enumerate(group.progs):
            mask = assign == pidx
            ps.match = mask
            ps.kmask = mask.copy()
            if not mask.any():
                continue
            arts = ps.arts
            for step, cols in zip(ps.prog.steps, ep.arts[pidx]):
                if isinstance(step, _MapGet):
                    arts.append(
                        {"keys": _UidGather(cols[0], uids), "oob": None}
                    )
                elif isinstance(step, _VecPut):
                    arts.append({
                        "cells": cols[0][uids],
                        "oob": None,
                        "stored_rows": _UidGather(cols[1], uids),
                    })
                elif isinstance(step, _VecBorrow):
                    arts.append({"cells": cols[0][uids], "oob": None})
                else:  # _IsAlloc / _Rejuv
                    arts.append({
                        "cells": cols[0][uids],
                        "flags": cols[1][uids],
                        "oob": None,
                    })
            ps.result_uids = (ep.results, uids)

    def _memo_insert(self, group, plan, ep, uids):
        """Cache classifications for flows that resolved supported-clean."""
        assign = group.assign
        if assign is None:
            return
        uu, first = np.unique(uids, return_index=True)
        row_bytes = plan.row_bytes
        for u, pos in zip(uu.tolist(), first.tolist()):
            if ep.assign[u] >= 0:
                continue
            pidx = int(assign[pos])
            if pidx < 0:
                continue
            ps = group.progs[pidx]
            prog = ps.prog
            if ps.bailed or not prog.supported or ps.force_f[pos]:
                continue
            det_steps = []
            for step, art in zip(prog.steps, ps.arts):
                if isinstance(step, _MapGet):
                    det_steps.append(art["keys"][pos])
                elif isinstance(step, _VecPut):
                    det_steps.append(
                        (int(art["cells"][pos]), self._stored_row(art, pos))
                    )
                elif isinstance(step, _VecBorrow):
                    det_steps.append((int(art["cells"][pos]),))
                else:  # _IsAlloc / _Rejuv
                    det_steps.append(
                        (int(art["cells"][pos]), bool(art["flags"][pos]))
                    )
            action = None
            if prog.const_result is None:
                port = prog.port_const
                if ps.port_vals is not None:
                    port = int(ps.port_vals[pos])
                mods = tuple(
                    (name, int(vals[pos])) for name, vals in ps.mod_vals
                )
                action = (port, mods)
            det = (pidx, tuple(det_steps), action)
            ep.bucket[row_bytes[u]] = det
            ep.insert(u, det)

    @staticmethod
    def _stored_row(art, pos):
        rows = art.get("stored_rows")
        if rows is not None:
            return rows[pos]
        out = []
        for fname, col in art["stored"]:
            arr = col.arr
            v = arr[pos] if arr.ndim else arr[()]
            if col.is_float:
                is_f = True if col.fmask is None else bool(col.fmask[pos])
                out.append((fname, float(v) if is_f else int(v)))
            else:
                out.append((fname, int(v)))
        return tuple(out)

    def _eval_group(self, group, store):
        pp = group.pp
        g_lanes = group.g_lanes
        g = g_lanes.size
        base_env = {
            name: Column(self._field_col(name)[g_lanes]) for name in pp.fields
        }
        if pp.need_time:
            base_env["time"] = Column(self._ts[g_lanes])
        shared = pp.shared_ok
        env = dict(base_env)
        cache: dict = {}
        step_cache: dict = {}
        assign = np.full(g, -1, np.int64)
        claimed = np.zeros(g, dtype=bool)
        group.assign = assign
        for pidx, prog in enumerate(pp.programs):
            if not shared:
                env = dict(base_env)
                cache = {}
                step_cache = {}
            ps = group.progs[pidx]
            try:
                self._eval_program(prog, ps, env, cache, step_cache, g, store)
            except (KernelBail, OverflowError):
                ps.bailed = True
                ps.match = None
                self.bails += 1
                continue
            if prog.supported:
                m = ps.match & ~ps.force_f & ~claimed
                ps.kmask = m
                claimed |= m
                assign[m] = pidx

    def _eval_program(self, prog, ps, env, cache, step_cache, g, store):
        alive = np.ones(g, dtype=bool)
        force_f = np.zeros(g, dtype=bool)
        for tag, x in prog.items:
            if tag == "c":
                alive = np.logical_and(alive, as_bool(eval_expr(x, env, cache)))
            else:
                art = step_cache.get(x.sig)
                if art is None:
                    art = self._exec_step(x, env, cache, g, store)
                    step_cache[x.sig] = art
                ps.arts.append(art)
                oob = art.get("oob")
                if oob is not None:
                    force_f = force_f | oob
        ps.match = alive
        ps.force_f = force_f
        for aspect, obj, exprs in prog.dirt_descs:
            if exprs is None:
                ps.dirt_vals.append((aspect, obj, None))
                continue
            try:
                if aspect == "map_w":
                    arrs = [
                        _ivals(eval_expr(k, env, cache), g).tolist()
                        for k in exprs
                    ]
                    keys = (
                        [(v,) for v in arrs[0]] if len(arrs) == 1
                        else list(zip(*arrs))
                    )
                    ps.dirt_vals.append((aspect, obj, keys))
                else:
                    cells = _ivals(eval_expr(exprs[0], env, cache), g)
                    ps.dirt_vals.append((aspect, obj, cells))
            except (KernelBail, OverflowError):
                ps.dirt_vals.append((aspect, obj, None))
        if prog.supported and prog.const_result is None:
            if prog.port_expr is not None:
                ps.port_vals = _ivals(eval_expr(prog.port_expr, env, cache), g)
            ps.mod_vals = [
                (name, _ivals(eval_expr(expr, env, cache), g))
                for name, expr in prog.mods
            ]

    def _exec_step(self, step, env, cache, g, store):
        if isinstance(step, _MapGet):
            data = store[step.obj]._data
            arrs = [
                _ivals(eval_expr(k, env, cache), g).tolist()
                for k in step.keys
            ]
            keys = (
                [(v,) for v in arrs[0]] if len(arrs) == 1
                else list(zip(*arrs))
            )
            vals = [data.get(k) for k in keys]
            found = np.fromiter((v is not None for v in vals), bool, count=g)
            value = np.fromiter(
                (0 if v is None else v for v in vals), np.int64, count=g
            )
            env[step.found] = Column(found, 1.0)
            env[step.value] = Column(value)
            return {"keys": keys, "oob": None}
        if isinstance(step, _VecBorrow):
            vec = store[step.obj]
            cells = _ivals(eval_expr(step.index, env, cache), g)
            oob = (cells < 0) | (cells >= vec.capacity)
            has_oob = bool(oob.any())
            safe = np.where(oob, 0, cells) if has_oob else cells
            uniq, inv = np.unique(safe, return_inverse=True)
            slots = vec._slots
            try:
                recs = [slots[int(u)] for u in uniq]
                for fname, sym in step.fields:
                    vals = [r[fname] for r in recs]
                    env[sym] = self._value_column(vals, inv)
            except KeyError:
                raise KernelBail("missing vector field") from None
            return {"cells": cells, "oob": oob if has_oob else None}
        if isinstance(step, (_IsAlloc, _Rejuv)):
            chain = store[step.obj]
            cells = _ivals(eval_expr(step.index, env, cache), g)
            ents = chain._entries
            cap = chain.capacity
            flags = np.fromiter(
                (0 <= c < cap and ents[c].allocated for c in cells.tolist()),
                bool,
                count=g,
            )
            if isinstance(step, _IsAlloc):
                env[step.res] = Column(flags, 1.0)
            return {"cells": cells, "flags": flags, "oob": None}
        # _VecPut
        vec = store[step.obj]
        cells = _ivals(eval_expr(step.index, env, cache), g)
        oob = (cells < 0) | (cells >= vec.capacity)
        stored = []
        for fname, expr in step.stored:
            col = eval_expr(expr, env, cache)
            if col.is_float and col.fmask is not None \
                    and col.bound >= FLOAT_EXACT:
                raise KernelBail("mixed stored column beyond exact range")
            arr = np.asarray(col.arr)
            if arr.ndim == 0:
                arr = np.broadcast_to(arr, (g,))
                col = Column(arr, col.bound, col.fmask)
            stored.append((fname, col))
        return {
            "cells": cells,
            "oob": oob if bool(oob.any()) else None,
            "stored": stored,
        }

    @staticmethod
    def _value_column(vals, inv):
        """Unique-slot values -> per-lane Column, preserving int/float."""
        if any(isinstance(v, float) for v in vals):
            u_arr = np.array(vals, np.float64)
            bound = float(np.abs(u_arr).max()) if u_arr.size else 0.0
            if bound >= FLOAT_EXACT:
                raise KernelBail("vector values beyond exact float range")
            fm_u = np.fromiter(
                (isinstance(v, float) for v in vals), bool, count=len(vals)
            )
            fmask = fm_u[inv]
            return Column(
                u_arr[inv], bound, None if fmask.all() else fmask
            )
        try:
            u_arr = np.array([int(v) for v in vals], np.int64)
        except OverflowError:
            raise KernelBail("vector values beyond int64") from None
        if u_arr.size and abs(int(np.abs(u_arr).max())) >= INT_SAFE:
            raise KernelBail("vector values beyond safe int range")
        return Column(u_arr[inv])

    # -------------------------------------------------------------- #
    # Hazard analysis
    # -------------------------------------------------------------- #
    def _seed_board(self, groups, board):
        for g in groups:
            for ps in g.progs:
                prog = ps.prog
                if ps.bailed:
                    # No artifacts survived: wildcard every aspect this
                    # program could touch, including keyed suffix descs.
                    board.add_wild(prog.wild)
                    for aspect, obj, _ in prog.dirt_descs:
                        board.add(aspect, obj, None)
                elif not prog.supported:
                    if ps.match is not None and ps.match.any():
                        self._publish_dirt(board, ps, ps.match)
                else:
                    excl = ps.match & ~ps.kmask
                    if excl.any():
                        self._publish_dirt(board, ps, excl)

    def _publish_dirt(self, board, ps, mask):
        """Publish the state footprint of ``mask`` lanes of one program."""
        prog = ps.prog
        for step, art in zip(prog.steps, ps.arts):
            aspect = _step_dirt_aspect(step)
            if aspect is None:
                continue
            cells = art["cells"][mask]
            if aspect == "ts_w":
                cells = cells[art["flags"][mask]]
            if cells.size:
                board.add(aspect, step.obj, cells.tolist())
        for aspect, obj, vals in ps.dirt_vals:
            if vals is None:
                board.add(aspect, obj, None)
            elif aspect == "map_w":
                board.add(
                    aspect, obj,
                    [vals[i] for i in np.flatnonzero(mask).tolist()],
                )
            else:
                board.add(aspect, obj, vals[mask].tolist())

    def _multi_touch(self, groups):
        """Serialize same-cell vector writes: only one kernel lane may
        write a cell, and no other kernel lane may read it."""
        writer_entries = {}
        reader_entries = {}
        for g in groups:
            for ps in g.progs:
                if ps.kmask is None or not ps.kmask.any():
                    continue
                for si, step in enumerate(ps.prog.steps):
                    if isinstance(step, _VecPut):
                        writer_entries.setdefault(step.obj, []).append(
                            (g, ps, si)
                        )
                    elif isinstance(step, _VecBorrow):
                        reader_entries.setdefault(step.obj, []).append(
                            (g, ps, si)
                        )
        for obj, writers in writer_entries.items():
            owner = {}
            for g, ps, si in writers:
                lanes = g.g_lanes
                cells = ps.arts[si]["cells"]
                for p in np.flatnonzero(ps.kmask).tolist():
                    cell = int(cells[p])
                    lane = int(lanes[p])
                    prev = owner.get(cell)
                    if prev is None:
                        owner[cell] = lane
                    elif prev != lane:
                        owner[cell] = -2
            multi = {c for c, l in owner.items() if l == -2}
            for g, ps, si in writers:
                lanes = g.g_lanes
                cells = ps.arts[si]["cells"]
                for p in np.flatnonzero(ps.kmask).tolist():
                    if int(cells[p]) in multi:
                        ps.kmask[p] = False
            for g, ps, si in reader_entries.get(obj, ()):
                lanes = g.g_lanes
                cells = ps.arts[si]["cells"]
                for p in np.flatnonzero(ps.kmask).tolist():
                    cell = int(cells[p])
                    own = owner.get(cell)
                    if own is not None and own != int(lanes[p]):
                        ps.kmask[p] = False

    def _fixpoint(self, groups, board):
        for _ in range(_FIXPOINT_MAX):
            changed = False
            for g in groups:
                for ps in g.progs:
                    if ps.kmask is None or not ps.kmask.any():
                        continue
                    dem = self._demote_mask(ps, board)
                    if dem is not None and dem.any():
                        ps.kmask &= ~dem
                        self._publish_dirt(board, ps, dem)
                        changed = True
            if not changed:
                return
        # Fixpoint overran: demote every remaining kernel lane.
        for g in groups:
            for ps in g.progs:
                if ps.kmask is not None and ps.kmask.any():
                    mask = ps.kmask.copy()
                    ps.kmask[:] = False
                    self._publish_dirt(board, ps, mask)

    def _demote_mask(self, ps, board):
        kmask = ps.kmask
        if board.wild_all:
            return kmask.copy()
        dem = None
        for step, art in zip(ps.prog.steps, ps.arts):
            if isinstance(step, _MapGet):
                d = board.maps.get(step.obj, ())
                if d is None:
                    return kmask.copy()
                if d:
                    keys = art["keys"]
                    hit = [
                        p for p in np.flatnonzero(kmask).tolist()
                        if keys[p] in d
                    ]
                    if hit:
                        dem = self._mark(dem, kmask, hit)
            elif isinstance(step, _VecBorrow):
                dem = self._cell_demote(
                    dem, kmask, art["cells"], board.vec_w.get(step.obj, ())
                )
            elif isinstance(step, _VecPut):
                dem = self._cell_demote(
                    dem, kmask, art["cells"], board.vec_w.get(step.obj, ())
                )
                dem = self._cell_demote(
                    dem, kmask, art["cells"], board.vec_r.get(step.obj, ())
                )
            elif isinstance(step, _Rejuv):
                dem = self._cell_demote(
                    dem, kmask, art["cells"], board.ts_w.get(step.obj, ())
                )
                if step.obj in board.alloc:
                    stale = kmask & ~art["flags"]
                    if stale.any():
                        dem = stale if dem is None else (dem | stale)
            else:  # _IsAlloc
                if step.obj in board.alloc:
                    stale = kmask & ~art["flags"]
                    if stale.any():
                        dem = stale if dem is None else (dem | stale)
            if dem is not None and not (kmask & ~dem).any():
                break
        return dem

    @staticmethod
    def _mark(dem, kmask, positions):
        if dem is None:
            dem = np.zeros(kmask.shape, dtype=bool)
        dem[positions] = True
        return dem

    def _cell_demote(self, dem, kmask, cells, dirty):
        if dirty is None:
            return kmask.copy() if dem is None else (dem | kmask)
        if not dirty:
            return dem
        hit = kmask & np.isin(
            cells, np.fromiter(dirty, np.int64, count=len(dirty))
        )
        if hit.any():
            return hit if dem is None else (dem | hit)
        return dem

    # -------------------------------------------------------------- #
    # Fault injection (the fuzz oracle's `skew-kernel` leg)
    # -------------------------------------------------------------- #
    def _inject_fault(self, groups):
        if self.fault != "skew-kernel" or self._fault_fired:
            return None
        for g in groups:
            for ps in g.progs:
                if ps.kmask is not None and ps.kmask.any():
                    pos = int(np.flatnonzero(ps.kmask)[0])
                    ps.kmask[pos] = False
                    self._fault_fired = True
                    return (int(g.g_lanes[pos]), ps.prog)
        return None

    def _apply_fault(self, victim, results):
        lane, prog = victim
        kind = (
            ActionKind.FORWARD if prog.kind is ActionKind.DROP
            else ActionKind.DROP
        )
        port = 0 if kind is ActionKind.FORWARD else None
        results[lane] = PacketResult(kind, port, {}, prog.ops_list, False)
        self.path_ids[lane] = prog.pid

    # -------------------------------------------------------------- #
    # Stage 2: results, op accounting, scatters
    # -------------------------------------------------------------- #
    def _apply_group(self, group, results, cid, store):
        kept = 0
        g_lanes = group.g_lanes
        for ps in group.progs:
            if ps.kmask is None or not ps.kmask.any():
                continue
            prog = ps.prog
            kidx = np.flatnonzero(ps.kmask)
            lanes = g_lanes[kidx]
            lanes_l = lanes.tolist()
            n_k = kidx.size
            kept += n_k
            self.path_ids[lanes] = prog.pid
            # Lifetime op-count accounting, batched per context.
            if cid is not None:
                _bump(self._ctxs[cid], prog.bump_ops, n_k)
            else:
                counts = np.bincount(
                    self._core_ids[lanes], minlength=len(self._ctxs)
                )
                for c in np.flatnonzero(counts).tolist():
                    _bump(self._ctxs[c], prog.bump_ops, int(counts[c]))
            # Results.
            if prog.const_result is not None:
                r = prog.const_result
                for i in lanes_l:
                    results[i] = r
            elif ps.result_uids is not None:
                by_uid, uids = ps.result_uids
                for u, i in zip(uids[kidx].tolist(), lanes_l):
                    results[i] = by_uid[u]
            else:
                kind = prog.kind
                ops = prog.ops_list
                port_vals = ps.port_vals
                port_const = prog.port_const
                mod_vals = ps.mod_vals
                for p, i in zip(kidx.tolist(), lanes_l):
                    port = port_const if port_vals is None \
                        else int(port_vals[p])
                    mods = {name: int(vals[p]) for name, vals in mod_vals}
                    results[i] = PacketResult(kind, port, mods, ops, False)
            # Scatters: dchain timestamp refreshes and vector stores.
            # Hazard demotion guarantees cell-disjointness with every
            # interpreter lane and every other kernel lane, so apply
            # order only matters lane-internally (step order below).
            for step, art in zip(prog.steps, ps.arts):
                if isinstance(step, _Rejuv):
                    # Lanes from *different* port groups may rejuvenate
                    # the same cell; defer and apply in lane order so
                    # last-touched matches the interpreter's trace order.
                    pend = self._ts_pending.setdefault(step.obj, [])
                    live = kidx[art["flags"][kidx]]
                    pend.append((g_lanes[live], art["cells"][live]))
                elif isinstance(step, _VecPut):
                    vec = store[step.obj]
                    cells = art["cells"]
                    # Elastic runs re-tag overwritten rows with the
                    # writing packet's bucket (same bucket for every
                    # packet of a flow, so re-tagging is idempotent).
                    bindex = (
                        self._ctxs[cid].bucket_index
                        if cid is not None and self._bucket_ids is not None
                        else None
                    )
                    if bindex is not None:
                        bucket_ids = self._bucket_ids
                        for p in kidx.tolist():
                            bindex.note_index(
                                step.obj,
                                int(cells[p]),
                                int(bucket_ids[g_lanes[p]]),
                            )
                    rows = art.get("stored_rows")
                    if rows is not None:
                        for p in kidx.tolist():
                            vec.put(int(cells[p]), dict(rows[p]))
                    else:
                        stored = art["stored"]
                        for p in kidx.tolist():
                            rec = {}
                            for fname, col in stored:
                                v = col.arr[p]
                                if col.is_float:
                                    is_f = (
                                        True if col.fmask is None
                                        else bool(col.fmask[p])
                                    )
                                    rec[fname] = (
                                        float(v) if is_f else int(v)
                                    )
                                else:
                                    rec[fname] = int(v)
                            vec.put(int(cells[p]), rec)
        return kept

    def _flush_ts(self, store):
        if not self._ts_pending:
            return
        ts = self._ts
        for obj, parts in self._ts_pending.items():
            if len(parts) == 1:
                lanes, cells = parts[0]
            else:
                lanes = np.concatenate([p[0] for p in parts])
                cells = np.concatenate([p[1] for p in parts])
            if not lanes.size:
                continue
            # Lane order is the interpreter's apply order; only the
            # last write per cell is observable before the next chunk
            # boundary, so collapse to one store per touched cell.
            order = np.argsort(lanes, kind="stable")
            cells_s = cells[order]
            uniq, first_rev = np.unique(cells_s[::-1], return_index=True)
            last_pos = cells_s.size - 1 - first_rev
            vals = ts[lanes[order[last_pos]]]
            ents = store[obj]._entries
            for c, t in zip(uniq.tolist(), vals.tolist()):
                ents[c].last_touched = t
        self._ts_pending = {}

    # -------------------------------------------------------------- #
    # Accounting
    # -------------------------------------------------------------- #
    def stats(self):
        total = self.kernel_packets + self.fallback_packets
        return {
            "paths": self.total_paths,
            "supported_paths": self.supported_paths,
            "kernel_packets": self.kernel_packets,
            "fallback_packets": self.fallback_packets,
            "coverage": self.kernel_packets / total if total else 0.0,
            "fallback_rate": self.fallback_packets / total if total else 0.0,
            "chunks": self.chunks,
            "bails": self.bails,
            "memo": {
                "hits": self.memo_hits,
                "misses": self.memo_misses,
                "invalidations": self.memo_invalidations,
            },
            "generation": self._generation,
        }

    def run_stats(self, kernel_before, fallback_before):
        kernel = self.kernel_packets - kernel_before
        fallback = self.fallback_packets - fallback_before
        total = kernel + fallback
        return {
            "paths": self.total_paths,
            "supported_paths": self.supported_paths,
            "kernel_packets": kernel,
            "fallback_packets": fallback,
            "coverage": kernel / total if total else 0.0,
            "fallback_rate": fallback / total if total else 0.0,
        }
