"""Functional multicore simulation: real packets, real RSS, real state.

Where :mod:`repro.sim.perf` predicts *rates*, this module executes the
generated parallel NF packet-by-packet: every packet is hashed by the
actual Toeplitz keys, steered through the actual indirection table, and
processed against the core's actual state shard.  It is the substrate for
semantic-equivalence checking and for measuring per-core load under skew.

Two execution paths produce bit-identical results:

* the **fast path** (default) steers the whole trace at once — vectorized
  field extraction, batched Toeplitz hashing of the *unique* flows only
  (a per-flow dispatch cache skips re-hashing repeated flows), batched
  indirection lookups — then runs the per-packet NF code grouped by core
  where state shards are independent;
* the **reference path** (``fastpath=False``) is the original
  packet-at-a-time loop through :meth:`ParallelNF.process`, kept as the
  oracle the fast path is benchmarked and property-tested against
  (``benchmarks/bench_fastpath.py``, ``tests/sim/test_fastpath.py``).
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from itertools import starmap
from typing import Iterator, Sequence

import numpy as np

from repro import obs
from repro.core.codegen import ParallelNF, Strategy
from repro.nf.api import ActionKind
from repro.nf.runtime import PacketResult
from repro.rs3.toeplitz import hash_input_matrix
from repro.sim.compiled import compile_parallel
from repro.traffic.generator import Trace

__all__ = [
    "FlowSteeringCache",
    "FunctionalRun",
    "run_functional",
    "ChainRun",
    "run_chain",
]

#: Stable small-int code per action, backing FunctionalRun's action array.
ACTION_CODES: dict[ActionKind, int] = {
    kind: code for code, kind in enumerate(ActionKind)
}
_KIND_FOR_CODE: tuple[ActionKind, ...] = tuple(ActionKind)

#: Ops that touch state without being a "hard" write (see write_fraction).
_SOFT_WRITE_OPS = frozenset({"dchain_rejuvenate", "expire"})


class FlowSteeringCache:
    """Per-flow dispatch cache: RSS hash input ⟶ core, across traces.

    RSS steering is a pure function of the packet's hash-input bytes and
    the ingress port, so the first packet of a flow fixes the core for
    every later packet of that flow.  The cache works at *unique-flow*
    granularity: a trace is reduced with ``np.unique`` first, only the
    rows never seen before are Toeplitz-hashed, and the per-packet fan-out
    back is a single vectorized gather.

    The one way a cached decision can go stale is the indirection table
    being rebalanced underneath it (RSS++ moves entries between queues),
    so the cache snapshots :attr:`RssConfiguration.steering_generation`
    and flushes itself whenever the tables change.

    Counters: ``fastpath.hits`` counts packets dispatched from the cache,
    ``fastpath.misses`` counts unique flows that had to be hashed.
    """

    def __init__(self, rss) -> None:
        self.rss = rss
        self._cores: dict[tuple[int, bytes], int] = {}
        # Indirection-table slot per cached flow, kept in a parallel dict
        # (not folded into _cores values): elastic runs need the slot to
        # bucket-tag state, while existing consumers — and the fuzzer's
        # stale-cache fault injector — treat _cores values as plain core
        # ints.
        self._slots: dict[tuple[int, bytes], int] = {}
        self._generation = rss.steering_generation
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        # Whole-trace memo: steering is a pure function of (generation,
        # packet bytes), so replaying the *same* trace object against an
        # unchanged generation can skip hashing entirely.
        self._trace_memo: tuple | None = None

    def __len__(self) -> int:
        return len(self._cores)

    def invalidate(self) -> None:
        """Drop every cached dispatch decision."""
        self._cores.clear()
        self._slots.clear()
        self._trace_memo = None
        self._generation = self.rss.steering_generation
        self.invalidations += 1

    def stats(self) -> dict:
        """Accounting snapshot for oracles and reports.

        ``generation`` is the steering generation the current entries
        were hashed under; a mismatch with
        ``rss.steering_generation`` means the next :meth:`steer` call
        will self-invalidate.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._cores),
            "invalidations": self.invalidations,
            "generation": self._generation,
        }

    def _check_generation(self) -> None:
        if self._generation != self.rss.steering_generation:
            self.invalidate()

    def steer(
        self,
        trace: Sequence[tuple[int, "object"]],
        *,
        with_misses: bool = False,
        with_slots: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, ...]:
        """Core ids for every packet of ``trace``, in trace order.

        ``with_misses=True`` additionally returns a per-packet boolean
        mask — True where the packet's flow had to be hashed (a cache
        miss) — which is what lets the telemetry plane attribute
        ``steer_hits``/``steer_misses`` to windows without re-probing
        the cache per packet.

        ``with_slots=True`` additionally returns the per-packet
        indirection-table slot (the steering *bucket*), which elastic
        runs use to bucket-tag the state each packet creates.  Return
        order is ``cores[, miss][, slots]``.
        """
        self._check_generation()
        memo = self._trace_memo
        if memo is not None and memo[0] is trace and (
            not with_slots or memo[3] is not None
        ):
            # Every flow of this exact trace is already cached; replay
            # the decisions and the counters a warm re-steer would emit.
            _, memo_cores, port_counts, memo_slots = memo
            n = len(trace)
            self.hits += n
            if obs.enabled():
                for port, count in port_counts:
                    obs.counter("fastpath.misses", 0, port=port)
                    obs.counter("fastpath.hits", count, port=port)
            out: list[np.ndarray] = [memo_cores.copy()]
            if with_misses:
                out.append(np.zeros(n, dtype=bool))
            if with_slots:
                out.append(memo_slots.copy())
            return out[0] if len(out) == 1 else tuple(out)
        cores = np.zeros(len(trace), dtype=np.int64)
        miss = np.zeros(len(trace), dtype=bool) if with_misses else None
        slots = np.zeros(len(trace), dtype=np.int64) if with_slots else None
        by_port: dict[int, list[int]] = {}
        for i, (port, _) in enumerate(trace):
            by_port.setdefault(port, []).append(i)
        for port, indices in by_port.items():
            port_cores, port_miss, port_slots = self._steer_port(
                port, [trace[i][1] for i in indices], with_misses, with_slots
            )
            cores[indices] = port_cores
            if miss is not None and port_miss is not None:
                miss[indices] = port_miss
            if slots is not None and port_slots is not None:
                slots[indices] = port_slots
        self._trace_memo = (
            trace,
            cores.copy(),
            [(port, len(indices)) for port, indices in by_port.items()],
            slots.copy() if slots is not None else None,
        )
        out = [cores]
        if with_misses:
            out.append(miss)
        if with_slots:
            out.append(slots)
        return out[0] if len(out) == 1 else tuple(out)

    def _steer_port(
        self,
        port: int,
        packets: list,
        with_misses: bool = False,
        with_slots: bool = False,
    ) -> tuple[np.ndarray, np.ndarray | None, np.ndarray | None]:
        config = self.rss.port_config(port)
        matrix = hash_input_matrix(packets, config.option)
        if matrix.shape[1] == 0:
            # Degenerate empty field option: every packet hashes alike.
            core = config.table.lookup(0)
            mask = np.zeros(len(packets), dtype=bool) if with_misses else None
            slots = (
                np.zeros(len(packets), dtype=np.int64) if with_slots else None
            )
            return np.full(len(packets), core, dtype=np.int64), mask, slots
        # Collapse the trace to its unique flows: one void view per row
        # lets np.unique treat each hash input as an opaque scalar.
        rows = np.ascontiguousarray(matrix).view(
            np.dtype((np.void, matrix.shape[1]))
        ).ravel()
        unique_rows, inverse = np.unique(rows, return_inverse=True)
        unique_cores = np.zeros(len(unique_rows), dtype=np.int64)
        unique_slots = (
            np.zeros(len(unique_rows), dtype=np.int64) if with_slots else None
        )
        missing: list[int] = []
        cache = self._cores
        slot_cache = self._slots
        for u, row in enumerate(unique_rows):
            cached = cache.get((port, row.tobytes()))
            if cached is None:
                missing.append(u)
            else:
                unique_cores[u] = cached
                if unique_slots is not None:
                    unique_slots[u] = slot_cache.get((port, row.tobytes()), 0)
        if missing:
            missing_rows = unique_rows[missing].view(np.uint8).reshape(
                len(missing), matrix.shape[1]
            )
            hashes = config.hash_rows(missing_rows)
            steered = config.table.steer_batch(hashes)
            hash_slots = np.asarray(hashes, dtype=np.int64) & (
                config.table.size - 1
            )
            for u, core, slot in zip(missing, steered, hash_slots):
                unique_cores[u] = core
                row_bytes = unique_rows[u].tobytes()
                cache[(port, row_bytes)] = int(core)
                slot_cache[(port, row_bytes)] = int(slot)
                if unique_slots is not None:
                    unique_slots[u] = slot
        counts = np.bincount(inverse, minlength=len(unique_rows))
        miss_packets = int(counts[missing].sum()) if missing else 0
        self.misses += len(missing)
        self.hits += len(packets) - miss_packets
        if obs.enabled():
            obs.counter("fastpath.misses", len(missing), port=port)
            obs.counter("fastpath.hits", len(packets) - miss_packets, port=port)
        mask = None
        if with_misses:
            # Same gather trick as the core lookup below: a per-unique
            # miss flag expanded through ``inverse`` is O(U + N), where
            # np.isin would sort ``missing`` per call.
            miss_unique = np.zeros(len(unique_rows), dtype=bool)
            if missing:
                miss_unique[missing] = True
            mask = miss_unique[inverse]
        slots_out = (
            unique_slots[inverse] if unique_slots is not None else None
        )
        return unique_cores[inverse], mask, slots_out


class _ResultsView(Sequence):
    """The classic ``[(core_id, PacketResult), ...]`` list, as a view.

    FunctionalRun stores core ids in a NumPy array and the PacketResults
    in a flat list; this view zips them on demand so existing callers
    (tests, examples, the equivalence checker) keep their list API
    without the run paying for tuple materialization per packet.
    """

    __slots__ = ("_run",)

    def __init__(self, run: "FunctionalRun") -> None:
        self._run = run

    def __len__(self) -> int:
        return self._run.n_packets

    def __getitem__(self, index):
        run = self._run
        if isinstance(index, slice):
            indices = range(*index.indices(run.n_packets))
            return [
                (int(run._core_ids[i]), run._packet_results[i])
                for i in indices
            ]
        if index < 0:
            index += run.n_packets
        if not 0 <= index < run.n_packets:
            raise IndexError("results index out of range")
        return (int(run._core_ids[index]), run._packet_results[index])

    def __iter__(self) -> Iterator[tuple[int, PacketResult]]:
        run = self._run
        core_ids = run._core_ids
        for i, result in enumerate(run._packet_results):
            yield (int(core_ids[i]), result)

    def __eq__(self, other) -> bool:
        if isinstance(other, (_ResultsView, list, tuple)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other)
            )
        return NotImplemented

    def append(self, item: tuple[int, PacketResult]) -> None:
        """List-compatible append: record one ``(core_id, result)``."""
        core_id, result = item
        self._run.add(core_id, result)


@dataclass
class FunctionalRun:
    """Results of pushing one trace through a parallel NF.

    Storage is array-backed: core ids and action codes live in
    preallocated NumPy arrays (grown geometrically when a run outlives
    its initial capacity) and the per-packet :class:`PacketResult`
    objects in a flat list.  ``results`` exposes the familiar
    ``[(core_id, result), ...]`` sequence as a zero-copy view, and the
    aggregate metrics are vectorized (``np.bincount``) and cached rather
    than re-looping over the results on every property access.
    """

    parallel: ParallelNF
    capacity: int = 0

    def __post_init__(self) -> None:
        capacity = max(int(self.capacity), 0)
        self._core_ids = np.zeros(capacity, dtype=np.int64)
        self._action_codes = np.zeros(capacity, dtype=np.int8)
        #: Prefix of ``_action_codes`` filled so far; bulk installs defer
        #: the per-result enum lookup until a metric actually needs it.
        self._codes_filled = 0
        self._packet_results: list[PacketResult] = []
        self._n = 0
        self._cache: dict[str, object] = {}

    # -------------------------------------------------------------- #
    # Storage
    # -------------------------------------------------------------- #
    def _ensure_capacity(self, n: int) -> None:
        if n <= len(self._core_ids):
            return
        new_size = max(n, 2 * len(self._core_ids), 1024)
        self._core_ids = np.resize(self._core_ids, new_size)
        self._action_codes = np.resize(self._action_codes, new_size)

    def add(self, core_id: int, result: PacketResult) -> None:
        """Record one processed packet."""
        i = self._n
        self._ensure_capacity(i + 1)
        self._core_ids[i] = core_id
        self._action_codes[i] = ACTION_CODES[result.kind]
        if self._codes_filled == i:
            self._codes_filled = i + 1
        self._packet_results.append(result)
        self._n = i + 1
        self._cache.clear()

    def _bulk_install(
        self, core_ids: np.ndarray, results: list[PacketResult]
    ) -> None:
        """Fast-path fill: all packets of a trace at once.

        Action codes are *not* materialized here — ``_fill_codes`` does it
        lazily on the first metric access, keeping the per-result enum
        lookup out of the simulation's timed path.
        """
        n = len(results)
        self._ensure_capacity(self._n + n)
        start = self._n
        self._core_ids[start : start + n] = core_ids
        self._packet_results.extend(results)
        self._n = start + n
        self._cache.clear()

    def _fill_codes(self) -> None:
        if self._codes_filled < self._n:
            start = self._codes_filled
            codes = ACTION_CODES
            self._action_codes[start : self._n] = np.fromiter(
                (codes[r.kind] for r in self._packet_results[start : self._n]),
                dtype=np.int8,
                count=self._n - start,
            )
            self._codes_filled = self._n

    @property
    def results(self) -> _ResultsView:
        return _ResultsView(self)

    @property
    def core_ids(self) -> np.ndarray:
        """Core of each packet, in trace order (read-only array view)."""
        view = self._core_ids[: self._n]
        view.flags.writeable = False
        return view

    @property
    def action_codes(self) -> np.ndarray:
        """Per-packet :data:`ACTION_CODES` value (read-only array view)."""
        self._fill_codes()
        view = self._action_codes[: self._n]
        view.flags.writeable = False
        return view

    @property
    def n_packets(self) -> int:
        return self._n

    # -------------------------------------------------------------- #
    # Metrics (vectorized, cached until the next add)
    # -------------------------------------------------------------- #
    def core_counts(self) -> np.ndarray:
        cached = self._cache.get("core_counts")
        if cached is None:
            cached = np.bincount(
                self._core_ids[: self._n], minlength=self.parallel.n_cores
            ).astype(np.int64)
            self._cache["core_counts"] = cached
        return cached.copy()

    def core_shares(self) -> np.ndarray:
        counts = self.core_counts().astype(np.float64)
        total = counts.sum()
        return counts / total if total else counts

    def imbalance(self) -> float:
        """max-share / fair-share: 1.0 is perfect balance."""
        shares = self.core_shares()
        return float(shares.max() * self.parallel.n_cores)

    def action_counts(self) -> dict[ActionKind, int]:
        cached = self._cache.get("action_counts")
        if cached is None:
            self._fill_codes()
            counts = np.bincount(
                self._action_codes[: self._n], minlength=len(_KIND_FOR_CODE)
            )
            cached = {
                _KIND_FOR_CODE[code]: int(count)
                for code, count in enumerate(counts)
                if count
            }
            self._cache["action_counts"] = cached
        return dict(cached)

    def hard_write_flags(self) -> np.ndarray:
        """Per-packet flag: performed a hard (non-aging) state write.

        Computed once per run state (single pass over the op records) and
        cached; ``write_fraction`` is a vectorized mean over it.
        """
        cached = self._cache.get("hard_writes")
        if cached is None:
            soft = _SOFT_WRITE_OPS
            cached = np.fromiter(
                (
                    any(op.write and op.op not in soft for op in result.ops)
                    for result in self._packet_results
                ),
                dtype=bool,
                count=self._n,
            )
            cached.flags.writeable = False
            self._cache["hard_writes"] = cached
        return cached

    def write_fraction(self) -> float:
        """Fraction of packets performing a hard (non-aging) state write."""
        if not self._n:
            return 0.0
        return float(self.hard_write_flags().sum()) / self._n


def _window_rows(
    parallel: ParallelNF,
    before: list[tuple[int, int, int, int]],
    packets: Sequence[int],
    locked: frozenset,
    hits: Sequence[int] | None = None,
    misses: Sequence[int] | None = None,
) -> list[list[int]]:
    """Per-core telemetry rows for one window, from ctx snapshot deltas.

    Row order matches :data:`repro.obs.telemetry.METRICS`.  Because the
    rows are deltas of the same lifetime counters the aggregate metrics
    read, window sums telescope exactly to the run totals (the
    conservation property the telemetry tests pin down).
    """
    rows: list[list[int]] = []
    for core_id, core in enumerate(parallel.cores):
        r0, w0, nf0, lw0 = before[core_id]
        r1, w1, nf1, lw1 = core.ctx.stat_snapshot(locked)
        rows.append(
            [
                int(packets[core_id]),
                r1 - r0,
                w1 - w0,
                nf1 - nf0,
                lw1 - lw0,
                int(hits[core_id]) if hits is not None else 0,
                int(misses[core_id]) if misses is not None else 0,
            ]
        )
    return rows


def _run_reference(
    parallel: ParallelNF, trace: Trace, run: FunctionalRun
) -> FunctionalRun:
    """The seed packet-at-a-time path: scalar RSS per packet (the oracle)."""
    sink = obs.active_telemetry()
    if sink is None:
        for port, pkt in trace:
            run.add(*parallel.process(port, pkt))
        return run
    # Telemetry attached: same per-packet loop, with a window boundary
    # every ``window_packets`` packets.  No steering cache on this path,
    # so steer_hits/steer_misses stay zero.
    locked = parallel.lock_plan.locked
    n = len(trace)
    start = 0
    while start < n:
        end = min(start + sink.window_packets, n)
        before = [core.ctx.stat_snapshot(locked) for core in parallel.cores]
        packets = [0] * parallel.n_cores
        for i in range(start, end):
            core_id, result = parallel.process(*trace[i])
            run.add(core_id, result)
            packets[core_id] += 1
        sink.record_window(_window_rows(parallel, before, packets, locked))
        start = end
    return run


def _execute_slice(
    parallel: ParallelNF,
    trace: Trace,
    core_ids: np.ndarray,
    results: list,
    start: int,
    end: int,
    buckets: np.ndarray | None = None,
) -> None:
    """Run ``trace[start:end]`` on pre-steered cores, filling ``results``.

    ``buckets`` (elastic runs) carries the per-packet indirection-table
    slot; it is installed as ``ctx.current_bucket`` before each packet so
    created state gets bucket-tagged for live migration.
    """
    if parallel.strategy is Strategy.SHARED_NOTHING:
        # State shards are per-core and traces are timestamp-ordered,
        # so each core's packets can run as one tight batch: same
        # per-core arrival order, identical per-packet results,
        # better locality.  starmap keeps the dispatch loop in C.
        chunk = core_ids[start:end]
        for core_id, core in enumerate(parallel.cores):
            idx = (np.flatnonzero(chunk == core_id) + start).tolist()
            if not idx:
                continue
            if buckets is None:
                outs = starmap(core.ctx.run, [trace[i] for i in idx])
                for i, result in zip(idx, outs):
                    results[i] = result
            else:
                ctx = core.ctx
                for i in idx:
                    ctx.current_bucket = int(buckets[i])
                    port, pkt = trace[i]
                    results[i] = ctx.run(port, pkt)
    else:
        # Shared state store: cross-core interleaving is observable,
        # keep strict trace order.
        ctxs = [core.ctx for core in parallel.cores]
        for i in range(start, end):
            port, pkt = trace[i]
            results[i] = ctxs[core_ids[i]].run(port, pkt)


def _run_fastpath(
    parallel: ParallelNF,
    trace: Trace,
    run: FunctionalRun,
    flow_cache: FlowSteeringCache | None,
) -> FunctionalRun:
    """Batched steering + grouped execution, bit-identical to the oracle."""
    cache = flow_cache if flow_cache is not None else FlowSteeringCache(parallel.rss)
    sink = obs.active_telemetry()
    elastic = parallel.elastic
    buckets: np.ndarray | None = None
    if sink is None:
        if elastic:
            core_ids, buckets = cache.steer(trace, with_slots=True)
        else:
            core_ids = cache.steer(trace)
        miss_mask = None
    elif elastic:
        core_ids, miss_mask, buckets = cache.steer(
            trace, with_misses=True, with_slots=True
        )
    else:
        core_ids, miss_mask = cache.steer(trace, with_misses=True)
    n = len(trace)
    results: list[PacketResult | None] = [None] * n
    stats_before = [_ctx_stat_snapshot(core.ctx) for core in parallel.cores]
    # Pause the cyclic GC for the batch: the loop allocates one result
    # (plus its mods/ops containers) per packet and frees nothing, so
    # generational collections triggered mid-batch only re-scan live
    # objects — worth ~15% of the whole per-packet budget at trace scale.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        if sink is None:
            _execute_slice(parallel, trace, core_ids, results, 0, n, buckets)
        elif n:
            # Telemetry attached: execute in window-sized chunks, with
            # one O(cores) snapshot delta per boundary.  Per-core order
            # is preserved across chunk boundaries, so the results stay
            # bit-identical to the plain fast path.  All O(n) work — the
            # per-core partition and the per-window packet/miss counts —
            # happens once up front; the chunk loop itself only slices
            # precomputed lists, keeping the telemetry surcharge to the
            # O(windows x cores) snapshots the design budgets for.
            locked = parallel.lock_plan.locked
            n_cores = parallel.n_cores
            edges = np.append(np.arange(0, n, sink.window_packets), n)
            n_chunks = len(edges) - 1
            flat = (np.arange(n) // sink.window_packets) * n_cores + core_ids
            pkt_counts = np.bincount(
                flat, minlength=n_chunks * n_cores
            ).reshape(n_chunks, n_cores)
            miss_counts = np.bincount(
                flat[miss_mask], minlength=n_chunks * n_cores
            ).reshape(n_chunks, n_cores)
            shared_nothing = parallel.strategy is Strategy.SHARED_NOTHING
            if shared_nothing:
                # One partition pass per core (exactly what the plain
                # fast path does), then searchsorted window boundaries
                # into each core's private order.
                idx_by_core: list[list[int]] = []
                pkts_by_core: list[list] = []
                bounds_by_core: list[np.ndarray] = []
                for core_id in range(n_cores):
                    order = np.flatnonzero(core_ids == core_id)
                    idx = order.tolist()
                    idx_by_core.append(idx)
                    pkts_by_core.append([trace[i] for i in idx])
                    bounds_by_core.append(np.searchsorted(order, edges))
            for k in range(n_chunks):
                before = [
                    core.ctx.stat_snapshot(locked) for core in parallel.cores
                ]
                if shared_nothing:
                    for core_id, core in enumerate(parallel.cores):
                        bounds = bounds_by_core[core_id]
                        lo, hi = int(bounds[k]), int(bounds[k + 1])
                        if lo == hi:
                            continue
                        if buckets is None:
                            outs = starmap(
                                core.ctx.run, pkts_by_core[core_id][lo:hi]
                            )
                            for i, result in zip(
                                idx_by_core[core_id][lo:hi], outs
                            ):
                                results[i] = result
                        else:
                            ctx = core.ctx
                            for i in idx_by_core[core_id][lo:hi]:
                                ctx.current_bucket = int(buckets[i])
                                port, pkt = trace[i]
                                results[i] = ctx.run(port, pkt)
                else:
                    _execute_slice(
                        parallel, trace, core_ids, results,
                        int(edges[k]), int(edges[k + 1]), buckets,
                    )
                misses = miss_counts[k]
                sink.record_window(
                    _window_rows(
                        parallel, before, pkt_counts[k], locked,
                        hits=pkt_counts[k] - misses, misses=misses,
                    )
                )
    finally:
        if gc_was_enabled:
            gc.enable()
    _reconcile_core_stats(parallel, core_ids, stats_before)
    run._bulk_install(core_ids, results)
    return run


#: Cached-compile sentinel: ``compile_parallel`` returned None once, so
#: don't retry it on every run of the same ParallelNF.
_COMPILE_FAILED = object()


def _get_dispatcher(parallel: ParallelNF):
    """Compile (once) and cache the kernel dispatcher on the ParallelNF."""
    cached = getattr(parallel, "_compiled_dispatcher", None)
    if cached is _COMPILE_FAILED:
        return None
    if cached is not None:
        return cached
    dispatcher = compile_parallel(parallel)
    parallel._compiled_dispatcher = (
        dispatcher if dispatcher is not None else _COMPILE_FAILED
    )
    return dispatcher


def _run_compiled(
    parallel: ParallelNF,
    trace: Trace,
    run: FunctionalRun,
    flow_cache: FlowSteeringCache | None,
    dispatcher,
) -> FunctionalRun:
    """Fast path with compiled kernels: chunked classify/apply execution.

    Mirrors :func:`_run_fastpath` exactly (steering, telemetry windows,
    stat reconciliation) but hands each chunk to the
    :class:`repro.sim.compiled.CompiledDispatcher`, which runs kernel
    lanes vectorized and falls back to the interpreter per lane.  Chunk
    edges include every telemetry window boundary, so recorded windows
    stay bit-identical to the interpreter fast path.
    """
    cache = flow_cache if flow_cache is not None else FlowSteeringCache(parallel.rss)
    sink = obs.active_telemetry()
    elastic = parallel.elastic
    buckets: np.ndarray | None = None
    if sink is None:
        if elastic:
            core_ids, buckets = cache.steer(trace, with_slots=True)
        else:
            core_ids = cache.steer(trace)
        miss_mask = None
        wp = 0
    else:
        if elastic:
            core_ids, miss_mask, buckets = cache.steer(
                trace, with_misses=True, with_slots=True
            )
        else:
            core_ids, miss_mask = cache.steer(trace, with_misses=True)
        wp = sink.window_packets
    n = len(trace)
    results: list[PacketResult | None] = [None] * n
    stats_before = [_ctx_stat_snapshot(core.ctx) for core in parallel.cores]
    k0 = dispatcher.kernel_packets
    f0 = dispatcher.fallback_packets
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        edges = dispatcher.start_run(trace, core_ids, wp, bucket_ids=buckets)
        if sink is None:
            for i in range(len(edges) - 1):
                dispatcher.run_chunk(edges[i], edges[i + 1], results)
        elif n:
            locked = parallel.lock_plan.locked
            n_cores = parallel.n_cores
            w_edges = np.append(np.arange(0, n, wp), n)
            n_windows = len(w_edges) - 1
            flat = (np.arange(n) // wp) * n_cores + core_ids
            pkt_counts = np.bincount(
                flat, minlength=n_windows * n_cores
            ).reshape(n_windows, n_cores)
            miss_counts = np.bincount(
                flat[miss_mask], minlength=n_windows * n_cores
            ).reshape(n_windows, n_cores)
            k = 0
            before = [
                core.ctx.stat_snapshot(locked) for core in parallel.cores
            ]
            for i in range(len(edges) - 1):
                dispatcher.run_chunk(edges[i], edges[i + 1], results)
                if k < n_windows and edges[i + 1] == int(w_edges[k + 1]):
                    misses = miss_counts[k]
                    sink.record_window(
                        _window_rows(
                            parallel, before, pkt_counts[k], locked,
                            hits=pkt_counts[k] - misses, misses=misses,
                        )
                    )
                    k += 1
                    if k < n_windows:
                        before = [
                            core.ctx.stat_snapshot(locked)
                            for core in parallel.cores
                        ]
    finally:
        dispatcher.end_run()
        if gc_was_enabled:
            gc.enable()
    _reconcile_core_stats(parallel, core_ids, stats_before)
    run._bulk_install(core_ids, results)
    run.compiled = dispatcher.run_stats(k0, f0)
    run.compiled_path_ids = dispatcher.path_ids
    if obs.enabled():
        obs.counter(
            "compiled.paths", dispatcher.supported_paths, nf=parallel.nf.name
        )
        obs.counter(
            "compiled.hits", run.compiled["kernel_packets"],
            nf=parallel.nf.name,
        )
        obs.counter(
            "compiled.fallbacks", run.compiled["fallback_packets"],
            nf=parallel.nf.name,
        )
    return run


def _ctx_stat_snapshot(ctx) -> tuple[int, int, int]:
    """``(reads, writes, new_flow_packets)`` lifetime totals of one ctx."""
    reads, writes, new_flows, _ = ctx.stat_snapshot()
    return reads, writes, new_flows


def _reconcile_core_stats(
    parallel: ParallelNF,
    core_ids: np.ndarray,
    stats_before: list[tuple[int, int, int]],
) -> None:
    """Bring CoreInstance counters to exactly the reference path's state.

    The fast path bypasses :meth:`CoreInstance.run`, so the per-core
    packet/read/write/new-flow totals are reconciled from the contexts'
    lifetime counters (``op_totals``/``new_flow_total``) instead: one
    snapshot delta per core — O(cores * state objects) — rather than a
    Python loop over every packet's op records.
    """
    per_core_packets = np.bincount(core_ids, minlength=parallel.n_cores)
    for core_id, core in enumerate(parallel.cores):
        reads0, writes0, new0 = stats_before[core_id]
        reads1, writes1, new1 = _ctx_stat_snapshot(core.ctx)
        core.packets += int(per_core_packets[core_id])
        core.reads += reads1 - reads0
        core.writes += writes1 - writes0
        core.new_flows += new1 - new0


def run_functional(
    parallel: ParallelNF,
    trace: Trace,
    *,
    balance_tables_with: Trace | None = None,
    fastpath: bool = True,
    flow_cache: FlowSteeringCache | None = None,
    sanitize: bool = False,
    kernels: bool = True,
) -> FunctionalRun:
    """Execute ``trace`` on the parallel NF.

    ``balance_tables_with`` applies the static RSS++ rebalancing (§4)
    using a sample trace before the measured run — the "balanced" series
    of Figures 5 and 14.

    ``fastpath=False`` selects the packet-at-a-time reference path;
    ``flow_cache`` carries a :class:`FlowSteeringCache` across runs so a
    warm cache keeps paying off (it self-invalidates if the indirection
    tables are rebalanced in between).

    ``kernels=True`` (the default) additionally compiles the NF's
    execution tree into vectorized batch kernels
    (:mod:`repro.sim.compiled`) and runs whole chunks through them,
    falling back to the interpreter per lane; results stay bit-identical.
    Attached collectors see the same counter totals either way (kernel
    lanes emit ``nf.state_op`` in bulk); kernels are skipped under
    ``sanitize``.

    ``sanitize=True`` forces the reference path regardless of
    ``fastpath``/``flow_cache``/``kernels``: the race sanitizer's event
    log (:mod:`repro.analysis.race`) needs every packet processed one at
    a time in global trace order, so the steering memo, the compiled
    kernels, and the per-core grouped execution are bypassed.  Results
    stay bit-identical — only the interleaving of the per-core batches
    changes.
    """
    if balance_tables_with is not None:
        parallel.rss.balance_tables(balance_tables_with)
    run = FunctionalRun(parallel=parallel, capacity=len(trace))
    with obs.span(
        "sim.run_functional",
        nf=parallel.nf.name,
        n_packets=len(trace),
        fastpath=fastpath and not sanitize,
        sanitize=sanitize,
    ):
        if sanitize or not fastpath or not trace:
            return _run_reference(parallel, trace, run)
        if kernels:
            dispatcher = _get_dispatcher(parallel)
            if dispatcher is not None:
                return _run_compiled(
                    parallel, trace, run, flow_cache, dispatcher
                )
        return _run_fastpath(parallel, trace, run, flow_cache)


# ------------------------------------------------------------------ #
# Chain execution
# ------------------------------------------------------------------ #
@dataclass
class ChainRun:
    """Aggregate outcome of executing a trace through a parallel chain."""

    results: list = field(default_factory=list)
    #: hop executions landing on each core (joint mode: every hop of a
    #: packet counts toward the packet's single steered core)
    core_hop_packets: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )
    #: packets processed per hop alias
    hop_packets: dict = field(default_factory=dict)
    #: cross-core handoffs observed (always 0 in joint mode)
    handoffs: int = 0
    #: hop-boundary transitions observed (handoff denominator)
    hop_transitions: int = 0

    @property
    def handoff_fraction(self) -> float:
        if not self.hop_transitions:
            return 0.0
        return self.handoffs / self.hop_transitions

    def core_shares(self) -> np.ndarray:
        total = self.core_hop_packets.sum()
        if not total:
            return self.core_hop_packets.astype(np.float64)
        return self.core_hop_packets / total


def run_chain(parallel, trace: Trace) -> ChainRun:
    """Execute ``trace`` through a :class:`repro.chain.runtime.ParallelChain`.

    The chain analogue of :func:`run_functional`'s reference path:
    packet-at-a-time in trace order (run-to-completion through the whole
    chain), recording per-core load, per-hop packet counts, and — in
    fallback mode — the cross-core handoffs the per-hop steering caused.
    """
    run = ChainRun(
        core_hop_packets=np.zeros(parallel.n_cores, dtype=np.int64),
        hop_packets={alias: 0 for alias in parallel.hops},
    )
    before_handoffs = parallel.handoffs
    before_transitions = parallel.hop_transitions
    with obs.span(
        "sim.run_chain",
        chain=parallel.chain.name,
        mode=parallel.mode,
        n_packets=len(trace),
    ):
        for port, pkt in trace:
            result = parallel.process(port, pkt)
            run.results.append(result)
            for step in result.steps:
                run.hop_packets[step.alias] += 1
                if step.core is not None:
                    run.core_hop_packets[step.core] += 1
    run.handoffs = parallel.handoffs - before_handoffs
    run.hop_transitions = parallel.hop_transitions - before_transitions
    return run
