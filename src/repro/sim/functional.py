"""Functional multicore simulation: real packets, real RSS, real state.

Where :mod:`repro.sim.perf` predicts *rates*, this module executes the
generated parallel NF packet-by-packet: every packet is hashed by the
actual Toeplitz keys, steered through the actual indirection table, and
processed against the core's actual state shard.  It is the substrate for
semantic-equivalence checking and for measuring per-core load under skew.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.codegen import ParallelNF
from repro.nf.api import ActionKind
from repro.nf.runtime import PacketResult
from repro.traffic.generator import Trace

__all__ = ["FunctionalRun", "run_functional"]


@dataclass
class FunctionalRun:
    """Results of pushing one trace through a parallel NF."""

    parallel: ParallelNF
    results: list[tuple[int, PacketResult]] = field(default_factory=list)

    @property
    def n_packets(self) -> int:
        return len(self.results)

    def core_counts(self) -> np.ndarray:
        counts = np.zeros(self.parallel.n_cores, dtype=np.int64)
        for core_id, _ in self.results:
            counts[core_id] += 1
        return counts

    def core_shares(self) -> np.ndarray:
        counts = self.core_counts().astype(np.float64)
        total = counts.sum()
        return counts / total if total else counts

    def imbalance(self) -> float:
        """max-share / fair-share: 1.0 is perfect balance."""
        shares = self.core_shares()
        return float(shares.max() * self.parallel.n_cores)

    def action_counts(self) -> dict[ActionKind, int]:
        out: dict[ActionKind, int] = {}
        for _, result in self.results:
            out[result.kind] = out.get(result.kind, 0) + 1
        return out

    def write_fraction(self) -> float:
        """Fraction of packets performing a hard (non-aging) state write."""
        writers = 0
        for _, result in self.results:
            hard = [
                op
                for op in result.ops
                if op.write and op.op not in ("dchain_rejuvenate", "expire")
            ]
            writers += bool(hard)
        return writers / max(1, len(self.results))


def run_functional(
    parallel: ParallelNF,
    trace: Trace,
    *,
    balance_tables_with: Trace | None = None,
) -> FunctionalRun:
    """Execute ``trace`` on the parallel NF.

    ``balance_tables_with`` applies the static RSS++ rebalancing (§4)
    using a sample trace before the measured run — the "balanced" series
    of Figures 5 and 14.
    """
    if balance_tables_with is not None:
        parallel.rss.balance_tables(balance_tables_with)
    run = FunctionalRun(parallel=parallel)
    for port, pkt in trace:
        run.results.append(parallel.process(port, pkt))
    return run
