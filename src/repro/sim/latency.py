"""Latency model (§6.4, latency probes).

The paper reports that parallelization does not deeply affect latency:
12 +/- 2 us for CL and 11 +/- 1 us for the remaining NFs under a 1 Gbps
background load.  At such low load, latency is dominated by fixed costs —
wire time, PCIe DMA both ways, DPDK RX/TX batching — with the NF's
per-packet CPU time contributing well under a microsecond; coordination
overheads at 1 Gbps are in the tens of nanoseconds, which is exactly why
the strategies are indistinguishable in this measurement.
"""

from __future__ import annotations

import numpy as np

from repro.core.codegen import Strategy
from repro.hw import params
from repro.hw.cpu import NfCostProfile
from repro.sim.perf import PerformanceModel, Workload

__all__ = ["latency_probe", "FIXED_PATH_US"]

#: Fixed path latency: wire + PCIe round trip + RX/TX batch residency.
FIXED_PATH_US = 10.6


def latency_probe(
    profile: NfCostProfile,
    strategy: Strategy,
    n_cores: int,
    *,
    workload: Workload | None = None,
    background_gbps: float = 1.0,
    n_probes: int = 1000,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """(mean, stddev) latency in microseconds over ``n_probes`` probes."""
    rng = rng or np.random.default_rng(0)
    workload = workload or Workload()
    model = PerformanceModel()
    t_pkt, t_excl, p_w = model.packet_cost(profile, strategy, n_cores, workload)
    service_us = t_pkt / params.CPU_FREQ_HZ * 1e6
    # Probability of landing behind an exclusive section at this load.
    load_pps = background_gbps * 1e9 / 8.0 / (workload.pkt_size + params.WIRE_OVERHEAD_BYTES)
    exclusive_us = t_excl / params.CPU_FREQ_HZ * 1e6
    p_blocked = min(1.0, load_pps * t_excl / params.CPU_FREQ_HZ)
    samples = (
        FIXED_PATH_US
        + service_us
        + rng.exponential(scale=max(0.3, service_us), size=n_probes)
        + (rng.random(n_probes) < p_blocked) * exclusive_us
    )
    return float(samples.mean()), float(samples.std())
