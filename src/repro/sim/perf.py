"""The performance simulator: throughput of parallel NFs (§6).

Replaces the paper's hardware rate search (DPDK-Pktgen probing for the
highest rate with <0.1% loss).  The model composes:

* a per-packet CPU cost: ``base_cycles`` + one cache-hierarchy access per
  stateful operation, where the working set per core shrinks under
  shared-nothing sharding (§4) — reproducing the compound
  parallelism+locality speed-up;
* strategy overheads: the per-core rwlock's read/write costs and globally
  exclusive write sections (§3.6), TM abort/retry waste (§6), or VPP's
  batched shared-memory profile (Figure 11);
* the I/O ceilings: PCIe per-packet cost and 100 Gbps line rate
  (Figure 8).

With per-core traffic shares ``s_c`` (1/n uniform; measured through the
real RSS configuration under skew), write fraction ``p_w``, per-packet
cycles ``T_pkt`` and per-write exclusive cycles ``T_excl``, the achievable
rate solves  ``R * (max_c s_c * T_pkt + p_w * T_excl) = F``  — the same
equilibrium the testbed search converges to.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro import obs
from repro.core.codegen import ParallelNF, Strategy
from repro.obs.detect import DriftReport, model_drift
from repro.hw import params
from repro.hw.cache import CacheHierarchy
from repro.hw.cpu import NfCostProfile, profile_for
from repro.hw.locks import RwLockModel
from repro.hw.pcie import Bottleneck
from repro.hw.tm import TmModel
from repro.hw.vpp import VppModel
from repro.traffic.churn import write_fraction as churn_write_fraction

__all__ = [
    "Workload",
    "ThroughputResult",
    "PerformanceModel",
    "CHAIN_HANDOFF_CYCLES",
    "chain_handoff_cost",
    "chain_handoff_slowdown",
]


@dataclass(frozen=True)
class Workload:
    """The traffic the NF is subjected to."""

    pkt_size: int = 64
    n_flows: int = 40_000
    #: descending per-flow popularity; None = uniform
    zipf_weights: np.ndarray | None = None
    #: relative churn in flows/Gbit (§6.3)
    relative_churn_fpg: float = 0.0
    #: measured per-core traffic shares; None = perfectly uniform
    core_shares: np.ndarray | None = None

    def shares(self, n_cores: int) -> np.ndarray:
        if self.core_shares is not None:
            if len(self.core_shares) != n_cores:
                raise ValueError(
                    f"core_shares has {len(self.core_shares)} entries for "
                    f"{n_cores} cores"
                )
            return np.asarray(self.core_shares, dtype=np.float64)
        return np.full(n_cores, 1.0 / n_cores)


@dataclass
class ThroughputResult:
    """Outcome of one throughput evaluation."""

    pps: float
    gbps: float
    bottleneck: Bottleneck
    cpu_pps: float
    packet_cycles: float
    exclusive_cycles_per_packet: float
    write_fraction: float
    details: dict[str, float] = field(default_factory=dict)

    @property
    def mpps(self) -> float:
        return self.pps / 1e6


class PerformanceModel:
    """Analytic throughput/latency evaluation of a parallelized NF."""

    def __init__(
        self,
        *,
        freq_hz: float = params.CPU_FREQ_HZ,
        locks: RwLockModel | None = None,
        tm: TmModel | None = None,
        vpp: VppModel | None = None,
    ):
        self.freq_hz = freq_hz
        self.locks = locks or RwLockModel()
        self.tm = tm or TmModel()
        self.vpp = vpp

    # -------------------------------------------------------------- #
    # Cost components
    # -------------------------------------------------------------- #
    def _write_fraction(self, profile: NfCostProfile, workload: Workload) -> float:
        churn = churn_write_fraction(workload.relative_churn_fpg, workload.pkt_size)
        return min(1.0, profile.intrinsic_write_fraction + churn)

    def _memory_cycles(
        self,
        profile: NfCostProfile,
        workload: Workload,
        n_cores: int,
        sharded: bool,
        locality_penalty: float = 1.0,
    ) -> float:
        entries = workload.n_flows * profile.entries_per_flow
        total_state = entries * profile.state_bytes_per_flow
        if total_state <= 0:
            return 0.0
        if sharded:
            working_set = total_state / n_cores
            # Disjoint per-core working sets compete for the shared LLC.
            hierarchy = CacheHierarchy(llc_sharers=n_cores)
            weights = workload.zipf_weights
            if weights is not None:
                # A core holds every n-th flow by rank: decimating the
                # popularity vector preserves the Zipf shape per core.
                weights = weights[::n_cores]
                weights = weights / weights.sum()
        else:
            working_set = total_state
            hierarchy = CacheHierarchy(llc_sharers=1)
            weights = workload.zipf_weights
        per_access = hierarchy.access_cycles(working_set, weights)
        return profile.mem_ops_per_packet * per_access * locality_penalty

    # -------------------------------------------------------------- #
    # Strategy-specific per-packet cost
    # -------------------------------------------------------------- #
    def packet_cost(
        self,
        profile: NfCostProfile,
        strategy: Strategy,
        n_cores: int,
        workload: Workload,
        *,
        vpp_mode: bool = False,
    ) -> tuple[float, float, float]:
        """(cycles per packet, exclusive cycles per packet, write fraction)."""
        p_churn = churn_write_fraction(
            workload.relative_churn_fpg, workload.pkt_size
        )
        p_w = self._write_fraction(profile, workload)
        if vpp_mode:
            vpp = self.vpp or VppModel()
            adjusted = vpp.adjust_profile(profile)
            memory = self._memory_cycles(
                adjusted, workload, n_cores, sharded=False,
                locality_penalty=vpp.locality_penalty,
            )
            return adjusted.base_cycles + memory, 0.0, p_w

        if strategy is Strategy.SHARED_NOTHING:
            memory = self._memory_cycles(profile, workload, n_cores, sharded=True)
            # New flows pay the allocation path locally; no coordination.
            body = profile.base_cycles + memory + p_w * 90.0
            return body, 0.0, p_w

        memory = self._memory_cycles(profile, workload, n_cores, sharded=False)
        body = profile.base_cycles + memory
        if strategy is Strategy.LOCKS:
            per_packet = (
                body
                + self.locks.read_overhead()
                + p_w * self.locks.write_overhead(n_cores, profile)
            )
            # Churn writes additionally expire flows under the write lock
            # (cross-core aging inspection, map erase, index free — §4).
            exclusive = p_w * self.locks.exclusive_section(n_cores, profile)
            exclusive += p_churn * params.CHURN_EXCLUSIVE_EXTRA_CYCLES
            return per_packet, exclusive, p_w

        if strategy is Strategy.TM:
            extra, serialized = self.tm.packet_overhead(
                n_cores, profile, p_w, body
            )
            serialized += p_churn * params.CHURN_EXCLUSIVE_EXTRA_CYCLES
            return body + extra, serialized, p_w

        raise ValueError(f"unknown strategy {strategy}")

    # -------------------------------------------------------------- #
    # Throughput
    # -------------------------------------------------------------- #
    def throughput(
        self,
        profile: NfCostProfile,
        strategy: Strategy,
        n_cores: int,
        workload: Workload,
        *,
        vpp_mode: bool = False,
    ) -> ThroughputResult:
        """Highest sustainable rate (the simulated <0.1%-loss search)."""
        t_pkt, t_excl, p_w = self.packet_cost(
            profile, strategy, n_cores, workload, vpp_mode=vpp_mode
        )
        shares = Workload.shares(workload, n_cores)
        s_max = float(shares.max())
        cpu_pps = self.freq_hz / (s_max * t_pkt + t_excl)

        pcie = params.pcie_pps(workload.pkt_size)
        line = params.line_rate_pps(workload.pkt_size)
        pps = min(cpu_pps, pcie, line)
        if pps == cpu_pps and cpu_pps <= min(pcie, line):
            bottleneck = Bottleneck.CPU
        elif pcie <= line:
            bottleneck = Bottleneck.PCIE
        else:
            bottleneck = Bottleneck.LINE_RATE
        # Bottleneck attribution per evaluated point: what limited the
        # rate, and how much of the per-packet budget was coordination
        # (lock/TM exclusive sections) rather than NF work.
        obs.counter(
            "perf.bottleneck",
            1,
            which=bottleneck.value,
            strategy=strategy.value,
            cores=n_cores,
        )
        obs.histogram(
            "perf.packet_cycles", t_pkt, strategy=strategy.value, cores=n_cores
        )
        if t_excl > 0.0:
            obs.histogram(
                "perf.exclusive_cycles",
                t_excl,
                strategy=strategy.value,
                cores=n_cores,
            )
        return ThroughputResult(
            pps=pps,
            gbps=params.pps_to_gbps(pps, workload.pkt_size),
            bottleneck=bottleneck,
            cpu_pps=cpu_pps,
            packet_cycles=t_pkt,
            exclusive_cycles_per_packet=t_excl,
            write_fraction=p_w,
            details={
                "s_max": s_max,
                "pcie_pps": pcie,
                "line_pps": line,
            },
        )

    def evaluate_parallel(
        self,
        parallel: ParallelNF,
        workload: Workload,
        *,
        trace=None,
    ) -> ThroughputResult:
        """Evaluate a generated :class:`ParallelNF`.

        When ``trace`` is given, per-core shares are *measured* by pushing
        the trace through the generated RSS configuration — this is how
        skew (Figures 5/14) enters the model.
        """
        profile = profile_for(parallel.nf)
        if trace is not None:
            shares = parallel.core_shares(trace)
            workload = replace(workload, core_shares=shares)
        return self.throughput(
            profile, parallel.strategy, parallel.n_cores, workload
        )

    def drift_report(
        self,
        parallel: ParallelNF,
        workload: Workload,
        run,
        *,
        threshold: float = 0.15,
    ) -> DriftReport:
        """Validate the model against an executed run's telemetry.

        ``run`` is a :class:`~repro.sim.functional.FunctionalRun` of the
        same ``parallel`` NF.  The model's *prior* prediction — the
        per-core shares and write fraction it would have assumed without
        seeing the run — is scored against what actually happened
        (:func:`repro.obs.detect.model_drift`).  A skewed workload the
        model priced as uniform drifts hard; a uniform one scores near
        zero.  This is the sensing API the elastic-scaling controller
        (ROADMAP item 2) polls to decide when the plan needs revisiting.
        """
        profile = profile_for(parallel.nf)
        predicted = self.throughput(
            profile, parallel.strategy, parallel.n_cores, workload
        )
        drift = model_drift(
            Workload.shares(workload, parallel.n_cores).tolist(),
            run.core_shares().tolist(),
            predicted_write_fraction=predicted.write_fraction,
            observed_write_fraction=run.write_fraction(),
            predicted_bottleneck=predicted.bottleneck.value,
            threshold=threshold,
        )
        obs.histogram(
            "telemetry.drift_score",
            drift.score,
            nf=parallel.nf.name,
            strategy=parallel.strategy.value,
            cores=parallel.n_cores,
        )
        return drift


# ------------------------------------------------------------------ #
# Chain handoff cost (per-hop fallback steering)
# ------------------------------------------------------------------ #
#: Cycles charged per cross-core handoff at a hop boundary when a chain
#: falls back to per-hop RSS steering: the packet's descriptor and the
#: hot cache lines (header + per-flow state touched by the previous hop)
#: migrate between private caches through the LLC, plus one
#: queue-transfer atomic pair.  Two LLC-latency line transfers + the
#: uncontended rwlock-read-class atomic cost keeps the number anchored
#: to the same calibration constants as the rest of the model.
CHAIN_HANDOFF_CYCLES: float = 2 * params.LLC_CYCLES + params.RWLOCK_READ_CYCLES


def chain_handoff_cost(handoffs_per_packet: float) -> float:
    """Extra per-packet cycles a fallback-steered chain pays.

    ``handoffs_per_packet`` is the measured average number of hop
    boundaries where the packet changed core (see
    :meth:`repro.chain.runtime.ParallelChain.handoff_fraction`).
    """
    if handoffs_per_packet < 0:
        raise ValueError("handoffs_per_packet must be non-negative")
    return handoffs_per_packet * CHAIN_HANDOFF_CYCLES


def chain_handoff_slowdown(
    handoffs_per_packet: float, packet_cycles: float
) -> float:
    """Throughput multiplier (<= 1.0) the handoff cost imposes.

    With a base per-packet cost of ``packet_cycles``, the CPU-bound rate
    scales by ``packet_cycles / (packet_cycles + handoff_cycles)`` —
    the factor the chain analyzer reports when it falls back to per-hop
    steering instead of a joint key.
    """
    if packet_cycles <= 0:
        raise ValueError("packet_cycles must be positive")
    extra = chain_handoff_cost(handoffs_per_packet)
    return packet_cycles / (packet_cycles + extra)
