"""Simulators: functional (packet-exact) and performance (analytic)."""

from repro.sim.attack import AttackSet, evaluate_attack, find_colliding_flows
from repro.sim.equivalence import EquivalenceReport, Mismatch, check_equivalence
from repro.sim.functional import FlowSteeringCache, FunctionalRun, run_functional
from repro.sim.latency import latency_probe
from repro.sim.perf import PerformanceModel, ThroughputResult, Workload

__all__ = [
    "AttackSet",
    "evaluate_attack",
    "find_colliding_flows",
    "EquivalenceReport",
    "Mismatch",
    "check_equivalence",
    "FlowSteeringCache",
    "FunctionalRun",
    "run_functional",
    "latency_probe",
    "PerformanceModel",
    "ThroughputResult",
    "Workload",
]
