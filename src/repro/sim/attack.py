"""Attacking state sharding (§5) — and Maestro's defense.

Shared-nothing sharding divides table capacity across cores, so an
attacker can "fill up" a single core with fewer flows than the sequential
NF would need — *if* they can aim flows at one core.  Aiming requires
flows whose RSS hashes collide into the same indirection-table entry;
"colliding flows end up on the same entry within the RSS indirection
table and thus cannot be split apart" even by RSS++ rebalancing.

Maestro's mitigation is key randomization: the colliding set an attacker
precomputes against one key scatters under a fresh key drawn from the
same constraint space, because only the *sharding-relevant* structure of
the key is pinned by the constraints — the remaining bits are random.

This module implements both sides: the attacker's collision search and
the measurement of how an attack set behaves under a different key.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.codegen import ParallelNF
from repro.nf.flow import FiveTuple
from repro.nf.packet import PROTO_UDP
from repro.rs3.config import PortRssConfig

__all__ = ["AttackSet", "find_colliding_flows", "evaluate_attack"]


@dataclass
class AttackSet:
    """Flows an attacker crafted to land on one indirection-table entry."""

    port: int
    target_entry: int
    flows: list[FiveTuple]
    probes: int  # how many candidates the search examined

    def __len__(self) -> int:
        return len(self.flows)


def find_colliding_flows(
    config: PortRssConfig,
    n_flows: int,
    *,
    rng: np.random.Generator | None = None,
    max_probes: int = 500_000,
    target_entry: int | None = None,
) -> AttackSet:
    """Brute-force flows that share one indirection-table entry.

    Models the §5 attacker: they know the NF's sharding structure and the
    RSS key (e.g. leaked or default), so they can compute hashes offline
    and keep only colliding candidates.  With a 512-entry table roughly 1
    in 512 random flows collides, so the search is cheap for an attacker.
    """
    rng = rng or np.random.default_rng(0)
    mask = config.table.size - 1
    flows: list[FiveTuple] = []
    probes = 0
    while len(flows) < n_flows and probes < max_probes:
        probes += 1
        flow = FiveTuple(
            src_ip=int(rng.integers(1, 2**32)),
            dst_ip=int(rng.integers(1, 2**32)),
            src_port=int(rng.integers(1, 2**16)),
            dst_port=int(rng.integers(1, 2**16)),
            proto=PROTO_UDP,
        )
        entry = config.hash(flow.packet()) & mask
        if target_entry is None:
            target_entry = entry
        if entry == target_entry:
            flows.append(flow)
    if target_entry is None:
        raise ValueError("no candidate flows probed")
    return AttackSet(
        port=config.port, target_entry=target_entry, flows=flows, probes=probes
    )


@dataclass
class AttackOutcome:
    """How concentrated an attack set is under some configuration."""

    n_flows: int
    max_core_share: float
    cores_hit: int
    entries_hit: int

    @property
    def concentrated(self) -> bool:
        """All flows on one core: the attack works."""
        return self.cores_hit == 1


def evaluate_attack(
    parallel: ParallelNF, attack: AttackSet
) -> AttackOutcome:
    """Where does an attack set actually land under this deployment?

    Run against the deployment the set was crafted for, the outcome is
    fully concentrated; run against a deployment with a *re-randomized*
    key (same sharding constraints), the set disperses — the paper's
    mitigation argument.
    """
    config = parallel.rss.ports[attack.port]
    mask = config.table.size - 1
    cores = np.zeros(parallel.n_cores, dtype=np.int64)
    entries: set[int] = set()
    for flow in attack.flows:
        hashed = config.hash(flow.packet())
        entries.add(hashed & mask)
        cores[config.table.lookup(hashed)] += 1
    total = max(1, cores.sum())
    return AttackOutcome(
        n_flows=len(attack.flows),
        max_core_share=float(cores.max() / total),
        cores_hit=int((cores > 0).sum()),
        entries_hit=len(entries),
    )
