"""Traffic generation: the simulated DPDK-Pktgen (§6.2, §6.3).

Produces ``(port, Packet)`` traces: uniform or Zipfian flow popularity,
configurable packet sizes (64 B default, or the Internet mix), optional
bidirectional traffic (LAN packets plus their symmetric WAN replies).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nf.flow import FiveTuple
from repro.nf.packet import PROTO_UDP, Packet
from repro.traffic.distributions import paper_zipf_weights

__all__ = ["Trace", "TrafficGenerator", "INTERNET_MIX"]

Trace = list[tuple[int, Packet]]

#: The classic Internet packet-size mix (IMIX): (size, weight).
INTERNET_MIX: tuple[tuple[int, float], ...] = (
    (64, 0.58),
    (576, 0.33),
    (1500, 0.09),
)


def _avg_size(mix: tuple[tuple[int, float], ...]) -> float:
    return sum(size * weight for size, weight in mix)


@dataclass
class TrafficGenerator:
    """Deterministic, seedable traffic synthesis."""

    seed: int = 0
    rng: np.random.Generator = field(init=False)

    def __post_init__(self) -> None:
        self.rng = np.random.default_rng(self.seed)

    # -------------------------------------------------------------- #
    def make_flows(self, n_flows: int) -> list[FiveTuple]:
        """Distinct random 5-tuples."""
        seen: set[FiveTuple] = set()
        flows: list[FiveTuple] = []
        while len(flows) < n_flows:
            flow = FiveTuple(
                src_ip=int(self.rng.integers(1, 2**32)),
                dst_ip=int(self.rng.integers(1, 2**32)),
                src_port=int(self.rng.integers(1, 2**16)),
                dst_port=int(self.rng.integers(1, 2**16)),
                proto=PROTO_UDP,
            )
            if flow not in seen:
                seen.add(flow)
                flows.append(flow)
        return flows

    def _sizes(
        self,
        n_packets: int,
        pkt_size: int | None,
        mix: tuple[tuple[int, float], ...] | None,
    ) -> np.ndarray:
        if mix is not None:
            sizes = np.array([s for s, _ in mix])
            weights = np.array([w for _, w in mix])
            return self.rng.choice(sizes, size=n_packets, p=weights / weights.sum())
        return np.full(n_packets, pkt_size or 64)

    # -------------------------------------------------------------- #
    def trace(
        self,
        n_packets: int,
        flows: list[FiveTuple],
        *,
        weights: np.ndarray | None = None,
        pkt_size: int | None = 64,
        size_mix: tuple[tuple[int, float], ...] | None = None,
        in_port: int = 0,
        reply_port: int | None = None,
        reply_fraction: float = 0.0,
        rate_pps: float = 1e6,
    ) -> Trace:
        """Synthesize a trace.

        ``weights`` selects flow popularity (None = uniform).  When
        ``reply_port`` is given, ``reply_fraction`` of packets are the
        symmetric replies of their flow arriving on that port — but a
        flow's first packet is always forward-direction, so stateful NFs
        see sessions opened before replies arrive.
        """
        picks = self.rng.choice(len(flows), size=n_packets, p=weights)
        sizes = self._sizes(n_packets, pkt_size, size_mix)
        replies = self.rng.random(n_packets) < reply_fraction
        seen_forward: set[int] = set()
        out: Trace = []
        for i in range(n_packets):
            flow = flows[int(picks[i])]
            timestamp = i / rate_pps
            is_reply = bool(replies[i]) and reply_port is not None
            if is_reply and int(picks[i]) not in seen_forward:
                is_reply = False  # first packet opens the session
            if is_reply:
                pkt = flow.inverted().packet(int(sizes[i]), timestamp)
                out.append((reply_port, pkt))
            else:
                seen_forward.add(int(picks[i]))
                out.append((in_port, flow.packet(int(sizes[i]), timestamp)))
        return out

    def uniform_trace(
        self, n_packets: int, n_flows: int, **kwargs
    ) -> tuple[Trace, list[FiveTuple]]:
        """Uniform flow popularity (the Figure 10 workload)."""
        flows = self.make_flows(n_flows)
        return self.trace(n_packets, flows, weights=None, **kwargs), flows

    def zipf_trace(
        self, n_packets: int, n_flows: int, **kwargs
    ) -> tuple[Trace, list[FiveTuple]]:
        """The paper's Zipfian workload (Figures 5 and 14)."""
        flows = self.make_flows(n_flows)
        weights = paper_zipf_weights(n_flows)
        return self.trace(n_packets, flows, weights=weights, **kwargs), flows
