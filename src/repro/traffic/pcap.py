"""Minimal pcap file reader/writer.

The paper's methodology replays PCAP files with DPDK-Pktgen (§6.2); this
module lets every synthetic workload in this repository round-trip through
real ``.pcap`` files (classic format, microsecond resolution, Ethernet
link type), so traces can be inspected with standard tools.
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.nf.packet import Packet
from repro.traffic.generator import Trace

__all__ = ["write_pcap", "read_pcap", "PCAP_MAGIC", "LINKTYPE_ETHERNET"]

PCAP_MAGIC = 0xA1B2C3D4
_VERSION = (2, 4)
LINKTYPE_ETHERNET = 1
_SNAPLEN = 65535

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


def write_pcap(path: str | Path, trace: Trace) -> int:
    """Write a trace to ``path``; returns the number of packets written.

    The ingress port is not representable in classic pcap, so it is
    conventionally encoded in the last byte of the destination MAC
    (read back by :func:`read_pcap`).
    """
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(
            _GLOBAL_HEADER.pack(
                PCAP_MAGIC, *_VERSION, 0, 0, _SNAPLEN, LINKTYPE_ETHERNET
            )
        )
        for port, pkt in trace:
            tagged = Packet(
                src_ip=pkt.src_ip,
                dst_ip=pkt.dst_ip,
                src_port=pkt.src_port,
                dst_port=pkt.dst_port,
                proto=pkt.proto,
                src_mac=pkt.src_mac,
                dst_mac=(pkt.dst_mac & ~0xFF) | (port & 0xFF),
                eth_type=pkt.eth_type,
                wire_size=pkt.wire_size,
                timestamp=pkt.timestamp,
            )
            frame = tagged.to_bytes()
            seconds = int(pkt.timestamp)
            micros = int(round((pkt.timestamp - seconds) * 1e6))
            fh.write(
                _RECORD_HEADER.pack(seconds, micros, len(frame), pkt.wire_size)
            )
            fh.write(frame)
    return len(trace)


def read_pcap(path: str | Path) -> Trace:
    """Read a trace written by :func:`write_pcap`."""
    path = Path(path)
    data = path.read_bytes()
    magic, _, _, _, _, _, linktype = _GLOBAL_HEADER.unpack_from(data, 0)
    if magic != PCAP_MAGIC:
        raise ValueError(f"{path}: not a (classic, little-endian) pcap file")
    if linktype != LINKTYPE_ETHERNET:
        raise ValueError(f"{path}: unsupported link type {linktype}")
    offset = _GLOBAL_HEADER.size
    trace: Trace = []
    while offset < len(data):
        seconds, micros, incl_len, orig_len = _RECORD_HEADER.unpack_from(
            data, offset
        )
        offset += _RECORD_HEADER.size
        frame = data[offset : offset + incl_len]
        offset += incl_len
        pkt = Packet.from_bytes(frame, timestamp=seconds + micros / 1e6)
        port = pkt.dst_mac & 0xFF
        pkt = Packet(
            src_ip=pkt.src_ip,
            dst_ip=pkt.dst_ip,
            src_port=pkt.src_port,
            dst_port=pkt.dst_port,
            proto=pkt.proto,
            src_mac=pkt.src_mac,
            dst_mac=pkt.dst_mac & ~0xFF,
            eth_type=pkt.eth_type,
            wire_size=orig_len,
            timestamp=pkt.timestamp,
        )
        trace.append((port, pkt))
    return trace
