"""Churn workloads (§6.3, Figure 9).

The paper measures churn as *relative churn* in flows/Gbit baked into a
cyclic PCAP: "(i) small enough to fit in memory; (ii) changed enough flows
to produce the desired relative churn; (iii) evenly spread these changes
throughout the traffic; and (iv) were cyclic (the flows that expire at the
start of the PCAP are created at the end)".  As the replay rate varies,
the *absolute* churn (flows/minute) scales in tandem:

    absolute_churn [fpm] = relative_churn [flows/Gbit] x rate [Gbps] x 60

:func:`churn_trace` builds exactly such traces; :func:`write_fraction`
converts relative churn into the per-packet new-flow probability the
analytic performance model consumes (rate-independent, which is what makes
the Figure 9 equilibrium well-defined).
"""

from __future__ import annotations

import numpy as np

from repro.nf.flow import FiveTuple
from repro.traffic.generator import Trace, TrafficGenerator

__all__ = ["churn_trace", "write_fraction", "absolute_churn_fpm", "relative_from_absolute"]


def write_fraction(relative_churn_fpg: float, pkt_size: int) -> float:
    """Per-packet probability of creating a new flow.

    ``relative_churn_fpg`` is in flows/Gbit; one packet carries
    ``pkt_size * 8`` bits, so each packet is a new flow with probability
    churn x bits / 1e9 (clamped to 1).
    """
    return min(1.0, relative_churn_fpg * pkt_size * 8.0 / 1e9)


def absolute_churn_fpm(relative_churn_fpg: float, rate_gbps: float) -> float:
    """Absolute churn in flows/minute at a given replay rate."""
    return relative_churn_fpg * rate_gbps * 60.0


def relative_from_absolute(fpm: float, rate_gbps: float) -> float:
    """Inverse of :func:`absolute_churn_fpm`."""
    if rate_gbps <= 0:
        raise ValueError("rate must be positive")
    return fpm / (rate_gbps * 60.0)


def churn_trace(
    generator: TrafficGenerator,
    n_packets: int,
    n_live_flows: int,
    relative_churn_fpg: float,
    *,
    pkt_size: int = 64,
    in_port: int = 0,
) -> Trace:
    """A cyclic trace with the requested relative churn.

    Maintains a working set of ``n_live_flows`` flows; new-flow events are
    spread evenly through the trace, each retiring the oldest flow and
    introducing a fresh one.  Replayed in a loop the trace is cyclic: the
    flows retired early are exactly the ones (re)created at the end.
    """
    p_new = write_fraction(relative_churn_fpg, pkt_size)
    n_new = int(round(n_packets * p_new))
    live = generator.make_flows(n_live_flows)
    replacements = generator.make_flows(min(n_new, n_live_flows))

    new_flow_at = set()
    if n_new:
        step = n_packets / n_new
        new_flow_at = {int(i * step) for i in range(n_new)}

    out: Trace = []
    next_replacement = 0
    oldest = 0
    for i in range(n_packets):
        if i in new_flow_at and replacements:
            # Retire the oldest live flow, admit a fresh one (cyclically
            # reusing the replacement pool keeps the trace loopable).
            live[oldest] = replacements[next_replacement % len(replacements)]
            next_replacement += 1
            oldest = (oldest + 1) % n_live_flows
            flow = live[(oldest - 1) % n_live_flows]
        else:
            flow = live[int(generator.rng.integers(0, n_live_flows))]
        out.append((in_port, flow.packet(pkt_size, i * 1e-6)))
    return out
