"""Workload generation: distributions, traces, churn, pcap I/O."""

from repro.traffic.churn import (
    absolute_churn_fpm,
    churn_trace,
    relative_from_absolute,
    write_fraction,
)
from repro.traffic.distributions import (
    PAPER_N_FLOWS,
    PAPER_TOP_FLOWS,
    PAPER_TOP_SHARE,
    fit_zipf_exponent,
    paper_zipf_weights,
    top_share,
    zipf_weights,
)
from repro.traffic.generator import INTERNET_MIX, Trace, TrafficGenerator
from repro.traffic.pcap import read_pcap, write_pcap

__all__ = [
    "absolute_churn_fpm",
    "churn_trace",
    "relative_from_absolute",
    "write_fraction",
    "PAPER_N_FLOWS",
    "PAPER_TOP_FLOWS",
    "PAPER_TOP_SHARE",
    "fit_zipf_exponent",
    "paper_zipf_weights",
    "top_share",
    "zipf_weights",
    "INTERNET_MIX",
    "Trace",
    "TrafficGenerator",
    "read_pcap",
    "write_pcap",
]
