"""Flow popularity distributions (§4, *Traffic skew*).

"The expression 'mice and elephants' is typically used to describe packet
flow distributions on the Internet.  These follow a Zipfian distribution."
The paper's Zipfian workload uses parameters fitted from a real university
traffic sample [12, 60]: 1k flows of which 48 carry 80% of the packets —
:func:`paper_zipf_weights` reproduces exactly that shape by solving for
the Zipf exponent.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "zipf_weights",
    "top_share",
    "fit_zipf_exponent",
    "paper_zipf_weights",
    "PAPER_N_FLOWS",
    "PAPER_TOP_FLOWS",
    "PAPER_TOP_SHARE",
]

#: The paper's Figure 5 workload: "1k flows, 48 of which responsible for
#: 80% of the traffic".
PAPER_N_FLOWS = 1000
PAPER_TOP_FLOWS = 48
PAPER_TOP_SHARE = 0.80


def zipf_weights(n_flows: int, exponent: float) -> np.ndarray:
    """Normalized Zipf popularity, descending (rank 1 first)."""
    if n_flows <= 0:
        raise ValueError("n_flows must be positive")
    ranks = np.arange(1, n_flows + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def top_share(weights: np.ndarray, top_k: int) -> float:
    """Fraction of traffic carried by the ``top_k`` most popular flows."""
    return float(weights[:top_k].sum())


def fit_zipf_exponent(
    n_flows: int, top_k: int, share: float, *, tolerance: float = 1e-6
) -> float:
    """Solve for the exponent giving ``share`` of traffic to ``top_k`` flows."""
    if not 0.0 < share < 1.0:
        raise ValueError("share must be in (0, 1)")
    low, high = 0.0, 10.0
    while high - low > tolerance:
        mid = (low + high) / 2.0
        if top_share(zipf_weights(n_flows, mid), top_k) < share:
            low = mid
        else:
            high = mid
    return (low + high) / 2.0


def paper_zipf_weights(n_flows: int = PAPER_N_FLOWS) -> np.ndarray:
    """The paper's Zipf shape, rescaled to ``n_flows`` if needed."""
    top_k = max(1, round(PAPER_TOP_FLOWS * n_flows / PAPER_N_FLOWS))
    exponent = fit_zipf_exponent(n_flows, top_k, PAPER_TOP_SHARE)
    return zipf_weights(n_flows, exponent)
