"""The paper's corpus of 8 NFs (§6.1), plus the Figure 2 micro-examples.

========= ============================================== =================
NF        Description                                     Expected verdict
========= ============================================== =================
NOP       stateless forwarder                             RSS load-balance
Policer   per-destination-IP rate limiter                 shared-nothing
SBridge   static MAC bridge (read-only table)             RSS load-balance
DBridge   learning MAC bridge                             read/write locks
FW        flow-tracking firewall (the running example)    shared-nothing
PSD       port-scan detector                              shared-nothing
NAT       address translator (R4 + R5 story)              shared-nothing
LB        Maglev-like load balancer                       read/write locks
CL        connection limiter (count-min sketch)           shared-nothing
========= ============================================== =================
"""

from repro.nf.nfs.bridge import DynamicBridge, StaticBridge
from repro.nf.nfs.cl import ConnectionLimiter
from repro.nf.nfs.firewall import Firewall
from repro.nf.nfs.lb import LoadBalancer
from repro.nf.nfs.nat import Nat
from repro.nf.nfs.nop import Nop
from repro.nf.nfs.policer import Policer
from repro.nf.nfs.psd import PortScanDetector

ALL_NFS = {
    "nop": Nop,
    "policer": Policer,
    "sbridge": StaticBridge,
    "dbridge": DynamicBridge,
    "fw": Firewall,
    "psd": PortScanDetector,
    "nat": Nat,
    "lb": LoadBalancer,
    "cl": ConnectionLimiter,
}

__all__ = [
    "Nop",
    "Policer",
    "StaticBridge",
    "DynamicBridge",
    "Firewall",
    "PortScanDetector",
    "Nat",
    "LoadBalancer",
    "ConnectionLimiter",
    "ALL_NFS",
]
