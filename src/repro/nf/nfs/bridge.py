"""Bridges: the dynamic (learning) and static variants (§6.1).

The dynamic bridge indexes state by MAC addresses, which the modelled NIC
cannot hash with RSS — Maestro warns the user and falls back to read/write
locks.  Disabling dynamic learning (the static bridge) leaves only
read-only state, which needs no coordination: RSS becomes a pure load
balancer.  The paper uses this pair to illustrate how Maestro's feedback
guides developers through functionality/performance trade-offs.
"""

from __future__ import annotations

from typing import Any

from repro.nf.api import NF, NfContext, StateDecl, StateKind

__all__ = ["DynamicBridge", "StaticBridge"]

LAN, WAN = 0, 1


class DynamicBridge(NF):
    """MAC-learning bridge: learns src MAC -> port, forwards by dst MAC."""

    name = "dbridge"
    ports = {"lan": LAN, "wan": WAN}

    def __init__(self, capacity: int = 65536, expiration_time: float = 300.0):
        self.capacity = capacity
        self.expiration_time = expiration_time

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("dbr_macs", StateKind.MAP, self.capacity),
            StateDecl("dbr_chain", StateKind.DCHAIN, self.capacity),
            StateDecl(
                "dbr_ports",
                StateKind.VECTOR,
                self.capacity,
                value_layout=(("out_port", 16),),
            ),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        ctx.expire_flows("dbr_macs", "dbr_chain")
        # Learn the source MAC.
        src_key = (pkt.src_mac,)
        found, index = ctx.map_get("dbr_macs", src_key)
        if ctx.cond(found):
            ctx.dchain_rejuvenate("dbr_chain", index)
        else:
            ok, index = ctx.dchain_allocate("dbr_chain")
            if ctx.cond(ok):
                ctx.map_put("dbr_macs", src_key, index)
                ctx.vector_put("dbr_ports", index, {"out_port": port})
        # Forward by destination MAC.
        dst_found, dst_index = ctx.map_get("dbr_macs", (pkt.dst_mac,))
        if ctx.cond(dst_found):
            entry = ctx.vector_borrow("dbr_ports", dst_index)
            out_port = entry["out_port"]
            if ctx.cond(ctx.eq(out_port, ctx.const(port, 16))):
                # Destination is on the ingress segment: nothing to do.
                ctx.drop()
            ctx.forward(out_port)
        else:
            ctx.flood()


class StaticBridge(NF):
    """Bridge with fixed MAC-port bindings (read-only state)."""

    name = "sbridge"
    ports = {"lan": LAN, "wan": WAN}

    def __init__(self, bindings: dict[int, int] | None = None):
        #: static MAC -> port table installed at setup time
        self.bindings = dict(bindings or {})

    def state(self) -> list[StateDecl]:
        capacity = max(16, 2 * len(self.bindings) or 16)
        return [
            StateDecl("sbr_macs", StateKind.MAP, capacity, read_only=True),
        ]

    def setup(self, ctx: NfContext) -> None:
        for mac, port in self.bindings.items():
            ctx.map_put("sbr_macs", (mac,), port)

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        found, out_port = ctx.map_get("sbr_macs", (pkt.dst_mac,))
        if ctx.cond(found):
            if ctx.cond(ctx.eq(out_port, ctx.const(port, 16))):
                ctx.drop()
            ctx.forward(out_port)
        else:
            ctx.flood()
