"""FW: the flow-tracking firewall — the paper's running example (§3.1).

Forwards LAN-to-WAN traffic unconditionally while recording the flow; WAN
packets are only admitted when they match (symmetrically) a flow started
from the LAN.  Maestro shards it by flow, with cross-port symmetric RSS
keys (Figure 3).
"""

from __future__ import annotations

from typing import Any

from repro.nf.api import NF, NfContext, StateDecl, StateKind

__all__ = ["Firewall", "LAN", "WAN"]

LAN, WAN = 0, 1


class Firewall(NF):
    """Stateful firewall keyed on (src_ip, src_port, dst_ip, dst_port)."""

    name = "fw"
    ports = {"lan": LAN, "wan": WAN}

    def __init__(self, capacity: int = 65536, expiration_time: float = 60.0):
        self.capacity = capacity
        self.expiration_time = expiration_time

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("fw_flows", StateKind.MAP, self.capacity),
            StateDecl("fw_chain", StateKind.DCHAIN, self.capacity),
            StateDecl(
                "fw_ports",
                StateKind.VECTOR,
                self.capacity,
                value_layout=(("in_port", 16),),
            ),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        ctx.expire_flows("fw_flows", "fw_chain")
        if port != WAN:
            flow = (pkt.src_ip, pkt.src_port, pkt.dst_ip, pkt.dst_port)
            found, index = ctx.map_get("fw_flows", flow)
            if ctx.cond(found):
                ctx.dchain_rejuvenate("fw_chain", index)
            else:
                ok, index = ctx.dchain_allocate("fw_chain")
                if ctx.cond(ok):
                    ctx.map_put("fw_flows", flow, index)
                    ctx.vector_put("fw_ports", index, {"in_port": port})
            ctx.forward(WAN)
        else:
            inverse_flow = (pkt.dst_ip, pkt.dst_port, pkt.src_ip, pkt.src_port)
            found, index = ctx.map_get("fw_flows", inverse_flow)
            if ctx.cond(found):
                ctx.dchain_rejuvenate("fw_chain", index)
                ctx.forward(LAN)
            else:
                ctx.drop()
