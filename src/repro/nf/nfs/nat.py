"""NAT: network address translator (§6.1, RFC 3022 style).

Tracks LAN-initiated flows and allocates each a unique external port.
Maestro first hits rule R4 — external ports come from an allocator, not
from packet fields — but rule R5 (interchangeable constraints) saves the
day: WAN packets are only translated when they target the host that
started the session, so sharding on the external *server's* address and
port preserves behaviour exactly.  The generated parallel NAT enforces
port uniqueness per core rather than globally, which the paper argues does
not break semantic equivalence.
"""

from __future__ import annotations

from typing import Any

from repro.nf.api import NF, NfContext, StateDecl, StateKind

__all__ = ["Nat"]

LAN, WAN = 0, 1


class Nat(NF):
    """Source NAT with per-flow external-port allocation."""

    name = "nat"
    ports = {"lan": LAN, "wan": WAN}

    def __init__(
        self,
        external_ip: int = 0xC0A80101,  # 192.168.1.1
        port_base: int = 1024,
        capacity: int = 60000,
        expiration_time: float = 60.0,
    ):
        self.external_ip = external_ip
        self.port_base = port_base
        self.capacity = capacity
        self.expiration_time = expiration_time

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("nat_flows", StateKind.MAP, self.capacity),
            StateDecl("nat_chain", StateKind.DCHAIN, self.capacity),
            StateDecl(
                "nat_entries",
                StateKind.VECTOR,
                self.capacity,
                value_layout=(
                    ("src_ip", 32),
                    ("src_port", 16),
                    ("dst_ip", 32),
                    ("dst_port", 16),
                ),
            ),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        ctx.expire_flows("nat_flows", "nat_chain")
        if port == LAN:
            flow = (pkt.src_ip, pkt.src_port, pkt.dst_ip, pkt.dst_port)
            found, index = ctx.map_get("nat_flows", flow)
            if ctx.cond(found):
                ctx.dchain_rejuvenate("nat_chain", index)
            else:
                ok, index = ctx.dchain_allocate("nat_chain")
                if ctx.cond(ctx.lnot(ok)):
                    ctx.drop()  # translation table full
                ctx.map_put("nat_flows", flow, index)
                ctx.vector_put(
                    "nat_entries",
                    index,
                    {
                        "src_ip": pkt.src_ip,
                        "src_port": pkt.src_port,
                        "dst_ip": pkt.dst_ip,
                        "dst_port": pkt.dst_port,
                    },
                )
            external_port = ctx.add(index, ctx.const(self.port_base, 16))
            ctx.set_field("src_ip", ctx.const(self.external_ip, 32))
            ctx.set_field("src_port", external_port)
            ctx.forward(WAN)
        else:
            index = ctx.sub(pkt.dst_port, ctx.const(self.port_base, 16))
            allocated = ctx.dchain_is_allocated("nat_chain", index)
            if ctx.cond(ctx.lnot(allocated)):
                ctx.drop()
            entry = ctx.vector_borrow("nat_entries", index)
            # Only the server the session was opened to may answer (R5).
            match = ctx.land(
                ctx.eq(entry["dst_ip"], pkt.src_ip),
                ctx.eq(entry["dst_port"], pkt.src_port),
            )
            if ctx.cond(ctx.lnot(match)):
                ctx.drop()
            ctx.dchain_rejuvenate("nat_chain", index)
            ctx.set_field("dst_ip", entry["src_ip"])
            ctx.set_field("dst_port", entry["src_port"])
            ctx.forward(LAN)
