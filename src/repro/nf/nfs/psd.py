"""PSD: port scan detector (§6.1).

Counts how many *distinct* destination TCP/UDP ports each source IP has
touched within a time frame; above ``threshold``, connections to new ports
are blocked.  Maestro finds two access patterns — ``(src_ip)`` and
``(src_ip, dst_port)`` — and, by rule R2 (subsumption), shards on the
coarser ``src_ip`` alone.  The paper calls PSD its most CPU-intensive NF;
with 16 cores it gains 19x from the compound effect of parallelism and
per-core cache locality.
"""

from __future__ import annotations

from typing import Any

from repro.nf.api import NF, NfContext, StateDecl, StateKind

__all__ = ["PortScanDetector"]

LAN, WAN = 0, 1


class PortScanDetector(NF):
    """Block sources that touch more than ``threshold`` distinct ports."""

    name = "psd"
    ports = {"lan": LAN, "wan": WAN}
    #: Only LAN-originated traffic touches the scan counters.
    benchmark_traffic = {
        "forward_port": LAN,
        "reply_port": None,
        "reply_fraction": 0.0,
        "warmup_heartbeats": 0,
    }

    def __init__(
        self,
        capacity: int = 65536,
        threshold: int = 64,
        expiration_time: float = 60.0,
    ):
        self.capacity = capacity
        self.threshold = threshold
        self.expiration_time = expiration_time

    def state(self) -> list[StateDecl]:
        return [
            # One entry per (source, destination port) pair seen recently.
            StateDecl("psd_touched", StateKind.MAP, self.capacity),
            StateDecl("psd_touched_chain", StateKind.DCHAIN, self.capacity),
            # One distinct-port counter per source.
            StateDecl("psd_srcs", StateKind.MAP, self.capacity),
            StateDecl("psd_srcs_chain", StateKind.DCHAIN, self.capacity),
            StateDecl(
                "psd_counts",
                StateKind.VECTOR,
                self.capacity,
                value_layout=(("port_count", 32),),
            ),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if port == WAN:
            # Only LAN-originated traffic is monitored for scans.
            ctx.forward(LAN)
        ctx.expire_flows("psd_touched", "psd_touched_chain")
        ctx.expire_flows("psd_srcs", "psd_srcs_chain")

        touched_key = (pkt.src_ip, pkt.dst_port)
        found, touched_index = ctx.map_get("psd_touched", touched_key)
        if ctx.cond(found):
            ctx.dchain_rejuvenate("psd_touched_chain", touched_index)
            ctx.forward(WAN)

        # First packet to this (source, port) pair: consult the counter.
        src_key = (pkt.src_ip,)
        src_found, src_index = ctx.map_get("psd_srcs", src_key)
        if ctx.cond(ctx.lnot(src_found)):
            ok, src_index = ctx.dchain_allocate("psd_srcs_chain")
            if ctx.cond(ctx.lnot(ok)):
                ctx.drop()
            ctx.map_put("psd_srcs", src_key, src_index)
            ctx.vector_put("psd_counts", src_index, {"port_count": 0})
        else:
            ctx.dchain_rejuvenate("psd_srcs_chain", src_index)

        counter = ctx.vector_borrow("psd_counts", src_index)
        count = counter["port_count"]
        if ctx.cond(ctx.gt(count, ctx.const(self.threshold, 32))):
            ctx.drop()

        ok, touched_index = ctx.dchain_allocate("psd_touched_chain")
        if ctx.cond(ctx.lnot(ok)):
            ctx.drop()
        ctx.map_put("psd_touched", touched_key, touched_index)
        ctx.vector_put(
            "psd_counts",
            src_index,
            {"port_count": ctx.add(count, ctx.const(1, 32))},
        )
        ctx.forward(WAN)
