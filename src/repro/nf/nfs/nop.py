"""NOP: the stateless no-operation forwarder (§6.1).

Maestro finds no state and configures RSS purely for load balancing with a
random key and all available packet fields on both ports.
"""

from __future__ import annotations

from typing import Any

from repro.nf.api import NF, NfContext, StateDecl

__all__ = ["Nop"]

LAN, WAN = 0, 1


class Nop(NF):
    """Forward every packet out the opposite interface."""

    name = "nop"
    ports = {"lan": LAN, "wan": WAN}

    def state(self) -> list[StateDecl]:
        return []

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        ctx.forward(self.other_port(port))
