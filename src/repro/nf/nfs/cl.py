"""CL: connection limiter (§6.1).

Limits how many connections any client (source IP) may open to any server
(destination IP) over a wide time frame, using a count-min sketch (5
hashes by default) for memory efficiency.  Maestro sees two access
patterns — the 5-tuple flow map and the (src_ip, dst_ip) sketch — and by
rule R2 shards on the coarser (src_ip, dst_ip) pair.
"""

from __future__ import annotations

from typing import Any

from repro.nf.api import NF, NfContext, StateDecl, StateKind

__all__ = ["ConnectionLimiter"]

LAN, WAN = 0, 1


class ConnectionLimiter(NF):
    """Cap client->server connection counts with a count-min sketch."""

    name = "cl"
    ports = {"lan": LAN, "wan": WAN}

    def __init__(
        self,
        capacity: int = 65536,
        sketch_capacity: int = 2**16,
        limit: int = 100,
        expiration_time: float = 600.0,
    ):
        self.capacity = capacity
        self.sketch_capacity = sketch_capacity
        self.limit = limit
        self.expiration_time = expiration_time

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("cl_flows", StateKind.MAP, self.capacity),
            StateDecl("cl_chain", StateKind.DCHAIN, self.capacity),
            StateDecl("cl_sketch", StateKind.SKETCH, self.sketch_capacity),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        ctx.expire_flows("cl_flows", "cl_chain")
        if port == LAN:
            flow = (pkt.src_ip, pkt.src_port, pkt.dst_ip, pkt.dst_port)
            found, index = ctx.map_get("cl_flows", flow)
            if ctx.cond(found):
                ctx.dchain_rejuvenate("cl_chain", index)
                ctx.forward(WAN)
            # New connection: estimate this client's count to this server.
            pair = (pkt.src_ip, pkt.dst_ip)
            count = ctx.sketch_fetch("cl_sketch", pair)
            if ctx.cond(ctx.gt(count, ctx.const(self.limit, 32))):
                ctx.drop()  # connection budget exhausted
            ok, index = ctx.dchain_allocate("cl_chain")
            if ctx.cond(ctx.lnot(ok)):
                ctx.drop()
            ctx.map_put("cl_flows", flow, index)
            ctx.sketch_touch("cl_sketch", pair)
            ctx.forward(WAN)
        else:
            inverse = (pkt.dst_ip, pkt.dst_port, pkt.src_ip, pkt.src_port)
            found, index = ctx.map_get("cl_flows", inverse)
            if ctx.cond(found):
                ctx.dchain_rejuvenate("cl_chain", index)
                ctx.forward(LAN)
            else:
                ctx.drop()
