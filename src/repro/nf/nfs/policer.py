"""Policer: per-user download rate limiter (§6.1).

Users are identified by IPv4 destination address; each holds a token
bucket.  Maestro shards on ``dst_ip`` alone.  Because the modelled NIC
(like the paper's E810) cannot hash IP addresses without the TCP/UDP
ports, RS3 must find a key that *cancels out* the port bits — the reason
the Policer has the longest generation time in Figure 6.
"""

from __future__ import annotations

from typing import Any

from repro.nf.api import NF, NfContext, StateDecl, StateKind

__all__ = ["Policer"]

LAN, WAN = 0, 1

#: Fixed-point factor for token-bucket time arithmetic (microseconds).
_TIME_SCALE = 1_000_000


class Policer(NF):
    """Token-bucket policer: ``rate`` bytes/s, ``burst`` bytes per user."""

    name = "policer"
    ports = {"lan": LAN, "wan": WAN}
    #: Downloads (WAN->LAN) exercise the token buckets; every such packet
    #: writes state — the reason locks are catastrophic here (§6.4).
    benchmark_traffic = {
        "forward_port": WAN,
        "reply_port": None,
        "reply_fraction": 0.0,
        "warmup_heartbeats": 0,
    }

    def __init__(
        self,
        capacity: int = 65536,
        rate: int = 1_000_000,
        burst: int = 100_000,
        expiration_time: float = 60.0,
    ):
        self.capacity = capacity
        self.rate = rate
        self.burst = burst
        self.expiration_time = expiration_time

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("pol_map", StateKind.MAP, self.capacity),
            StateDecl("pol_chain", StateKind.DCHAIN, self.capacity),
            StateDecl(
                "pol_buckets",
                StateKind.VECTOR,
                self.capacity,
                value_layout=(("tokens", 64), ("last_time", 64)),
            ),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if port == LAN:
            # Uploads are not policed.
            ctx.forward(WAN)
        ctx.expire_flows("pol_map", "pol_chain")
        key = (pkt.dst_ip,)
        found, index = ctx.map_get("pol_map", key)
        now_us = ctx.mul(ctx.now(), ctx.const(_TIME_SCALE, 64))
        if ctx.cond(found):
            ctx.dchain_rejuvenate("pol_chain", index)
            bucket = ctx.vector_borrow("pol_buckets", index)
            elapsed_us = ctx.sub(now_us, bucket["last_time"])
            refill = ctx.mul(elapsed_us, ctx.const(self.rate, 64))
            tokens = ctx.add(
                bucket["tokens"], refill
            )  # micro-tokens: bytes * _TIME_SCALE
            burst_ut = ctx.const(self.burst * _TIME_SCALE, 64)
            if ctx.cond(ctx.gt(tokens, burst_ut)):
                tokens = burst_ut
            cost = ctx.mul(pkt.wire_size, ctx.const(_TIME_SCALE, 64))
            if ctx.cond(ctx.lt(tokens, cost)):
                ctx.vector_put(
                    "pol_buckets", index, {"tokens": tokens, "last_time": now_us}
                )
                ctx.drop()
            ctx.vector_put(
                "pol_buckets",
                index,
                {"tokens": ctx.sub(tokens, cost), "last_time": now_us},
            )
            ctx.forward(LAN)
        else:
            ok, index = ctx.dchain_allocate("pol_chain")
            if ctx.cond(ok):
                ctx.map_put("pol_map", key, index)
                initial = ctx.sub(
                    ctx.const(self.burst * _TIME_SCALE, 64),
                    ctx.mul(pkt.wire_size, ctx.const(_TIME_SCALE, 64)),
                )
                ctx.vector_put(
                    "pol_buckets", index, {"tokens": initial, "last_time": now_us}
                )
            # Fail open for untracked users when the table is full.
            ctx.forward(LAN)
