"""LB: Maglev-like load balancer (§6.1).

Registers backend servers from their LAN-side packets, spreads WAN flows
over the registered backends through a consistent-hash table, and pins
established flows to their backend.  Semantic equivalence with a
sequential run requires every core to observe the same backend set, which
shared-nothing cores cannot do without coordination — Maestro detects this
and falls back to read/write locks, exactly as the paper reports.
"""

from __future__ import annotations

from typing import Any

from repro.nf.api import NF, NfContext, StateDecl, StateKind

__all__ = ["LoadBalancer"]

LAN, WAN = 0, 1

#: log2 of the consistent-hash table size.
_CHT_BITS = 8
_CHT_SIZE = 1 << _CHT_BITS
#: Slots each backend claims when it registers (bounded Maglev permutation).
_CLAIMS_PER_BACKEND = 16


class LoadBalancer(NF):
    """Maglev-style L4 load balancer with flow stickiness."""

    name = "lb"
    ports = {"lan": LAN, "wan": WAN}
    #: WAN traffic is balanced; a few LAN heartbeats register backends.
    benchmark_traffic = {
        "forward_port": WAN,
        "reply_port": None,
        "reply_fraction": 0.0,
        "warmup_heartbeats": 8,
    }

    def __init__(
        self,
        backend_capacity: int = 64,
        flow_capacity: int = 65536,
        expiration_time: float = 60.0,
    ):
        self.backend_capacity = backend_capacity
        self.flow_capacity = flow_capacity
        self.expiration_time = expiration_time

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("lb_backends", StateKind.MAP, self.backend_capacity),
            StateDecl("lb_backend_chain", StateKind.DCHAIN, self.backend_capacity),
            StateDecl(
                "lb_backend_ips",
                StateKind.VECTOR,
                self.backend_capacity,
                value_layout=(("ip", 32),),
            ),
            StateDecl(
                "lb_cht",
                StateKind.VECTOR,
                _CHT_SIZE,
                value_layout=(("backend", 16),),
            ),
            StateDecl("lb_flows", StateKind.MAP, self.flow_capacity),
            StateDecl("lb_flow_chain", StateKind.DCHAIN, self.flow_capacity),
            StateDecl(
                "lb_flow_backends",
                StateKind.VECTOR,
                self.flow_capacity,
                value_layout=(("backend", 16),),
            ),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if port == LAN:
            self._register_backend(ctx, pkt)
        else:
            self._balance(ctx, pkt)

    def _register_backend(self, ctx: NfContext, pkt: Any) -> None:
        """Learn a backend from its heartbeat and claim CHT slots."""
        key = (pkt.src_ip,)
        found, index = ctx.map_get("lb_backends", key)
        if ctx.cond(ctx.lnot(found)):
            ok, index = ctx.dchain_allocate("lb_backend_chain")
            if ctx.cond(ctx.lnot(ok)):
                ctx.forward(WAN)  # backend table full; pass traffic through
            ctx.map_put("lb_backends", key, index)
            ctx.vector_put("lb_backend_ips", index, {"ip": pkt.src_ip})
            # Bounded Maglev permutation: claim a fixed number of slots.
            for claim in range(_CLAIMS_PER_BACKEND):
                slot = ctx.hash_value(
                    "maglev_perm",
                    [pkt.src_ip, ctx.const(claim, 16)],
                    _CHT_BITS,
                )
                ctx.vector_put("lb_cht", slot, {"backend": index})
        else:
            ctx.dchain_rejuvenate("lb_backend_chain", index)
        ctx.forward(WAN)

    def _balance(self, ctx: NfContext, pkt: Any) -> None:
        """Steer a WAN packet to its backend, sticky per flow."""
        ctx.expire_flows("lb_flows", "lb_flow_chain")
        flow = (pkt.src_ip, pkt.src_port, pkt.dst_ip, pkt.dst_port)
        found, flow_index = ctx.map_get("lb_flows", flow)
        if ctx.cond(found):
            ctx.dchain_rejuvenate("lb_flow_chain", flow_index)
            choice = ctx.vector_borrow("lb_flow_backends", flow_index)
            backend = choice["backend"]
        else:
            slot = ctx.hash_value(
                "maglev_flow",
                [pkt.src_ip, pkt.src_port, pkt.dst_ip, pkt.dst_port],
                _CHT_BITS,
            )
            entry = ctx.vector_borrow("lb_cht", slot)
            backend = entry["backend"]
            alive = ctx.dchain_is_allocated("lb_backend_chain", backend)
            if ctx.cond(ctx.lnot(alive)):
                ctx.drop()  # no registered backend serves this slot
            ok, flow_index = ctx.dchain_allocate("lb_flow_chain")
            if ctx.cond(ok):
                ctx.map_put("lb_flows", flow, flow_index)
                ctx.vector_put(
                    "lb_flow_backends", flow_index, {"backend": backend}
                )
        target = ctx.vector_borrow("lb_backend_ips", backend)
        ctx.set_field("dst_ip", target["ip"])
        ctx.forward(LAN)
