"""Micro-NFs mirroring the Figure 2 rule examples.

One minimal NF per Constraints Generator rule, used by the test suite and
the documentation to demonstrate each analysis outcome in isolation:

====================== ===== ========================================
NF                     Rule  Expected verdict
====================== ===== ========================================
:class:`FlowCounter`   R1    shared-nothing on the 4-tuple
:class:`SrcStats`      R2    shared-nothing on ``src_ip`` (subsumption)
:class:`DualCounter`   R3    locks (disjoint dependencies)
:class:`GlobalCounter` R4    locks (constant key)
:class:`DhcpGuard`     R5    shared-nothing on ``src_ip`` despite a
                             MAC-keyed table (interchangeable constraints)
====================== ===== ========================================
"""

from __future__ import annotations

from typing import Any

from repro.nf.api import NF, NfContext, StateDecl, StateKind

__all__ = [
    "FlowCounter",
    "SrcStats",
    "DualCounter",
    "GlobalCounter",
    "DhcpGuard",
]

LAN, WAN = 0, 1
_DHCP_PORT = 67


class FlowCounter(NF):
    """R1: per-flow packet counter keyed by the 4-tuple."""

    name = "flow_counter"
    ports = {"lan": LAN, "wan": WAN}

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("fc_counts", StateKind.MAP, self.capacity),
            StateDecl("fc_chain", StateKind.DCHAIN, self.capacity),
            StateDecl(
                "fc_values",
                StateKind.VECTOR,
                self.capacity,
                value_layout=(("count", 32),),
            ),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        key = (pkt.src_ip, pkt.src_port, pkt.dst_ip, pkt.dst_port)
        found, index = ctx.map_get("fc_counts", key)
        if ctx.cond(found):
            record = ctx.vector_borrow("fc_values", index)
            ctx.vector_put(
                "fc_values",
                index,
                {"count": ctx.add(record["count"], ctx.const(1, 32))},
            )
        else:
            ok, index = ctx.dchain_allocate("fc_chain")
            if ctx.cond(ok):
                ctx.map_put("fc_counts", key, index)
                ctx.vector_put("fc_values", index, {"count": 1})
        ctx.forward(self.other_port(port))


class SrcStats(NF):
    """R2: a fine map on the 5-tuple subsumed by a coarse per-source map."""

    name = "src_stats"
    ports = {"lan": LAN, "wan": WAN}

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("ss_flows", StateKind.MAP, self.capacity),
            StateDecl("ss_flow_chain", StateKind.DCHAIN, self.capacity),
            StateDecl("ss_srcs", StateKind.MAP, self.capacity),
            StateDecl("ss_src_chain", StateKind.DCHAIN, self.capacity),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if port != LAN:
            ctx.forward(LAN)
        flow_key = (pkt.src_ip, pkt.src_port, pkt.dst_ip, pkt.dst_port)
        found, _ = ctx.map_get("ss_flows", flow_key)
        if ctx.cond(ctx.lnot(found)):
            ok, index = ctx.dchain_allocate("ss_flow_chain")
            if ctx.cond(ok):
                ctx.map_put("ss_flows", flow_key, index)
        src_found, _ = ctx.map_get("ss_srcs", (pkt.src_ip,))
        if ctx.cond(ctx.lnot(src_found)):
            ok, index = ctx.dchain_allocate("ss_src_chain")
            if ctx.cond(ok):
                ctx.map_put("ss_srcs", (pkt.src_ip,), index)
        ctx.forward(WAN)


class DualCounter(NF):
    """R3: independent per-source and per-destination counters.

    "An NF that keeps a pair of independent counters, one for source
    addresses and another for destination addresses, requires packets with
    the same source address OR the same destination address to be sent to
    the same core.  Due to limitations in the RSS mechanism, this is not
    possible." (Figure 2, example 3.)
    """

    name = "dual_counter"
    ports = {"lan": LAN, "wan": WAN}

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("dc_srcs", StateKind.MAP, self.capacity),
            StateDecl("dc_src_chain", StateKind.DCHAIN, self.capacity),
            StateDecl("dc_dsts", StateKind.MAP, self.capacity),
            StateDecl("dc_dst_chain", StateKind.DCHAIN, self.capacity),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        for map_name, chain, key in (
            ("dc_srcs", "dc_src_chain", (pkt.src_ip,)),
            ("dc_dsts", "dc_dst_chain", (pkt.dst_ip,)),
        ):
            found, _ = ctx.map_get(map_name, key)  # maestro: waive[MAE006]
            if ctx.cond(ctx.lnot(found)):
                ok, index = ctx.dchain_allocate(chain)  # maestro: waive[MAE006]
                if ctx.cond(ok):
                    ctx.map_put(map_name, key, index)  # maestro: waive[MAE006]
        ctx.forward(self.other_port(port))


class GlobalCounter(NF):
    """R4: a single global counter every packet updates.

    "Maestro behaves in a similar manner when finding global counters
    updated by every packet, as it bars it from implementing a
    shared-nothing parallel solution." (Footnote 2.)
    """

    name = "global_counter"
    ports = {"lan": LAN, "wan": WAN}

    def state(self) -> list[StateDecl]:
        return [
            StateDecl(
                "gc_total",
                StateKind.VECTOR,
                1,
                value_layout=(("count", 64),),
            ),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        record = ctx.vector_borrow("gc_total", ctx.const(0, 16))
        ctx.vector_put(
            "gc_total",
            ctx.const(0, 16),
            {"count": ctx.add(record["count"], ctx.const(1, 64))},
        )
        ctx.forward(self.other_port(port))


class DhcpGuard(NF):
    """R5: IP-source-guard style binding check (Figure 2, example 5).

    DHCP-ish packets (dst port 67) record a (MAC -> IP) binding; all other
    packets are dropped unless their source IP matches the binding stored
    for their source MAC.  The MAC key is not RSS-hashable, but a binding
    mismatch behaves exactly like a missing binding (drop), so sharding on
    ``src_ip`` is behaviour-preserving — rule R5.
    """

    name = "dhcp_guard"
    ports = {"lan": LAN, "wan": WAN}
    expiration_time = 300.0

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("dg_bindings", StateKind.MAP, self.capacity),
            StateDecl("dg_chain", StateKind.DCHAIN, self.capacity),
            StateDecl(
                "dg_ips",
                StateKind.VECTOR,
                self.capacity,
                value_layout=(("ip", 32),),
            ),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if port != LAN:
            ctx.forward(LAN)
        is_dhcp = ctx.eq(pkt.dst_port, ctx.const(_DHCP_PORT, 16))
        if ctx.cond(is_dhcp):
            found, index = ctx.map_get("dg_bindings", (pkt.src_mac,))
            if ctx.cond(ctx.lnot(found)):
                ok, index = ctx.dchain_allocate("dg_chain")
                if ctx.cond(ctx.lnot(ok)):
                    ctx.drop()
                ctx.map_put("dg_bindings", (pkt.src_mac,), index)
            else:
                ctx.dchain_rejuvenate("dg_chain", index)
            ctx.vector_put("dg_ips", index, {"ip": pkt.src_ip})
            ctx.forward(WAN)
        else:
            found, index = ctx.map_get("dg_bindings", (pkt.src_mac,))
            if ctx.cond(ctx.lnot(found)):
                ctx.drop()
            binding = ctx.vector_borrow("dg_ips", index)
            if ctx.cond(ctx.lnot(ctx.eq(binding["ip"], pkt.src_ip))):
                ctx.drop()
            ctx.dchain_rejuvenate("dg_chain", index)
            ctx.forward(WAN)
