"""Flow abstractions.

A *flow* (the paper's term; also "flowspace"/"scope" in prior work) is the
unit of state isolation an NF tracks: related packets identified through
header fields.  Traffic generators synthesize packets from
:class:`FiveTuple`s; the sharding analysis infers which fields *define*
flows for a given NF.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nf.packet import PROTO_UDP, Packet

__all__ = ["FiveTuple"]


@dataclass(frozen=True, order=True)
class FiveTuple:
    """The classic 5-tuple flow identifier."""

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int = PROTO_UDP

    def inverted(self) -> "FiveTuple":
        """The reply direction."""
        return FiveTuple(
            self.dst_ip, self.src_ip, self.dst_port, self.src_port, self.proto
        )

    def packet(self, wire_size: int = 64, timestamp: float = 0.0) -> Packet:
        """Materialize a packet of this flow."""
        return Packet(
            src_ip=self.src_ip,
            dst_ip=self.dst_ip,
            src_port=self.src_port,
            dst_port=self.dst_port,
            proto=self.proto,
            wire_size=wire_size,
            timestamp=timestamp,
        )

    @classmethod
    def from_packet(cls, pkt: Packet) -> "FiveTuple":
        return cls(pkt.src_ip, pkt.dst_ip, pkt.src_port, pkt.dst_port, pkt.proto)
