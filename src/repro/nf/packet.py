"""Packet model: concrete packets and their symbolic views.

Concrete packets feed the functional simulator and the traffic generators;
symbolic packet views feed the ESE engine, exposing each header field as a
canonical :class:`~repro.symbex.expr.Sym` (e.g. ``pkt.src_ip``).  The
canonical names are the shared vocabulary between the Constraints
Generator and RS3's bit-level compiler.

A minimal Ethernet/IPv4/TCP-UDP serializer is included so traces can be
round-tripped through real ``.pcap`` files (:mod:`repro.traffic.pcap`).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, replace

from repro.symbex import expr as E

__all__ = [
    "PACKET_FIELDS",
    "ETH_TYPE_IPV4",
    "PROTO_TCP",
    "PROTO_UDP",
    "Packet",
    "SymbolicPacket",
    "field_symbol",
]

#: Canonical packet header fields and their widths in bits, in the order
#: used throughout the library.
PACKET_FIELDS: dict[str, int] = {
    "dst_mac": 48,
    "src_mac": 48,
    "eth_type": 16,
    "src_ip": 32,
    "dst_ip": 32,
    "proto": 8,
    "src_port": 16,
    "dst_port": 16,
}

ETH_TYPE_IPV4 = 0x0800
PROTO_TCP = 6
PROTO_UDP = 17

_MIN_WIRE_SIZE = 64
_HEADERS_LEN = 14 + 20 + 8  # Ethernet + IPv4 + (UDP or truncated TCP)


def field_symbol(name: str) -> E.Sym:
    """Canonical symbol for packet field ``name`` (e.g. ``pkt.src_ip``)."""
    if name not in PACKET_FIELDS:
        raise KeyError(f"unknown packet field {name!r}")
    return E.Sym(PACKET_FIELDS[name], f"pkt.{name}")


@dataclass(frozen=True)
class Packet:
    """A concrete packet, identified by its parsed header fields.

    ``wire_size`` is the on-wire frame length in bytes (without the 20-byte
    preamble/IFG overhead, which the line-rate model adds separately).
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    proto: int = PROTO_UDP
    src_mac: int = 0x02_00_00_00_00_01
    dst_mac: int = 0x02_00_00_00_00_02
    eth_type: int = ETH_TYPE_IPV4
    wire_size: int = 64
    timestamp: float = 0.0

    def field(self, name: str) -> int:
        """Value of header field ``name``."""
        if name not in PACKET_FIELDS:
            raise KeyError(f"unknown packet field {name!r}")
        return getattr(self, name)

    def flow_tuple(self) -> tuple[int, int, int, int, int]:
        """The classic 5-tuple."""
        return (self.src_ip, self.dst_ip, self.src_port, self.dst_port, self.proto)

    def inverted(self) -> "Packet":
        """The reply-direction packet (sources and destinations swapped)."""
        return replace(
            self,
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            src_mac=self.dst_mac,
            dst_mac=self.src_mac,
        )

    def env(self) -> dict[str, int]:
        """Binding of canonical symbol names to this packet's values."""
        return {f"pkt.{name}": getattr(self, name) for name in PACKET_FIELDS}

    def to_bytes(self) -> bytes:
        """Serialize to an Ethernet/IPv4/UDP-or-TCP frame of ``wire_size``."""
        eth = (
            self.dst_mac.to_bytes(6, "big")
            + self.src_mac.to_bytes(6, "big")
            + struct.pack("!H", self.eth_type)
        )
        payload_len = max(0, self.wire_size - _HEADERS_LEN)
        ip_total = 20 + 8 + payload_len
        ip = struct.pack(
            "!BBHHHBBH4s4s",
            0x45,
            0,
            ip_total,
            0,
            0,
            64,
            self.proto,
            0,
            self.src_ip.to_bytes(4, "big"),
            self.dst_ip.to_bytes(4, "big"),
        )
        l4 = struct.pack("!HHHH", self.src_port, self.dst_port, 8 + payload_len, 0)
        frame = eth + ip + l4 + bytes(payload_len)
        if len(frame) < self.wire_size:
            frame += bytes(self.wire_size - len(frame))
        return frame[: max(self.wire_size, _MIN_WIRE_SIZE)]

    @classmethod
    def from_bytes(cls, frame: bytes, timestamp: float = 0.0) -> "Packet":
        """Parse an Ethernet/IPv4 frame produced by :meth:`to_bytes`."""
        if len(frame) < _HEADERS_LEN:
            raise ValueError(f"frame too short: {len(frame)} bytes")
        dst_mac = int.from_bytes(frame[0:6], "big")
        src_mac = int.from_bytes(frame[6:12], "big")
        eth_type = struct.unpack("!H", frame[12:14])[0]
        proto = frame[23]
        src_ip = int.from_bytes(frame[26:30], "big")
        dst_ip = int.from_bytes(frame[30:34], "big")
        src_port, dst_port = struct.unpack("!HH", frame[34:38])
        return cls(
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=src_port,
            dst_port=dst_port,
            proto=proto,
            src_mac=src_mac,
            dst_mac=dst_mac,
            eth_type=eth_type,
            wire_size=len(frame),
            timestamp=timestamp,
        )


class SymbolicPacket:
    """Symbolic view of a packet: every field is a canonical symbol.

    ``wire_size`` is exposed as a (non-RSS-hashable) symbol so NFs doing
    byte accounting (the Policer's token bucket) stay analyzable.
    """

    __slots__ = ()

    def __getattr__(self, name: str) -> E.Sym:
        if name == "wire_size":
            return E.Sym(16, "pkt.wire_size")
        try:
            return field_symbol(name)
        except KeyError as exc:
            raise AttributeError(str(exc)) from exc

    def field(self, name: str) -> E.Sym:
        return field_symbol(name)

    def env(self) -> dict[str, int]:  # pragma: no cover - symmetry helper
        raise TypeError("symbolic packets have no concrete environment")
