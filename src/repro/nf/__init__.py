"""The NF substrate: packets, flows, stateful structures, API, runtime."""

from repro.nf.api import (
    NF,
    ActionKind,
    NfContext,
    PacketDone,
    StateDecl,
    StateKind,
    declared_state_names,
)
from repro.nf.flow import FiveTuple
from repro.nf.packet import PACKET_FIELDS, Packet, SymbolicPacket, field_symbol
from repro.nf.runtime import (
    ConcreteContext,
    OpRecord,
    PacketResult,
    SequentialRunner,
    StateStore,
)
from repro.nf.state import DChain, Map, Sketch, Vector, expire_flows

__all__ = [
    "NF",
    "ActionKind",
    "NfContext",
    "PacketDone",
    "StateDecl",
    "StateKind",
    "declared_state_names",
    "FiveTuple",
    "PACKET_FIELDS",
    "Packet",
    "SymbolicPacket",
    "field_symbol",
    "ConcreteContext",
    "OpRecord",
    "PacketResult",
    "SequentialRunner",
    "StateStore",
    "DChain",
    "Map",
    "Sketch",
    "Vector",
    "expire_flows",
]
