"""Vigor-style stateful data structures (Table 1 of the paper).

====== =====================================================
map    Stores integers indexed by arbitrary data.
vector Stores arbitrary data (records) indexed by integers.
dchain Time-aware integer allocator.
sketch Count-min sketch.
====== =====================================================

These are the *only* containers NF state may live in (paper §5,
limitation (i): "a clean separation between stateful and stateless
operations ... only allowing state to persist within a set of well-defined
data structures").  The Maestro analysis relies on this: per-structure
sharding rules are encoded once (§3.4) and every NF built on top of them
is analyzable.

All structures have a fixed ``capacity`` so the shared-nothing code
generator can divide it across cores (§4, *State sharding*).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Hashable, Iterator

from repro.errors import StateModelError

__all__ = ["Map", "Vector", "DChain", "Sketch", "expire_flows"]


class Map:
    """A bounded map from arbitrary hashable keys to integers.

    Mirrors Vigor's ``map``: ``put`` fails (returns ``False``) when the map
    is at capacity, matching the sequential semantics that the paper's
    state-sharding discussion (§4) builds on: a "full" shard behaves
    locally like the full sequential map behaves globally.
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise StateModelError(f"map capacity must be positive: {capacity}")
        self.capacity = capacity
        self._data: dict[Hashable, int] = {}
        #: bumped on every successful mutation; the compiled dataplane's
        #: classification memo keys its validity on this.
        self.version = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: Hashable) -> tuple[bool, int]:
        """Lookup ``key``; returns ``(found, value)`` with value 0 on miss."""
        if key in self._data:
            return True, self._data[key]
        return False, 0

    def put(self, key: Hashable, value: int) -> bool:
        """Insert or update; returns ``False`` when full (new key only)."""
        if key not in self._data and len(self._data) >= self.capacity:
            return False
        self._data[key] = int(value)
        self.version += 1
        return True

    def erase(self, key: Hashable) -> bool:
        """Remove ``key``; returns whether it was present."""
        present = self._data.pop(key, None) is not None
        if present:
            self.version += 1
        return present

    def keys(self) -> Iterator[Hashable]:
        return iter(list(self._data.keys()))


class Vector:
    """A fixed-size array of records indexed by small integers.

    Records are plain ``dict``s whose layout is declared by the owning NF
    (see :class:`repro.nf.api.StateDecl`); the declared layout is what lets
    the R5 analysis track value provenance through writes and reads.
    """

    def __init__(self, capacity: int, initial: dict[str, int] | None = None):
        if capacity <= 0:
            raise StateModelError(f"vector capacity must be positive: {capacity}")
        self.capacity = capacity
        #: Pristine record layout; :meth:`reset` restores a slot to it when
        #: the elastic migrator vacates a row on the donor core.
        self._template: dict[str, int] = dict(initial or {})
        self._slots: list[dict[str, int]] = [
            dict(self._template) for _ in range(capacity)
        ]
        #: bumped on every slot overwrite (compiled-memo validity guard).
        self.version = 0

    def __len__(self) -> int:
        return self.capacity

    def _check(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < self.capacity:
            raise StateModelError(
                f"vector index {index} out of range [0, {self.capacity})"
            )
        return index

    def borrow(self, index: int) -> dict[str, int]:
        """Read the record at ``index`` (a copy; write back with ``put``)."""
        return dict(self._slots[self._check(index)])

    def put(self, index: int, record: dict[str, int]) -> None:
        """Overwrite the record at ``index``."""
        self._slots[self._check(index)] = dict(record)
        self.version += 1

    def reset(self, index: int) -> None:
        """Restore the record at ``index`` to the initial template.

        Used by live state migration: after a row's contents move to the
        receiving core's shard, the donor's slot goes back to its pristine
        state so a later (re)allocation of that index starts clean.
        """
        self._slots[self._check(index)] = dict(self._template)
        self.version += 1


@dataclass
class _ChainEntry:
    allocated: bool = False
    last_touched: float = 0.0


class DChain:
    """Time-aware integer allocator (Vigor's ``dchain``).

    Allocates indices in ``[0, capacity)``; each allocated index carries a
    last-touched timestamp that :meth:`rejuvenate` refreshes and
    :meth:`expire` consults to free stale indices.  This is the structure
    whose aging data the lock-based code generator replicates per core
    (§4, *Lock-based rejuvenation*).
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise StateModelError(f"dchain capacity must be positive: {capacity}")
        self.capacity = capacity
        self._entries = [_ChainEntry() for _ in range(capacity)]
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        #: bumped when the allocated set changes (not on rejuvenation);
        #: the compiled-memo validity guard for flag/frozen-alloc reads.
        self.alloc_version = 0

    def allocated_count(self) -> int:
        return self.capacity - len(self._free)

    def allocate(self, now: float) -> tuple[bool, int]:
        """Allocate a fresh index; ``(False, 0)`` when exhausted."""
        if not self._free:
            return False, 0
        index = self._free.pop()
        entry = self._entries[index]
        entry.allocated = True
        entry.last_touched = now
        self.alloc_version += 1
        return True, index

    def is_allocated(self, index: int) -> bool:
        if not 0 <= index < self.capacity:
            return False
        return self._entries[index].allocated

    def rejuvenate(self, index: int, now: float) -> bool:
        """Refresh the timestamp of an allocated index."""
        if not self.is_allocated(index):
            return False
        self._entries[index].last_touched = now
        return True

    def last_touched(self, index: int) -> float:
        return self._entries[index].last_touched

    def free_index(self, index: int) -> bool:
        if not self.is_allocated(index):
            return False
        self._entries[index].allocated = False
        self._free.append(index)
        self.alloc_version += 1
        return True

    def expire(self, threshold: float) -> list[int]:
        """Free every index last touched strictly before ``threshold``."""
        expired = [
            i
            for i, entry in enumerate(self._entries)
            if entry.allocated and entry.last_touched < threshold
        ]
        for index in expired:
            self.free_index(index)
        return expired


class Sketch:
    """Count-min sketch [Cormode & Muthukrishnan] (paper §6.1, CL).

    ``depth`` independent hash rows (the paper's Connection Limiter uses 5)
    of ``width`` counters each.  Memory-efficient approximate counting:
    ``fetch`` returns the minimum across rows, an upper bound on the true
    count.
    """

    def __init__(self, capacity: int, depth: int = 5):
        if capacity <= 0 or depth <= 0:
            raise StateModelError("sketch capacity and depth must be positive")
        self.capacity = capacity
        self.depth = depth
        self.width = max(4, capacity // depth)
        self._rows: list[list[int]] = [[0] * self.width for _ in range(depth)]

    def _buckets(self, key: Hashable) -> list[int]:
        material = repr(key).encode()
        out = []
        for row in range(self.depth):
            digest = hashlib.blake2b(
                material, digest_size=8, salt=row.to_bytes(4, "little") + b"\0" * 12
            ).digest()
            out.append(int.from_bytes(digest, "little") % self.width)
        return out

    def touch(self, key: Hashable, amount: int = 1) -> None:
        """Increment every row's counter for ``key``."""
        for row, bucket in enumerate(self._buckets(key)):
            self._rows[row][bucket] += amount

    def fetch(self, key: Hashable) -> int:
        """Estimated count for ``key`` (min across rows; never undercounts)."""
        return min(
            self._rows[row][bucket] for row, bucket in enumerate(self._buckets(key))
        )

    def reset(self) -> None:
        """Clear all counters (time-window rotation)."""
        for row in self._rows:
            for i in range(len(row)):
                row[i] = 0


def expire_flows(
    flow_map: Map,
    chain: DChain,
    vector: Vector,
    index_to_key: dict[int, Hashable],
    threshold: float,
) -> int:
    """Expire stale flows across the map+dchain+vector triad.

    This is the Vigor ``expire_items_single_map`` idiom: the dchain decides
    *which* indices are stale, and the paired map entries are erased so the
    sequential NF semantics (drop state for idle flows) hold.  Returns the
    number of expired flows.
    """
    expired = chain.expire(threshold)
    for index in expired:
        key = index_to_key.pop(index, None)
        if key is not None:
            flow_map.erase(key)
    return len(expired)
