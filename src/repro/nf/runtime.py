"""Concrete execution of NFs: the sequential reference runtime.

This is what "running the sequential NF" means throughout the repository:
the functional simulator, the equivalence checker, and the traffic studies
all execute NF ``process`` methods through :class:`ConcreteContext`.

Besides producing the packet's fate (:class:`PacketResult`), the runtime
records *operation statistics* — which stateful objects were read or
written — because the performance model (:mod:`repro.hw.cpu`) prices each
packet from exactly those counts.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping, NamedTuple, Sequence

from repro import obs
from repro.errors import SimulationError, StateModelError
from repro.nf.api import NF, ActionKind, NfContext, PacketDone, StateDecl, StateKind
from repro.nf.packet import PACKET_FIELDS, Packet
from repro.nf.state import DChain, Map, Sketch, Vector

__all__ = ["OpRecord", "PacketResult", "StateStore", "ConcreteContext", "SequentialRunner"]


class OpRecord(NamedTuple):
    """One stateful operation performed while processing a packet.

    A ``NamedTuple`` rather than a frozen dataclass: the functional
    simulator creates one per stateful op on every packet, and tuple
    construction is several times cheaper on that hot path.
    """

    obj: str
    op: str
    write: bool


class PacketResult:
    """The observable outcome of processing one packet.

    A ``__slots__`` class with a hand-written ``__init__`` rather than a
    dataclass: one is created per packet, and on the batched fast path
    the construction cost is a measurable slice of the whole per-packet
    budget.
    """

    __slots__ = ("kind", "port", "mods", "ops", "new_flow")

    def __init__(
        self,
        kind: ActionKind,
        port: int | None = None,
        mods: dict[str, int] | None = None,
        ops: list[OpRecord] | None = None,
        new_flow: bool = False,
    ) -> None:
        self.kind = kind
        self.port = port
        self.mods = {} if mods is None else mods
        self.ops = [] if ops is None else ops
        self.new_flow = new_flow

    def __repr__(self) -> str:
        return (
            f"PacketResult(kind={self.kind!r}, port={self.port!r}, "
            f"mods={self.mods!r}, ops={self.ops!r}, new_flow={self.new_flow!r})"
        )

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, PacketResult):
            return NotImplemented
        return (
            self.kind == other.kind
            and self.port == other.port
            and self.mods == other.mods
            and self.ops == other.ops
            and self.new_flow == other.new_flow
        )

    @property
    def reads(self) -> int:
        return sum(1 for op in self.ops if not op.write)

    @property
    def writes(self) -> int:
        return sum(1 for op in self.ops if op.write)

    def observable(self) -> tuple[Any, ...]:
        """The externally visible behaviour (for equivalence checking)."""
        return (self.kind, self.port, tuple(sorted(self.mods.items())))


class StateStore:
    """Instantiates and owns the stateful objects declared by an NF.

    ``scale`` divides every capacity, implementing the paper's state
    sharding (§4): per-core shards hold ``capacity / n_cores`` entries so
    total memory stays constant.
    """

    def __init__(self, decls: Sequence[StateDecl], scale: int = 1):
        if scale <= 0:
            raise SimulationError(f"state scale must be positive: {scale}")
        self.decls = {decl.name: decl for decl in decls}
        self.scale = scale
        self.objects: dict[str, Any] = {}
        for decl in decls:
            # Read-only tables are replicated whole on every core; only
            # written state is sharded (§4, *State sharding*).
            capacity = decl.capacity if decl.read_only else max(1, decl.capacity // scale)
            if decl.kind is StateKind.MAP:
                self.objects[decl.name] = Map(capacity)
            elif decl.kind is StateKind.VECTOR:
                initial = {field_name: 0 for field_name, _ in decl.value_layout}
                self.objects[decl.name] = Vector(capacity, initial=initial)
            elif decl.kind is StateKind.DCHAIN:
                self.objects[decl.name] = DChain(capacity)
            elif decl.kind is StateKind.SKETCH:
                self.objects[decl.name] = Sketch(capacity, depth=decl.sketch_depth)
            else:  # pragma: no cover - enum is closed
                raise StateModelError(f"unknown state kind {decl.kind}")
        # Reverse value->key indices for the map+dchain expiry idiom.
        self._reverse: dict[str, dict[int, Any]] = {
            decl.name: {} for decl in decls if decl.kind is StateKind.MAP
        }

    def __getitem__(self, name: str) -> Any:
        try:
            return self.objects[name]
        except KeyError:
            raise StateModelError(f"undeclared state object {name!r}") from None

    def decl(self, name: str) -> StateDecl:
        try:
            return self.decls[name]
        except KeyError:
            raise StateModelError(f"undeclared state object {name!r}") from None

    def note_put(self, name: str, key: Any, value: int) -> None:
        reverse = self._reverse.get(name)
        if reverse is not None:
            reverse[int(value)] = key

    def note_erase(self, name: str, key: Any) -> None:
        reverse = self._reverse.get(name)
        if reverse is not None:
            stale = [v for v, k in reverse.items() if k == key]
            for v in stale:
                del reverse[v]

    def key_for_value(self, name: str, value: int) -> Any | None:
        return self._reverse.get(name, {}).get(int(value))


class ConcreteContext(NfContext):
    """NfContext implementation over real data structures and packets."""

    def __init__(self, nf: NF, store: StateStore):
        self.nf = nf
        self.store = store
        self._now: float = 0.0
        self._mods: dict[str, int] = {}
        self._ops: list[OpRecord] = []
        self._new_flow = False
        self._last_expiry: float = float("-inf")
        #: Lifetime count of packets that created a flow (at most one per
        #: packet, matching ``PacketResult.new_flow``); the batched
        #: simulator reconciles per-core new-flow counters from deltas of
        #: this instead of re-walking every packet result.
        self.new_flow_total: int = 0
        # Hot-path plumbing: op records are immutable and drawn from a
        # tiny set of (obj, op) pairs, so intern them instead of
        # constructing one per stateful operation.  Each entry is
        # ``[record, (obj, kind), count]``; the count cell accumulates the
        # lifetime total for that op (cheaper than a dict update per op),
        # and :attr:`op_totals` aggregates the cells on demand.
        self._op_intern: dict[tuple[str, str, bool], list] = {}
        self._tracer = obs.get_tracer()
        self._trace_on = self._tracer.enabled()
        self._objects = store.objects
        #: Optional state-access probe (the race sanitizer's event tap,
        #: :mod:`repro.analysis.race`).  When set it must expose
        #: ``begin(port)`` — called once per packet before processing —
        #: and ``access(obj, op, write, key)`` — called per stateful op
        #: with the concrete key/index (None for key-less ops).  The
        #: disabled case pays one attribute load and a None test per op.
        self.access_probe = None
        #: Elastic-scaling plumbing (:mod:`repro.scale`).  When a core runs
        #: under live re-sharding, ``bucket_index`` is a
        #: :class:`repro.scale.migrate.BucketIndex` and ``current_bucket``
        #: is set per packet to the indirection-table slot that steered it;
        #: the stateful-op wrappers below then tag every created map key /
        #: vector row / chain index with that bucket so migration can later
        #: extract exactly the entries a moving bucket owns.  Both stay
        #: inert (None / -1) outside elastic runs.
        self.bucket_index = None
        self.current_bucket = -1
        # One reusable terminator exception per context: the packet ops
        # below re-arm and re-raise it instead of constructing a fresh
        # PacketDone per packet (exception allocation is a measurable
        # slice of the per-packet budget).
        self._done = PacketDone(ActionKind.DROP)

    # -------------------------------------------------------------- #
    # Control flow & value algebra: plain Python semantics.
    # -------------------------------------------------------------- #
    def cond(self, value: Any) -> bool:
        return bool(value)

    def const(self, value: int, width: int) -> int:
        return int(value) & ((1 << width) - 1)

    def eq(self, lhs: Any, rhs: Any) -> bool:
        return lhs == rhs

    def lt(self, lhs: Any, rhs: Any) -> bool:
        return lhs < rhs

    def add(self, lhs: Any, rhs: Any) -> Any:
        return lhs + rhs

    def sub(self, lhs: Any, rhs: Any) -> Any:
        return lhs - rhs

    def mul(self, lhs: Any, rhs: Any) -> Any:
        return lhs * rhs

    def extract(self, value: Any, hi: int, lo: int) -> int:
        return (int(value) >> lo) & ((1 << (hi - lo + 1)) - 1)

    def lnot(self, value: Any) -> bool:
        return not value

    def land(self, lhs: Any, rhs: Any) -> bool:
        return bool(lhs) and bool(rhs)

    def lor(self, lhs: Any, rhs: Any) -> bool:
        return bool(lhs) or bool(rhs)

    def hash_value(self, fn: str, values: Sequence[Any], width: int) -> int:
        material = fn.encode() + b"|".join(str(int(v)).encode() for v in values)
        digest = hashlib.blake2b(material, digest_size=8).digest()
        return int.from_bytes(digest, "little") & ((1 << width) - 1)

    def now(self) -> float:
        return self._now

    # -------------------------------------------------------------- #
    # Stateful operations
    # -------------------------------------------------------------- #
    @property
    def op_totals(self) -> dict[tuple[str, str], int]:
        """Lifetime stateful-op totals: ``(obj, "read"|"write") -> count``."""
        totals: dict[tuple[str, str], int] = {}
        for _, totals_key, count in self._op_intern.values():
            totals[totals_key] = totals.get(totals_key, 0) + count
        return totals

    def stat_snapshot(
        self, locked: frozenset[str] = frozenset()
    ) -> tuple[int, int, int, int]:
        """``(reads, writes, new_flow_packets, locked_writes)`` lifetime
        totals in one pass over the interned op cells.

        ``locked_writes`` counts writes to objects in ``locked`` (the
        :class:`~repro.core.codegen.LockPlan`'s guarded set) — the
        telemetry plane's ``lock_waits`` proxy: each such write is one
        write-lock acquisition under LOCKS/TM, and zero when the NF runs
        shared-nothing.
        """
        reads = writes = locked_writes = 0
        for record, _, count in self._op_intern.values():
            if record.write:
                writes += count
                if record.obj in locked:
                    locked_writes += count
            else:
                reads += count
        return reads, writes, self.new_flow_total, locked_writes

    def _record(self, obj: str, op: str, write: bool, key: Any = None) -> None:
        entry = self._op_intern.get((obj, op, write))
        if entry is None:
            kind = "write" if write else "read"
            entry = [OpRecord(obj, op, write), (obj, kind), 0]
            self._op_intern[(obj, op, write)] = entry
        self._ops.append(entry[0])
        entry[2] += 1
        probe = self.access_probe
        if probe is not None:
            probe.access(obj, op, write, key)
        # Guard on the tracer so the (dominant) untraced case never pays
        # for assembling the counter's attribute kwargs.  The flag is
        # refreshed once per packet in run().
        if self._trace_on:
            obs.counter(
                "nf.state_op", 1, nf=self.nf.name, obj=obj, kind=entry[1][1]
            )

    # In every wrapper below, ``self._objects.get(name) or self.store[name]``
    # is the inlined fast path of ``self.store[name]``: one dict probe,
    # falling back to the raising lookup for undeclared names.  (State
    # objects are always truthy: they are plain container instances.)
    def map_get(self, name: str, key: Sequence[Any]) -> tuple[bool, int]:
        key_t = tuple(key)
        self._record(name, "map_get", False, key_t)
        obj = self._objects.get(name) or self.store[name]
        return obj.get(key_t)

    def map_put(self, name: str, key: Sequence[Any], value: Any) -> bool:
        key_t = tuple(key)
        self._record(name, "map_put", True, key_t)
        obj = self._objects.get(name) or self.store[name]
        ok = obj.put(key_t, int(value))
        if ok:
            self.store.note_put(name, key_t, int(value))
            if self.bucket_index is not None:
                self.bucket_index.note_key(name, key_t, self.current_bucket)
        return ok

    def map_erase(self, name: str, key: Sequence[Any]) -> None:
        key_t = tuple(key)
        self._record(name, "map_erase", True, key_t)
        self.store.note_erase(name, key_t)
        if self.bucket_index is not None:
            self.bucket_index.drop_key(name, key_t)
        obj = self._objects.get(name) or self.store[name]
        obj.erase(key_t)

    def vector_borrow(self, name: str, index: Any) -> Mapping[str, Any]:
        idx = int(index)
        self._record(name, "vector_borrow", False, idx)
        obj = self._objects.get(name) or self.store[name]
        return obj.borrow(idx)

    def vector_put(self, name: str, index: Any, record: Mapping[str, Any]) -> None:
        idx = int(index)
        self._record(name, "vector_put", True, idx)
        obj = self._objects.get(name) or self.store[name]
        obj.put(idx, dict(record))
        if self.bucket_index is not None:
            self.bucket_index.note_index(name, idx, self.current_bucket)

    def vector_fill(self, name: str, records: Sequence[Mapping[str, Any]]) -> None:
        self._record(name, "vector_fill", True)
        vector: Vector = self.store[name]
        for i in range(len(vector)):
            vector.put(i, dict(records[i % len(records)]) if records else {})

    def dchain_allocate(self, name: str) -> tuple[bool, int]:
        self._record(name, "dchain_allocate", True)
        obj = self._objects.get(name) or self.store[name]
        ok, index = obj.allocate(self._now)
        if ok:
            if self.bucket_index is not None:
                self.bucket_index.note_index(name, index, self.current_bucket)
            if not self._new_flow:
                self._new_flow = True
                self.new_flow_total += 1
        return ok, index

    def dchain_is_allocated(self, name: str, index: Any) -> bool:
        idx = int(index)
        self._record(name, "dchain_is_allocated", False, idx)
        obj = self._objects.get(name) or self.store[name]
        return obj.is_allocated(idx)

    def dchain_rejuvenate(self, name: str, index: Any) -> None:
        idx = int(index)
        self._record(name, "dchain_rejuvenate", True, idx)
        obj = self._objects.get(name) or self.store[name]
        obj.rejuvenate(idx, self._now)

    def sketch_fetch(self, name: str, key: Sequence[Any]) -> int:
        key_t = tuple(key)
        self._record(name, "sketch_fetch", False, key_t)
        obj = self._objects.get(name) or self.store[name]
        return obj.fetch(key_t)

    def sketch_touch(self, name: str, key: Sequence[Any]) -> None:
        key_t = tuple(key)
        self._record(name, "sketch_touch", True, key_t)
        obj = self._objects.get(name) or self.store[name]
        obj.touch(key_t)

    def expire_flows(self, map_name: str, chain_name: str) -> None:
        horizon = self.nf.expiration_time
        if horizon is None:
            return
        # Sweep at most once per simulated second to keep traces cheap.
        if self._now - self._last_expiry < 1.0:
            return
        self._last_expiry = self._now
        self._record(chain_name, "expire", write=True)
        chain: DChain = self.store[chain_name]
        flow_map: Map = self.store[map_name]
        for index in chain.expire(self._now - horizon):
            key = self.store.key_for_value(map_name, index)
            if self.bucket_index is not None:
                self.bucket_index.drop_index(chain_name, index)
            if key is not None:
                flow_map.erase(key)
                self.store.note_erase(map_name, key)
                if self.bucket_index is not None:
                    self.bucket_index.drop_key(map_name, key)

    # -------------------------------------------------------------- #
    # Packet operations
    # -------------------------------------------------------------- #
    def set_field(self, name: str, value: Any) -> None:
        if name not in PACKET_FIELDS:
            raise StateModelError(f"cannot rewrite unknown packet field {name!r}")
        self._mods[name] = int(value)

    # Re-arm the per-context PacketDone instead of allocating one per
    # packet (the base-class implementations construct a fresh exception).
    def forward(self, port: Any) -> None:
        done = self._done
        done.kind = ActionKind.FORWARD
        done.port = port
        raise done

    def drop(self) -> None:
        done = self._done
        done.kind = ActionKind.DROP
        done.port = None
        raise done

    def flood(self) -> None:
        done = self._done
        done.kind = ActionKind.FLOOD
        done.port = None
        raise done

    # -------------------------------------------------------------- #
    # Driver
    # -------------------------------------------------------------- #
    def run(self, port: int, pkt: Packet, now: float | None = None) -> PacketResult:
        """Process one packet and return its observable result."""
        self._now = pkt.timestamp if now is None else now
        self._mods = {}
        self._ops = []
        self._new_flow = False
        self._trace_on = self._tracer.enabled()
        probe = self.access_probe
        if probe is not None:
            # Only pass the steering bucket when elastic tagging is live:
            # custom probes predating elastic scaling accept begin(port).
            if self.bucket_index is not None:
                probe.begin(port, self.current_bucket)
            else:
                probe.begin(port)
        try:
            self.nf.process(self, port, pkt)
        except PacketDone as done:
            # The reusable exception must not retain its traceback between
            # packets: it lives on the context, so a lingering traceback
            # would pin every frame of this call (and its locals) until
            # the next packet — measurable GC pressure at trace scale.
            done.__traceback__ = None
            # Hand the working mods/ops containers to the result instead
            # of copying them: run() rebinds fresh ones on the next call,
            # so the result keeps sole ownership.
            return PacketResult(
                done.kind,
                None if done.port is None else int(done.port),
                self._mods,
                self._ops,
                self._new_flow,
            )
        raise SimulationError(
            f"{self.nf.name}.process returned without a packet operation"
        )


class SequentialRunner:
    """Convenience wrapper: one NF instance with its own state.

    >>> runner = SequentialRunner(Firewall())
    >>> result = runner.process(port=0, pkt=some_packet)
    """

    def __init__(self, nf: NF, *, state_scale: int = 1):
        self.nf = nf
        self.store = StateStore(nf.state(), scale=state_scale)
        self.ctx = ConcreteContext(nf, self.store)
        nf.setup(self.ctx)

    @property
    def op_totals(self) -> dict[tuple[str, str], int]:
        """Lifetime per-object stateful read/write counts (see ctx)."""
        return dict(self.ctx.op_totals)

    def process(self, port: int, pkt: Packet, now: float | None = None) -> PacketResult:
        return self.ctx.run(port, pkt, now=now)

    def process_trace(
        self, trace: Sequence[tuple[int, Packet]]
    ) -> list[PacketResult]:
        """Process ``(port, packet)`` pairs in order."""
        return [self.process(port, pkt) for port, pkt in trace]
