"""Concrete execution of NFs: the sequential reference runtime.

This is what "running the sequential NF" means throughout the repository:
the functional simulator, the equivalence checker, and the traffic studies
all execute NF ``process`` methods through :class:`ConcreteContext`.

Besides producing the packet's fate (:class:`PacketResult`), the runtime
records *operation statistics* — which stateful objects were read or
written — because the performance model (:mod:`repro.hw.cpu`) prices each
packet from exactly those counts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro import obs
from repro.errors import SimulationError, StateModelError
from repro.nf.api import NF, ActionKind, NfContext, PacketDone, StateDecl, StateKind
from repro.nf.packet import PACKET_FIELDS, Packet
from repro.nf.state import DChain, Map, Sketch, Vector

__all__ = ["OpRecord", "PacketResult", "StateStore", "ConcreteContext", "SequentialRunner"]


@dataclass(frozen=True)
class OpRecord:
    """One stateful operation performed while processing a packet."""

    obj: str
    op: str
    write: bool


@dataclass
class PacketResult:
    """The observable outcome of processing one packet."""

    kind: ActionKind
    port: int | None = None
    mods: dict[str, int] = field(default_factory=dict)
    ops: list[OpRecord] = field(default_factory=list)
    new_flow: bool = False

    @property
    def reads(self) -> int:
        return sum(1 for op in self.ops if not op.write)

    @property
    def writes(self) -> int:
        return sum(1 for op in self.ops if op.write)

    def observable(self) -> tuple[Any, ...]:
        """The externally visible behaviour (for equivalence checking)."""
        return (self.kind, self.port, tuple(sorted(self.mods.items())))


class StateStore:
    """Instantiates and owns the stateful objects declared by an NF.

    ``scale`` divides every capacity, implementing the paper's state
    sharding (§4): per-core shards hold ``capacity / n_cores`` entries so
    total memory stays constant.
    """

    def __init__(self, decls: Sequence[StateDecl], scale: int = 1):
        if scale <= 0:
            raise SimulationError(f"state scale must be positive: {scale}")
        self.decls = {decl.name: decl for decl in decls}
        self.scale = scale
        self.objects: dict[str, Any] = {}
        for decl in decls:
            # Read-only tables are replicated whole on every core; only
            # written state is sharded (§4, *State sharding*).
            capacity = decl.capacity if decl.read_only else max(1, decl.capacity // scale)
            if decl.kind is StateKind.MAP:
                self.objects[decl.name] = Map(capacity)
            elif decl.kind is StateKind.VECTOR:
                initial = {field_name: 0 for field_name, _ in decl.value_layout}
                self.objects[decl.name] = Vector(capacity, initial=initial)
            elif decl.kind is StateKind.DCHAIN:
                self.objects[decl.name] = DChain(capacity)
            elif decl.kind is StateKind.SKETCH:
                self.objects[decl.name] = Sketch(capacity, depth=decl.sketch_depth)
            else:  # pragma: no cover - enum is closed
                raise StateModelError(f"unknown state kind {decl.kind}")
        # Reverse value->key indices for the map+dchain expiry idiom.
        self._reverse: dict[str, dict[int, Any]] = {
            decl.name: {} for decl in decls if decl.kind is StateKind.MAP
        }

    def __getitem__(self, name: str) -> Any:
        try:
            return self.objects[name]
        except KeyError:
            raise StateModelError(f"undeclared state object {name!r}") from None

    def decl(self, name: str) -> StateDecl:
        try:
            return self.decls[name]
        except KeyError:
            raise StateModelError(f"undeclared state object {name!r}") from None

    def note_put(self, name: str, key: Any, value: int) -> None:
        reverse = self._reverse.get(name)
        if reverse is not None:
            reverse[int(value)] = key

    def note_erase(self, name: str, key: Any) -> None:
        reverse = self._reverse.get(name)
        if reverse is not None:
            stale = [v for v, k in reverse.items() if k == key]
            for v in stale:
                del reverse[v]

    def key_for_value(self, name: str, value: int) -> Any | None:
        return self._reverse.get(name, {}).get(int(value))


class ConcreteContext(NfContext):
    """NfContext implementation over real data structures and packets."""

    def __init__(self, nf: NF, store: StateStore):
        self.nf = nf
        self.store = store
        self._now: float = 0.0
        self._mods: dict[str, int] = {}
        self._ops: list[OpRecord] = []
        self._new_flow = False
        self._last_expiry: float = float("-inf")
        #: Lifetime stateful-op totals: ``(obj, "read"|"write") -> count``.
        self.op_totals: dict[tuple[str, str], int] = {}

    # -------------------------------------------------------------- #
    # Control flow & value algebra: plain Python semantics.
    # -------------------------------------------------------------- #
    def cond(self, value: Any) -> bool:
        return bool(value)

    def const(self, value: int, width: int) -> int:
        return int(value) & ((1 << width) - 1)

    def eq(self, lhs: Any, rhs: Any) -> bool:
        return lhs == rhs

    def lt(self, lhs: Any, rhs: Any) -> bool:
        return lhs < rhs

    def add(self, lhs: Any, rhs: Any) -> Any:
        return lhs + rhs

    def sub(self, lhs: Any, rhs: Any) -> Any:
        return lhs - rhs

    def mul(self, lhs: Any, rhs: Any) -> Any:
        return lhs * rhs

    def extract(self, value: Any, hi: int, lo: int) -> int:
        return (int(value) >> lo) & ((1 << (hi - lo + 1)) - 1)

    def lnot(self, value: Any) -> bool:
        return not value

    def land(self, lhs: Any, rhs: Any) -> bool:
        return bool(lhs) and bool(rhs)

    def lor(self, lhs: Any, rhs: Any) -> bool:
        return bool(lhs) or bool(rhs)

    def hash_value(self, fn: str, values: Sequence[Any], width: int) -> int:
        material = fn.encode() + b"|".join(str(int(v)).encode() for v in values)
        digest = hashlib.blake2b(material, digest_size=8).digest()
        return int.from_bytes(digest, "little") & ((1 << width) - 1)

    def now(self) -> float:
        return self._now

    # -------------------------------------------------------------- #
    # Stateful operations
    # -------------------------------------------------------------- #
    def _record(self, obj: str, op: str, write: bool) -> None:
        self._ops.append(OpRecord(obj, op, write))
        kind = "write" if write else "read"
        key = (obj, kind)
        self.op_totals[key] = self.op_totals.get(key, 0) + 1
        obs.counter("nf.state_op", 1, nf=self.nf.name, obj=obj, kind=kind)

    def map_get(self, name: str, key: Sequence[Any]) -> tuple[bool, int]:
        self._record(name, "map_get", write=False)
        return self.store[name].get(tuple(key))

    def map_put(self, name: str, key: Sequence[Any], value: Any) -> bool:
        self._record(name, "map_put", write=True)
        key_t = tuple(key)
        ok = self.store[name].put(key_t, int(value))
        if ok:
            self.store.note_put(name, key_t, int(value))
        return ok

    def map_erase(self, name: str, key: Sequence[Any]) -> None:
        self._record(name, "map_erase", write=True)
        key_t = tuple(key)
        self.store.note_erase(name, key_t)
        self.store[name].erase(key_t)

    def vector_borrow(self, name: str, index: Any) -> Mapping[str, Any]:
        self._record(name, "vector_borrow", write=False)
        return self.store[name].borrow(int(index))

    def vector_put(self, name: str, index: Any, record: Mapping[str, Any]) -> None:
        self._record(name, "vector_put", write=True)
        self.store[name].put(int(index), dict(record))

    def vector_fill(self, name: str, records: Sequence[Mapping[str, Any]]) -> None:
        self._record(name, "vector_fill", write=True)
        vector: Vector = self.store[name]
        for i in range(len(vector)):
            vector.put(i, dict(records[i % len(records)]) if records else {})

    def dchain_allocate(self, name: str) -> tuple[bool, int]:
        self._record(name, "dchain_allocate", write=True)
        ok, index = self.store[name].allocate(self._now)
        if ok:
            self._new_flow = True
        return ok, index

    def dchain_is_allocated(self, name: str, index: Any) -> bool:
        self._record(name, "dchain_is_allocated", write=False)
        return self.store[name].is_allocated(int(index))

    def dchain_rejuvenate(self, name: str, index: Any) -> None:
        self._record(name, "dchain_rejuvenate", write=True)
        self.store[name].rejuvenate(int(index), self._now)

    def sketch_fetch(self, name: str, key: Sequence[Any]) -> int:
        self._record(name, "sketch_fetch", write=False)
        return self.store[name].fetch(tuple(key))

    def sketch_touch(self, name: str, key: Sequence[Any]) -> None:
        self._record(name, "sketch_touch", write=True)
        self.store[name].touch(tuple(key))

    def expire_flows(self, map_name: str, chain_name: str) -> None:
        horizon = self.nf.expiration_time
        if horizon is None:
            return
        # Sweep at most once per simulated second to keep traces cheap.
        if self._now - self._last_expiry < 1.0:
            return
        self._last_expiry = self._now
        self._record(chain_name, "expire", write=True)
        chain: DChain = self.store[chain_name]
        flow_map: Map = self.store[map_name]
        for index in chain.expire(self._now - horizon):
            key = self.store.key_for_value(map_name, index)
            if key is not None:
                flow_map.erase(key)
                self.store.note_erase(map_name, key)

    # -------------------------------------------------------------- #
    # Packet operations
    # -------------------------------------------------------------- #
    def set_field(self, name: str, value: Any) -> None:
        if name not in PACKET_FIELDS:
            raise StateModelError(f"cannot rewrite unknown packet field {name!r}")
        self._mods[name] = int(value)

    # -------------------------------------------------------------- #
    # Driver
    # -------------------------------------------------------------- #
    def run(self, port: int, pkt: Packet, now: float | None = None) -> PacketResult:
        """Process one packet and return its observable result."""
        self._now = pkt.timestamp if now is None else now
        self._mods = {}
        self._ops = []
        self._new_flow = False
        try:
            self.nf.process(self, port, pkt)
        except PacketDone as done:
            return PacketResult(
                kind=done.kind,
                port=None if done.port is None else int(done.port),
                mods=dict(self._mods),
                ops=list(self._ops),
                new_flow=self._new_flow,
            )
        raise SimulationError(
            f"{self.nf.name}.process returned without a packet operation"
        )


class SequentialRunner:
    """Convenience wrapper: one NF instance with its own state.

    >>> runner = SequentialRunner(Firewall())
    >>> result = runner.process(port=0, pkt=some_packet)
    """

    def __init__(self, nf: NF, *, state_scale: int = 1):
        self.nf = nf
        self.store = StateStore(nf.state(), scale=state_scale)
        self.ctx = ConcreteContext(nf, self.store)
        nf.setup(self.ctx)

    @property
    def op_totals(self) -> dict[tuple[str, str], int]:
        """Lifetime per-object stateful read/write counts (see ctx)."""
        return dict(self.ctx.op_totals)

    def process(self, port: int, pkt: Packet, now: float | None = None) -> PacketResult:
        return self.ctx.run(port, pkt, now=now)

    def process_trace(
        self, trace: Sequence[tuple[int, Packet]]
    ) -> list[PacketResult]:
        """Process ``(port, packet)`` pairs in order."""
        return [self.process(port, pkt) for port, pkt in trace]
