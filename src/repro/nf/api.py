"""The NF programming API (the sequential surface Maestro analyzes).

NFs are written once, sequentially, against :class:`NfContext` — the
Python analogue of the Vigor API the paper requires (§5).  The same NF
code runs under:

* the **concrete runtime** (:mod:`repro.nf.runtime`) for functional
  simulation, and
* the **symbolic engine** (:mod:`repro.symbex.engine`) for ESE.

To make that possible, NF code treats all values as opaque handles and
combines them only through context operations (``ctx.eq``, ``ctx.add``,
...), and branches only through ``ctx.cond(...)`` — the hook the ESE
engine uses to fork execution.  Packet processing ends by calling one of
the packet operations (``forward``/``drop``/``flood``), which raise
:class:`PacketDone` to terminate the path.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.errors import StateModelError

__all__ = [
    "StateKind",
    "StateDecl",
    "ActionKind",
    "PacketDone",
    "NfContext",
    "NF",
    "declared_state_names",
]


class StateKind(enum.Enum):
    """The four stateful constructors of Table 1."""

    MAP = "map"
    VECTOR = "vector"
    DCHAIN = "dchain"
    SKETCH = "sketch"


@dataclass(frozen=True)
class StateDecl:
    """Declaration of one stateful object.

    ``value_layout`` names the record fields stored in a vector (or the
    meaning of a map's integer value); the R5 analysis uses it to track
    which packet fields were *written into* a record, so reads elsewhere
    can be matched back to the writer (§3.4, interchangeable constraints).

    ``read_only`` marks tables populated at setup time and never written by
    ``process`` (e.g. the static bridge); the Constraints Generator filters
    those out (§3.4, *Filtering entries*).
    """

    name: str
    kind: StateKind
    capacity: int
    value_layout: tuple[tuple[str, int], ...] = ()
    read_only: bool = False
    sketch_depth: int = 5

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise StateModelError(f"{self.name}: capacity must be positive")
        if self.sketch_depth < 1:
            raise StateModelError(
                f"{self.name}: sketch_depth must be >= 1, got {self.sketch_depth}"
            )
        for field_name, width in self.value_layout:
            if width <= 0:
                raise StateModelError(
                    f"{self.name}: value_layout field {field_name!r} must "
                    f"have a positive bit width, got {width}"
                )


class ActionKind(enum.Enum):
    """Terminal packet operations (§3.3: 'packet operation' nodes)."""

    FORWARD = "forward"
    DROP = "drop"
    FLOOD = "flood"


class PacketDone(Exception):
    """Raised by packet operations to terminate processing of a packet."""

    def __init__(self, kind: ActionKind, port: Any = None):
        # No super().__init__ call: BaseException.__new__ already stored
        # the constructor args, and skipping the enum .value lookup plus
        # the extra frame matters on the one-exception-per-packet path.
        self.kind = kind
        self.port = port


class NfContext(abc.ABC):
    """Abstract execution context shared by the concrete and symbolic runs.

    Stateful operations mirror Table 1.  ``key`` arguments are tuples of
    opaque values (packet fields, constants created with :meth:`const`, or
    values previously read from state).
    """

    # ------------------------------------------------------------------ #
    # Control flow
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def cond(self, value: Any) -> bool:
        """Branch on an opaque boolean; the ESE engine forks here."""

    # ------------------------------------------------------------------ #
    # Value algebra (mode-agnostic arithmetic/comparison)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def const(self, value: int, width: int) -> Any:
        """A literal bit-vector value."""

    @abc.abstractmethod
    def eq(self, lhs: Any, rhs: Any) -> Any:
        """Equality test between two opaque values."""

    @abc.abstractmethod
    def lt(self, lhs: Any, rhs: Any) -> Any:
        """Unsigned less-than."""

    @abc.abstractmethod
    def add(self, lhs: Any, rhs: Any) -> Any:
        """Modular addition."""

    @abc.abstractmethod
    def sub(self, lhs: Any, rhs: Any) -> Any:
        """Modular subtraction."""

    @abc.abstractmethod
    def mul(self, lhs: Any, rhs: Any) -> Any:
        """Modular multiplication (token-bucket refill arithmetic)."""

    @abc.abstractmethod
    def extract(self, value: Any, hi: int, lo: int) -> Any:
        """Bit slice ``value[hi:lo]`` (LSB-numbered, inclusive).

        Used for prefix/subnet keys (e.g. ``ctx.extract(pkt.src_ip, 31, 8)``
        is the /24 of the source address)."""

    @abc.abstractmethod
    def hash_value(self, fn: str, values: Sequence[Any], width: int) -> Any:
        """An uninterpreted hash of ``values`` producing ``width`` bits.

        The sharding analysis only needs the *dependency set* of the
        result, which is exactly what an uninterpreted function conveys.
        """

    def ne(self, lhs: Any, rhs: Any) -> Any:
        return self.lnot(self.eq(lhs, rhs))

    def gt(self, lhs: Any, rhs: Any) -> Any:
        return self.lt(rhs, lhs)

    @abc.abstractmethod
    def lnot(self, value: Any) -> Any:
        """Boolean negation."""

    @abc.abstractmethod
    def land(self, lhs: Any, rhs: Any) -> Any:
        """Boolean conjunction."""

    @abc.abstractmethod
    def lor(self, lhs: Any, rhs: Any) -> Any:
        """Boolean disjunction."""

    # ------------------------------------------------------------------ #
    # Time
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def now(self) -> Any:
        """Current time (seconds; opaque under symbolic execution)."""

    # ------------------------------------------------------------------ #
    # Stateful operations (Table 1)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def map_get(self, name: str, key: Sequence[Any]) -> tuple[Any, Any]:
        """Lookup; returns ``(found, value)``."""

    @abc.abstractmethod
    def map_put(self, name: str, key: Sequence[Any], value: Any) -> Any:
        """Insert/update; returns success (fails when the map is full)."""

    @abc.abstractmethod
    def map_erase(self, name: str, key: Sequence[Any]) -> None:
        """Remove an entry."""

    @abc.abstractmethod
    def vector_borrow(self, name: str, index: Any) -> Mapping[str, Any]:
        """Read the record at ``index`` (fields per the declared layout)."""

    @abc.abstractmethod
    def vector_put(self, name: str, index: Any, record: Mapping[str, Any]) -> None:
        """Write the record at ``index``."""

    @abc.abstractmethod
    def vector_fill(self, name: str, records: Sequence[Mapping[str, Any]]) -> None:
        """Bulk-rewrite a vector (e.g. a Maglev table rebuild).

        Traced as a write with no packet-derived key, which is what makes
        such NFs shared-nothing-infeasible (rule R4).
        """

    @abc.abstractmethod
    def dchain_allocate(self, name: str) -> tuple[Any, Any]:
        """Allocate a fresh index; returns ``(ok, index)``."""

    @abc.abstractmethod
    def dchain_is_allocated(self, name: str, index: Any) -> Any:
        """Whether ``index`` is currently allocated."""

    @abc.abstractmethod
    def dchain_rejuvenate(self, name: str, index: Any) -> None:
        """Refresh the aging timestamp of ``index``."""

    @abc.abstractmethod
    def sketch_fetch(self, name: str, key: Sequence[Any]) -> Any:
        """Count-min estimate for ``key``."""

    @abc.abstractmethod
    def sketch_touch(self, name: str, key: Sequence[Any]) -> None:
        """Increment the count-min counters for ``key``."""

    @abc.abstractmethod
    def expire_flows(self, map_name: str, chain_name: str) -> None:
        """Run the periodic map+dchain expiry sweep (Vigor idiom).

        Maintenance only: touches exclusively entries owned by the local
        shard under shared-nothing execution, so the Constraints Generator
        excludes it from key analysis while the cost models still count it
        as state writes.
        """

    # ------------------------------------------------------------------ #
    # Packet operations
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def set_field(self, name: str, value: Any) -> None:
        """Rewrite a packet header field before forwarding (NAT, LB)."""

    def forward(self, port: Any) -> None:
        raise PacketDone(ActionKind.FORWARD, port)

    def drop(self) -> None:
        raise PacketDone(ActionKind.DROP)

    def flood(self) -> None:
        raise PacketDone(ActionKind.FLOOD)


class NF(abc.ABC):
    """Base class for sequential network functions.

    Subclasses define:

    * ``name`` — short identifier used in reports and generated code;
    * ``ports`` — mapping of role to interface id (e.g. LAN/WAN);
    * :meth:`state` — the stateful objects the NF owns;
    * :meth:`setup` — optional population of read-only state;
    * :meth:`process` — per-packet logic (must end in a packet op).
    """

    name: str = "nf"
    #: role -> interface id
    ports: dict[str, int] = {"port0": 0, "port1": 1}
    #: flow expiration horizon in seconds (None = no expiry)
    expiration_time: float | None = None
    #: How benchmarks exercise this NF: which port carries the stateful
    #: ("forward") direction, which port receives symmetric replies (None
    #: for one-directional NFs), what fraction of packets are replies, and
    #: how many warm-up heartbeats to send on the non-forward port first
    #: (the LB's backend registration).
    benchmark_traffic: dict = {
        "forward_port": 0,
        "reply_port": 1,
        "reply_fraction": 0.33,
        "warmup_heartbeats": 0,
    }

    @abc.abstractmethod
    def state(self) -> list[StateDecl]:
        """Declarations of every stateful object."""

    def setup(self, ctx: NfContext) -> None:
        """Populate read-only state; runs once before any packet."""

    @abc.abstractmethod
    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        """Process one packet arriving on interface ``port``."""

    def port_ids(self) -> list[int]:
        return sorted(set(self.ports.values()))

    def other_port(self, port: int) -> int:
        """The opposite interface for simple two-port NFs."""
        ids = self.port_ids()
        if len(ids) != 2:
            raise StateModelError(f"{self.name}: other_port needs exactly 2 ports")
        return ids[1] if port == ids[0] else ids[0]


def declared_state_names(nf: NF) -> frozenset[str]:
    """Names of every stateful object ``nf`` declares.

    The introspection hook used by the static analyzer
    (:mod:`repro.analysis`) to check that ``process``/``setup`` only touch
    declared state.  Raises :class:`StateModelError` on duplicate names,
    which would silently alias two objects in every runtime.
    """
    names: list[str] = [decl.name for decl in nf.state()]
    seen: set[str] = set()
    for name in names:
        if name in seen:
            raise StateModelError(
                f"{nf.name}: state object {name!r} declared more than once"
            )
        seen.add(name)
    return frozenset(names)
