"""The pass manager driving both analyzer front ends.

Passes are small, independent, and ordered: AST passes (source front end)
run first; tree passes (model front end) run only when the AST phase
produced no errors *and* the caller supplied (or asked the manager to
build) an execution tree and sharding solution — linting broken source
symbolically would chase ghosts.  Every pass runs inside a
``repro.obs`` span, so lint runs show up in traces like any other
pipeline stage.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro import obs
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.source import NfSource, gather_sources
from repro.core.codegen import LockPlan
from repro.core.report import StatefulReport
from repro.core.sharding import ShardingSolution
from repro.nf.api import NF, StateDecl, declared_state_names
from repro.symbex.tree import ExecutionTree

__all__ = ["PassContext", "AnalysisPass", "PassManager"]


@dataclass
class PassContext:
    """Shared inputs for one NF's lint run.

    The source-side fields are always present; the model-side fields
    (``tree``/``report``/``solution``/``lock_plan``) are None until the
    pipeline phase populates them.
    """

    nf: NF
    source: NfSource
    decls: dict[str, StateDecl]
    declared: frozenset[str]
    tree: ExecutionTree | None = None
    report: StatefulReport | None = None
    solution: ShardingSolution | None = None
    lock_plan: LockPlan | None = None

    @classmethod
    def for_nf(cls, nf: NF) -> "PassContext":
        return cls(
            nf=nf,
            source=gather_sources(nf),
            decls={decl.name: decl for decl in nf.state()},
            declared=declared_state_names(nf),
        )


class AnalysisPass(abc.ABC):
    """One analysis pass: a name, a phase, and a diagnostics producer."""

    #: stable pass identifier (span attribute, docs)
    name: str = "pass"
    #: "ast" passes need only source; "tree" passes need the model
    phase: str = "ast"

    @abc.abstractmethod
    def run(self, pctx: PassContext) -> list[Diagnostic]:
        """Analyze and return findings (empty list = clean)."""

    def applicable(self, pctx: PassContext) -> bool:
        if self.phase == "tree":
            return pctx.tree is not None
        return True


@dataclass
class PassManager:
    """Run a pass pipeline over one NF, honoring waivers and spans."""

    passes: list[AnalysisPass] = field(default_factory=list)

    def run(self, pctx: PassContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for analysis_pass in self.passes:
            if not analysis_pass.applicable(pctx):
                continue
            with obs.span(
                "analysis.pass",
                pass_name=analysis_pass.name,
                nf=pctx.nf.name,
            ) as sp:
                found = analysis_pass.run(pctx)
                kept = [
                    d
                    for d in found
                    if not pctx.source.waived(d.code, d.file, d.line)
                ]
                sp.set("diagnostics", len(kept))
                sp.set("waived", len(found) - len(kept))
            out.extend(kept)
        return out

    @staticmethod
    def has_errors(diagnostics: list[Diagnostic]) -> bool:
        return any(d.severity is Severity.ERROR for d in diagnostics)
