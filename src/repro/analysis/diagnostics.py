"""Diagnostics core: stable codes, severities, rendering.

Every analysis pass reports through :class:`Diagnostic`, identified by a
stable ``MAE0xx`` code so CI gates, waivers, and docs can refer to a
finding without parsing prose.  The registry below is the single source
of truth; DESIGN.md renders it for humans and a test keeps the two in
sync with the passes that emit each code.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

__all__ = [
    "SCHEMA_VERSION",
    "Severity",
    "Diagnostic",
    "DIAGNOSTIC_CODES",
    "render_text",
    "render_json",
    "sort_diagnostics",
    "diagnostics_from_json",
]

#: Version tag stamped into every analysis/race/chain JSON payload so
#: downstream tooling can gate on the format before parsing the rest.
#: Bump the suffix on breaking shape changes.
SCHEMA_VERSION = "repro.analysis/1"


class Severity(enum.Enum):
    """How a finding affects the lint exit code (errors gate CI)."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


#: code -> (default severity, one-line meaning).  Stable: codes are never
#: reused; retired codes stay here marked retired.
DIAGNOSTIC_CODES: dict[str, tuple[Severity, str]] = {
    "MAE001": (
        Severity.ERROR,
        "raw Python branch/comparison on a symbolic handle "
        "(use ctx.cond / ctx.eq / ctx.lt ...)",
    ),
    "MAE002": (
        Severity.ERROR,
        "call to a nondeterminism source (random, time, hash, ...) "
        "inside process/setup",
    ),
    "MAE003": (
        Severity.ERROR,
        "access to a state object not declared in state()",
    ),
    "MAE004": (
        Severity.ERROR,
        "loop not statically bounded (while, or for over a non-static "
        "iterable) — ESE requires bounded loops",
    ),
    "MAE005": (
        Severity.WARNING,
        "iteration over a set: order is unspecified across runs",
    ),
    "MAE006": (
        Severity.WARNING,
        "state object name is not a string literal; the linter cannot "
        "check it against state()",
    ),
    "MAE010": (
        Severity.ERROR,
        "sharding audit: shared-nothing verdict, but a reachable state "
        "write is not covered by the RSS sharding fields",
    ),
    "MAE011": (
        Severity.ERROR,
        "lock coverage: a conflicting state access has no lock in the "
        "generated lock plan",
    ),
    "MAE012": (
        Severity.ERROR,
        "lock ordering: the acquisition order is not one global total "
        "order over the locked objects",
    ),
    "MAE013": (
        Severity.ERROR,
        "determinism: replaying a path with the same decision log "
        "diverged (decision log / trace / action differ)",
    ),
    "MAE014": (
        Severity.ERROR,
        "sharding audit: a forwarding path reads shared state neither "
        "covered by the sharding fields nor guarded R5-style",
    ),
    "MAE020": (
        Severity.ERROR,
        "analysis failure: the pipeline could not analyze this NF",
    ),
    "MAE101": (
        Severity.ERROR,
        "race sanitizer: a dynamic access to shared written state is not "
        "covered by the lock plan (lockset violation)",
    ),
    "MAE102": (
        Severity.ERROR,
        "race sanitizer: a packet's lock acquisition sequence breaks the "
        "plan's global order (deadlock potential)",
    ),
    "MAE103": (
        Severity.ERROR,
        "race sanitizer: under shared-nothing, the same state entry was "
        "touched by two different cores (shard-ownership violation)",
    ),
    "MAE104": (
        Severity.ERROR,
        "race sanitizer: a packet's dynamic access set is not a subset of "
        "any symbex path footprint for its port (static model unsound "
        "for this trace)",
    ),
    "MAE105": (
        Severity.ERROR,
        "race sanitizer: a packet was processed during the unowned epoch "
        "of a migrating bucket (between ownership prepare and commit, "
        "neither donor nor receiver may serve it)",
    ),
    "MAE200": (
        Severity.ERROR,
        "chain analysis failure: the chain could not be parsed or a hop "
        "could not be analyzed",
    ),
    "MAE201": (
        Severity.WARNING,
        "chain shard compatibility: the hops' sharding field-sets admit "
        "no common key orientation on a chain port — no single RSS key "
        "keeps a flow on one core end-to-end (per-hop fallback)",
    ),
    "MAE202": (
        Severity.ERROR,
        "chain lock order: two LOCKS hops are traversed in opposite "
        "orders on different chain routes, so no single global lock "
        "acquisition order covers the composed pipeline",
    ),
    "MAE203": (
        Severity.WARNING,
        "chain verdict conflict: a hop's LOCKS verdict is incompatible "
        "with end-to-end shared-nothing steering (per-hop fallback)",
    ),
    "MAE204": (
        Severity.ERROR,
        "chain port map: a hop or wire is dead — unreachable from every "
        "chain ingress, fed by a port the source hop never forwards to, "
        "or a reachable forward port has no wire/egress attached",
    ),
    "MAE300": (
        Severity.ERROR,
        "plan certifier: a lowered path program is not equivalent to its "
        "source symbex path (predicates, steps, writes, or action differ)",
    ),
    "MAE301": (
        Severity.ERROR,
        "plan certifier: fallback-set unsoundness — a path uses an op "
        "outside LOWERED_OPS but was not demoted, or its unlowered "
        "suffix's writes are missing from the dirt descriptors",
    ),
    "MAE302": (
        Severity.ERROR,
        "plan certifier: hazard-demotion incompleteness — a kernel-"
        "visible RAW/WAW interference the frozen-prefix fixpoint's "
        "demote mask would not catch",
    ),
    "MAE303": (
        Severity.ERROR,
        "plan certifier: memo-guard incompleteness — a mutable dependency "
        "of a memoized classification is absent from its state-version / "
        "steering_generation guard set",
    ),
    "MAE304": (
        Severity.ERROR,
        "plan certifier: plan/verdict inconsistency — kernel scatter "
        "groups or LockPlan coverage contradict the sharding verdict's "
        "per-path footprints",
    ),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: stable code, severity, location, and provenance."""

    code: str
    message: str
    nf: str
    severity: Severity = field(default=Severity.ERROR)
    file: str | None = None
    line: int | None = None
    path_id: str | None = None

    def __post_init__(self) -> None:
        if self.code not in DIAGNOSTIC_CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @classmethod
    def of(
        cls,
        code: str,
        message: str,
        *,
        nf: str,
        file: str | None = None,
        line: int | None = None,
        path_id: str | None = None,
    ) -> "Diagnostic":
        """Build a diagnostic with the code's registered severity."""
        severity, _ = DIAGNOSTIC_CODES[code]
        return cls(
            code=code,
            message=message,
            nf=nf,
            severity=severity,
            file=file,
            line=line,
            path_id=path_id,
        )

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR

    def location(self) -> str:
        if self.file is not None and self.line is not None:
            return f"{self.file}:{self.line}"
        if self.path_id is not None:
            return f"path {self.path_id}"
        return "-"

    def render(self) -> str:
        return (
            f"{self.nf}: {self.location()}: "
            f"{self.code} [{self.severity.value}] {self.message}"
        )

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "nf": self.nf,
            "file": self.file,
            "line": self.line,
            "path_id": self.path_id,
        }


_SEVERITY_ORDER = {Severity.ERROR: 0, Severity.WARNING: 1, Severity.NOTE: 2}


def sort_diagnostics(diagnostics: list[Diagnostic]) -> list[Diagnostic]:
    """Canonical, fully deterministic ordering.

    Errors first, then by NF/hop name, file, line, code, and finally
    message/path — every field participates so two runs over the same
    inputs render byte-for-byte identical reports regardless of the
    (dict/set-driven) order the passes emitted them in.
    """
    return sorted(
        diagnostics,
        key=lambda d: (
            _SEVERITY_ORDER[d.severity],
            d.nf,
            d.file or "",
            d.line or 0,
            d.code,
            d.message,
            d.path_id or "",
        ),
    )


def render_text(diagnostics: list[Diagnostic]) -> str:
    """Human-readable report, errors first, with a summary line."""
    lines = [d.render() for d in sort_diagnostics(diagnostics)]
    errors = sum(1 for d in diagnostics if d.severity is Severity.ERROR)
    warnings = sum(1 for d in diagnostics if d.severity is Severity.WARNING)
    lines.append(f"{errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def render_json(diagnostics: list[Diagnostic]) -> str:
    """Versioned JSON payload: ``{"schema": ..., "diagnostics": [...]}``."""
    return json.dumps(
        {
            "schema": SCHEMA_VERSION,
            "diagnostics": [d.to_json() for d in sort_diagnostics(diagnostics)],
        },
        indent=2,
    )


def diagnostics_from_json(payload: str | dict) -> list[Diagnostic]:
    """Rebuild :class:`Diagnostic` objects from a ``render_json`` payload.

    Rejects payloads from a different schema generation — the round-trip
    contract downstream tooling gates on.
    """
    data = json.loads(payload) if isinstance(payload, str) else payload
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported analysis schema {schema!r} "
            f"(this build reads {SCHEMA_VERSION!r})"
        )
    return [
        Diagnostic(
            code=entry["code"],
            message=entry["message"],
            nf=entry["nf"],
            severity=Severity(entry["severity"]),
            file=entry.get("file"),
            line=entry.get("line"),
            path_id=entry.get("path_id"),
        )
        for entry in data["diagnostics"]
    ]
