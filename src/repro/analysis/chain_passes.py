"""Chain analysis pass manager: whole-chain parallelization verdicts.

Composes the per-hop Maestro pipeline outputs (symbex execution trees,
sharding solutions, lock plans) over a :class:`repro.chain.dsl.Chain`
and decides whether one RSS steering at the chain ingress can keep
every flow on one core end-to-end:

1. **Reachability** — walk the chain's wire map from every chain
   ingress, following each hop's *actual* forwarding behaviour (the
   integer FORWARD ports of its execution tree; symbolic ports
   propagate conservatively along every mapped wire), accumulating the
   header fields rewritten upstream.  Dead hops, dead wires, and
   dangling forward ports are ``MAE204``.
2. **Shard compatibility** — per chain port, intersect the reachable
   hops' sharding field sets (sound by the generalized R2 rule: any
   non-empty subset of a port's active set is a valid coarser
   sharding), dropping fields rewritten upstream (the chain hashes
   pre-rewrite values).  Hops whose pair maps are the src↔dst swap
   bijection (firewall/NAT-like symmetry) admit *both* key
   orientations; the search tries every orientation assignment before
   declaring ``MAE201``.  Hop pair maps are lifted to chain ports and
   narrowed to the joint fields.
3. **Verdict conflicts** — a reachable LOCKS hop rules out end-to-end
   shared-nothing: ``MAE203``.  Two LOCKS hops traversed in opposite
   orders on different routes have no single global lock acquisition
   order: ``MAE202``.
4. **Joint key search** — when compatible, the composed constraints go
   to :mod:`repro.rs3.joint` (the existing GF(2) solver over the chain
   ingress ports), the keys are property-checked, and the installed
   configuration passes the batch-hash steering check.  Otherwise the
   chain falls back to per-hop steering and the handoff cost is priced
   by :mod:`repro.sim.perf`.
5. **Differential validation** — every analyzed chain is replayed
   against the sequential reference (``check_chain_equivalence``) with
   the race sanitizer installed on every hop's generated ParallelNF.

Diagnostics use the same text/JSON/waiver/exit-code machinery as the
per-NF MAE0xx codes; ``# maestro: waive[...]`` comments in the
``.chain`` file are line-scoped waivers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro import obs
from repro.analysis.diagnostics import (
    SCHEMA_VERSION,
    Diagnostic,
    sort_diagnostics,
)
from repro.chain.dsl import Chain, default_registry
from repro.chain.runtime import (
    ParallelChain,
    benchmark_chain_trace,
    instantiate_hops,
)
from repro.core.codegen import Strategy
from repro.core.pipeline import Maestro, MaestroResult
from repro.core.sharding import PairMap, Verdict
from repro.errors import ReproError, RssUnsatisfiableError
from repro.hw.cpu import profile_for
from repro.nf.api import ActionKind
from repro.rs3.config import RssConfiguration
from repro.rs3.fields import E810, NicModel
from repro.rs3.joint import compile_joint, solve_joint, verify_joint_steering
from repro.rs3.solver import KeySearchStats
from repro.sim.equivalence import EquivalenceReport, check_chain_equivalence
from repro.sim.perf import chain_handoff_cost, chain_handoff_slowdown

__all__ = ["HopAnalysis", "ChainReport", "analyze_chain"]

#: The src<->dst swap bijection NAT-like pair maps encode.
_SWAP = {
    "src_ip": "dst_ip",
    "dst_ip": "src_ip",
    "src_port": "dst_port",
    "dst_port": "src_port",
}

#: Canonical field presentation order.
_FIELD_ORDER = {"src_ip": 0, "dst_ip": 1, "src_port": 2, "dst_port": 3}


def _sorted_fields(fields) -> tuple[str, ...]:
    return tuple(sorted(fields, key=lambda f: (_FIELD_ORDER.get(f, 99), f)))


@dataclass
class HopAnalysis:
    """Per-hop pipeline artifacts plus forwarding behaviour."""

    alias: str
    nf_name: str
    line: int
    result: MaestroResult
    #: ingress port -> integer FORWARD targets (None marks a symbolic port)
    out_ports: dict[int, set] = field(default_factory=dict)
    #: ingress port -> header fields any path from it rewrites
    mods_by_port: dict[int, frozenset[str]] = field(default_factory=dict)

    @property
    def verdict(self) -> Verdict:
        return self.result.solution.verdict

    def admits_swap(self) -> bool:
        """NAT-like both-orientation identity: every pair map entry is
        the src<->dst swap, so the hop colocates either orientation."""
        pairs = self.result.solution.pairs
        if not pairs:
            return False
        return all(
            _SWAP.get(name_a) == name_b
            for pair in pairs
            for name_a, name_b in pair.field_map
        )

    def oriented_fields(self, port: int, swapped: bool) -> frozenset[str]:
        names = self.result.solution.per_port.get(port, ())
        if swapped:
            names = tuple(_SWAP.get(name, name) for name in names)
        return frozenset(names)

    def oriented_pairs(self, swapped: bool) -> list[PairMap]:
        pairs = self.result.solution.pairs
        if not swapped:
            return list(pairs)
        return [
            PairMap(
                port_a=pair.port_a,
                port_b=pair.port_b,
                field_map=tuple(
                    (_SWAP.get(a, a), _SWAP.get(b, b))
                    for a, b in pair.field_map
                ),
            )
            for pair in pairs
        ]


@dataclass
class ChainReport:
    """Everything the chain analysis produced."""

    chain: Chain
    hops: dict[str, HopAnalysis] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    waived: list[Diagnostic] = field(default_factory=list)
    #: "joint" | "fallback" | "invalid"
    mode: str = "invalid"
    #: chain ingress port -> joint sharding fields (joint mode)
    joint_fields: dict[int, tuple[str, ...]] = field(default_factory=dict)
    joint_keys: dict[int, bytes] | None = None
    key_stats: KeySearchStats | None = None
    #: lifted pair maps over chain ports (joint mode)
    lifted_pairs: list[PairMap] = field(default_factory=list)
    #: hop alias -> "swapped" for hops solved in the reverse orientation
    orientation: dict[str, str] = field(default_factory=dict)
    #: fallback mode: measured fraction of hop boundaries changing core
    handoff_fraction: float | None = None
    handoff_cycles: float | None = None
    handoff_slowdown: float | None = None
    equivalence: EquivalenceReport | None = None

    @property
    def clean(self) -> bool:
        return not any(d.is_error for d in self.diagnostics)

    def describe(self) -> str:
        name = self.chain.name
        lines = [f"{name}: {self.mode} ({len(self.hops)} hop(s))"]
        for alias, hop in self.hops.items():
            orient = (
                f", {self.orientation[alias]}"
                if alias in self.orientation
                else ""
            )
            lines.append(
                f"  hop {alias}: {hop.nf_name} [{hop.verdict.value}{orient}]"
            )
        if self.mode == "joint" and self.joint_keys is not None:
            for port in sorted(self.joint_keys):
                fields = ", ".join(self.joint_fields.get(port, ())) or "free"
                lines.append(
                    f"  chain port {port}: key over ({fields}) "
                    f"{self.joint_keys[port].hex()}"
                )
        if self.mode == "fallback" and self.handoff_fraction is not None:
            lines.append(
                f"  per-hop steering: {self.handoff_fraction:.0%} of hop "
                f"boundaries change core "
                f"(+{self.handoff_cycles:.0f} cycles/pkt, "
                f"x{self.handoff_slowdown:.2f} throughput)"
            )
        if self.equivalence is not None:
            lines.append(f"  equivalence: {self.equivalence.describe()}")
        status = "clean" if self.clean else "errors"
        lines.append(
            f"  diagnostics: {len(self.diagnostics)} active "
            f"({status}), {len(self.waived)} waived"
        )
        return "\n".join(lines)

    def to_json(self) -> dict:
        payload: dict = {
            "schema": SCHEMA_VERSION,
            "chain": self.chain.name,
            "file": self.chain.file,
            "mode": self.mode,
            "clean": self.clean,
            "hops": {
                alias: {
                    "nf": hop.nf_name,
                    "verdict": hop.verdict.value,
                    "orientation": self.orientation.get(alias, "identity"),
                }
                for alias, hop in self.hops.items()
            },
            "joint_fields": {
                str(port): list(fields)
                for port, fields in sorted(self.joint_fields.items())
            },
            "joint_keys": (
                {str(p): k.hex() for p, k in sorted(self.joint_keys.items())}
                if self.joint_keys is not None
                else None
            ),
            "handoff_fraction": self.handoff_fraction,
            "handoff_slowdown": self.handoff_slowdown,
            "diagnostics": [
                d.to_json() for d in sort_diagnostics(self.diagnostics)
            ],
            "waived": [d.to_json() for d in sort_diagnostics(self.waived)],
        }
        if self.equivalence is not None:
            payload["equivalence"] = {
                "packets": self.equivalence.n_packets,
                "equivalent": self.equivalence.equivalent,
                "mismatches": len(self.equivalence.mismatches),
                "capacity_divergences": self.equivalence.capacity_divergences,
                "race_violations": len(self.equivalence.race_diagnostics),
            }
        return payload


# ------------------------------------------------------------------ #
# Reachability over the wire map
# ------------------------------------------------------------------ #
@dataclass
class _Reach:
    """Reachability facts for one chain."""

    #: chain port -> (alias, hop port) -> fields rewritten upstream
    by_port: dict[int, dict[tuple[str, int], frozenset[str]]] = field(
        default_factory=dict
    )
    #: (alias_a, alias_b): a precedes b on some route
    precedence: set[tuple[str, str]] = field(default_factory=set)
    #: (alias, port) pairs a hop forwards to with no wire/egress mapped
    dangling: set[tuple[str, int]] = field(default_factory=set)

    def reached_hops(self) -> set[str]:
        return {
            alias
            for reach in self.by_port.values()
            for alias, _ in reach
        }

    def ports_reaching(self, alias: str, port: int) -> list[int]:
        return sorted(
            chain_port
            for chain_port, reach in self.by_port.items()
            if (alias, port) in reach
        )


def _mapped_out_ports(chain: Chain, alias: str) -> set[int]:
    ports = {w.src_port for w in chain.wires if w.src == alias}
    ports.update(e.port for e in chain.egresses if e.hop == alias)
    return ports


def _hop_behaviour(hop: HopAnalysis, chain: Chain, port: int) -> set[int]:
    """Concrete forward targets out of ``port`` (symbolic -> all mapped)."""
    outs = hop.out_ports.get(port, set())
    if None in outs:
        return _mapped_out_ports(chain, hop.alias)
    return {p for p in outs if isinstance(p, int)}


def _compute_reach(chain: Chain, hops: dict[str, HopAnalysis]) -> _Reach:
    reach = _Reach()
    for ing in chain.ingresses:
        seen: dict[tuple[str, int], frozenset[str]] = {}
        work: list[tuple[str, int, frozenset[str], tuple[str, ...]]] = [
            (ing.hop, ing.port, frozenset(), (ing.hop,))
        ]
        while work:
            alias, port, rewritten, path = work.pop()
            key = (alias, port)
            previous = seen.get(key)
            if previous is not None and rewritten <= previous:
                continue
            seen[key] = rewritten | (previous or frozenset())
            for upstream in path[:-1]:
                reach.precedence.add((upstream, alias))
            hop = hops[alias]
            downstream = rewritten | hop.mods_by_port.get(port, frozenset())
            for out_port in _hop_behaviour(hop, chain, port):
                nxt = chain.next_of(alias, out_port)
                if nxt is None:
                    reach.dangling.add((alias, out_port))
                    continue
                if hasattr(nxt, "dst"):  # a Wire
                    work.append(
                        (nxt.dst, nxt.dst_port, downstream, path + (nxt.dst,))
                    )
        reach.by_port[ing.chain_port] = seen
    return reach


# ------------------------------------------------------------------ #
# Shard-compatibility composition
# ------------------------------------------------------------------ #
@dataclass
class _Composition:
    """A successful orientation assignment's composed constraints."""

    joint_fields: dict[int, tuple[str, ...]]
    lifted_pairs: list[PairMap]
    orientation: dict[str, str]


def _constrained_entries(
    reach: _Reach, hops: dict[str, HopAnalysis]
) -> dict[int, list[tuple[str, int, frozenset[str]]]]:
    """Chain port -> [(alias, hop port, rewritten-upstream)] for hops
    that impose sharding constraints there."""
    out: dict[int, list[tuple[str, int, frozenset[str]]]] = {}
    for chain_port, seen in reach.by_port.items():
        entries = []
        for (alias, port), rewritten in sorted(seen.items()):
            hop = hops[alias]
            if hop.verdict is not Verdict.SHARED_NOTHING:
                continue
            if not hop.result.solution.per_port.get(port):
                continue
            entries.append((alias, port, rewritten))
        out[chain_port] = entries
    return out


def _try_orientation(
    chain: Chain,
    hops: dict[str, HopAnalysis],
    reach: _Reach,
    constrained: dict[int, list[tuple[str, int, frozenset[str]]]],
    swapped: dict[str, bool],
) -> tuple[_Composition | None, str | None]:
    """Compose joint field sets under one orientation assignment.

    Returns ``(composition, None)`` on success or ``(None, reason)``
    naming the first conflict.
    """
    joint: dict[int, set[str]] = {}
    for chain_port, entries in constrained.items():
        for alias, port, rewritten in entries:
            hop = hops[alias]
            fields = hop.oriented_fields(port, swapped.get(alias, False))
            allowed = fields - rewritten
            if not allowed:
                lost = _sorted_fields(fields & rewritten)
                return None, (
                    f"chain port {chain_port}: hop {alias!r} shards on "
                    f"({', '.join(_sorted_fields(fields))}) but upstream "
                    f"hops rewrite ({', '.join(lost)})"
                )
            if chain_port not in joint:
                joint[chain_port] = set(allowed)
            else:
                joint[chain_port] &= allowed
            if not joint[chain_port]:
                shards = "; ".join(
                    f"{a}@{p} shards on "
                    f"({', '.join(_sorted_fields(hops[a].oriented_fields(p, swapped.get(a, False)) - rw))})"
                    for a, p, rw in entries
                )
                return None, (
                    f"chain port {chain_port}: empty field intersection "
                    f"({shards})"
                )

    # Lift hop pair maps to chain ports, restricted to the joint sets,
    # then narrow to a fixpoint: a joint field survives only if its
    # mapped partner is joint on the other chain port.
    lifted: list[tuple[int, int, dict[str, str]]] = []
    for alias, hop in hops.items():
        for pair in hop.oriented_pairs(swapped.get(alias, False)):
            fmap = dict(pair.field_map)
            for port_a in reach.ports_reaching(alias, pair.port_a):
                for port_b in reach.ports_reaching(alias, pair.port_b):
                    if port_a in joint and port_b in joint:
                        lifted.append((port_a, port_b, fmap))

    changed = True
    while changed:
        changed = False
        for port_a, port_b, fmap in lifted:
            inverse = {b: a for a, b in fmap.items()}
            keep_a = {
                f for f in joint[port_a] if fmap.get(f) in joint[port_b]
            }
            keep_b = {
                f for f in joint[port_b] if inverse.get(f) in joint[port_a]
            }
            if keep_a != joint[port_a]:
                joint[port_a] = keep_a
                changed = True
            if keep_b != joint[port_b]:
                joint[port_b] = keep_b
                changed = True
    for chain_port, fields in joint.items():
        if not fields:
            return None, (
                f"chain port {chain_port}: pair-map narrowing emptied the "
                "joint field set (hops' cross-port symmetries are "
                "inconsistent)"
            )

    pairs: list[PairMap] = []
    seen_pairs: set[tuple[int, int, tuple[tuple[str, str], ...]]] = set()
    for port_a, port_b, fmap in lifted:
        restricted = tuple(
            sorted(
                (a, b)
                for a, b in fmap.items()
                if a in joint[port_a] and b in joint[port_b]
            )
        )
        if not restricted:
            continue
        key = (port_a, port_b, restricted)
        if key in seen_pairs:
            continue
        seen_pairs.add(key)
        pairs.append(
            PairMap(port_a=port_a, port_b=port_b, field_map=restricted)
        )

    orientation = {
        alias: "swapped" for alias, is_swapped in swapped.items() if is_swapped
    }
    return (
        _Composition(
            joint_fields={
                port: _sorted_fields(fields) for port, fields in joint.items()
            },
            lifted_pairs=pairs,
            orientation=orientation,
        ),
        None,
    )


def _compose(
    chain: Chain, hops: dict[str, HopAnalysis], reach: _Reach
) -> tuple[_Composition | None, str]:
    """Search orientation assignments; identity first, swaps after."""
    constrained = _constrained_entries(reach, hops)
    swappable = [
        alias
        for alias, hop in hops.items()
        if hop.verdict is Verdict.SHARED_NOTHING and hop.admits_swap()
    ]
    identity_reason = ""
    for bits in product((False, True), repeat=len(swappable)):
        swapped = dict(zip(swappable, bits))
        composition, reason = _try_orientation(
            chain, hops, reach, constrained, swapped
        )
        if composition is not None:
            return composition, ""
        if not any(bits):
            identity_reason = reason or ""
    return None, identity_reason or "no key orientation satisfies all hops"


# ------------------------------------------------------------------ #
# The analysis entry point
# ------------------------------------------------------------------ #
def _analyze_hops(
    chain: Chain,
    registry: dict[str, type] | None,
    nic: NicModel,
    seed: int,
) -> dict[str, HopAnalysis]:
    maestro = Maestro(nic, seed=seed)
    nfs = instantiate_hops(chain, registry)
    hops: dict[str, HopAnalysis] = {}
    for alias, nf in nfs.items():
        decl = chain.hops[alias]
        result = maestro.analyze(nf)
        out_ports: dict[int, set] = {}
        mods_by_port: dict[int, frozenset[str]] = {}
        for port in result.tree.ports:
            outs: set = set()
            mods: set[str] = set()
            for path in result.tree.paths(port):
                action = path.action
                if action.kind is ActionKind.FORWARD:
                    outs.add(
                        action.port if isinstance(action.port, int) else None
                    )
                mods.update(name for name, _ in action.mods)
            out_ports[port] = outs
            mods_by_port[port] = frozenset(mods)
        hops[alias] = HopAnalysis(
            alias=alias,
            nf_name=decl.nf_name,
            line=decl.line,
            result=result,
            out_ports=out_ports,
            mods_by_port=mods_by_port,
        )
    return hops


def _port_map_diagnostics(
    chain: Chain, hops: dict[str, HopAnalysis], reach: _Reach
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    reached = reach.reached_hops()
    for alias, hop in hops.items():
        if alias not in reached:
            out.append(
                Diagnostic.of(
                    "MAE204",
                    f"hop {alias!r} ({hop.nf_name}) is unreachable from "
                    "every chain ingress",
                    nf=chain.name,
                    file=chain.file,
                    line=hop.line,
                )
            )
    for wire in chain.wires:
        if wire.src not in reached:
            continue  # the hop-level finding already covers it
        possible: set[int] = set()
        for chain_port in reach.by_port:
            for (alias, port) in reach.by_port[chain_port]:
                if alias == wire.src:
                    possible |= _hop_behaviour(hops[alias], chain, port)
        if wire.src_port not in possible:
            out.append(
                Diagnostic.of(
                    "MAE204",
                    f"dead wire: hop {wire.src!r} never forwards out of "
                    f"port {wire.src_port} "
                    f"(observed forward ports: "
                    f"{', '.join(map(str, sorted(possible))) or 'none'})",
                    nf=chain.name,
                    file=chain.file,
                    line=wire.line,
                )
            )
    for alias, port in sorted(reach.dangling):
        out.append(
            Diagnostic.of(
                "MAE204",
                f"hop {alias!r} forwards out of port {port} but no wire "
                "or egress is attached to it",
                nf=chain.name,
                file=chain.file,
                line=hops[alias].line,
            )
        )
    return out


def _lock_diagnostics(
    chain: Chain, hops: dict[str, HopAnalysis], reach: _Reach
) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    reached = reach.reached_hops()
    locks_hops = [
        alias
        for alias in hops
        if alias in reached and hops[alias].verdict is Verdict.LOCKS
    ]
    for alias in locks_hops:
        out.append(
            Diagnostic.of(
                "MAE203",
                f"hop {alias!r} ({hops[alias].nf_name}) has a LOCKS "
                "verdict: no RSS key shards its state, so the chain "
                "falls back to per-hop steering",
                nf=chain.name,
                file=chain.file,
                line=hops[alias].line,
            )
        )
    for i, first in enumerate(locks_hops):
        for second in locks_hops[i + 1 :]:
            if (first, second) in reach.precedence and (
                second,
                first,
            ) in reach.precedence:
                out.append(
                    Diagnostic.of(
                        "MAE202",
                        f"LOCKS hops {first!r} and {second!r} are "
                        "traversed in opposite orders on different chain "
                        "routes: no single global lock acquisition order "
                        "covers the composed pipeline",
                        nf=chain.name,
                        file=chain.file,
                        line=hops[second].line,
                    )
                )
    return out


def analyze_chain(
    chain: Chain,
    *,
    registry: dict[str, type] | None = None,
    nic: NicModel = E810,
    seed: int = 12345,
    n_cores: int = 4,
    packets: int = 512,
    n_flows: int = 128,
    validate: bool = True,
) -> ChainReport:
    """Run the whole-chain analysis and (optionally) validate the result.

    ``validate=True`` replays a benchmark trace through the generated
    parallel chain against the sequential reference with the race
    sanitizer installed on every hop; equivalence violations and active
    sanitizer findings land in the report's diagnostics.
    """
    report = ChainReport(chain=chain)
    diagnostics: list[Diagnostic] = []
    with obs.span("analysis.chain", chain=chain.name):
        try:
            hops = _analyze_hops(chain, registry, nic, seed)
        except ReproError as exc:
            diagnostics.append(
                Diagnostic.of(
                    "MAE200",
                    f"hop analysis failed: {exc}",
                    nf=chain.name,
                    file=chain.file,
                    line=1,
                )
            )
            report.diagnostics = diagnostics
            _apply_waivers(report)
            return report
        report.hops = hops

        reach = _compute_reach(chain, hops)
        diagnostics.extend(_port_map_diagnostics(chain, hops, reach))
        diagnostics.extend(_lock_diagnostics(chain, hops, reach))

        composition, reason = _compose(chain, hops, reach)
        verdict_conflict = any(d.code == "MAE203" for d in diagnostics)
        if composition is None:
            first_ing = chain.ingresses[0]
            diagnostics.append(
                Diagnostic.of(
                    "MAE201",
                    f"no common shard key orientation: {reason}",
                    nf=chain.name,
                    file=chain.file,
                    line=first_ing.line,
                )
            )

        rng = np.random.default_rng(seed)
        mode = "fallback"
        joint_rss: RssConfiguration | None = None
        if composition is not None and not verdict_conflict:
            report.joint_fields = composition.joint_fields
            report.lifted_pairs = composition.lifted_pairs
            report.orientation = composition.orientation
            try:
                compilation = compile_joint(
                    chain.ingress_ports(),
                    composition.joint_fields,
                    composition.lifted_pairs,
                    nic,
                    label=chain.name,
                )
                stats = KeySearchStats()
                keys = solve_joint(
                    compilation, nic, n_queues=n_cores, rng=rng, stats=stats
                )
                joint_rss = RssConfiguration.build(
                    keys, compilation.port_options, n_cores
                )
                verify_joint_steering(
                    joint_rss, composition.lifted_pairs, seed=seed
                )
                report.joint_keys = keys
                report.key_stats = stats
                mode = "joint"
            except RssUnsatisfiableError as exc:
                diagnostics.append(
                    Diagnostic.of(
                        "MAE201",
                        f"joint key search failed: {exc}",
                        nf=chain.name,
                        file=chain.file,
                        line=chain.ingresses[0].line,
                    )
                )
                joint_rss = None

        if any(d.is_error for d in diagnostics):
            report.mode = "invalid"
            report.diagnostics = diagnostics
            _apply_waivers(report)
            return report
        report.mode = mode

        # Generate the per-hop parallel NFs (their own RSS keys steer in
        # fallback mode; joint mode bypasses them) and the chain runner.
        maestro = Maestro(nic, seed=seed)
        parallels = {}
        nfs = instantiate_hops(chain, registry)
        for alias, hop in hops.items():
            strategy = Strategy.default_for(hop.verdict)
            parallels[alias] = maestro.parallelize(
                nfs[alias], n_cores, strategy=strategy, result=hop.result
            )
        parallel = ParallelChain(
            chain=chain, hops=parallels, mode=mode, joint_rss=joint_rss
        )

        trace = benchmark_chain_trace(
            chain, n_flows=n_flows, packets=packets, seed=seed
        )
        if validate:
            equivalence = check_chain_equivalence(
                chain,
                parallel,
                trace,
                registry=registry,
                sanitize=True,
                trees={a: h.result.tree for a, h in hops.items()},
            )
            report.equivalence = equivalence
            if not equivalence.equivalent:
                diagnostics.append(
                    Diagnostic.of(
                        "MAE200",
                        "differential validation failed: "
                        + equivalence.describe().splitlines()[0],
                        nf=chain.name,
                        file=chain.file,
                        line=1,
                    )
                )
            diagnostics.extend(equivalence.race_diagnostics)
        elif mode == "fallback":
            parallel.process_trace(trace)

        if mode == "fallback":
            report.handoff_fraction = parallel.handoff_fraction()
            handoffs_per_packet = (
                parallel.handoffs / len(trace) if trace else 0.0
            )
            packet_cycles = sum(
                profile_for(nfs[alias]).base_cycles for alias in hops
            )
            report.handoff_cycles = chain_handoff_cost(handoffs_per_packet)
            report.handoff_slowdown = chain_handoff_slowdown(
                handoffs_per_packet, packet_cycles
            )

    report.diagnostics = diagnostics
    _apply_waivers(report)
    return report


def _apply_waivers(report: ChainReport) -> None:
    """Partition diagnostics into active and waived via the chain file's
    line-scoped ``# maestro: waive[...]`` comments."""
    active: list[Diagnostic] = []
    waived: list[Diagnostic] = []
    for diag in report.diagnostics:
        if diag.file == report.chain.file and report.chain.waived(
            diag.code, diag.line
        ):
            waived.append(diag)
        else:
            active.append(diag)
    report.diagnostics = sort_diagnostics(active)
    report.waived = sort_diagnostics(waived)
