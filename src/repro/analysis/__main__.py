"""CLI: ``python -m repro.analysis lint <nf-name ...|--all> [--json]``.

Exit codes are CI-friendly: 0 when no error-severity diagnostics were
found (warnings alone don't fail a build), 1 when at least one error
fired, 2 on usage mistakes (unknown NF name, no NFs selected).
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path

from repro.analysis.diagnostics import (
    Diagnostic,
    render_json,
    render_text,
)
from repro.analysis.lint import lint_nf
from repro.nf.api import NF
from repro.nf.nfs import ALL_NFS
from repro.nf.nfs.micro import (
    DhcpGuard,
    DualCounter,
    FlowCounter,
    GlobalCounter,
    SrcStats,
)

_MICRO_NFS = {
    "flow_counter": FlowCounter,
    "src_stats": SrcStats,
    "dual_counter": DualCounter,
    "global_counter": GlobalCounter,
    "dhcp_guard": DhcpGuard,
}


def _example_nfs() -> dict[str, type[NF]]:
    """NF classes from ``examples/custom_nf.py``, when the file exists.

    The examples directory ships alongside the repo root (two levels above
    ``src/``); installed-package runs simply skip it.
    """
    candidates = [
        Path(__file__).resolve().parents[3] / "examples" / "custom_nf.py",
        Path.cwd() / "examples" / "custom_nf.py",
    ]
    path = next((p for p in candidates if p.is_file()), None)
    if path is None:
        return {}
    spec = importlib.util.spec_from_file_location("repro_examples_custom_nf", path)
    if spec is None or spec.loader is None:  # pragma: no cover
        return {}
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception:  # pragma: no cover - examples must not break lint
        return {}
    out: dict[str, type[NF]] = {}
    for value in vars(module).values():
        if (
            isinstance(value, type)
            and issubclass(value, NF)
            and value is not NF
        ):
            out[value.name] = value
    return out


def _registry(include_examples: bool) -> dict[str, type[NF]]:
    registry: dict[str, type[NF]] = dict(ALL_NFS)
    registry.update(_MICRO_NFS)
    if include_examples:
        registry.update(_example_nfs())
    return registry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static analysis for NFs: source lint + model audit.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    lint = sub.add_parser("lint", help="lint NFs and audit their models")
    lint.add_argument(
        "names",
        nargs="*",
        metavar="nf-name",
        help=f"NFs to lint (bundled: {', '.join(sorted(_registry(False)))})",
    )
    lint.add_argument(
        "--all",
        action="store_true",
        help="lint every bundled NF, micro-NF, and example NF",
    )
    lint.add_argument(
        "--json", action="store_true", help="emit diagnostics as JSON"
    )
    lint.add_argument(
        "--no-pipeline",
        action="store_true",
        help="AST phase only (skip symbolic execution and the model audit)",
    )
    args = parser.parse_args(argv)

    registry = _registry(include_examples=args.all or bool(args.names))
    if args.all:
        selected = sorted(registry)
    else:
        selected = list(dict.fromkeys(args.names))
    if not selected:
        lint.print_usage(sys.stderr)
        print("error: give at least one nf-name or --all", file=sys.stderr)
        return 2
    unknown = [name for name in selected if name not in registry]
    if unknown:
        print(
            f"error: unknown NF(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(registry))}",
            file=sys.stderr,
        )
        return 2

    diagnostics: list[Diagnostic] = []
    for name in selected:
        nf = registry[name]()
        diagnostics.extend(lint_nf(nf, pipeline=not args.no_pipeline))

    if args.json:
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics))
    return 1 if any(d.is_error for d in diagnostics) else 0


if __name__ == "__main__":
    sys.exit(main())
