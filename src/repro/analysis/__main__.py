"""CLI: ``python -m repro.analysis {lint,race,chain,certify} <name ...|--all>``.

``lint`` runs the static passes (source + model audit); ``race`` runs
the dynamic sanitizer — full pipeline, generated parallel NF, benchmark
trace replayed under the lockset/ownership checkers; ``chain`` runs the
whole-chain analysis (composed footprints, joint RSS key search,
MAE2xx diagnostics, differential validation) over ``.chain`` files;
``certify`` runs the plan certifier — translation validation of every
lowered path program plus hazard/memo/plan audits (MAE3xx).

Every subcommand accepts ``--json`` (machine-readable report on
stdout), ``--out PATH`` (also write the JSON payload to a CI artifact),
and ``--seed`` (deterministic reruns; ``lint`` accepts it for interface
consistency even though the static passes are seed-free).

Exit codes are shared across all four subcommands, CI-friendly:

====  ======================================================
code  meaning
====  ======================================================
0     no error-severity diagnostics (warnings don't fail)
1     at least one error-severity diagnostic fired
2     usage mistake (unknown NF name, no NFs selected, ...)
====  ======================================================
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sys
from pathlib import Path

from repro.analysis.diagnostics import (
    SCHEMA_VERSION,
    Diagnostic,
    render_json,
    render_text,
)
from repro.analysis.lint import lint_nf
from repro.core.codegen import Strategy
from repro.nf.api import NF
from repro.nf.nfs import ALL_NFS
from repro.nf.nfs.micro import (
    DhcpGuard,
    DualCounter,
    FlowCounter,
    GlobalCounter,
    SrcStats,
)

_MICRO_NFS = {
    "flow_counter": FlowCounter,
    "src_stats": SrcStats,
    "dual_counter": DualCounter,
    "global_counter": GlobalCounter,
    "dhcp_guard": DhcpGuard,
}


def _example_nfs() -> dict[str, type[NF]]:
    """NF classes from ``examples/custom_nf.py``, when the file exists.

    The examples directory ships alongside the repo root (two levels above
    ``src/``); installed-package runs simply skip it.
    """
    candidates = [
        Path(__file__).resolve().parents[3] / "examples" / "custom_nf.py",
        Path.cwd() / "examples" / "custom_nf.py",
    ]
    path = next((p for p in candidates if p.is_file()), None)
    if path is None:
        return {}
    spec = importlib.util.spec_from_file_location("repro_examples_custom_nf", path)
    if spec is None or spec.loader is None:  # pragma: no cover
        return {}
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception:  # pragma: no cover - examples must not break lint
        return {}
    out: dict[str, type[NF]] = {}
    for value in vars(module).values():
        if (
            isinstance(value, type)
            and issubclass(value, NF)
            and value is not NF
        ):
            out[value.name] = value
    return out


def _registry(include_examples: bool) -> dict[str, type[NF]]:
    registry: dict[str, type[NF]] = dict(ALL_NFS)
    registry.update(_MICRO_NFS)
    if include_examples:
        registry.update(_example_nfs())
    return registry


def _add_selection_args(
    cmd: argparse.ArgumentParser,
    verb: str,
    *,
    seed_default: int = 0,
    seed_help: str = "deterministic rerun seed",
) -> None:
    cmd.add_argument(
        "names",
        nargs="*",
        metavar="nf-name",
        help=f"NFs to {verb} (bundled: {', '.join(sorted(_registry(False)))})",
    )
    cmd.add_argument(
        "--all",
        action="store_true",
        help=f"{verb} every bundled NF, micro-NF, and example NF",
    )
    cmd.add_argument(
        "--json", action="store_true", help="emit diagnostics as JSON"
    )
    cmd.add_argument(
        "--out",
        metavar="PATH",
        help="also write the JSON report to PATH (CI artifact)",
    )
    cmd.add_argument(
        "--seed", type=int, default=seed_default, help=seed_help
    )


def _select(cmd: argparse.ArgumentParser, args) -> list[str] | int:
    registry = _registry(include_examples=args.all or bool(args.names))
    if args.all:
        selected = sorted(registry)
    else:
        selected = list(dict.fromkeys(args.names))
    if not selected:
        cmd.print_usage(sys.stderr)
        print("error: give at least one nf-name or --all", file=sys.stderr)
        return 2
    unknown = [name for name in selected if name not in registry]
    if unknown:
        print(
            f"error: unknown NF(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(registry))}",
            file=sys.stderr,
        )
        return 2
    return selected


def _run_lint(lint: argparse.ArgumentParser, args) -> int:
    selected = _select(lint, args)
    if isinstance(selected, int):
        return selected
    registry = _registry(include_examples=True)
    diagnostics: list[Diagnostic] = []
    for name in selected:
        nf = registry[name]()
        diagnostics.extend(lint_nf(nf, pipeline=not args.no_pipeline))

    if args.out:
        Path(args.out).write_text(render_json(diagnostics) + "\n")
    if args.json:
        print(render_json(diagnostics))
    else:
        print(render_text(diagnostics))
    return 1 if any(d.is_error for d in diagnostics) else 0


def _run_certify(certify: argparse.ArgumentParser, args) -> int:
    from repro.analysis.plan_passes import certify_nf

    selected = _select(certify, args)
    if isinstance(selected, int):
        return selected
    registry = _registry(include_examples=True)
    strategy = Strategy(args.strategy) if args.strategy else None
    reports = []
    for name in selected:
        nf = registry[name]()
        reports.append(certify_nf(nf, strategy=strategy, seed=args.seed))

    payload = {
        "schema": SCHEMA_VERSION,
        "reports": [report.to_json() for report in reports],
    }
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for report in reports:
            print(report.describe())
            for diag in report.diagnostics:
                print(f"  {diag.render()}")
            for diag in report.waived:
                print(f"  [waived] {diag.render()}")
        bad = sum(1 for report in reports if not report.clean)
        print(f"{len(reports)} NF(s) certified, {bad} with findings")
    return 1 if any(not report.clean for report in reports) else 0


def _run_race(race: argparse.ArgumentParser, args) -> int:
    from repro.analysis.race import sanitize_nf

    selected = _select(race, args)
    if isinstance(selected, int):
        return selected
    registry = _registry(include_examples=True)
    strategy = Strategy(args.strategy) if args.strategy else None
    reports = []
    for name in selected:
        nf = registry[name]()
        reports.append(
            sanitize_nf(
                nf,
                n_cores=args.cores,
                packets=args.packets,
                n_flows=args.flows,
                seed=args.seed,
                strategy=strategy,
            )
        )

    payload = {
        "schema": SCHEMA_VERSION,
        "reports": [report.to_json() for report in reports],
    }
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for report in reports:
            print(report.describe())
            for diag in report.diagnostics:
                print(f"  {diag.render()}")
            for diag in report.waived:
                print(f"  [waived] {diag.render()}")
        bad = sum(1 for report in reports if not report.clean)
        print(f"{len(reports)} NF(s) sanitized, {bad} with violations")
    return 1 if any(not report.clean for report in reports) else 0


def _chain_files(cmd: argparse.ArgumentParser, args) -> list[Path] | int:
    """Resolve the ``.chain`` files to analyze (explicit paths or --all)."""
    if args.all:
        candidates = [
            Path(__file__).resolve().parents[3] / "examples" / "chains",
            Path.cwd() / "examples" / "chains",
        ]
        root = next((p for p in candidates if p.is_dir()), None)
        if root is None:
            print(
                "error: --all found no examples/chains/ directory",
                file=sys.stderr,
            )
            return 2
        files = sorted(root.glob("*.chain"))
        if not files:
            print(f"error: no .chain files under {root}", file=sys.stderr)
            return 2
        return files
    if not args.files:
        cmd.print_usage(sys.stderr)
        print("error: give at least one .chain file or --all", file=sys.stderr)
        return 2
    files = [Path(name) for name in args.files]
    missing = [str(p) for p in files if not p.is_file()]
    if missing:
        print(f"error: no such chain file(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    return files


def _run_chain(cmd: argparse.ArgumentParser, args) -> int:
    from repro.analysis.chain_passes import analyze_chain
    from repro.chain import load_chain
    from repro.errors import ReproError

    files = _chain_files(cmd, args)
    if isinstance(files, int):
        return files
    registry = dict(_registry(include_examples=True))
    reports = []
    for path in files:
        try:
            chain = load_chain(path)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        reports.append(
            analyze_chain(
                chain,
                registry=registry,
                seed=args.seed,
                n_cores=args.cores,
                packets=args.packets,
                n_flows=args.flows,
                validate=not args.no_validate,
            )
        )

    payload = {
        "schema": SCHEMA_VERSION,
        "chains": [report.to_json() for report in reports],
    }
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for report in reports:
            print(report.describe())
            for diag in report.diagnostics:
                print(f"  {diag.render()}")
            for diag in report.waived:
                print(f"  [waived] {diag.render()}")
        bad = sum(1 for report in reports if not report.clean)
        print(f"{len(reports)} chain(s) analyzed, {bad} with errors")
    return 1 if any(not report.clean for report in reports) else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="NF analysis: static lint, dynamic race sanitizer, "
        "chain analysis, and the compiled-dataplane plan certifier.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    lint = sub.add_parser("lint", help="lint NFs and audit their models")
    _add_selection_args(
        lint,
        "lint",
        seed_help="accepted for cross-subcommand consistency; the static "
        "passes are seed-free",
    )
    lint.add_argument(
        "--no-pipeline",
        action="store_true",
        help="AST phase only (skip symbolic execution and the model audit)",
    )
    race = sub.add_parser(
        "race",
        help="replay a trace through the generated parallel NF under the "
        "lockset/ownership race sanitizer",
    )
    _add_selection_args(
        race,
        "sanitize",
        seed_default=12345,
        seed_help="pipeline + trace seed (default 12345)",
    )
    race.add_argument(
        "--cores", type=int, default=4, help="worker cores (default 4)"
    )
    race.add_argument(
        "--packets",
        type=int,
        default=1024,
        help="benchmark-trace length (default 1024)",
    )
    race.add_argument(
        "--flows", type=int, default=256, help="distinct flows (default 256)"
    )
    race.add_argument(
        "--strategy",
        choices=[s.value for s in Strategy],
        default=None,
        help="force a coordination strategy (default: the verdict's)",
    )
    certify = sub.add_parser(
        "certify",
        help="certify the compiled dataplane: translation validation of "
        "lowered path programs + hazard/memo/plan audits (MAE3xx)",
    )
    _add_selection_args(
        certify,
        "certify",
        seed_help="equivalence-solver seed (default 0)",
    )
    certify.add_argument(
        "--strategy",
        choices=[s.value for s in Strategy],
        default=None,
        help="force a coordination strategy (default: the verdict's)",
    )
    chain = sub.add_parser(
        "chain",
        help="analyze NF service chains: composed footprints, joint RSS "
        "key search, MAE2xx diagnostics, differential validation",
    )
    chain.add_argument(
        "files",
        nargs="*",
        metavar="chain-file",
        help="chain description files (.chain)",
    )
    chain.add_argument(
        "--all",
        action="store_true",
        help="analyze every bundled chain under examples/chains/",
    )
    chain.add_argument(
        "--json", action="store_true", help="emit the reports as JSON"
    )
    chain.add_argument(
        "--cores", type=int, default=4, help="worker cores (default 4)"
    )
    chain.add_argument(
        "--packets",
        type=int,
        default=512,
        help="validation-trace length (default 512)",
    )
    chain.add_argument(
        "--flows", type=int, default=128, help="distinct flows (default 128)"
    )
    chain.add_argument(
        "--seed", type=int, default=12345, help="pipeline + trace seed"
    )
    chain.add_argument(
        "--no-validate",
        action="store_true",
        help="skip the differential replay (analysis-only, faster)",
    )
    chain.add_argument(
        "--out",
        metavar="PATH",
        help="also write the JSON report to PATH (CI artifact)",
    )
    args = parser.parse_args(argv)

    if args.command == "race":
        return _run_race(race, args)
    if args.command == "chain":
        return _run_chain(chain, args)
    if args.command == "certify":
        return _run_certify(certify, args)
    return _run_lint(lint, args)


if __name__ == "__main__":
    sys.exit(main())
