"""Lint driver: run every analyzer pass over one NF.

Two phases.  The **AST phase** needs only the NF's Python source and
always runs.  The **model phase** needs an execution tree — built here
via the same front half of the pipeline Maestro itself uses (ESE →
stateful report → Constraints Generator → lock plan), skipping RS3 key
search, which lint never needs.  It is skipped entirely when the AST
phase found errors: symbolically executing source that branches raw on
symbolic values would explore a fictional NF.

Callers that already paid for an analysis (``Maestro.analyze``) pass
their artifacts in and only the passes run.
"""

from __future__ import annotations

from repro import obs
from repro.analysis.ast_passes import (
    BoundedLoopPass,
    DeclaredStatePass,
    NondeterminismPass,
    RawBranchPass,
)
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.passes import AnalysisPass, PassContext, PassManager
from repro.analysis.plan_passes import PlanCertifyPass
from repro.analysis.tree_passes import (
    DeterminismPass,
    LockCoveragePass,
    LockOrderPass,
    ShardingAuditPass,
    TraceStatePass,
)
from repro.core.codegen import LockPlan, Strategy
from repro.core.report import StatefulReport, build_report
from repro.core.sharding import ConstraintsGenerator, ShardingSolution
from repro.nf.api import NF
from repro.symbex.engine import explore_nf
from repro.symbex.tree import ExecutionTree

__all__ = ["default_passes", "lint_nf"]


def default_passes() -> list[AnalysisPass]:
    """The standard pass pipeline, in execution order."""
    return [
        # AST phase
        RawBranchPass(),
        NondeterminismPass(),
        DeclaredStatePass(),
        BoundedLoopPass(),
        # model phase
        TraceStatePass(),
        DeterminismPass(),
        ShardingAuditPass(),
        LockCoveragePass(),
        LockOrderPass(),
        PlanCertifyPass(),
    ]


def lint_nf(
    nf: NF,
    *,
    pipeline: bool = True,
    tree: ExecutionTree | None = None,
    report: StatefulReport | None = None,
    solution: ShardingSolution | None = None,
    lock_plan: LockPlan | None = None,
    strategy: Strategy | None = None,
    passes: list[AnalysisPass] | None = None,
) -> list[Diagnostic]:
    """Run the full lint over ``nf`` and return its diagnostics.

    ``pipeline=False`` restricts the run to the AST phase.  Passing
    ``tree``/``solution``/... reuses existing artifacts instead of
    re-running the analysis; missing ones are derived (``solution`` from
    ``report``, ``lock_plan`` from the verdict's default strategy unless
    ``strategy`` overrides it).
    """
    with obs.span("analysis.lint", nf=nf.name) as sp:
        try:
            pctx = PassContext.for_nf(nf)
        except Exception as exc:  # noqa: BLE001 - surfaced as a finding
            return [
                Diagnostic.of(
                    "MAE020",
                    f"could not introspect the NF: {exc}",
                    nf=getattr(nf, "name", type(nf).__name__),
                )
            ]
        manager = PassManager(passes if passes is not None else default_passes())

        ast_manager = PassManager([p for p in manager.passes if p.phase == "ast"])
        diagnostics = ast_manager.run(pctx)
        sp.set("ast_errors", sum(1 for d in diagnostics if d.is_error))

        want_model = pipeline or tree is not None
        if want_model and not PassManager.has_errors(diagnostics):
            try:
                _populate_model(
                    pctx,
                    tree=tree,
                    report=report,
                    solution=solution,
                    lock_plan=lock_plan,
                    strategy=strategy,
                )
            except Exception as exc:  # noqa: BLE001 - surfaced as a finding
                diagnostics.append(
                    Diagnostic.of(
                        "MAE020",
                        f"pipeline failed while building the model: "
                        f"{type(exc).__name__}: {exc}",
                        nf=nf.name,
                    )
                )
            else:
                tree_manager = PassManager(
                    [p for p in manager.passes if p.phase == "tree"]
                )
                diagnostics.extend(tree_manager.run(pctx))
        sp.set("diagnostics", len(diagnostics))
        sp.set("errors", sum(1 for d in diagnostics if d.is_error))
    return diagnostics


def _populate_model(
    pctx: PassContext,
    *,
    tree: ExecutionTree | None,
    report: StatefulReport | None,
    solution: ShardingSolution | None,
    lock_plan: LockPlan | None,
    strategy: Strategy | None,
) -> None:
    """Fill the model-side fields of ``pctx``, building what's missing."""
    if tree is None:
        with obs.span("analysis.symbex", nf=pctx.nf.name):
            tree = explore_nf(pctx.nf)
    if report is None:
        report = build_report(pctx.nf, tree)
    if solution is None:
        with obs.span("analysis.solve", nf=pctx.nf.name):
            solution = ConstraintsGenerator(report).solve()
    if lock_plan is None:
        chosen = strategy or Strategy.default_for(solution.verdict)
        lock_plan = LockPlan.build(pctx.nf, chosen)
    pctx.tree = tree
    pctx.report = report
    pctx.solution = solution
    pctx.lock_plan = lock_plan
