"""Tree passes: audit the ESE model and the generated parallel plan.

These passes deliberately *re-derive* their facts from the raw
:class:`~repro.symbex.tree.ExecutionTree` instead of trusting the
Constraints Generator's intermediate bookkeeping: the audit walks each
path's :class:`TraceEntry`s itself, reconstructs read/write footprints,
and then checks the sharding :class:`Verdict` against them.  Agreement
between two independent derivations is the point — a bug in either one
shows up as a diagnostic instead of a silently wrong parallel NF.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.passes import AnalysisPass, PassContext
from repro.core.codegen import Strategy
from repro.core.sharding import Verdict
from repro.symbex import expr as E
from repro.symbex.engine import SymbolicError, replay_path
from repro.symbex.tree import ActionKind, Path, TraceEntry

__all__ = [
    "TraceStatePass",
    "ShardingAuditPass",
    "LockCoveragePass",
    "LockOrderPass",
    "DeterminismPass",
]


def _path_id(path: Path) -> str:
    bits = "".join("1" if d else "0" for d in path.decisions)
    return f"port{path.port}:[{bits or 'straight'}]"


# ------------------------------------------------------------------ #
# Footprint reconstruction
# ------------------------------------------------------------------ #
def _sym_footprint(
    name: str, path: Path, depth: int = 4
) -> frozenset[str] | None:
    """Packet fields a symbol's value is a function of; None if unknown.

    ``pkt.*`` symbols are their own field.  State-derived symbols are
    chased through :attr:`Path.origins`: an allocator index is pinned by
    the map that stored it on the same path; a ``map_get`` result is
    pinned by the lookup key that fetched it.
    """
    if name.startswith("pkt."):
        return frozenset({name[len("pkt.") :]})
    if depth <= 0:
        return None
    origin = path.origins.get(name)
    if origin is None:
        return None
    entry = path.trace[origin[0]]
    if entry.op == "dchain_allocate":
        owner_key = _owner_key_of_allocation(path, entry)
        if owner_key is None:
            return None
        return _exprs_footprint(owner_key, path, depth - 1)
    if entry.key is not None:
        return _exprs_footprint(entry.key, path, depth - 1)
    return None


def _exprs_footprint(
    exprs: tuple[E.Expr, ...], path: Path, depth: int = 4
) -> frozenset[str] | None:
    out: set[str] = set()
    for expr in exprs:
        for sym in E.free_symbols(expr):
            fields = _sym_footprint(sym.name, path, depth)
            if fields is None:
                return None
            out |= fields
    return frozenset(out)


def _owner_key_of_allocation(
    path: Path, alloc: TraceEntry
) -> tuple[E.Expr, ...] | None:
    """Key of the same-path ``map_put`` that stored this allocator index."""
    index_syms = {sym.name for _, sym in alloc.results}
    for other in path.trace:
        if other.op != "map_put" or other.key is None:
            continue
        value = dict(other.stored).get("value")
        if isinstance(value, E.Sym) and value.name in index_syms:
            return other.key
    return None


def _allocation_failed(path: Path, alloc: TraceEntry) -> bool:
    """The path's constraints assert this allocation handed out nothing."""
    ok_syms = {
        sym.name for field_name, sym in alloc.results if field_name == "ok"
    }
    for literal in path.constraints:
        polarity = True
        while isinstance(literal, E.Not):
            literal = literal.expr
            polarity = not polarity
        if not polarity and isinstance(literal, E.Sym) and literal.name in ok_syms:
            return True
    return False


def _flatten_and(expr: E.Expr) -> list[E.Expr]:
    if isinstance(expr, E.And):
        return _flatten_and(expr.lhs) + _flatten_and(expr.rhs)
    return [expr]


def _guard_fields(path: Path) -> frozenset[str]:
    """Packet fields equated against state-read results on this path.

    These are the R5 guards: a path that only proceeds when
    ``stored_field == pkt.f`` is, behaviourally, keyed by ``f``.
    """
    out: set[str] = set()
    for literal in path.constraints:
        while isinstance(literal, E.Not):
            literal = literal.expr
        for atom in _flatten_and(literal):
            if not isinstance(atom, E.Eq):
                continue
            for lhs, rhs in ((atom.lhs, atom.rhs), (atom.rhs, atom.lhs)):
                if not (isinstance(lhs, E.Sym) and lhs.name in path.origins):
                    continue
                fields = {
                    s.name[len("pkt.") :]
                    for s in E.free_symbols(rhs)
                    if s.name.startswith("pkt.")
                }
                non_pkt = any(
                    not s.name.startswith("pkt.")
                    for s in E.free_symbols(rhs)
                )
                if len(fields) == 1 and not non_pkt:
                    out |= fields
    return frozenset(out)


def _path_write_union(path: Path, skip_ro: frozenset[str]) -> frozenset[str] | None:
    """Union of key + stored packet fields over every write on the path.

    The cross-flow safety argument for a shard set not literally inside
    one write's key: every flow that can *reach* this path's state is
    pinned by some field combination written/guarded here; if the shard
    fields all appear in that union, two conflicting flows still hash
    identically.  Returns None when any write is unresolvable.
    """
    out: set[str] = set(_guard_fields(path))
    for entry in path.stateful_entries():
        if not entry.write or entry.obj in skip_ro:
            continue
        if entry.key is not None:
            fields = _exprs_footprint(entry.key, path)
            if fields is None:
                return None
            out |= fields
        for _, expr in entry.stored:
            for sym in E.free_symbols(expr):
                if sym.name.startswith("pkt."):
                    out.add(sym.name[len("pkt.") :])
    return frozenset(out)


# ------------------------------------------------------------------ #
# Passes
# ------------------------------------------------------------------ #
class TraceStatePass(AnalysisPass):
    """MAE003 (model side): every traced operation names a declared object.

    Redundant with the AST check by design — the trace sees through
    dynamically-computed names the source pass could only warn about.
    """

    name = "trace-state"
    phase = "tree"

    def run(self, pctx: PassContext) -> list[Diagnostic]:
        assert pctx.tree is not None
        out: list[Diagnostic] = []
        seen: set[tuple[str, str]] = set()
        for path, entry in pctx.tree.entries():
            if entry.obj in pctx.declared:
                continue
            key = (entry.obj, entry.op)
            if key in seen:
                continue
            seen.add(key)
            out.append(
                Diagnostic.of(
                    "MAE003",
                    f"{entry.op} traced on undeclared state object "
                    f"{entry.obj!r}",
                    nf=pctx.nf.name,
                    path_id=_path_id(path),
                )
            )
        return out


class ShardingAuditPass(AnalysisPass):
    """MAE010/MAE014: independently audit a shared-nothing verdict.

    For every state access on every path, reconstruct the packet-field
    footprint its key (or provenance) depends on and check it against the
    RSS shard fields the solution promises for that ingress port:

    * a **write** whose footprint does not cover the shard fields can be
      touched by two flows on different cores → data race (MAE010);
    * a **read** of written state that is neither covered nor guarded
      R5-style on a forwarding path can observe another core's entry →
      wrong output (MAE014).  Drop/miss paths are excused: behaviour is
      then identical to a lookup miss, which sharding preserves.
    """

    name = "sharding-audit"
    phase = "tree"

    def applicable(self, pctx: PassContext) -> bool:
        return (
            pctx.tree is not None
            and pctx.solution is not None
            and pctx.solution.verdict is Verdict.SHARED_NOTHING
        )

    def run(self, pctx: PassContext) -> list[Diagnostic]:
        assert pctx.tree is not None and pctx.solution is not None
        solution = pctx.solution
        skip = self._effective_read_only(pctx)
        out: list[Diagnostic] = []
        for path in pctx.tree.paths():
            shard = frozenset(solution.per_port.get(path.port, ()))
            union: frozenset[str] | None = None
            union_computed = False
            for entry in path.stateful_entries():
                if entry.obj in skip or entry.obj not in pctx.declared:
                    continue
                if entry.write and self._excused_keyless(path, entry):
                    continue  # failed allocation: stores nothing
                footprint = self._entry_footprint(path, entry)
                if entry.write:
                    if not shard:
                        out.append(
                            Diagnostic.of(
                                "MAE010",
                                f"write {entry.op}({entry.obj}) on port "
                                f"{path.port}, but the solution shards "
                                "nothing on that port",
                                nf=pctx.nf.name,
                                path_id=_path_id(path),
                            )
                        )
                        continue
                    if footprint is not None and shard <= footprint:
                        continue
                    if not union_computed:
                        union = _path_write_union(path, skip)
                        union_computed = True
                    if union is not None and shard <= union:
                        continue  # R5-style: path-wide writes pin the flow
                    out.append(
                        Diagnostic.of(
                            "MAE010",
                            f"write {entry.op}({entry.obj}) depends on "
                            f"{sorted(footprint) if footprint is not None else 'unresolved fields'}, "
                            f"which does not pin the shard fields "
                            f"{sorted(shard)} of port {path.port}",
                            nf=pctx.nf.name,
                            path_id=_path_id(path),
                        )
                    )
                else:
                    if not shard:
                        continue  # no write reachable without shard: R1 vacuous
                    if footprint is not None and shard <= footprint:
                        continue
                    if path.action.kind is not ActionKind.FORWARD:
                        continue  # miss-equivalent behaviour (R5)
                    if not union_computed:
                        union = _path_write_union(path, skip)
                        union_computed = True
                    # The union folds in the path's guard equalities and,
                    # on writer paths, the fields its own writes pin — the
                    # R5 colocation argument in both directions.
                    if union is not None and shard <= union:
                        continue
                    out.append(
                        Diagnostic.of(
                            "MAE014",
                            f"read {entry.op}({entry.obj}) on a forwarding "
                            f"path is neither keyed nor guarded by the "
                            f"shard fields {sorted(shard)} of port "
                            f"{path.port}",
                            nf=pctx.nf.name,
                            path_id=_path_id(path),
                        )
                    )
        return out

    # -------------------------------------------------------------- #
    @staticmethod
    def _effective_read_only(pctx: PassContext) -> frozenset[str]:
        assert pctx.tree is not None
        written = {
            entry.obj for _, entry in pctx.tree.entries() if entry.write
        }
        return frozenset(
            name
            for name, decl in pctx.decls.items()
            if decl.read_only or name not in written
        )

    @staticmethod
    def _excused_keyless(path: Path, entry: TraceEntry) -> bool:
        """A failed allocation hands out no index and stores nothing."""
        return (
            entry.key is None
            and entry.op == "dchain_allocate"
            and _owner_key_of_allocation(path, entry) is None
            and _allocation_failed(path, entry)
        )

    @staticmethod
    def _entry_footprint(
        path: Path, entry: TraceEntry
    ) -> frozenset[str] | None:
        """Fields pinning the state slot this entry touches; None unknown.

        Note a *constant* key resolves to the empty set — every packet
        shares that slot, so it can never cover a non-empty shard set.
        """
        if entry.key is not None:
            return _exprs_footprint(entry.key, path)
        if entry.op == "dchain_allocate":
            owner_key = _owner_key_of_allocation(path, entry)
            if owner_key is not None:
                return _exprs_footprint(owner_key, path)
        return None


class LockCoveragePass(AnalysisPass):
    """MAE011: under LOCKS, every conflicting access must hold a lock."""

    name = "lock-coverage"
    phase = "tree"

    def applicable(self, pctx: PassContext) -> bool:
        return (
            pctx.tree is not None
            and pctx.lock_plan is not None
            and pctx.lock_plan.strategy is Strategy.LOCKS
        )

    def run(self, pctx: PassContext) -> list[Diagnostic]:
        assert pctx.tree is not None and pctx.lock_plan is not None
        plan = pctx.lock_plan
        written = {
            entry.obj for _, entry in pctx.tree.entries() if entry.write
        }
        out: list[Diagnostic] = []
        flagged: set[str] = set()
        for path, entry in pctx.tree.entries():
            obj = entry.obj
            if obj in flagged or obj not in written:
                continue
            decl = pctx.decls.get(obj)
            if decl is not None and decl.read_only:
                continue
            if not plan.covers(obj):
                flagged.add(obj)
                out.append(
                    Diagnostic.of(
                        "MAE011",
                        f"{entry.op}({obj}) conflicts across cores but "
                        f"{obj!r} is not in the lock plan "
                        f"{sorted(plan.locked)}",
                        nf=pctx.nf.name,
                        path_id=_path_id(path),
                    )
                )
        return out


class LockOrderPass(AnalysisPass):
    """MAE012: the acquisition order is one global total order.

    Deadlock freedom for the generated code reduces to a permutation
    check: every worker acquires along ``plan.order``, so it suffices
    that ``order`` covers ``locked`` exactly once with no strays.
    """

    name = "lock-order"
    phase = "tree"

    def applicable(self, pctx: PassContext) -> bool:
        return (
            pctx.lock_plan is not None
            and pctx.lock_plan.strategy is Strategy.LOCKS
        )

    def run(self, pctx: PassContext) -> list[Diagnostic]:
        assert pctx.lock_plan is not None
        plan = pctx.lock_plan
        out: list[Diagnostic] = []
        dupes = {
            obj for obj in plan.order if plan.order.count(obj) > 1
        }
        for obj in sorted(dupes):
            out.append(
                Diagnostic.of(
                    "MAE012",
                    f"{obj!r} appears more than once in the acquisition "
                    "order — the order is not total",
                    nf=pctx.nf.name,
                )
            )
        for obj in sorted(plan.locked - set(plan.order)):
            out.append(
                Diagnostic.of(
                    "MAE012",
                    f"locked object {obj!r} has no position in the "
                    "acquisition order — workers could acquire it in "
                    "different relative orders",
                    nf=pctx.nf.name,
                )
            )
        for obj in sorted(set(plan.order) - plan.locked):
            out.append(
                Diagnostic.of(
                    "MAE012",
                    f"acquisition order names {obj!r}, which is not a "
                    "locked object",
                    nf=pctx.nf.name,
                )
            )
        return out


class DeterminismPass(AnalysisPass):
    """MAE013: replaying a path's decision log must be reproducible.

    The ESE engine explores by re-execution: if two replays of the very
    same decision log disagree (constraints, trace, or action), the NF
    smuggles hidden mutable state or nondeterminism past the context API
    and the whole model is untrustworthy.
    """

    name = "determinism"
    phase = "tree"

    def run(self, pctx: PassContext) -> list[Diagnostic]:
        assert pctx.tree is not None
        out: list[Diagnostic] = []
        for path in pctx.tree.paths():
            try:
                first = replay_path(pctx.nf, path.port, path.decisions)
                second = replay_path(pctx.nf, path.port, path.decisions)
            except SymbolicError as exc:
                out.append(
                    Diagnostic.of(
                        "MAE013",
                        f"replaying the recorded decision log failed: {exc}",
                        nf=pctx.nf.name,
                        path_id=_path_id(path),
                    )
                )
                continue
            if first != second:
                out.append(
                    Diagnostic.of(
                        "MAE013",
                        "two replays of the same decision log diverged — "
                        "the NF carries hidden mutable state or "
                        "nondeterminism outside the context API",
                        nf=pctx.nf.name,
                        path_id=_path_id(path),
                    )
                )
        return out
