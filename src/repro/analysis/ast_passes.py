"""AST passes: lint the NF's *source* against the supported class (§5).

The ESE engine is only sound for NFs that treat packet/state values as
opaque handles: combine them with ``ctx.eq``/``ctx.add``/..., branch on
them with ``ctx.cond``, touch only declared state, and keep loops
statically bounded.  These passes enforce that contract with a small
forward taint analysis over each method: *symbolic* values are packet
fields (``pkt.*``) and the results of value-producing context
operations; anything computed from them stays symbolic.

The analysis is deliberately conservative and flow-insensitive (a name,
once symbolic, stays symbolic): false positives are waivable inline, and
a silent false negative would let an unsupported NF reach the pipeline.
"""

from __future__ import annotations

import ast

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.passes import AnalysisPass, PassContext
from repro.analysis.source import MethodSource

__all__ = [
    "RawBranchPass",
    "NondeterminismPass",
    "DeclaredStatePass",
    "BoundedLoopPass",
]

#: ctx methods whose result is a symbolic handle.
_CTX_VALUE_METHODS = frozenset(
    {
        "const",
        "eq",
        "ne",
        "lt",
        "gt",
        "add",
        "sub",
        "mul",
        "extract",
        "hash_value",
        "lnot",
        "land",
        "lor",
        "now",
        "map_get",
        "map_put",
        "vector_borrow",
        "dchain_allocate",
        "dchain_is_allocated",
        "sketch_fetch",
    }
)

#: ctx methods taking state-object names, keyed by the parameter names of
#: those leading arguments (see repro.nf.api.NfContext) so callers passing
#: them by keyword are checked too.
_STATE_OPS: dict[str, tuple[str, ...]] = {
    "map_get": ("name",),
    "map_put": ("name",),
    "map_erase": ("name",),
    "vector_borrow": ("name",),
    "vector_put": ("name",),
    "vector_fill": ("name",),
    "dchain_allocate": ("name",),
    "dchain_is_allocated": ("name",),
    "dchain_rejuvenate": ("name",),
    "sketch_fetch": ("name",),
    "sketch_touch": ("name",),
    "expire_flows": ("map_name", "chain_name"),
}

#: module roots whose calls are nondeterministic under re-execution.
_NONDET_MODULES = frozenset({"random", "secrets", "uuid", "time", "datetime"})
#: builtins that vary across runs/processes (hash is salted for str).
_NONDET_BUILTINS = frozenset({"id", "hash"})
#: attribute calls that are nondeterministic regardless of root module.
_NONDET_ATTRS = frozenset({"urandom", "getrandbits", "token_bytes"})


class _Taint:
    """Forward may-be-symbolic analysis over one method body."""

    def __init__(self, method: MethodSource):
        self.method = method
        self.names: set[str] = set()

    # ------------------------------------------------------------------ #
    def is_tainted(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            root = node.value
            if isinstance(root, ast.Name) and root.id == self.method.pkt_param:
                return True  # pkt.<field> is a symbolic handle
            return self.is_tainted(root)
        if isinstance(node, ast.Subscript):
            return self.is_tainted(node.value)
        if isinstance(node, ast.Call):
            return self._call_tainted(node)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(self.is_tainted(el) for el in node.elts)
        if isinstance(node, ast.Dict):
            return any(
                value is not None and self.is_tainted(value)
                for value in node.values
            )
        if isinstance(node, ast.BinOp):
            return self.is_tainted(node.left) or self.is_tainted(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.is_tainted(node.operand)
        if isinstance(node, ast.BoolOp):
            return any(self.is_tainted(v) for v in node.values)
        if isinstance(node, ast.Compare):
            return self.is_tainted(node.left) or any(
                self.is_tainted(c) for c in node.comparators
            )
        if isinstance(node, ast.IfExp):
            return (
                self.is_tainted(node.test)
                or self.is_tainted(node.body)
                or self.is_tainted(node.orelse)
            )
        if isinstance(node, ast.Starred):
            return self.is_tainted(node.value)
        return False

    def _call_tainted(self, node: ast.Call) -> bool:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == self.method.ctx_param
        ):
            # ctx.cond() returns a concrete bool; value ops return handles.
            return func.attr in _CTX_VALUE_METHODS
        # Unknown callables over tainted arguments stay tainted.
        return any(self.is_tainted(arg) for arg in node.args) or any(
            kw.value is not None and self.is_tainted(kw.value)
            for kw in node.keywords
        )

    # ------------------------------------------------------------------ #
    def assign(self, target: ast.expr, tainted: bool) -> None:
        if not tainted:
            return
        if isinstance(target, ast.Name):
            self.names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for el in target.elts:
                self.assign(el, True)
        elif isinstance(target, ast.Starred):
            self.assign(target.value, True)
        # Attribute/Subscript targets (self.x = sym) are left alone: self
        # attributes are treated as concrete configuration.


def _each_method(pctx: PassContext):
    for method in pctx.source.methods:
        yield method, _Taint(method)


def _update_taint(node: ast.AST, taint: _Taint) -> None:
    if isinstance(node, ast.Assign):
        tainted = taint.is_tainted(node.value)
        for target in node.targets:
            taint.assign(target, tainted)
    elif isinstance(node, ast.AugAssign):
        if taint.is_tainted(node.value) or taint.is_tainted(node.target):
            taint.assign(node.target, True)
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        taint.assign(node.target, taint.is_tainted(node.value))
    elif isinstance(node, (ast.For, ast.comprehension)):
        if taint.is_tainted(node.iter):
            taint.assign(node.target, True)
    elif isinstance(node, ast.withitem) and node.optional_vars is not None:
        taint.assign(node.optional_vars, taint.is_tainted(node.context_expr))


def _walk_with_taint(method: MethodSource, taint: _Taint):
    """Yield every AST node with taint fully resolved beforehand.

    Taint assignments run to a fixpoint first: ``ast.walk`` is
    breadth-first, so an assignment nested in a branch (``if ...: y =
    pkt.x``) would otherwise be seen *after* a later top-level use of
    ``y``.  Fixpointing makes the result independent of visit order and
    also catches loop-carried flows (``y`` assigned at the bottom of a
    loop, branched on at the top).
    """
    while True:
        before = len(taint.names)
        for node in ast.walk(method.tree):
            _update_taint(node, taint)
        if len(taint.names) == before:
            break
    yield from ast.walk(method.tree)


class RawBranchPass(AnalysisPass):
    """MAE001: raw Python branches/comparisons on symbolic handles.

    ``if found:`` silently branches on the *truthiness of an expression
    object* — always True — so ESE would only ever see one side;
    ``pkt.src_port == 53`` compares structure, not value.  Both must go
    through ``ctx.cond`` / ``ctx.eq``.
    """

    name = "raw-branch"
    phase = "ast"

    def run(self, pctx: PassContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for method, taint in _each_method(pctx):
            for node in _walk_with_taint(method, taint):
                if isinstance(node, ast.Compare) and taint.is_tainted(node):
                    out.append(
                        Diagnostic.of(
                            "MAE001",
                            f"{method.qualname}: raw comparison on a "
                            "symbolic value; use ctx.eq/ctx.lt/...",
                            nf=pctx.nf.name,
                            file=method.file,
                            line=method.line_of(node),
                        )
                    )
                elif (
                    isinstance(node, (ast.If, ast.While))
                    and not isinstance(node.test, ast.Compare)
                    and taint.is_tainted(node.test)
                ):
                    out.append(
                        Diagnostic.of(
                            "MAE001",
                            f"{method.qualname}: branching on a symbolic "
                            "value without ctx.cond(...)",
                            nf=pctx.nf.name,
                            file=method.file,
                            line=method.line_of(node),
                        )
                    )
                elif (
                    isinstance(node, ast.IfExp)
                    and not isinstance(node.test, ast.Compare)
                    and taint.is_tainted(node.test)
                ):
                    out.append(
                        Diagnostic.of(
                            "MAE001",
                            f"{method.qualname}: conditional expression on "
                            "a symbolic value without ctx.cond(...)",
                            nf=pctx.nf.name,
                            file=method.file,
                            line=method.line_of(node),
                        )
                    )
        return out


class NondeterminismPass(AnalysisPass):
    """MAE002/MAE005: nondeterminism sources and iteration-order hazards.

    ESE replays ``process`` many times and the parallel runtime replays
    ``setup`` once per core; both replays must agree with the sequential
    run.  ``ctx.now()`` is the only sanctioned time source.
    """

    name = "nondeterminism"
    phase = "ast"

    def run(self, pctx: PassContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for method, taint in _each_method(pctx):
            for node in _walk_with_taint(method, taint):
                if isinstance(node, ast.Call):
                    culprit = self._nondet_call(node)
                    if culprit is not None:
                        out.append(
                            Diagnostic.of(
                                "MAE002",
                                f"{method.qualname}: call to {culprit} is "
                                "nondeterministic under re-execution; use "
                                "ctx.now()/ctx.hash_value() instead",
                                nf=pctx.nf.name,
                                file=method.file,
                                line=method.line_of(node),
                            )
                        )
                elif isinstance(node, (ast.For, ast.comprehension)):
                    if self._unordered_iterable(node.iter):
                        out.append(
                            Diagnostic.of(
                                "MAE005",
                                f"{method.qualname}: iterating a set; "
                                "iteration order is unspecified",
                                nf=pctx.nf.name,
                                file=method.file,
                                line=method.line_of(node.iter),
                            )
                        )
        return out

    @staticmethod
    def _nondet_call(node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _NONDET_BUILTINS:
            return f"{func.id}()"
        if isinstance(func, ast.Attribute):
            root = func.value
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id in _NONDET_MODULES:
                return f"{root.id}.{func.attr}()"
            if func.attr in _NONDET_ATTRS:
                return f"{func.attr}()"
        return None

    @staticmethod
    def _unordered_iterable(node: ast.expr) -> bool:
        if isinstance(node, ast.Set):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in {"set", "frozenset"}
        return False


class DeclaredStatePass(AnalysisPass):
    """MAE003/MAE006: every state access names a declared object.

    The symbolic engine happily traces ``map_get("tpyo", ...)`` — the
    concrete runtime then KeyErrors at the first packet.  Catch it here,
    statically, and flag dynamically-computed names we cannot check.
    """

    name = "declared-state"
    phase = "ast"

    def run(self, pctx: PassContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for method, taint in _each_method(pctx):
            for node in _walk_with_taint(method, taint):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                if not (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == method.ctx_param
                    and func.attr in _STATE_OPS
                ):
                    continue
                params = _STATE_OPS[func.attr]
                for i, param in enumerate(params):
                    arg = self._name_arg(node, i, param)
                    if isinstance(arg, ast.Constant) and isinstance(
                        arg.value, str
                    ):
                        if arg.value not in pctx.declared:
                            out.append(
                                Diagnostic.of(
                                    "MAE003",
                                    f"{method.qualname}: {func.attr} on "
                                    f"undeclared state object {arg.value!r} "
                                    f"(declared: {sorted(pctx.declared)})",
                                    nf=pctx.nf.name,
                                    file=method.file,
                                    line=method.line_of(node),
                                )
                            )
                    else:
                        out.append(
                            Diagnostic.of(
                                "MAE006",
                                f"{method.qualname}: {func.attr} object "
                                "name is not a string literal",
                                nf=pctx.nf.name,
                                file=method.file,
                                line=method.line_of(node),
                            )
                        )
        return out

    @staticmethod
    def _name_arg(node: ast.Call, index: int, param: str) -> ast.expr | None:
        """The expression bound to the ``index``-th state-name parameter,
        whether passed positionally or by keyword (None if absent)."""
        if index < len(node.args):
            return node.args[index]
        for kw in node.keywords:
            if kw.arg == param:
                return kw.value
        return None


class BoundedLoopPass(AnalysisPass):
    """MAE004: loops in the packet path must be statically bounded.

    The paper's supported class (§5) requires bounded loops — unbounded
    ones make exhaustive exploration diverge (PathExplosionError at best).
    Allowed: ``for`` over a tuple/list literal (static unrolling) or over
    ``range(...)`` with non-symbolic bounds tied to configuration (e.g. a
    ``StateDecl`` capacity attribute).  ``setup`` is exempt: it runs once,
    off the packet path, and commonly iterates configuration tables.
    """

    name = "bounded-loop"
    phase = "ast"

    def run(self, pctx: PassContext) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for method, taint in _each_method(pctx):
            if method.name == "setup":
                continue
            for node in _walk_with_taint(method, taint):
                if isinstance(node, ast.While):
                    out.append(
                        Diagnostic.of(
                            "MAE004",
                            f"{method.qualname}: while loop is not "
                            "statically bounded",
                            nf=pctx.nf.name,
                            file=method.file,
                            line=method.line_of(node),
                        )
                    )
                elif isinstance(node, ast.For) and not self._bounded(
                    node.iter, taint
                ):
                    out.append(
                        Diagnostic.of(
                            "MAE004",
                            f"{method.qualname}: for loop over a "
                            "non-static iterable; iterate a literal or "
                            "range() with configuration bounds",
                            nf=pctx.nf.name,
                            file=method.file,
                            line=method.line_of(node),
                        )
                    )
        return out

    @staticmethod
    def _bounded(iterable: ast.expr, taint: _Taint) -> bool:
        if isinstance(iterable, (ast.Tuple, ast.List, ast.Set)):
            return True  # literal: bounded (sets still warn via MAE005)
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in {"range", "enumerate", "zip", "reversed"}
        ):
            return not any(taint.is_tainted(arg) for arg in iterable.args)
        return False
