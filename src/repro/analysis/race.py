"""Race sanitizer: dynamic lockset/ownership checking of parallel NFs.

The linter (:mod:`repro.analysis.lint`) audits the *inputs* to code
generation; this module audits the *output*: it replays a trace through a
generated :class:`~repro.core.codegen.ParallelNF` while the runtime's
op-record machinery streams every state access (object, key/index,
read/write, core) to an installed probe, then runs Eraser-style checker
passes over the event log (Savage et al., "Eraser: a dynamic data race
detector"; the lockset discipline here is the plan-driven variant):

* **lockset** (MAE101) — under LOCKS/TM, every dynamic access to shared
  written state must be covered by the :class:`LockPlan`;
* **lock order** (MAE102) — the acquisition sequence each packet performs
  (``plan.acquisition_sequence`` of its footprint, taken upfront along
  the single global order) must actually be realizable: a locked object
  with no position in the order, or an order that re-acquires a held
  lock, is deadlock potential;
* **shard ownership** (MAE103) — under shared-nothing, no keyed state
  entry may be touched by two different cores.  The R5/writer-colocation
  excusals of :mod:`repro.analysis.tree_passes` are honored: read-only
  (or never-written) tables, allocator-index-addressed state (per-core
  index spaces), and objects whose writes the sharding audit justifies by
  the writer-colocation argument are excused, not flagged;
* **footprint cross-validation** (MAE104) — every packet's dynamic
  access set must be a subset of some symbex path footprint for its
  ingress port, i.e. the static model that justified the plan actually
  over-approximates this trace;
* **migration epochs** (MAE105) — when a live rescale
  (:mod:`repro.scale`) migrates a bucket, the migrator reports each move
  through :meth:`RaceMonitor.note_migration` with its two-phase prepare
  and commit positions.  No packet steered by that bucket may be
  processed inside the unowned epoch (after prepare, before commit), and
  the MAE103 ownership map transfers the moved entries to the receiving
  core exactly at the commit position — a donor-side touch after commit
  (or receiver-side touch before prepare) still flags.

Violations carry stable MAE1xx codes, render as text or JSON, honor the
line-scoped ``# maestro: waive[MAE1xx]`` syntax, and are counted through
``repro.obs`` (``race.events``, ``race.violations``).  Entry points:
``python -m repro.analysis race <nf|--all>``, :func:`sanitize_nf`,
:func:`sanitize_parallel`, and ``check_equivalence(..., sanitize=True)``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, NamedTuple

from repro import obs
from repro.analysis.diagnostics import Diagnostic
from repro.analysis.source import NfSource, gather_sources
from repro.analysis.tree_passes import _exprs_footprint, _path_write_union
from repro.core.codegen import ParallelNF, Strategy
from repro.core.sharding import ShardingSolution
from repro.nf.api import NF, StateDecl
from repro.symbex.tree import ExecutionTree

__all__ = [
    "AccessEvent",
    "MigrationRecord",
    "PacketAccessLog",
    "RaceMonitor",
    "RaceReport",
    "analyze_monitor",
    "sanitize_parallel",
    "sanitize_nf",
]

#: Maintenance ops the symbolic model excludes from path footprints
#: (see ``SymbolicContext``): the expiry sweep and timestamp
#: rejuvenation only ever touch the core's own shard (or run under the
#: full lockset), so the dynamic checkers exclude them the same way.
_MAINTENANCE_OPS = frozenset({"expire", "dchain_rejuvenate"})


class AccessEvent(NamedTuple):
    """One stateful operation, as streamed by the runtime probe."""

    obj: str
    op: str
    write: bool
    #: concrete key (tuple) for map/sketch ops, int index for
    #: vector/dchain ops, None for key-less ops (allocate, fill, expire)
    key: Any


@dataclass
class PacketAccessLog:
    """Ordered accesses of one packet, tagged with its port and core."""

    index: int
    port: int
    core: int
    accesses: list[AccessEvent] = field(default_factory=list)
    #: Indirection-table slot that steered this packet (elastic runs
    #: only; -1 when bucket tagging is off).  The MAE105 checker uses it
    #: to catch packets served during a bucket's unowned epoch.
    bucket: int = -1


class MigrationRecord(NamedTuple):
    """One bucket's ownership handoff, as reported by the migrator.

    ``prepare_position``/``position`` are packet-log positions (lengths
    of :attr:`RaceMonitor.packets` at prepare/commit time): the unowned
    epoch spans ``packets[prepare_position:position]``.  ``keyed`` lists
    the ``(obj, key)`` map entries whose ownership transferred; indexed
    state (vectors/dchains) moves too but is excused from per-entry
    ownership just like in the static case.
    """

    position: int
    bucket: int
    src: int
    dst: int
    keyed: tuple[tuple[str, Any], ...]
    prepare_position: int


class _CoreProbe:
    """The per-context tap installed as ``ConcreteContext.access_probe``."""

    __slots__ = ("_monitor", "core")

    def __init__(self, monitor: "RaceMonitor", core: int) -> None:
        self._monitor = monitor
        self.core = core

    def begin(self, port: int, bucket: int = -1) -> None:
        self._monitor._begin_packet(self.core, port, bucket)

    def access(self, obj: str, op: str, write: bool, key: Any) -> None:
        self._monitor._on_access(obj, op, write, key)


class RaceMonitor:
    """Event collector over one :class:`ParallelNF`'s core contexts.

    Use as a context manager around a strict-order replay
    (``run_functional(..., sanitize=True)`` or a packet-at-a-time loop):
    probes install on entry, uninstall on exit, and the ordered per-packet
    logs are left in :attr:`packets` for :func:`analyze_monitor`.
    """

    def __init__(self, parallel: ParallelNF) -> None:
        self.parallel = parallel
        self.packets: list[PacketAccessLog] = []
        self.migrations: list[MigrationRecord] = []
        self.n_events = 0
        self._current: PacketAccessLog | None = None
        self._installed = False

    def install(self) -> "RaceMonitor":
        for core in self.parallel.cores:
            core.ctx.access_probe = _CoreProbe(self, core.core_id)
        self._installed = True
        return self

    def attach_core(self, core) -> None:
        """Probe a core added after install (elastic grow mid-replay)."""
        if self._installed:
            core.ctx.access_probe = _CoreProbe(self, core.core_id)

    def note_migration(
        self,
        bucket: int,
        src: int,
        dst: int,
        keyed: tuple[tuple[str, Any], ...],
        *,
        prepare_position: int | None = None,
    ) -> None:
        """Record one bucket handoff at the current log position.

        Called by the migrator at commit time; ``prepare_position`` is
        the log position at which the donor stopped owning the bucket
        (defaults to the commit position, i.e. an empty unowned epoch).
        """
        position = len(self.packets)
        self.migrations.append(
            MigrationRecord(
                position=position,
                bucket=bucket,
                src=src,
                dst=dst,
                keyed=tuple(keyed),
                prepare_position=(
                    position if prepare_position is None else prepare_position
                ),
            )
        )

    def remove(self) -> None:
        if self._installed:
            for core in self.parallel.cores:
                core.ctx.access_probe = None
            self._installed = False

    def __enter__(self) -> "RaceMonitor":
        return self.install()

    def __exit__(self, *exc_info: Any) -> None:
        self.remove()

    # Probe callbacks ------------------------------------------------ #
    def _begin_packet(self, core: int, port: int, bucket: int = -1) -> None:
        log = PacketAccessLog(
            index=len(self.packets), port=port, core=core, bucket=bucket
        )
        self.packets.append(log)
        self._current = log

    def _on_access(self, obj: str, op: str, write: bool, key: Any) -> None:
        current = self._current
        if current is None:  # access outside run() (e.g. setup): ignore
            return
        current.accesses.append(AccessEvent(obj, op, write, key))
        self.n_events += 1


# ------------------------------------------------------------------ #
# Checker passes
# ------------------------------------------------------------------ #
def _written_objects(packets: list[PacketAccessLog]) -> set[str]:
    return {
        ev.obj
        for log in packets
        for ev in log.accesses
        if ev.write
    }


def _check_lockset(
    packets: list[PacketAccessLog],
    plan,
    decls: dict[str, StateDecl],
    nf_name: str,
    written: set[str],
) -> list[Diagnostic]:
    """MAE101: every access to shared written state holds a plan lock."""
    out: list[Diagnostic] = []
    flagged: set[str] = set()
    for log in packets:
        for ev in log.accesses:
            obj = ev.obj
            if obj in flagged or obj not in written or plan.covers(obj):
                continue
            decl = decls.get(obj)
            if decl is not None and decl.read_only:
                continue
            flagged.add(obj)
            out.append(
                Diagnostic.of(
                    "MAE101",
                    f"{ev.op}({obj}) on core {log.core} (packet "
                    f"#{log.index}) touches shared written state, but "
                    f"{obj!r} is not covered by the lock plan "
                    f"{sorted(plan.locked)}",
                    nf=nf_name,
                )
            )
    return out


def _check_lock_order(
    packets: list[PacketAccessLog], plan, nf_name: str
) -> list[Diagnostic]:
    """MAE102: the per-packet acquisition sequence must be realizable.

    The generated code takes its locks upfront, walking ``plan.order``
    and acquiring every lock the packet's footprint needs.  That
    discipline deadlocks (or under-locks) when a needed lock has no
    position in the order, or when the order names an object twice —
    re-acquiring a held rwlock self-deadlocks.
    """
    out: list[Diagnostic] = []
    seen_missing: set[str] = set()
    seen_dupe: set[str] = set()
    checked: set[frozenset[str]] = set()
    for log in packets:
        needed = frozenset(
            ev.obj for ev in log.accesses if plan.covers(ev.obj)
        )
        if not needed or needed in checked:
            continue
        checked.add(needed)
        raw = [obj for obj in plan.order if obj in needed]
        for obj in sorted(needed - set(plan.order)):
            if obj in seen_missing:
                continue
            seen_missing.add(obj)
            out.append(
                Diagnostic.of(
                    "MAE102",
                    f"packet #{log.index} (core {log.core}) needs the lock "
                    f"on {obj!r}, which has no position in the acquisition "
                    f"order {list(plan.order)} — it would be accessed "
                    "without ever being acquired",
                    nf=nf_name,
                )
            )
        for obj in sorted({obj for obj in raw if raw.count(obj) > 1}):
            if obj in seen_dupe:
                continue
            seen_dupe.add(obj)
            out.append(
                Diagnostic.of(
                    "MAE102",
                    f"the acquisition order takes the lock on {obj!r} "
                    f"more than once for packet #{log.index} — "
                    "re-acquiring a held lock self-deadlocks",
                    nf=nf_name,
                )
            )
    return out


def _colocation_excused(
    tree: ExecutionTree | None,
    solution: ShardingSolution | None,
    decls: dict[str, StateDecl],
) -> set[str]:
    """Objects the sharding audit excuses by writer colocation (R5).

    Mirrors :class:`~repro.analysis.tree_passes.ShardingAuditPass`: a
    write whose key is not contained in the port's shard fields is still
    safe when the path's write union (keys + stored packet fields + R5
    guards) covers the shard fields — every flow that can reach that
    state is pinned to the writer's core.  Such objects are excused from
    strict per-entry ownership: a cross-"key" contact on them is exactly
    the mismatch-behaves-like-a-miss case R5 reasons about.
    """
    excused: set[str] = set()
    if tree is None or solution is None:
        return excused
    skip_ro = frozenset(n for n, d in decls.items() if d.read_only)
    for path in tree.paths():
        shard = frozenset(solution.per_port.get(path.port, ()))
        if not shard:
            continue
        union: frozenset[str] | None = None
        union_known = False
        for entry in path.stateful_entries():
            if not entry.write or entry.obj in skip_ro:
                continue
            if entry.key is None:
                continue
            fields = _exprs_footprint(entry.key, path)
            if fields is not None and fields <= shard:
                continue  # keyed inside the shard fields: strictly owned
            if not union_known:
                union = _path_write_union(path, skip_ro)
                union_known = True
            if union is not None and shard <= union:
                excused.add(entry.obj)
    return excused


def _check_ownership(
    packets: list[PacketAccessLog],
    decls: dict[str, StateDecl],
    nf_name: str,
    written: set[str],
    excused_objs: set[str],
    excused_counts: dict[str, int],
    migrations: list[MigrationRecord] | None = None,
) -> list[Diagnostic]:
    """MAE103: under shared-nothing, one core owns each keyed entry.

    Ownership is established by the first write to a ``(obj, key)``
    entry; any later touch from a different core — read or write — is a
    violation.  Index-addressed state (vectors, dchains) is excused:
    under sharding each core draws indices from its own allocator, so
    equal indices on different cores are different entries (the
    writer-colocation/derived-key argument of the static audit).

    Reported ``migrations`` legally re-home keyed entries: at each
    record's commit position the moved entries' owner becomes the
    receiving core — atomically, so a donor touch after commit (or a
    receiver touch before it) is still a violation.  Ownership follows
    the *bucket*, so the transfer covers every entry last steered
    through the migrating bucket (tracked per access log), not only the
    entries whose bytes moved — sketch rows stay behind by design
    (over-count-only error) yet their logical ownership still re-homes.
    """
    out: list[Diagnostic] = []
    flagged: set[tuple[str, str]] = set()
    owners: dict[tuple[str, Any], int] = {}
    entry_bucket: dict[tuple[str, Any], int] = {}
    pending = sorted(migrations or (), key=lambda rec: rec.position)
    mig_i = 0
    for log in packets:
        while mig_i < len(pending) and pending[mig_i].position <= log.index:
            rec = pending[mig_i]
            for entry in rec.keyed:
                owners[entry] = rec.dst
            for entry, bucket in entry_bucket.items():
                if bucket == rec.bucket and owners.get(entry) == rec.src:
                    owners[entry] = rec.dst
            mig_i += 1
        core = log.core
        for ev in log.accesses:
            obj = ev.obj
            if ev.op in _MAINTENANCE_OPS:
                continue
            if not isinstance(ev.key, tuple):
                # int index or key-less op: per-core address space.
                if obj in written:
                    excused_counts["index_state"] = (
                        excused_counts.get("index_state", 0) + 1
                    )
                continue
            decl = decls.get(obj)
            if (decl is not None and decl.read_only) or obj not in written:
                excused_counts["read_only"] = (
                    excused_counts.get("read_only", 0) + 1
                )
                continue
            if obj in excused_objs:
                excused_counts["writer_colocation"] = (
                    excused_counts.get("writer_colocation", 0) + 1
                )
                continue
            entry = (obj, ev.key)
            if log.bucket >= 0:
                entry_bucket[entry] = log.bucket
            owner = owners.get(entry)
            if ev.write:
                if owner is None:
                    owners[entry] = core
                    continue
                if owner == core:
                    continue
            elif owner is None or owner == core:
                continue
            if (obj, ev.op) in flagged:
                continue
            flagged.add((obj, ev.op))
            kind = "writes" if ev.write else "reads"
            out.append(
                Diagnostic.of(
                    "MAE103",
                    f"core {core} {kind} {obj}[{_short_key(ev.key)}] via "
                    f"{ev.op} (packet #{log.index}), but core {owner} owns "
                    "that entry — two cores share one logical state entry "
                    "under a shared-nothing plan",
                    nf=nf_name,
                )
            )
    return out


def _short_key(key: Any, limit: int = 48) -> str:
    text = repr(key)
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _check_migrations(
    packets: list[PacketAccessLog],
    migrations: list[MigrationRecord],
    nf_name: str,
) -> list[Diagnostic]:
    """MAE105: no packet may be served inside a bucket's unowned epoch.

    The two-phase handoff quiesces a bucket between *prepare* (donor
    stops accepting) and *commit* (receiver owns the entries and the
    reprogrammed table steers to it).  A packet whose steering bucket
    matches a migrating bucket inside that window was processed while
    neither core legitimately owned the state — a torn handoff.
    """
    out: list[Diagnostic] = []
    for rec in migrations:
        if rec.prepare_position >= rec.position:
            continue  # empty unowned epoch: the common, correct case
        for log in packets[rec.prepare_position : rec.position]:
            if log.bucket != rec.bucket:
                continue
            out.append(
                Diagnostic.of(
                    "MAE105",
                    f"packet #{log.index} (core {log.core}, port "
                    f"{log.port}) was processed during the unowned epoch "
                    f"of migrating bucket {rec.bucket} (prepare at "
                    f"position {rec.prepare_position}, commit at "
                    f"{rec.position}, core {rec.src} -> {rec.dst})",
                    nf=nf_name,
                )
            )
    return out


def _check_footprints(
    packets: list[PacketAccessLog], tree: ExecutionTree, nf_name: str
) -> list[Diagnostic]:
    """MAE104: dynamic access sets must fit inside a symbex footprint."""
    out: list[Diagnostic] = []
    port_profiles: dict[int, list[frozenset[tuple[str, str]]]] = {}
    port_union: dict[int, frozenset[tuple[str, str]]] = {}
    for port in tree.ports:
        profiles = [
            frozenset(
                (entry.obj, entry.op) for entry in path.stateful_entries()
            )
            for path in tree.paths(port)
        ]
        port_profiles[port] = profiles
        port_union[port] = frozenset().union(*profiles) if profiles else frozenset()
    verdicts: dict[tuple[int, frozenset[tuple[str, str]]], bool] = {}
    for log in packets:
        profile = frozenset(
            (ev.obj, ev.op)
            for ev in log.accesses
            if ev.op not in _MAINTENANCE_OPS
        )
        memo_key = (log.port, profile)
        covered = verdicts.get(memo_key)
        if covered is None:
            covered = any(
                profile <= candidate
                for candidate in port_profiles.get(log.port, ())
            )
            verdicts[memo_key] = covered
        if covered:
            continue
        extra = sorted(profile - port_union.get(log.port, frozenset()))
        if extra:
            detail = "accesses the model never saw on this port: " + ", ".join(
                f"{op}({obj})" for obj, op in extra
            )
        else:
            detail = (
                "every access is known individually, but no single path "
                "performs this combination"
            )
        out.append(
            Diagnostic.of(
                "MAE104",
                f"packet #{log.index} on port {log.port} has dynamic "
                f"footprint {{{', '.join(f'{op}({obj})' for obj, op in sorted(profile))}}} "
                f"not contained in any symbex path footprint — {detail}",
                nf=nf_name,
                path_id=f"port{log.port}",
            )
        )
    return out


# ------------------------------------------------------------------ #
# Source attribution (waiver support)
# ------------------------------------------------------------------ #
_OP_PREFIXES = ("map_", "vector_", "dchain_", "sketch_", "expire_flows")


def _locate_access(
    source: NfSource, obj: str, op: str | None
) -> tuple[str | None, int | None]:
    """(file, line) of the first ``ctx.<op>("<obj>", ...)`` call.

    Gives dynamic findings a source anchor so the PR-2 line-scoped
    waiver syntax applies to them; findings whose object name is not a
    string literal in the source simply stay location-less (and thus
    unwaivable by line — the conservative direction).
    """
    fallback: tuple[str | None, int | None] = (None, None)
    for method in source.methods:
        for node in ast.walk(method.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if op is not None and func.attr != op:
                if not func.attr.startswith(_OP_PREFIXES):
                    continue
            elif op is None and not func.attr.startswith(_OP_PREFIXES):
                continue
            names = [arg for arg in node.args] + [
                kw.value for kw in node.keywords
            ]
            literal = any(
                isinstance(arg, ast.Constant) and arg.value == obj
                for arg in names
            )
            if not literal:
                continue
            location = (method.file, method.line_of(node))
            if op is None or func.attr == op:
                return location
            if fallback == (None, None):
                fallback = location
    return fallback


#: checker-emitted op the diagnostic anchors to, parsed from messages via
#: the event that produced it — attached in analyze_monitor.
def _attach_locations(
    diagnostics: list[Diagnostic],
    ops: dict[int, tuple[str, str | None]],
    source: NfSource,
) -> list[Diagnostic]:
    located: list[Diagnostic] = []
    for i, diag in enumerate(diagnostics):
        anchor = ops.get(i)
        if anchor is None:
            located.append(diag)
            continue
        obj, op = anchor
        file, line = _locate_access(source, obj, op)
        if file is None:
            located.append(diag)
            continue
        located.append(
            Diagnostic(
                code=diag.code,
                message=diag.message,
                nf=diag.nf,
                severity=diag.severity,
                file=file,
                line=line,
                path_id=diag.path_id,
            )
        )
    return located


_LOCKSET_ANCHOR = re.compile(r"^(?P<op>\w+)\((?P<obj>\w+)\)")
_OWNERSHIP_ANCHOR = re.compile(r"(?P<obj>\w+)\[.*\] via (?P<op>\w+)")


def _anchors_for(diagnostics: list[Diagnostic]) -> dict[int, tuple[str, str | None]]:
    """Best-effort (obj, op) anchor per diagnostic, from its message.

    MAE101/MAE103 messages are generated by the checkers above with the
    op and object up front (``op(obj)`` / ``obj[key] via op``); this
    keeps the parsing trivial and local to this module.
    """
    out: dict[int, tuple[str, str | None]] = {}
    for i, diag in enumerate(diagnostics):
        if diag.code == "MAE101":
            match = _LOCKSET_ANCHOR.match(diag.message)
        elif diag.code == "MAE103":
            match = _OWNERSHIP_ANCHOR.search(diag.message)
        else:
            continue
        if match is not None:
            out[i] = (match.group("obj"), match.group("op"))
    return out


# ------------------------------------------------------------------ #
# Reports and drivers
# ------------------------------------------------------------------ #
@dataclass
class RaceReport:
    """Outcome of sanitizing one parallel NF over one trace."""

    nf_name: str
    strategy: Strategy
    n_packets: int
    n_events: int
    diagnostics: list[Diagnostic] = field(default_factory=list)
    waived: list[Diagnostic] = field(default_factory=list)
    #: excusal tallies: how many accesses each excusal absorbed
    excused: dict[str, int] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not any(d.is_error for d in self.diagnostics)

    def describe(self) -> str:
        verdict = "clean" if self.clean else (
            f"{sum(1 for d in self.diagnostics if d.is_error)} violation(s)"
        )
        waived = f", {len(self.waived)} waived" if self.waived else ""
        excused = (
            ", excused: "
            + ", ".join(f"{k}={v}" for k, v in sorted(self.excused.items()))
            if self.excused
            else ""
        )
        return (
            f"{self.nf_name} [{self.strategy.value}]: {verdict} over "
            f"{self.n_packets} packets / {self.n_events} state accesses"
            f"{waived}{excused}"
        )

    def to_json(self) -> dict:
        return {
            "nf": self.nf_name,
            "strategy": self.strategy.value,
            "packets": self.n_packets,
            "events": self.n_events,
            "clean": self.clean,
            "excused": dict(sorted(self.excused.items())),
            "diagnostics": (
                [{**d.to_json(), "waived": False} for d in self.diagnostics]
                + [{**d.to_json(), "waived": True} for d in self.waived]
            ),
        }


def analyze_monitor(
    monitor: RaceMonitor,
    *,
    tree: ExecutionTree | None = None,
    source: NfSource | None = None,
) -> RaceReport:
    """Run every checker pass over a collected event log."""
    parallel = monitor.parallel
    nf = parallel.nf
    plan = parallel.lock_plan
    decls = {decl.name: decl for decl in nf.state()}
    packets = monitor.packets
    written = _written_objects(packets)
    excused_counts: dict[str, int] = {}
    diagnostics: list[Diagnostic] = []

    with obs.span("race.check", nf=nf.name, strategy=parallel.strategy.value):
        if parallel.strategy in (Strategy.LOCKS, Strategy.TM):
            diagnostics.extend(
                _check_lockset(packets, plan, decls, nf.name, written)
            )
            diagnostics.extend(_check_lock_order(packets, plan, nf.name))
        else:
            excused_objs = _colocation_excused(tree, parallel.solution, decls)
            diagnostics.extend(
                _check_ownership(
                    packets, decls, nf.name, written, excused_objs,
                    excused_counts, monitor.migrations,
                )
            )
            if monitor.migrations:
                diagnostics.extend(
                    _check_migrations(packets, monitor.migrations, nf.name)
                )
        if tree is not None:
            diagnostics.extend(_check_footprints(packets, tree, nf.name))

    nf_source = source if source is not None else gather_sources(nf)
    diagnostics = _attach_locations(
        diagnostics, _anchors_for(diagnostics), nf_source
    )
    active: list[Diagnostic] = []
    waived: list[Diagnostic] = []
    for diag in diagnostics:
        if nf_source.waived(diag.code, diag.file, diag.line):
            waived.append(diag)
        else:
            active.append(diag)

    obs.counter("race.events", monitor.n_events, nf=nf.name)
    obs.counter("race.violations", len(active), nf=nf.name)
    return RaceReport(
        nf_name=nf.name,
        strategy=parallel.strategy,
        n_packets=len(packets),
        n_events=monitor.n_events,
        diagnostics=active,
        waived=waived,
        excused=excused_counts,
    )


def sanitize_parallel(
    parallel: ParallelNF,
    trace,
    *,
    tree: ExecutionTree | None = None,
    source: NfSource | None = None,
) -> RaceReport:
    """Replay ``trace`` under the sanitizer and check it against the plan.

    The replay always takes the strict-order path
    (``run_functional(..., sanitize=True)``): the steering memo and
    per-core grouped execution are bypassed so the event log carries the
    exact global access order.  Passing the analysis ``tree`` enables
    the MAE104 footprint cross-validation and the R5 excusals.
    """
    from repro.sim.functional import run_functional

    with RaceMonitor(parallel) as monitor:
        run_functional(parallel, trace, sanitize=True)
    return analyze_monitor(monitor, tree=tree, source=source)


def sanitize_nf(
    nf: NF,
    *,
    n_cores: int = 4,
    packets: int = 1024,
    n_flows: int = 256,
    seed: int = 12345,
    strategy: Strategy | None = None,
    result=None,
) -> RaceReport:
    """Analyze ``nf``, generate its parallel NF, and sanitize a trace.

    ``result`` reuses an existing :class:`MaestroResult`; otherwise the
    full pipeline runs with a ``Maestro(seed=seed)``.  The replayed trace
    is the NF's deterministic benchmark workload
    (:func:`repro.hw.cpu.benchmark_trace`).
    """
    from repro.core.pipeline import Maestro
    from repro.hw.cpu import benchmark_trace

    with obs.span("race.sanitize", nf=nf.name):
        if result is None:
            result = Maestro(seed=seed).analyze(nf)
        parallel = ParallelNF.generate(
            nf,
            result.solution,
            result.rss_configuration(n_cores),
            n_cores,
            strategy=strategy,
        )
        trace = benchmark_trace(nf, n_flows=n_flows, packets=packets, seed=seed)
        return sanitize_parallel(parallel, trace, tree=result.tree)
