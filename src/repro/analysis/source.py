"""Source introspection for the AST front end.

Collects the Python source of every method an NF defines (``process``,
``setup``, and any helper, across the MRO down to — but excluding — the
abstract :class:`repro.nf.api.NF` base), parses it, and extracts inline
waivers.  A waiver comment on a flagged line suppresses that code::

    ctx.map_get(map_name, key)  # maestro: waive[MAE006]

Several codes can share one comment (``waive[MAE001,MAE203]``).  Unknown
codes are rejected with :class:`repro.errors.WaiverError` — a typo'd
waiver would otherwise silently suppress nothing while looking reviewed.
Waivers are line-scoped and code-scoped on purpose: a blanket opt-out
would defeat the point of a safety gate.
"""

from __future__ import annotations

import ast
import inspect
import re
import textwrap
from dataclasses import dataclass, field

from repro.analysis.diagnostics import DIAGNOSTIC_CODES
from repro.errors import WaiverError
from repro.nf.api import NF

__all__ = ["MethodSource", "NfSource", "gather_sources", "collect_waivers"]

_WAIVER_RE = re.compile(r"#\s*maestro:\s*waive\[?\s*([A-Z0-9,\s]+?)\s*\]?\s*$")

#: Methods never scanned: declarations, not packet-path logic.
_SKIPPED_METHODS = frozenset({"state"})


@dataclass(frozen=True)
class MethodSource:
    """One NF method, parsed and located."""

    name: str
    qualname: str
    file: str
    first_line: int
    tree: ast.FunctionDef
    #: names of the context / packet parameters ('' when absent)
    ctx_param: str
    pkt_param: str

    def line_of(self, node: ast.AST) -> int:
        """Absolute file line of an AST node inside this method."""
        return self.first_line + getattr(node, "lineno", 1) - 1


@dataclass
class NfSource:
    """Everything the AST passes need to know about one NF's source."""

    nf_name: str
    methods: list[MethodSource] = field(default_factory=list)
    #: absolute (file, line) -> waived codes
    waivers: dict[tuple[str, int], frozenset[str]] = field(default_factory=dict)
    #: methods whose source could not be retrieved (REPL-defined, ...)
    unreadable: list[str] = field(default_factory=list)

    def waived(self, code: str, file: str | None, line: int | None) -> bool:
        if file is None or line is None:
            return False
        return code in self.waivers.get((file, line), frozenset())


def _param_named(fn: ast.FunctionDef, *candidates: str) -> str:
    for arg in fn.args.args:
        if arg.arg in candidates:
            return arg.arg
    return ""


def collect_waivers(
    source: str, file: str, first_line: int = 1
) -> dict[tuple[str, int], frozenset[str]]:
    """Extract ``# maestro: waive[...]`` comments, one entry per line.

    A comment may list several codes separated by commas.  Every code is
    validated against the registry: an unknown code raises
    :class:`WaiverError` naming the file, line, and offending code.
    """
    waivers: dict[tuple[str, int], frozenset[str]] = {}
    for offset, line in enumerate(source.splitlines()):
        match = _WAIVER_RE.search(line)
        if match is None:
            continue
        codes = frozenset(
            code.strip() for code in match.group(1).split(",") if code.strip()
        )
        unknown = sorted(code for code in codes if code not in DIAGNOSTIC_CODES)
        if unknown:
            raise WaiverError(
                f"{file}:{first_line + offset}: unknown waiver code(s) "
                f"{', '.join(unknown)} — known codes are "
                f"{', '.join(sorted(DIAGNOSTIC_CODES))}"
            )
        if codes:
            waivers[(file, first_line + offset)] = codes
    return waivers


# Backwards-compatible private alias (pre-chain name).
_collect_waivers = collect_waivers


def gather_sources(nf: NF) -> NfSource:
    """Collect method sources for ``nf``'s class hierarchy (below NF)."""
    out = NfSource(nf_name=nf.name)
    seen: set[tuple[str, int]] = set()
    for cls in type(nf).__mro__:
        if cls is NF:
            break  # the abstract base and everything above it
        if not issubclass(cls, NF):
            continue  # mixins interleave with NF bases in the MRO
        for name, member in vars(cls).items():
            if name.startswith("__") or name in _SKIPPED_METHODS:
                continue
            if not inspect.isfunction(member):
                continue
            try:
                raw, first_line = inspect.getsourcelines(member)
                file = inspect.getsourcefile(member) or "<unknown>"
            except (OSError, TypeError):
                out.unreadable.append(f"{cls.__name__}.{name}")
                continue
            key = (file, first_line)
            if key in seen:  # same function inherited twice
                continue
            seen.add(key)
            source = textwrap.dedent("".join(raw))
            try:
                module = ast.parse(source)
            except SyntaxError:  # pragma: no cover - getsource artifacts
                out.unreadable.append(f"{cls.__name__}.{name}")
                continue
            fn = next(
                (n for n in module.body if isinstance(n, ast.FunctionDef)), None
            )
            if fn is None:  # pragma: no cover - decorated oddities
                out.unreadable.append(f"{cls.__name__}.{name}")
                continue
            out.methods.append(
                MethodSource(
                    name=name,
                    qualname=f"{cls.__name__}.{name}",
                    file=file,
                    first_line=first_line,
                    tree=fn,
                    ctx_param=_param_named(fn, "ctx", "context"),
                    pkt_param=_param_named(fn, "pkt", "packet"),
                )
            )
            out.waivers.update(_collect_waivers(source, file, first_line))
    return out
