"""repro.analysis — NF linter and parallelization-safety auditor.

Two front ends feed one diagnostics core:

* **AST passes** inspect the NF's Python source (``process``/``setup``
  and helpers) for departures from the supported NF class: raw branches
  on symbolic handles, nondeterminism sources, undeclared state names,
  unbounded loops.
* **Tree passes** audit the extracted model and the generated parallel
  plan: an independent sharding audit of shared-nothing verdicts, lock
  coverage/ordering checks for LOCKS code generation, and a determinism
  check replaying each path's decision log.

A third front end is dynamic: the **race sanitizer**
(:mod:`repro.analysis.race`) replays a trace through the *generated*
parallel NF and checks the event log against the plan — lockset,
lock-order, shard-ownership, and footprint cross-validation
(``MAE101``–``MAE104``), via ``python -m repro.analysis race``.

The compiled dataplane is certified statically: the **plan certifier**
(:mod:`repro.analysis.plan_passes`) re-executes every lowered path
program symbolically and proves it equivalent to its source symbex path
(translation validation), then audits hazard demotion, memo guards, and
plan/verdict consistency (``MAE300``–``MAE304``), via
``python -m repro.analysis certify``.

Chains compose: :mod:`repro.analysis.chain_passes` analyzes whole NF
service chains (``.chain`` files) — composed symbex footprints,
cross-NF shard compatibility, a joint RSS key search over the chain's
ingress ports, and differential validation — reporting ``MAE200``–
``MAE204`` through the same machinery, via
``python -m repro.analysis chain``.

Findings carry stable ``MAE`` codes (see
:data:`repro.analysis.diagnostics.DIAGNOSTIC_CODES`) and render as text
or JSON via ``python -m repro.analysis lint <nf-name|--all>``.
"""

from repro.analysis.chain_passes import ChainReport, HopAnalysis, analyze_chain
from repro.analysis.diagnostics import (
    DIAGNOSTIC_CODES,
    SCHEMA_VERSION,
    Diagnostic,
    Severity,
    diagnostics_from_json,
    render_json,
    render_text,
    sort_diagnostics,
)
from repro.analysis.lint import default_passes, lint_nf
from repro.analysis.passes import AnalysisPass, PassContext, PassManager
from repro.analysis.plan_passes import (
    CertifyReport,
    PlanCertifyPass,
    certify_nf,
    prove_equiv,
)
from repro.analysis.race import (
    RaceMonitor,
    RaceReport,
    sanitize_nf,
    sanitize_parallel,
)
from repro.analysis.source import NfSource, collect_waivers, gather_sources

__all__ = [
    "DIAGNOSTIC_CODES",
    "SCHEMA_VERSION",
    "Diagnostic",
    "Severity",
    "diagnostics_from_json",
    "render_json",
    "render_text",
    "sort_diagnostics",
    "ChainReport",
    "HopAnalysis",
    "analyze_chain",
    "default_passes",
    "lint_nf",
    "AnalysisPass",
    "PassContext",
    "PassManager",
    "CertifyReport",
    "PlanCertifyPass",
    "certify_nf",
    "prove_equiv",
    "NfSource",
    "collect_waivers",
    "gather_sources",
    "RaceMonitor",
    "RaceReport",
    "sanitize_nf",
    "sanitize_parallel",
]
