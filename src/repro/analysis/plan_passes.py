"""Plan certifier: translation validation for the compiled dataplane.

The compiled dataplane (DESIGN §13) lowers every execution-tree path to
a column program and runs whole chunks through NumPy kernels, with the
interpreter as per-lane fallback.  Everything downstream — hazard
demotion, memoization, scatter grouping — assumes the lowering preserved
the path's meaning.  This module is the static soundness net behind that
assumption (DESIGN §14): before anything executes, it re-derives what
each lowered program *should* compute from its source symbex path and
proves the two equivalent, then certifies the execution plan built on
top of the programs.

Checks, one stable code each (all error severity):

``MAE300``
    Lowering equivalence.  Each supported program is re-executed
    symbolically (:func:`repro.symbex.symkernel.interpret_program`) and
    its predicates, stateful steps, writes, and terminal action are
    proved equivalent to the source path's — structurally after
    zero-extension normalization, else via :mod:`repro.solver.eqsmt`
    under the path condition (counterexample search, then UNSAT proof;
    *unknown* is conservatively reported).
``MAE301``
    Fallback-set soundness.  A supported program must use only
    ``LOWERED_OPS``; a demoted program's unlowered suffix must publish
    every write aspect it can perform into the dirt descriptors, or the
    frozen-prefix hazard analysis would never see those writes.
``MAE302``
    Hazard-demotion completeness.  For every kernel step kind, a
    read/write interference lattice derived here (independently of the
    runtime) names the dirt aspects that must demote the step's lane;
    the *actual* ``_demote_mask`` is probed with a synthetic one-lane
    chunk per (step, aspect) pair — wildcard and keyed — and must demote
    it.  Programs whose own bail must poison state are checked against
    their published wildcard set.
``MAE303``
    Memo-guard completeness.  The mutable dependencies of a memoized
    classification are re-derived from the step semantics (map reads →
    map version, vector reads → vector version, chain flag reads and
    timestamp writes → alloc version) and must all appear in the port's
    version guard set; time-consuming programs must defeat memoization;
    consumed packet fields must be part of the uid key.
``MAE304``
    Plan/verdict consistency.  Kernel scatter writes must stay inside
    the source path's write footprint; under LOCKS/TM every vector
    scatter object must be lock-covered (rejuvenation is maintenance,
    matching the race sanitizer's excusal); a shared-nothing plan must
    carry no locks and must not contradict a LOCKS verdict.

Findings are anchored to the first ``ctx.<op>("<obj>", ...)`` call in
the NF source (same attribution the race sanitizer uses), so the
line-scoped ``# maestro: waive[MAE3xx]`` syntax applies.  Ports whose
paths cannot be compiled at all (non-hoistable expiry) are recorded as
*uncompiled* — the runtime never builds kernels for them, so falling
back wholesale is sound, not a finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.analysis.diagnostics import SCHEMA_VERSION, Diagnostic
from repro.analysis.passes import AnalysisPass, PassContext
from repro.analysis.race import _locate_access
from repro.analysis.source import NfSource, gather_sources
from repro.core.codegen import LockPlan, Strategy
from repro.core.report import StatefulReport, build_report
from repro.core.sharding import ConstraintsGenerator, ShardingSolution, Verdict
from repro.nf.api import NF
from repro.sim.compiled import (
    LOWERED_OPS,
    CompiledDispatcher,
    _compile_port,
    _DirtBoard,
    _ProgState,
)
from repro.solver import eqsmt
from repro.symbex import expr as E
from repro.symbex.engine import explore_nf
from repro.symbex.lower import LowerError
from repro.symbex.symkernel import (
    SymKernelError,
    interpret_program,
    strip_zext,
)
from repro.symbex.tree import ActionKind, ExecutionTree

__all__ = [
    "CertifyReport",
    "PlanCertifyPass",
    "certify_nf",
    "prove_equiv",
]


# ------------------------------------------------------------------ #
# Interference / guard lattices — derived here from op semantics, on
# purpose NOT imported from repro.sim.compiled: the whole point is an
# independent re-derivation the runtime's tables are checked against.
# ------------------------------------------------------------------ #

#: Dirt aspects that must demote a kernel lane whose step is of this
#: kind when an interpreter lane dirtied them first (RAW/WAW pairs):
#: map probes read map entries; vector reads see vector writes; vector
#: writes conflict with both earlier writes (WAW order) and earlier
#: reads (the read must not observe the kernel's frozen-prefix write);
#: timestamp scatters conflict with interpreter timestamp writes and
#: with allocation (a slot allocated mid-chunk invalidates the frozen
#: flag the lane classified on); flag reads conflict with allocation.
_INTERFERENCE: dict[str, tuple[str, ...]] = {
    "map_get": ("map_w",),
    "vector_borrow": ("vec_w",),
    "vector_put": ("vec_w", "vec_r"),
    "dchain_rejuvenate": ("ts_w", "alloc"),
    "dchain_is_allocated": ("alloc",),
}

#: Dirt a step's own lanes publish when the program bails (wildcard
#: direction of the same lattice: what the step *writes*, plus vector
#: reads, which later kernel writers must not be reordered across).
_PUBLISH_ASPECT: dict[str, str] = {
    "dchain_rejuvenate": "ts_w",
    "vector_put": "vec_w",
    "vector_borrow": "vec_r",
}

#: Version guard a memoized classification needs per read-step kind:
#: ``Map.version`` for probes, ``Vector.version`` for row reads,
#: ``DChain.alloc_version`` for flag reads *and* timestamp scatters
#: (rejuvenation deliberately does not bump a version, so the scatter
#: must be guarded by the allocation epoch of the slots it touches).
_MEMO_GUARD_KIND: dict[str, str] = {
    "map_get": "map",
    "vector_borrow": "vec",
    "dchain_is_allocated": "chain",
    "dchain_rejuvenate": "chain",
}

#: Write aspects an *unlowered* trace op can perform — what a demoted
#: program's dirt descriptors must cover (``None`` = hazard-free read).
_OP_WRITE_ASPECTS: dict[str, tuple[str, ...] | None] = {
    "map_put": ("map_w",),
    "map_erase": ("map_w",),
    "vector_put": ("vec_w",),
    "vector_fill": ("vec_w",),
    "vector_borrow": ("vec_r",),
    "dchain_allocate": ("alloc",),
    "dchain_rejuvenate": ("ts_w",),
    "map_get": None,
    "dchain_is_allocated": None,
    "sketch_fetch": None,
    "sketch_touch": None,
}

_ALL_ASPECTS = ("map_w", "vec_w", "vec_r", "ts_w", "alloc")

#: Kernel ops allowed to scatter state writes.  Anything else writing
#: from inside a kernel has no single-writer/ordering argument.
_KERNEL_WRITE_OPS = frozenset({"vector_put", "dchain_rejuvenate"})

#: Maintenance writes excused from lock coverage, mirroring the race
#: sanitizer's `_MAINTENANCE_OPS` (rejuvenation is idempotent bookkeeping).
_MAINTENANCE_OPS = frozenset({"dchain_rejuvenate"})


# ------------------------------------------------------------------ #
# Equivalence proving
# ------------------------------------------------------------------ #
def _as_expr(value) -> E.Expr:
    if isinstance(value, E.Expr):
        return value
    return E.Const(32, int(value))


def prove_equiv(a, b, assumptions=(), *, seed: int = 0) -> str:
    """Prove two expressions equal under the path condition.

    Returns ``"proved"`` (structurally identical after zero-extension
    normalization, or ``a != b`` refutation-closed UNSAT), ``"refuted"``
    (a concrete counterexample model exists), or ``"unknown"`` (the
    solver could decide neither way — callers treat this as a failure:
    certification must *prove*, not fail-to-disprove).
    """
    na = strip_zext(_as_expr(a))
    nb = strip_zext(_as_expr(b))
    if E.structurally_equal(na, nb):
        return "proved"
    literals = [strip_zext(c) for c in assumptions]
    literals.append(E.Ne(na, nb))
    if eqsmt.find_model(literals, seed=seed) is not None:
        return "refuted"
    if eqsmt.check(literals, seed=seed) is eqsmt.Result.UNSAT:
        return "proved"
    return "unknown"


# ------------------------------------------------------------------ #
# Findings (pre-location diagnostics)
# ------------------------------------------------------------------ #
@dataclass
class _Finding:
    code: str
    message: str
    obj: str | None = None
    op: str | None = None
    path_id: str | None = None


def _pid(prog) -> str:
    return f"port{prog.port}#{prog.pid}"


# ------------------------------------------------------------------ #
# MAE300 / MAE301: per-program translation validation
# ------------------------------------------------------------------ #
def _expected_binds(entry) -> tuple[str, ...]:
    """Result-symbol names the source entry introduces, by op semantics."""
    op = entry.op
    if op == "map_get":
        return (entry.result("found").name, entry.result("value").name)
    if op == "vector_borrow":
        return tuple(sym.name for _, sym in entry.results)
    if op == "dchain_is_allocated":
        return (entry.result("allocated").name,)
    return ()


def _certify_program(prog, findings: list[_Finding], seed: int) -> bool:
    """MAE300/MAE301 for one path program; True when fully proved."""
    pid = _pid(prog)
    path = prog.source_path
    if path is None:
        findings.append(_Finding(
            "MAE300",
            "path program carries no source-path provenance; its lowering "
            "cannot be validated",
            path_id=pid,
        ))
        return False
    entries = [e for e in path.trace if e.op != "expire"]

    if not prog.supported:
        # The lowerable prefix must still be a well-formed symbolic
        # computation (it narrows lanes for hazard attribution) ...
        ok = True
        try:
            interpret_program(prog)
        except SymKernelError as exc:
            findings.append(_Finding(
                "MAE300", f"demoted program's prefix is malformed: {exc}",
                path_id=pid,
            ))
            ok = False
        # ... and the unlowered suffix's writes must all be published to
        # the hazard board, else the fallback set is unsound (MAE301).
        stop = prog.stop if prog.stop is not None else len(prog.steps)
        covered = {(a, o) for a, o, _ in prog.dirt_descs}
        covered.update(prog.wild)
        for e in entries[stop:]:
            aspects = _OP_WRITE_ASPECTS.get(e.op, _ALL_ASPECTS)
            if aspects is None:
                continue
            for aspect in aspects:
                if (aspect, e.obj) not in covered:
                    findings.append(_Finding(
                        "MAE301",
                        f"demoted path's unlowered {e.op}({e.obj!r}) is "
                        f"missing its {aspect!r} dirt descriptor — the "
                        "frozen-prefix hazard analysis would never see "
                        "this write",
                        obj=e.obj, op=e.op, path_id=pid,
                    ))
                    ok = False
        return ok

    rogue = sorted({e.op for e in entries if e.op not in LOWERED_OPS})
    if rogue:
        findings.append(_Finding(
            "MAE301",
            f"path uses op(s) outside LOWERED_OPS ({', '.join(rogue)}) "
            "but was not demoted to the interpreter",
            obj=entries[0].obj if entries else None,
            op=rogue[0], path_id=pid,
        ))
        return False

    try:
        outcome = interpret_program(prog)
    except SymKernelError as exc:
        findings.append(_Finding(
            "MAE300", f"lowered program is malformed: {exc}", path_id=pid,
        ))
        return False

    return _check_equivalence(prog, outcome, path, entries, findings, seed)


def _check_equivalence(
    prog, outcome, path, entries, findings: list[_Finding], seed: int
) -> bool:
    pid = _pid(prog)
    ok = True

    def bad(message, obj=None, op=None):
        nonlocal ok
        ok = False
        findings.append(_Finding("MAE300", message, obj=obj, op=op,
                                 path_id=pid))

    # Path condition: assumptions every sub-proof runs under.
    source_cs = [strip_zext(c) for c in path.constraints]

    # Predicates: same count, pairwise equivalent, in order (the
    # classifier evaluates them in program order; reordering predicates
    # across stateful steps would change which state reads they see).
    if len(outcome.constraints) != len(source_cs):
        bad(
            f"predicate count differs: lowered {len(outcome.constraints)} "
            f"vs source {len(source_cs)}"
        )
    else:
        for i, (lc, sc) in enumerate(zip(outcome.constraints, source_cs)):
            verdict = prove_equiv(lc, sc, source_cs[:i], seed=seed)
            if verdict != "proved":
                bad(
                    f"predicate {i} not equivalent to the source path's "
                    f"({verdict}): lowered {lc!r} vs source {sc!r}"
                )

    # Stateful steps: sequence, ops, objects, key/index expressions,
    # result bindings, stored values.
    if len(outcome.steps) != len(entries):
        bad(
            f"step count differs: lowered {len(outcome.steps)} vs "
            f"source {len(entries)} stateful entries"
        )
        return False
    for i, (step, entry) in enumerate(zip(outcome.steps, entries)):
        where = f"step {i} ({entry.op} on {entry.obj!r})"
        if step.op != entry.op or step.obj != entry.obj:
            bad(
                f"{where}: lowered as {step.op} on {step.obj!r}",
                obj=entry.obj, op=entry.op,
            )
            continue
        src_keys = tuple(entry.key or ())
        if len(step.key) != len(src_keys):
            bad(
                f"{where}: key arity {len(step.key)} vs {len(src_keys)}",
                obj=entry.obj, op=entry.op,
            )
            continue
        for j, (lk, sk) in enumerate(zip(step.key, src_keys)):
            verdict = prove_equiv(lk, sk, source_cs, seed=seed)
            if verdict != "proved":
                bad(
                    f"{where}: key component {j} not equivalent "
                    f"({verdict}): lowered {lk!r} vs source {sk!r}",
                    obj=entry.obj, op=entry.op,
                )
        expected = _expected_binds(entry)
        if step.binds != expected:
            bad(
                f"{where}: binds {step.binds} instead of the source "
                f"result symbols {expected}",
                obj=entry.obj, op=entry.op,
            )
        if entry.op == "vector_put":
            src_stored = tuple(entry.stored or ())
            if tuple(f for f, _ in step.stored) != tuple(
                f for f, _ in src_stored
            ):
                bad(
                    f"{where}: stored fields "
                    f"{[f for f, _ in step.stored]} vs source "
                    f"{[f for f, _ in src_stored]}",
                    obj=entry.obj, op=entry.op,
                )
            else:
                for (fname, le), (_, se) in zip(step.stored, src_stored):
                    verdict = prove_equiv(le, se, source_cs, seed=seed)
                    if verdict != "proved":
                        bad(
                            f"{where}: stored field {fname!r} not "
                            f"equivalent ({verdict}): lowered {le!r} vs "
                            f"source {se!r}",
                            obj=entry.obj, op=entry.op,
                        )

    # Terminal action: kind, port, header rewrites.
    act = path.action
    if outcome.kind is not act.kind:
        bad(f"action kind {outcome.kind} vs source {act.kind}")
    elif act.kind is ActionKind.FORWARD:
        src_port = act.port
        if isinstance(outcome.port, E.Expr) or isinstance(src_port, E.Expr):
            verdict = prove_equiv(
                _as_expr(outcome.port), _as_expr(src_port), source_cs,
                seed=seed,
            )
            if verdict != "proved":
                bad(
                    f"forward port not equivalent ({verdict}): lowered "
                    f"{outcome.port!r} vs source {src_port!r}"
                )
        elif int(outcome.port) != int(
            src_port.value if isinstance(src_port, E.Const) else src_port
        ):
            bad(
                f"forward port {outcome.port} vs source {src_port}"
            )
    src_mods = tuple(act.mods or ())
    if tuple(f for f, _ in outcome.mods) != tuple(f for f, _ in src_mods):
        bad(
            f"header rewrites {[f for f, _ in outcome.mods]} vs source "
            f"{[f for f, _ in src_mods]}"
        )
    else:
        for (fname, le), (_, se) in zip(outcome.mods, src_mods):
            verdict = prove_equiv(le, se, source_cs, seed=seed)
            if verdict != "proved":
                bad(
                    f"header rewrite {fname!r} not equivalent "
                    f"({verdict}): lowered {le!r} vs source {se!r}"
                )
    return ok


# ------------------------------------------------------------------ #
# MAE302: hazard-demotion completeness (probes the real runtime)
# ------------------------------------------------------------------ #
def _probe_state(prog) -> _ProgState:
    """A synthetic one-lane chunk state sitting on ``prog``.

    Artifacts cover every field ``_demote_mask`` can read: key 0 /
    cell 0 per step, and a *stale* allocation flag (allocation only
    flips free→allocated, so a lane that classified on a free slot is
    exactly the lane an allocation invalidates).
    """
    ps = _ProgState(prog)
    ps.kmask = np.ones(1, dtype=bool)
    ps.arts = [
        {
            "keys": [0],
            "cells": np.zeros(1, dtype=np.int64),
            "flags": np.zeros(1, dtype=bool),
        }
        for _ in prog.steps
    ]
    return ps


def _dirt_boards(aspect: str, obj: str) -> list[tuple[str, _DirtBoard]]:
    """Wildcard and keyed boards carrying one conflicting dirt record."""
    wild = _DirtBoard()
    wild.add(aspect, obj, None)
    boards = [("wildcard", wild)]
    if aspect != "alloc":  # alloc dirt is inherently wildcard
        keyed = _DirtBoard()
        keyed.add(aspect, obj, [0])
        boards.append(("keyed", keyed))
    return boards


def _certify_demotion(pp, findings: list[_Finding]) -> None:
    disp = CompiledDispatcher.__new__(CompiledDispatcher)
    for prog in pp.programs:
        if not prog.supported:
            continue
        pid = _pid(prog)
        if prog.steps:
            # A fully-poisoned board must always demote.
            board = _DirtBoard()
            board.wild_all = True
            dem = disp._demote_mask(_probe_state(prog), board)
            if dem is None or not bool(np.asarray(dem).all()):
                findings.append(_Finding(
                    "MAE302",
                    "a fully-poisoned dirt board failed to demote this "
                    "program's kernel lane",
                    path_id=pid,
                ))
        for step in prog.steps:
            op = step.sig[0]
            aspects = _INTERFERENCE.get(op)
            if aspects is None:
                findings.append(_Finding(
                    "MAE302",
                    f"kernel step {op!r} has no entry in the interference "
                    "lattice — its hazards cannot be certified",
                    obj=step.obj, op=op, path_id=pid,
                ))
                continue
            for aspect in aspects:
                for flavor, board in _dirt_boards(aspect, step.obj):
                    dem = disp._demote_mask(_probe_state(prog), board)
                    if dem is None or not bool(np.asarray(dem).all()):
                        findings.append(_Finding(
                            "MAE302",
                            f"{op}({step.obj!r}) kernel lane survives "
                            f"{flavor} {aspect!r} dirt on {step.obj!r} — "
                            "the frozen-prefix fixpoint would miss this "
                            "RAW/WAW pair",
                            obj=step.obj, op=op, path_id=pid,
                        ))
            if op in _PUBLISH_ASPECT:
                aspect = _PUBLISH_ASPECT[op]
                if (aspect, step.obj) not in prog.wild:
                    findings.append(_Finding(
                        "MAE302",
                        f"program bail would not publish {aspect!r} dirt "
                        f"for {op}({step.obj!r}); sibling kernel lanes "
                        "could keep stale reads",
                        obj=step.obj, op=op, path_id=pid,
                    ))


# ------------------------------------------------------------------ #
# MAE303: memo-guard completeness
# ------------------------------------------------------------------ #
def _certify_memo(pp, findings: list[_Finding]) -> None:
    guards = set(pp.read_objs)
    fields = set(pp.fields)
    time_used = False
    for prog in pp.programs:
        if not prog.supported:
            continue
        pid = _pid(prog)
        for step in prog.steps:
            op = step.sig[0]
            kind = _MEMO_GUARD_KIND.get(op)
            if kind is None:
                if op != "vector_put":
                    findings.append(_Finding(
                        "MAE303",
                        f"kernel step {op!r} has no derived memo-guard "
                        "model; its state dependencies cannot be "
                        "certified",
                        obj=step.obj, op=op, path_id=pid,
                    ))
                continue
            if (step.obj, kind) not in guards:
                findings.append(_Finding(
                    "MAE303",
                    f"memoized classification depends on {op}"
                    f"({step.obj!r}) but the {kind!r} version of "
                    f"{step.obj!r} is not in the memo guard set",
                    obj=step.obj, op=op, path_id=pid,
                ))
        if "time" in prog.used:
            time_used = True
        pkt_syms = {n for n in prog.used if n.startswith("pkt.")}
        missing = sorted(pkt_syms - fields)
        if missing:
            findings.append(_Finding(
                "MAE303",
                f"program consumes packet field(s) {', '.join(missing)} "
                "absent from the port's uid key — two packets differing "
                "only there would share a memo entry",
                path_id=pid,
            ))
    if time_used and pp.memoizable:
        findings.append(_Finding(
            "MAE303",
            f"port {pp.port}: a supported program consumes virtual time "
            "but the port is marked memoizable — cached classifications "
            "would go stale between packets",
        ))
    if "time" in {
        n for prog in pp.programs for n in prog.used
    } and not pp.need_time:
        findings.append(_Finding(
            "MAE303",
            f"port {pp.port}: a program consumes virtual time but the "
            "port does not bind it",
        ))


# ------------------------------------------------------------------ #
# MAE304: plan/verdict consistency
# ------------------------------------------------------------------ #
def _certify_plan(
    pp,
    solution: ShardingSolution | None,
    lock_plan: LockPlan | None,
    strategy: Strategy,
    findings: list[_Finding],
) -> None:
    if (
        solution is not None
        and solution.verdict is Verdict.LOCKS
        and strategy is Strategy.SHARED_NOTHING
    ):
        findings.append(_Finding(
            "MAE304",
            "shared-nothing execution plan contradicts the LOCKS verdict "
            "— per-path footprints require coordination",
        ))
    if (
        strategy is Strategy.SHARED_NOTHING
        and lock_plan is not None
        and lock_plan.locked
    ):
        findings.append(_Finding(
            "MAE304",
            "shared-nothing plan carries locks "
            f"({', '.join(sorted(lock_plan.locked))}) — the kernels' "
            "scatter grouping assumes per-shard domains",
        ))
    for prog in pp.programs:
        if not prog.supported or prog.source_path is None:
            continue
        pid = _pid(prog)
        src_writes = {
            e.obj for e in prog.source_path.trace
            if e.write and e.op != "expire"
        }
        for step in prog.steps:
            op = step.sig[0]
            if op not in _KERNEL_WRITE_OPS:
                continue
            if step.obj not in src_writes:
                findings.append(_Finding(
                    "MAE304",
                    f"kernel scatter {op}({step.obj!r}) writes an object "
                    "outside the source path's write footprint",
                    obj=step.obj, op=op, path_id=pid,
                ))
            if (
                strategy in (Strategy.LOCKS, Strategy.TM)
                and op not in _MAINTENANCE_OPS
                and lock_plan is not None
                and not lock_plan.covers(step.obj)
            ):
                findings.append(_Finding(
                    "MAE304",
                    f"kernel scatter {op}({step.obj!r}) is not covered "
                    f"by the {strategy.value} lock plan",
                    obj=step.obj, op=op, path_id=pid,
                ))


# ------------------------------------------------------------------ #
# Driver, report, pass
# ------------------------------------------------------------------ #
def _locate(findings: list[_Finding], nf_name: str,
            source: NfSource | None) -> list[Diagnostic]:
    out: list[Diagnostic] = []
    for f in findings:
        file = line = None
        if source is not None and f.obj is not None:
            file, line = _locate_access(source, f.obj, f.op)
        out.append(Diagnostic.of(
            f.code, f.message, nf=nf_name, file=file, line=line,
            path_id=f.path_id,
        ))
    return out


def _certify(
    nf: NF,
    tree: ExecutionTree,
    solution: ShardingSolution | None,
    lock_plan: LockPlan | None,
    strategy: Strategy,
    source: NfSource | None,
    seed: int,
) -> tuple[list[Diagnostic], dict]:
    """Compile every port and run the MAE3xx checks.

    Returns located (unfiltered) diagnostics plus run stats.
    """
    findings: list[_Finding] = []
    uncompiled: dict[int, str] = {}
    n_paths = sum(len(tree.paths_by_port[p]) for p in tree.ports)
    n_supported = n_proved = 0
    supported_pids: list[int] = []
    pid = 0
    for port in tree.ports:
        try:
            pp = _compile_port(nf, port, tree.paths_by_port[port], pid)
        except LowerError as exc:
            # The runtime refuses to build kernels for this port too
            # (compile_parallel returns None): wholesale fallback to the
            # interpreter is sound by construction, not a finding.
            uncompiled[port] = str(exc)
            continue
        pid += len(pp.programs)
        for prog in pp.programs:
            proved = _certify_program(prog, findings, seed)
            if prog.supported:
                n_supported += 1
                supported_pids.append(prog.pid)
                if proved:
                    n_proved += 1
        _certify_demotion(pp, findings)
        _certify_memo(pp, findings)
        _certify_plan(pp, solution, lock_plan, strategy, findings)
    stats = {
        "paths": n_paths,
        "supported": n_supported,
        "proved": n_proved,
        "uncompiled": uncompiled,
        "supported_pids": tuple(supported_pids),
    }
    return _locate(findings, nf.name, source), stats


@dataclass
class CertifyReport:
    """Outcome of certifying one NF's lowered programs and plan."""

    nf_name: str
    strategy: Strategy
    n_paths: int
    n_supported: int
    n_proved: int
    #: dispatcher path ids (numbered identically to ``compile_parallel``)
    #: certified as fully lowered — the fuzz oracle cross-checks observed
    #: kernel lanes against this set.
    supported_pids: tuple = ()
    uncompiled: dict[int, str] = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    waived: list[Diagnostic] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not any(d.is_error for d in self.diagnostics)

    def describe(self) -> str:
        verdict = "certified" if self.clean else (
            f"{sum(1 for d in self.diagnostics if d.is_error)} finding(s)"
        )
        waived = f", {len(self.waived)} waived" if self.waived else ""
        uncompiled = (
            f", {len(self.uncompiled)} port(s) uncompiled"
            if self.uncompiled else ""
        )
        return (
            f"{self.nf_name} [{self.strategy.value}]: {verdict} — "
            f"{self.n_proved}/{self.n_supported} lowered path(s) proved "
            f"of {self.n_paths} total{uncompiled}{waived}"
        )

    def to_json(self) -> dict:
        return {
            "nf": self.nf_name,
            "strategy": self.strategy.value,
            "paths": self.n_paths,
            "supported": self.n_supported,
            "proved": self.n_proved,
            "supported_pids": list(self.supported_pids),
            "clean": self.clean,
            "uncompiled": {
                str(port): reason
                for port, reason in sorted(self.uncompiled.items())
            },
            "diagnostics": (
                [{**d.to_json(), "waived": False} for d in self.diagnostics]
                + [{**d.to_json(), "waived": True} for d in self.waived]
            ),
        }


def certify_nf(
    nf: NF,
    *,
    tree: ExecutionTree | None = None,
    report: StatefulReport | None = None,
    solution: ShardingSolution | None = None,
    lock_plan: LockPlan | None = None,
    strategy: Strategy | None = None,
    seed: int = 0,
    source: NfSource | None = None,
) -> CertifyReport:
    """Certify one NF: lowering equivalence plus plan soundness.

    Missing artifacts are derived the same way the lint driver derives
    them (ESE → report → Constraints Generator → lock plan from the
    verdict's default strategy unless ``strategy`` overrides it).
    """
    with obs.span("analysis.certify", nf=nf.name) as sp:
        if tree is None:
            tree = explore_nf(nf)
        if solution is None:
            if report is None:
                report = build_report(nf, tree)
            solution = ConstraintsGenerator(report).solve()
        chosen = strategy or Strategy.default_for(solution.verdict)
        if lock_plan is None:
            lock_plan = LockPlan.build(nf, chosen)
        nf_source = source if source is not None else gather_sources(nf)
        diagnostics, stats = _certify(
            nf, tree, solution, lock_plan, chosen, nf_source, seed
        )
        active: list[Diagnostic] = []
        waived: list[Diagnostic] = []
        for diag in diagnostics:
            if nf_source.waived(diag.code, diag.file, diag.line):
                waived.append(diag)
            else:
                active.append(diag)
        sp.set("paths", stats["paths"])
        sp.set("proved", stats["proved"])
        sp.set("findings", len(active))
        obs.counter("certify.findings", len(active), nf=nf.name)
    return CertifyReport(
        nf_name=nf.name,
        strategy=chosen,
        n_paths=stats["paths"],
        n_supported=stats["supported"],
        n_proved=stats["proved"],
        supported_pids=stats["supported_pids"],
        uncompiled=stats["uncompiled"],
        diagnostics=active,
        waived=waived,
    )


class PlanCertifyPass(AnalysisPass):
    """Lint-pipeline adapter: certify inside ``Maestro.analyze(lint=True)``.

    Reuses the lint run's tree/solution/lock plan; returns unfiltered
    diagnostics — the pass manager applies waivers like for every other
    pass.
    """

    name = "plan-certify"
    phase = "tree"

    def run(self, pctx: PassContext) -> list[Diagnostic]:
        lock_plan = pctx.lock_plan
        strategy = (
            lock_plan.strategy if lock_plan is not None
            else Strategy.default_for(
                pctx.solution.verdict if pctx.solution else None
            )
        )
        diagnostics, _ = _certify(
            pctx.nf, pctx.tree, pctx.solution, lock_plan, strategy,
            pctx.source, 0,
        )
        return diagnostics
