"""Render a human-readable report from a JSONL trace.

Backs ``python -m repro.obs report <trace.jsonl>``: spans grouped per
stage and per NF (the ``nf`` attribute, when present), then counter and
histogram digests.  Table formatting is local — ``repro.obs`` must stay
stdlib-only, so it cannot borrow ``repro.eval.runner.format_table``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.obs.collect import MemoryCollector, percentile
from repro.obs.export import load_trace

__all__ = ["format_table", "render_collector", "render_trace"]


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Plain-text aligned table (left-aligned names, right-aligned data)."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            text = str(cell)
            parts.append(text.ljust(widths[i]) if i == 0 else text.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    out = [line(header), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _attrs_label(attrs: dict[str, Any], *, skip: tuple[str, ...] = ()) -> str:
    parts = [f"{k}={v}" for k, v in sorted(attrs.items()) if k not in skip]
    return ",".join(parts) if parts else "-"


def _span_section(collector: MemoryCollector) -> str:
    groups: dict[tuple[str, str], list[float]] = {}
    for record in collector.spans:
        key = (record.name, str(record.attrs.get("nf", "-")))
        groups.setdefault(key, []).append(record.duration_s)
    rows = []
    for (name, nf), durations in sorted(groups.items()):
        rows.append(
            [
                name,
                nf,
                str(len(durations)),
                f"{sum(durations) * 1e3:.2f}",
                f"{percentile(durations, 50) * 1e3:.2f}",
                f"{percentile(durations, 95) * 1e3:.2f}",
                f"{max(durations) * 1e3:.2f}",
            ]
        )
    if not rows:
        return "(no spans)"
    header = ["span", "nf", "count", "total_ms", "p50_ms", "p95_ms", "max_ms"]
    return format_table(header, rows)


def _counter_section(collector: MemoryCollector) -> str:
    rows = []
    for name, attrs, total in sorted(
        collector.counters(), key=lambda item: (item[0], sorted(item[1].items()))
    ):
        nf = str(attrs.get("nf", "-"))
        rows.append([name, nf, _attrs_label(attrs, skip=("nf",)), str(total)])
    if not rows:
        return "(no counters)"
    return format_table(["counter", "nf", "attrs", "total"], rows)


def _histogram_section(collector: MemoryCollector) -> str:
    rows = []
    for name, attrs, values in sorted(
        collector.histograms(), key=lambda item: (item[0], sorted(item[1].items()))
    ):
        nf = str(attrs.get("nf", "-"))
        rows.append(
            [
                name,
                nf,
                _attrs_label(attrs, skip=("nf",)),
                str(len(values)),
                f"{sum(values) / len(values):.2f}",
                f"{percentile(values, 50):.2f}",
                f"{percentile(values, 95):.2f}",
                f"{max(values):.2f}",
            ]
        )
    if not rows:
        return "(no histograms)"
    header = ["histogram", "nf", "attrs", "count", "mean", "p50", "p95", "max"]
    return format_table(header, rows)


def render_collector(collector: MemoryCollector, *, title: str = "trace") -> str:
    """Render the three report sections for an aggregated trace."""
    return "\n".join(
        [
            f"== {title}: spans ==",
            _span_section(collector),
            "",
            f"== {title}: counters ==",
            _counter_section(collector),
            "",
            f"== {title}: histograms ==",
            _histogram_section(collector),
        ]
    )


def render_trace(path: str) -> str:
    """Load a JSONL trace file and render the full report."""
    return render_collector(load_trace(path), title=path)
