"""Render a human-readable report from a JSONL trace.

Backs ``python -m repro.obs report <trace.jsonl>``: spans grouped per
stage and per NF (the ``nf`` attribute, when present), then counter and
histogram digests.  Table formatting is local — ``repro.obs`` must stay
stdlib-only, so it cannot borrow ``repro.eval.runner.format_table``.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.obs.collect import MemoryCollector, percentile
from repro.obs.export import load_trace
from repro.obs.telemetry import METRICS, TelemetrySink

__all__ = [
    "format_table",
    "render_collector",
    "render_trace",
    "render_top",
    "render_timeline",
]


def format_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Plain-text aligned table (left-aligned names, right-aligned data)."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def line(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            text = str(cell)
            parts.append(text.ljust(widths[i]) if i == 0 else text.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    out = [line(header), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def _attrs_label(attrs: dict[str, Any], *, skip: tuple[str, ...] = ()) -> str:
    parts = [f"{k}={v}" for k, v in sorted(attrs.items()) if k not in skip]
    return ",".join(parts) if parts else "-"


def _span_section(collector: MemoryCollector) -> str:
    groups: dict[tuple[str, str], list[float]] = {}
    for record in collector.spans:
        key = (record.name, str(record.attrs.get("nf", "-")))
        groups.setdefault(key, []).append(record.duration_s)
    rows = []
    for (name, nf), durations in sorted(groups.items()):
        rows.append(
            [
                name,
                nf,
                str(len(durations)),
                f"{sum(durations) * 1e3:.2f}",
                f"{percentile(durations, 50) * 1e3:.2f}",
                f"{percentile(durations, 95) * 1e3:.2f}",
                f"{max(durations) * 1e3:.2f}",
            ]
        )
    if not rows:
        return "(no spans)"
    header = ["span", "nf", "count", "total_ms", "p50_ms", "p95_ms", "max_ms"]
    return format_table(header, rows)


def _counter_section(collector: MemoryCollector) -> str:
    rows = []
    for name, attrs, total in sorted(
        collector.counters(), key=lambda item: (item[0], sorted(item[1].items()))
    ):
        nf = str(attrs.get("nf", "-"))
        rows.append([name, nf, _attrs_label(attrs, skip=("nf",)), str(total)])
    if not rows:
        return "(no counters)"
    return format_table(["counter", "nf", "attrs", "total"], rows)


def _histogram_section(collector: MemoryCollector) -> str:
    rows = []
    for name, attrs, values in sorted(
        collector.histograms(), key=lambda item: (item[0], sorted(item[1].items()))
    ):
        nf = str(attrs.get("nf", "-"))
        rows.append(
            [
                name,
                nf,
                _attrs_label(attrs, skip=("nf",)),
                str(len(values)),
                f"{sum(values) / len(values):.2f}",
                f"{percentile(values, 50):.2f}",
                f"{percentile(values, 95):.2f}",
                f"{max(values):.2f}",
            ]
        )
    if not rows:
        return "(no histograms)"
    header = ["histogram", "nf", "attrs", "count", "mean", "p50", "p95", "max"]
    return format_table(header, rows)


def _fastpath_section(collector: MemoryCollector) -> str | None:
    """Steering-cache effectiveness, when the trace recorded any.

    Returns None for traces without ``fastpath.*`` counters so reports
    from analysis-only runs don't grow an all-zero section.
    """
    hits = collector.counter_total("fastpath.hits")
    misses = collector.counter_total("fastpath.misses")
    invalidations = collector.counter_total("fastpath.invalidations")
    if not (hits or misses or invalidations):
        return None
    total = hits + misses
    hit_rate = 100.0 * hits / total if total else 0.0
    rows = [
        ["steering-cache hits", str(hits)],
        ["steering-cache misses", str(misses)],
        ["hit rate", f"{hit_rate:.1f}%"],
    ]
    if invalidations:
        rows.append(["invalidations", str(invalidations)])
    return format_table(["fast path", "value"], rows)


def render_collector(collector: MemoryCollector, *, title: str = "trace") -> str:
    """Render the report sections for an aggregated trace."""
    sections = [
        f"== {title}: spans ==",
        _span_section(collector),
        "",
        f"== {title}: counters ==",
        _counter_section(collector),
        "",
        f"== {title}: histograms ==",
        _histogram_section(collector),
    ]
    fastpath = _fastpath_section(collector)
    if fastpath is not None:
        sections.extend(["", f"== {title}: fast path ==", fastpath])
    return "\n".join(sections)


def render_trace(path: str) -> str:
    """Load a JSONL trace file and render the full report."""
    return render_collector(load_trace(path), title=path)


# ------------------------------------------------------------------ #
# Telemetry renderers (``python -m repro.obs top`` / ``timeline``)
# ------------------------------------------------------------------ #
def render_top(sink: TelemetrySink) -> str:
    """Per-core summary table over a captured run — the ``top(1)`` view."""
    if not sink.n_cores:
        return "(no telemetry windows)"
    packet_series = sink.series("packets")
    total_packets = sink.total("packets") or 1
    steer_hits = sink.core_totals("steer_hits")
    steer_misses = sink.core_totals("steer_misses")
    rows = []
    for core in range(sink.n_cores):
        per_window = [float(row[core]) for row in packet_series]
        packets = sink.core_totals("packets")[core]
        steered = steer_hits[core] + steer_misses[core]
        hit_rate = f"{100.0 * steer_hits[core] / steered:.1f}%" if steered else "-"
        rows.append(
            [
                f"core{core}",
                str(packets),
                f"{100.0 * packets / total_packets:.1f}%",
                f"{percentile(per_window, 50):.0f}",
                f"{percentile(per_window, 95):.0f}",
                str(sink.core_totals("reads")[core]),
                str(sink.core_totals("writes")[core]),
                str(sink.core_totals("new_flows")[core]),
                str(sink.core_totals("lock_waits")[core]),
                hit_rate,
            ]
        )
    header = [
        "core", "packets", "share", "p50/win", "p95/win",
        "reads", "writes", "new_flows", "lock_waits", "steer_hit",
    ]
    label = f" [{sink.label}]" if sink.label else ""
    head = (
        f"== telemetry{label}: {sink.windows_recorded} window(s) × "
        f"{sink.window_packets} pkts, {sink.total_packets} packets =="
    )
    return "\n".join([head, format_table(header, rows)])


def render_timeline(sink: TelemetrySink, *, metric: str = "packets") -> str:
    """Window-by-window per-core series of one metric."""
    if metric not in METRICS:
        raise ValueError(
            f"unknown metric {metric!r} (choose from {', '.join(METRICS)})"
        )
    if not len(sink):
        return "(no telemetry windows)"
    rows = []
    for window in sink.windows:
        values = list(window.metric(metric))
        values.extend(0 for _ in range(sink.n_cores - len(values)))
        total = sum(values)
        fair = total / sink.n_cores if sink.n_cores else 0.0
        imbalance = f"{max(values) / fair:.2f}" if fair else "-"
        rows.append(
            [f"w{window.index}", f"{window.start_packet}..{window.end_packet}"]
            + [str(v) for v in values]
            + [imbalance]
        )
    header = (
        ["window", "packets"]
        + [f"c{core}" for core in range(sink.n_cores)]
        + ["imbalance"]
    )
    head = f"== timeline: {metric} per window per core =="
    return "\n".join([head, format_table(header, rows)])
