"""Detectors over telemetry: skew/hotspot finding and model-drift scoring.

These are the sensing APIs the future elastic-scaling controller
(ROADMAP item 2) will poll: pure functions from a
:class:`~repro.obs.telemetry.TelemetrySink` (plus, for drift, the perf
model's predictions) to small verdict dataclasses.

*Skew* asks whether the observed per-core load is compatible with the
uniform sharding the paper's shared-nothing argument assumes:
``imbalance = max-core share / fair share`` (1.0 is perfect balance; the
same normalization as :meth:`FunctionalRun.imbalance`), with a
per-window trend so a hotspot that is *growing* is distinguishable from
a static one.

*Drift* asks whether the analytic model still describes the running
system: total-variation distance between predicted and observed per-core
shares, blended with the write-fraction gap.  A zipf-skewed run against
a model that assumed uniform shares drifts hard; a uniform run should
score near zero.

Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.obs.telemetry import TelemetrySink

__all__ = ["SkewFinding", "detect_skew", "DriftReport", "model_drift"]


def _least_squares_slope(values: Sequence[float]) -> float:
    """Slope of the best-fit line through (0, v0), (1, v1), ... ."""
    n = len(values)
    if n < 2:
        return 0.0
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    num = sum((i - mean_x) * (v - mean_y) for i, v in enumerate(values))
    den = sum((i - mean_x) ** 2 for i in range(n))
    return num / den if den else 0.0


# ------------------------------------------------------------------ #
# Skew / hotspot detection
# ------------------------------------------------------------------ #
@dataclass(frozen=True)
class SkewFinding:
    """Outcome of :func:`detect_skew`."""

    detected: bool
    imbalance: float  #: max-core share / fair share; 1.0 = perfect
    hot_core: int
    max_share: float
    fair_share: float
    threshold: float
    #: Per-window slope of the hot core's share: >0 means the hotspot is
    #: still growing, <0 means it is dissipating.
    trend: float
    per_window_imbalance: tuple[float, ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "detected": self.detected,
            "imbalance": self.imbalance,
            "hot_core": self.hot_core,
            "max_share": self.max_share,
            "fair_share": self.fair_share,
            "threshold": self.threshold,
            "trend": self.trend,
            "per_window_imbalance": list(self.per_window_imbalance),
        }


def detect_skew(
    sink: TelemetrySink,
    *,
    metric: str = "packets",
    threshold: float = 1.5,
) -> SkewFinding:
    """Flag a hot core when its share exceeds ``threshold`` × fair share."""
    totals = sink.core_totals(metric)
    n_cores = len(totals)
    whole = sum(totals)
    if not n_cores or not whole:
        return SkewFinding(
            detected=False, imbalance=0.0, hot_core=-1, max_share=0.0,
            fair_share=0.0, threshold=threshold, trend=0.0,
        )
    fair = 1.0 / n_cores
    hot_core = max(range(n_cores), key=lambda c: totals[c])
    max_share = totals[hot_core] / whole
    imbalance = max_share / fair

    # Window-resolved view: the hot core's share per window (for the
    # trend) and the per-window imbalance series (for reports).
    hot_shares: list[float] = []
    per_window: list[float] = []
    for row in sink.series(metric):
        window_total = sum(row)
        if not window_total:
            continue
        hot_shares.append(row[hot_core] / window_total)
        per_window.append(max(row) / window_total / fair)
    return SkewFinding(
        detected=imbalance > threshold,
        imbalance=imbalance,
        hot_core=hot_core,
        max_share=max_share,
        fair_share=fair,
        threshold=threshold,
        trend=_least_squares_slope(hot_shares),
        per_window_imbalance=tuple(per_window),
    )


# ------------------------------------------------------------------ #
# Model-drift validation
# ------------------------------------------------------------------ #
@dataclass(frozen=True)
class DriftReport:
    """Outcome of :func:`model_drift`: does the perf model still match?"""

    score: float  #: 0 = model matches observation, 1 = maximal drift
    drifted: bool
    threshold: float
    share_distance: float  #: total-variation distance of per-core shares
    predicted_shares: tuple[float, ...]
    observed_shares: tuple[float, ...]
    write_fraction_gap: float | None = None
    predicted_bottleneck: str = ""
    components: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "score": self.score,
            "drifted": self.drifted,
            "threshold": self.threshold,
            "share_distance": self.share_distance,
            "predicted_shares": list(self.predicted_shares),
            "observed_shares": list(self.observed_shares),
            "write_fraction_gap": self.write_fraction_gap,
            "predicted_bottleneck": self.predicted_bottleneck,
            "components": dict(self.components),
        }


def model_drift(
    predicted_shares: Sequence[float],
    observed_shares: Sequence[float],
    *,
    predicted_write_fraction: float | None = None,
    observed_write_fraction: float | None = None,
    predicted_bottleneck: str = "",
    threshold: float = 0.15,
) -> DriftReport:
    """Score how far observation drifted from the model's prediction.

    ``score = 0.5 * TV(shares) + 0.5 * |Δ write_fraction|`` clamped to
    [0, 1]; when either write fraction is unknown the share term carries
    full weight.  Total-variation distance is ½ Σ|p_c − q_c| — 0 when the
    model nailed the per-core split, approaching 1 when it predicted
    uniform and one core took everything.
    """
    n = max(len(predicted_shares), len(observed_shares))
    if n == 0:
        raise ValueError("drift needs at least one core share")
    pred = list(predicted_shares) + [0.0] * (n - len(predicted_shares))
    seen = list(observed_shares) + [0.0] * (n - len(observed_shares))
    tv = 0.5 * sum(abs(p - q) for p, q in zip(pred, seen))

    components = {"share_distance": tv}
    wf_gap: float | None = None
    if predicted_write_fraction is not None and observed_write_fraction is not None:
        wf_gap = abs(predicted_write_fraction - observed_write_fraction)
        components["write_fraction_gap"] = wf_gap
        score = 0.5 * tv + 0.5 * wf_gap
    else:
        score = tv
    score = max(0.0, min(1.0, score))
    return DriftReport(
        score=score,
        drifted=score > threshold,
        threshold=threshold,
        share_distance=tv,
        predicted_shares=tuple(pred),
        observed_shares=tuple(seen),
        write_fraction_gap=wf_gap,
        predicted_bottleneck=predicted_bottleneck,
        components=components,
    )
