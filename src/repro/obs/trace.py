"""The tracer: nested spans, counters, and histograms.

Zero-dependency by design (stdlib only — enforced by a lint-guard test):
instrumentation lives inside hot pipeline code, so this module must never
drag heavyweight imports into `repro.symbex` or `repro.nf.runtime`.

The tracer is a process-wide singleton with a *collector stack*.  When no
collector is attached every entry point returns immediately (``span``
hands back a shared no-op context manager), so instrumentation is safe to
leave enabled everywhere.  When one or more collectors are attached,
events fan out to all of them:

>>> from repro import obs
>>> collector = obs.MemoryCollector()
>>> with obs.attached(collector):
...     with obs.span("stage", nf="fw") as sp:
...         sp.set("paths", 12)
...     obs.counter("symbex.paths", 12, nf="fw")
>>> collector.summary()["spans"]["stage"]["count"]
1

Span parent/child links are tracked per thread (a thread-local stack), so
concurrent pipelines don't corrupt each other's nesting.  Wall-clock start
times come from ``time.time`` (for cross-process alignment); durations
from the monotonic ``time.perf_counter`` (immune to clock steps).
"""

from __future__ import annotations

import functools
import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Protocol, TypeVar

__all__ = [
    "SpanRecord",
    "Collector",
    "Tracer",
    "span",
    "counter",
    "histogram",
    "traced",
    "attach",
    "detach",
    "attached",
    "active_collectors",
    "enabled",
    "get_tracer",
]

F = TypeVar("F", bound=Callable[..., Any])


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as delivered to collectors."""

    name: str
    span_id: int
    parent_id: int | None
    depth: int
    start_unix: float
    duration_s: float
    attrs: dict[str, Any] = field(default_factory=dict)


class Collector(Protocol):
    """Anything that can receive trace events (memory buffer, JSONL file)."""

    def on_span(self, record: SpanRecord) -> None: ...

    def on_counter(self, name: str, value: int, attrs: dict[str, Any]) -> None: ...

    def on_histogram(self, name: str, value: float, attrs: dict[str, Any]) -> None: ...


class _NoopSpan:
    """Shared, stateless stand-in when no collector is attached."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _SpanHandle:
    """A live span: context manager that reports itself on exit."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "depth", "attrs",
                 "_start_unix", "_start_mono")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: int | None,
        depth: int,
        attrs: dict[str, Any],
    ):
        self._tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.attrs = attrs
        self._start_unix = 0.0
        self._start_mono = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute on the span."""
        self.attrs[key] = value

    def __enter__(self) -> "_SpanHandle":
        self._tracer._push(self)
        self._start_unix = time.time()
        self._start_mono = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        duration = time.perf_counter() - self._start_mono
        self._tracer._pop(self)
        self._tracer._dispatch_span(
            SpanRecord(
                name=self.name,
                span_id=self.span_id,
                parent_id=self.parent_id,
                depth=self.depth,
                start_unix=self._start_unix,
                duration_s=duration,
                attrs=dict(self.attrs),
            )
        )
        return False


class Tracer:
    """Process-wide event router with an attachable collector stack."""

    def __init__(self) -> None:
        self._collectors: list[Collector] = []
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._tls = threading.local()

    # ---------------------------------------------------------- #
    # Collector management
    # ---------------------------------------------------------- #
    def attach(self, collector: Collector) -> None:
        with self._lock:
            self._collectors.append(collector)

    def detach(self, collector: Collector) -> None:
        with self._lock:
            self._collectors.remove(collector)

    @contextmanager
    def attached(self, *collectors: Collector) -> Iterator[None]:
        """Attach collectors for the duration of a ``with`` block."""
        for collector in collectors:
            self.attach(collector)
        try:
            yield
        finally:
            for collector in collectors:
                self.detach(collector)

    @property
    def collectors(self) -> tuple[Collector, ...]:
        return tuple(self._collectors)

    def enabled(self) -> bool:
        """True when at least one collector is attached.

        The cheapest possible guard for per-packet hot paths: callers can
        skip building counter attribute dicts entirely when nothing is
        listening, instead of paying for the kwargs just to have
        :meth:`counter` drop them.
        """
        return bool(self._collectors)

    # ---------------------------------------------------------- #
    # Span stack (per thread)
    # ---------------------------------------------------------- #
    def _stack(self) -> list[_SpanHandle]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _push(self, handle: _SpanHandle) -> None:
        self._stack().append(handle)

    def _pop(self, handle: _SpanHandle) -> None:
        stack = self._stack()
        if stack and stack[-1] is handle:
            stack.pop()
        elif handle in stack:  # tolerate out-of-order exits
            stack.remove(handle)

    def current_span(self) -> _SpanHandle | None:
        stack = self._stack()
        return stack[-1] if stack else None

    # ---------------------------------------------------------- #
    # Event entry points
    # ---------------------------------------------------------- #
    def span(self, name: str, **attrs: Any) -> "_SpanHandle | _NoopSpan":
        if not self._collectors:
            return _NOOP_SPAN
        parent = self.current_span()
        return _SpanHandle(
            tracer=self,
            name=name,
            span_id=next(self._ids),
            parent_id=None if parent is None else parent.span_id,
            depth=0 if parent is None else parent.depth + 1,
            attrs=attrs,
        )

    def counter(self, name: str, value: int = 1, **attrs: Any) -> None:
        if not self._collectors:
            return
        for collector in self._collectors:
            collector.on_counter(name, value, attrs)

    def histogram(self, name: str, value: float, **attrs: Any) -> None:
        if not self._collectors:
            return
        for collector in self._collectors:
            collector.on_histogram(name, value, attrs)

    def _dispatch_span(self, record: SpanRecord) -> None:
        for collector in self._collectors:
            collector.on_span(record)


_DEFAULT = Tracer()


def get_tracer() -> Tracer:
    """The process-wide tracer behind the module-level helpers."""
    return _DEFAULT


def span(name: str, **attrs: Any) -> "_SpanHandle | _NoopSpan":
    """Open a span (use as ``with obs.span("stage", nf="fw") as sp:``)."""
    return _DEFAULT.span(name, **attrs)


def counter(name: str, value: int = 1, **attrs: Any) -> None:
    """Add ``value`` to the counter ``name`` (attrs distinguish streams)."""
    _DEFAULT.counter(name, value, **attrs)


def histogram(name: str, value: float, **attrs: Any) -> None:
    """Record one observation of ``name`` (aggregated to p50/p95/max)."""
    _DEFAULT.histogram(name, value, **attrs)


def traced(name: str | None = None, **attrs: Any) -> Callable[[F], F]:
    """Decorator form of :func:`span`; defaults to the qualified name."""

    def decorate(fn: F) -> F:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with _DEFAULT.span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def attach(collector: Collector) -> None:
    """Attach a collector until :func:`detach` (prefer :func:`attached`)."""
    _DEFAULT.attach(collector)


def detach(collector: Collector) -> None:
    _DEFAULT.detach(collector)


def attached(*collectors: Collector):
    """``with obs.attached(collector):`` — scoped attach/detach."""
    return _DEFAULT.attached(*collectors)


def active_collectors() -> tuple[Collector, ...]:
    return _DEFAULT.collectors


def enabled() -> bool:
    """True when any collector is attached to the process-wide tracer."""
    return _DEFAULT.enabled()
