"""``repro.obs``: spans, counters, and structured trace export.

The pipeline's unified instrumentation layer.  Zero dependencies beyond
the stdlib (a lint-guard test enforces this), a no-op fast path when no
collector is attached, and a JSONL schema shared by the live tracer, the
exporter, and the ``python -m repro.obs report`` CLI.

Typical use::

    from repro import obs

    with obs.JsonlCollector("trace.jsonl") as collector:
        with obs.attached(collector):
            result = Maestro().analyze(Firewall())

    print(obs.render_trace("trace.jsonl"))

Every :class:`repro.core.MaestroResult` also carries its own
:class:`MemoryCollector` under ``result.trace`` — stage timings, symbex
path counters, and RS3 key-search counters are recorded per run whether
or not a global collector is attached.
"""

from repro.obs.collect import MemoryCollector, percentile
from repro.obs.export import JsonlCollector, load_trace, read_events
from repro.obs.report import render_collector, render_trace
from repro.obs.trace import (
    Collector,
    SpanRecord,
    Tracer,
    active_collectors,
    attach,
    attached,
    counter,
    detach,
    enabled,
    get_tracer,
    histogram,
    span,
    traced,
)

__all__ = [
    "Collector",
    "SpanRecord",
    "Tracer",
    "MemoryCollector",
    "JsonlCollector",
    "span",
    "counter",
    "histogram",
    "traced",
    "attach",
    "detach",
    "attached",
    "active_collectors",
    "enabled",
    "get_tracer",
    "percentile",
    "load_trace",
    "read_events",
    "render_collector",
    "render_trace",
]
