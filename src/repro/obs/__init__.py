"""``repro.obs``: spans, counters, telemetry series, and trace export.

The pipeline's unified instrumentation layer.  Zero dependencies beyond
the stdlib (a lint-guard test enforces this), a no-op fast path when no
collector is attached, and a JSONL schema shared by the live tracer, the
exporter, and the ``python -m repro.obs report`` CLI.

Typical use::

    from repro import obs

    with obs.JsonlCollector("trace.jsonl") as collector:
        with obs.attached(collector):
            result = Maestro().analyze(Firewall())

    print(obs.render_trace("trace.jsonl"))

Every :class:`repro.core.MaestroResult` also carries its own
:class:`MemoryCollector` under ``result.trace`` — stage timings, symbex
path counters, and RS3 key-search counters are recorded per run whether
or not a global collector is attached.

The *telemetry plane* (:mod:`repro.obs.telemetry`) adds windowed per-core
time-series on top: attach a :class:`TelemetrySink` around a functional
run and the simulator streams per-core packets/ops/lock-waits into
fixed-size packet-count windows::

    sink = obs.TelemetrySink(window_packets=256)
    with obs.telemetry(sink):
        run_functional(parallel, trace)
    print(obs.render_top(sink))

:mod:`repro.obs.detect` turns sinks into verdicts (skew findings, perf
model drift scores) and :mod:`repro.obs.flight` keeps a ring of recent
per-packet events for failure forensics.
"""

from repro.obs.collect import MemoryCollector, percentile
from repro.obs.detect import DriftReport, SkewFinding, detect_skew, model_drift
from repro.obs.export import (
    JsonlCollector,
    load_telemetry,
    load_trace,
    read_events,
    render_prometheus,
    write_telemetry,
)
from repro.obs.flight import FlightRecorder, flow_fingerprint
from repro.obs.report import (
    render_collector,
    render_timeline,
    render_top,
    render_trace,
)
from repro.obs.telemetry import (
    METRICS,
    TelemetrySink,
    Window,
    active_telemetry,
    attach_telemetry,
    detach_telemetry,
    telemetry,
    telemetry_enabled,
)
from repro.obs.trace import (
    Collector,
    SpanRecord,
    Tracer,
    active_collectors,
    attach,
    attached,
    counter,
    detach,
    enabled,
    get_tracer,
    histogram,
    span,
    traced,
)

__all__ = [
    "Collector",
    "SpanRecord",
    "Tracer",
    "MemoryCollector",
    "JsonlCollector",
    "span",
    "counter",
    "histogram",
    "traced",
    "attach",
    "detach",
    "attached",
    "active_collectors",
    "enabled",
    "get_tracer",
    "percentile",
    "load_trace",
    "read_events",
    "render_collector",
    "render_trace",
    # Telemetry plane
    "METRICS",
    "TelemetrySink",
    "Window",
    "telemetry",
    "attach_telemetry",
    "detach_telemetry",
    "active_telemetry",
    "telemetry_enabled",
    "FlightRecorder",
    "flow_fingerprint",
    "SkewFinding",
    "detect_skew",
    "DriftReport",
    "model_drift",
    "write_telemetry",
    "load_telemetry",
    "render_prometheus",
    "render_top",
    "render_timeline",
]
