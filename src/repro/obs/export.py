"""Structured JSONL export and re-import of traces.

One JSON object per line.  Event kinds (``kind`` field):

``meta``
    First line of every file: ``{"kind": "meta", "schema": 1,
    "created_unix": ...}``.
``span``
    ``{"kind": "span", "name", "id", "parent", "depth", "ts",
    "dur_s", "attrs"}`` — emitted as each span closes (children before
    parents, so a file replays bottom-up).
``counter``
    ``{"kind": "counter", "name", "value", "attrs"}`` — aggregated
    per ``(name, attrs)`` stream and flushed on :meth:`JsonlCollector.close`
    so per-packet increments don't bloat the file.
``histogram``
    ``{"kind": "histogram", "name", "value", "attrs"}`` — streamed
    as observed (histogram volumes are small).

``load_trace`` replays a file into a :class:`MemoryCollector`, so
aggregation code (``summary()``, the report CLI) is shared between live
and exported traces.
"""

from __future__ import annotations

import json
import time
from typing import Any, Iterator, TextIO

from repro.obs.collect import MemoryCollector
from repro.obs.telemetry import METRICS, TelemetrySink
from repro.obs.trace import SpanRecord

__all__ = [
    "SCHEMA_VERSION",
    "TELEMETRY_SCHEMA_VERSION",
    "JsonlCollector",
    "read_events",
    "load_trace",
    "write_telemetry",
    "load_telemetry",
    "render_prometheus",
]

SCHEMA_VERSION = 1
TELEMETRY_SCHEMA_VERSION = 1


def _clean_attrs(attrs: dict[str, Any]) -> dict[str, Any]:
    """Coerce attribute values into JSON-representable scalars."""
    out: dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[str(key)] = value
        else:
            out[str(key)] = str(value)
    return out


class JsonlCollector:
    """Write trace events to a JSONL file as they happen.

    Spans and histograms stream straight to disk; counters aggregate in
    memory and flush on :meth:`close` (or ``with`` exit).  Accepts a path
    or any text file object.
    """

    def __init__(self, destination: "str | TextIO"):
        if isinstance(destination, str):
            self._file: TextIO = open(destination, "w", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = destination
            self._owns_file = False
        self._pending_counters: dict[tuple[str, tuple[tuple[str, Any], ...]], int] = {}
        self._closed = False
        self._write(
            {"kind": "meta", "schema": SCHEMA_VERSION, "created_unix": time.time()}
        )

    def _write(self, event: dict[str, Any]) -> None:
        self._file.write(json.dumps(event, separators=(",", ":")) + "\n")

    # ---------------------------------------------------------- #
    # Collector protocol
    # ---------------------------------------------------------- #
    def on_span(self, record: SpanRecord) -> None:
        self._write(
            {
                "kind": "span",
                "name": record.name,
                "id": record.span_id,
                "parent": record.parent_id,
                "depth": record.depth,
                "ts": record.start_unix,
                "dur_s": record.duration_s,
                "attrs": _clean_attrs(record.attrs),
            }
        )

    def on_counter(self, name: str, value: int, attrs: dict[str, Any]) -> None:
        key = (name, tuple(sorted(_clean_attrs(attrs).items())))
        self._pending_counters[key] = self._pending_counters.get(key, 0) + int(value)

    def on_histogram(self, name: str, value: float, attrs: dict[str, Any]) -> None:
        self._write(
            {
                "kind": "histogram",
                "name": name,
                "value": float(value),
                "attrs": _clean_attrs(attrs),
            }
        )

    # ---------------------------------------------------------- #
    # Lifecycle
    # ---------------------------------------------------------- #
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for (name, attr_items), total in sorted(self._pending_counters.items()):
            self._write(
                {
                    "kind": "counter",
                    "name": name,
                    "value": total,
                    "attrs": dict(attr_items),
                }
            )
        self._pending_counters.clear()
        self._file.flush()
        if self._owns_file:
            self._file.close()

    def __enter__(self) -> "JsonlCollector":
        return self

    def __exit__(self, *exc: Any) -> bool:
        self.close()
        return False


def read_events(path: str) -> Iterator[dict[str, Any]]:
    """Yield every event object in a JSONL trace file (meta included)."""
    with open(path, "r", encoding="utf-8") as fh:
        for line_number, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSONL ({exc})"
                ) from exc


def load_trace(path: str) -> MemoryCollector:
    """Replay a JSONL trace file into a :class:`MemoryCollector`."""
    collector = MemoryCollector()
    for event in read_events(path):
        kind = event.get("kind")
        if kind == "span":
            collector.on_span(
                SpanRecord(
                    name=event["name"],
                    span_id=event.get("id", 0),
                    parent_id=event.get("parent"),
                    depth=event.get("depth", 0),
                    start_unix=event.get("ts", 0.0),
                    duration_s=event["dur_s"],
                    attrs=dict(event.get("attrs", {})),
                )
            )
        elif kind == "counter":
            collector.on_counter(
                event["name"], event["value"], dict(event.get("attrs", {}))
            )
        elif kind == "histogram":
            collector.on_histogram(
                event["name"], event["value"], dict(event.get("attrs", {}))
            )
        elif kind == "meta":
            continue
        else:
            raise ValueError(f"{path}: unknown event kind {kind!r}")
    return collector


# ------------------------------------------------------------------ #
# Telemetry series files
#
# Same one-object-per-line JSONL discipline as traces, different kinds:
# ``telemetry-meta`` (first line: sink configuration + lifetime totals),
# one ``window`` line per ring entry, and an optional ``flight`` line
# carrying a flight-recorder snapshot.
# ------------------------------------------------------------------ #
def write_telemetry(
    path: str,
    sink: TelemetrySink,
    *,
    flight: "list[dict[str, Any]] | None" = None,
) -> None:
    """Serialize a :class:`TelemetrySink` (and optional flight snapshot)."""
    data = sink.to_dict()
    windows = data.pop("windows")
    with open(path, "w", encoding="utf-8") as fh:
        meta = {
            "kind": "telemetry-meta",
            "schema": TELEMETRY_SCHEMA_VERSION,
            "created_unix": time.time(),
            "metrics": list(METRICS),
        }
        meta.update(data)
        fh.write(json.dumps(meta, separators=(",", ":")) + "\n")
        for window in windows:
            event = {"kind": "window"}
            event.update(window)
            fh.write(json.dumps(event, separators=(",", ":")) + "\n")
        if flight:
            fh.write(
                json.dumps(
                    {"kind": "flight", "events": list(flight)},
                    separators=(",", ":"),
                )
                + "\n"
            )


def load_telemetry(path: str) -> tuple[TelemetrySink, list[dict[str, Any]]]:
    """Round-trip of :func:`write_telemetry`: ``(sink, flight_events)``."""
    meta: dict[str, Any] | None = None
    windows: list[dict[str, Any]] = []
    flight: list[dict[str, Any]] = []
    for event in read_events(path):
        kind = event.get("kind")
        if kind == "telemetry-meta":
            meta = event
        elif kind == "window":
            windows.append(event)
        elif kind == "flight":
            flight.extend(event.get("events", []))
        else:
            raise ValueError(f"{path}: unknown telemetry event kind {kind!r}")
    if meta is None:
        raise ValueError(f"{path}: missing telemetry-meta line")
    meta = dict(meta)
    meta["windows"] = windows
    return TelemetrySink.from_dict(meta), flight


def render_prometheus(sink: TelemetrySink, *, prefix: str = "repro") -> str:
    """Prometheus text exposition of a sink's lifetime per-core totals.

    One ``<prefix>_core_<metric>_total`` counter family per telemetry
    metric with a ``core`` label, plus window-plane gauges — the format
    scrapers (and humans) already know how to read.
    """
    lines: list[str] = []
    for metric in METRICS:
        family = f"{prefix}_core_{metric}_total"
        lines.append(f"# HELP {family} Per-core {metric} over the run.")
        lines.append(f"# TYPE {family} counter")
        for core_id, total in enumerate(sink.core_totals(metric)):
            lines.append(f'{family}{{core="{core_id}"}} {total}')
    gauges = (
        ("telemetry_window_packets", sink.window_packets),
        ("telemetry_windows_recorded", sink.windows_recorded),
        ("telemetry_total_packets", sink.total_packets),
    )
    for name, value in gauges:
        family = f"{prefix}_{name}"
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {value}")
    return "\n".join(lines) + "\n"
