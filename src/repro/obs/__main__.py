"""CLI: ``python -m repro.obs report <trace.jsonl>``."""

from __future__ import annotations

import argparse
import sys

from repro.obs.report import render_trace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect structured traces emitted by the Maestro pipeline.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    report = subparsers.add_parser(
        "report", help="aggregate a JSONL trace into per-stage/per-NF tables"
    )
    report.add_argument("trace", help="path to a trace.jsonl file")
    args = parser.parse_args(argv)

    if args.command == "report":
        try:
            print(render_trace(args.trace))
        except BrokenPipeError:  # e.g. `... report t.jsonl | head`
            return 0
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
