"""CLI: ``python -m repro.obs {report,top,timeline,prom} ...``.

``report`` aggregates a JSONL *trace*; ``top``/``timeline``/``prom``
render a *telemetry* series file written by
:func:`repro.obs.write_telemetry` (e.g. the ``telemetry-report``
artifacts' sibling series, or anything captured with
``obs.telemetry(sink)``).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.export import load_telemetry, load_trace, render_prometheus
from repro.obs.report import render_collector, render_timeline, render_top
from repro.obs.telemetry import METRICS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect structured traces emitted by the Maestro pipeline.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    report = subparsers.add_parser(
        "report", help="aggregate a JSONL trace into per-stage/per-NF tables"
    )
    report.add_argument("trace", help="path to a trace.jsonl file")
    report.add_argument(
        "--json",
        action="store_true",
        help="emit the MemoryCollector summary as JSON instead of tables",
    )
    top = subparsers.add_parser(
        "top", help="per-core summary table from a telemetry series file"
    )
    top.add_argument("telemetry", help="path to a telemetry.jsonl file")
    timeline = subparsers.add_parser(
        "timeline", help="window-by-window per-core series of one metric"
    )
    timeline.add_argument("telemetry", help="path to a telemetry.jsonl file")
    timeline.add_argument(
        "--metric", default="packets", choices=METRICS,
        help="which per-core metric to render (default: packets)",
    )
    prom = subparsers.add_parser(
        "prom", help="Prometheus text exposition of a telemetry series file"
    )
    prom.add_argument("telemetry", help="path to a telemetry.jsonl file")
    args = parser.parse_args(argv)

    try:
        if args.command == "report":
            collector = load_trace(args.trace)
            if args.json:
                print(json.dumps(collector.summary(), indent=2, sort_keys=True))
            else:
                print(render_collector(collector, title=args.trace))
        elif args.command == "top":
            sink, _ = load_telemetry(args.telemetry)
            print(render_top(sink))
        elif args.command == "timeline":
            sink, _ = load_telemetry(args.telemetry)
            print(render_timeline(sink, metric=args.metric))
        elif args.command == "prom":
            sink, _ = load_telemetry(args.telemetry)
            print(render_prometheus(sink), end="")
    except BrokenPipeError:  # e.g. `... report t.jsonl | head`
        return 0
    except (OSError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
