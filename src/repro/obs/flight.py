"""Flight recorder: a bounded ring of recent per-packet events.

When an equivalence check fails or the race sanitizer flags an MAE1xx
finding, the diff alone says *what* diverged but not what the cores were
doing just before.  A :class:`FlightRecorder` keeps the last-N packets'
worth of context — core id, flow fingerprint, execution-path id, and the
state ops performed — so the failure report (and the shrunk fuzz
reproducer it ends up in) ships with the tail of the run attached.

Events are plain dicts of ints/strings so a snapshot serializes straight
into reproducer JSON and survives a round-trip untouched.  The path id
interns the packet's (object, op, write) sequence: two packets that took
the same code path share an id, which makes "every packet before the
mismatch took path 0, the mismatch took path 3" readable at a glance.

Stdlib-only, like the rest of ``repro.obs``.
"""

from __future__ import annotations

import zlib
from collections import deque
from typing import Any, Iterable, Sequence

__all__ = ["FlightRecorder", "flow_fingerprint"]


def flow_fingerprint(fields: Iterable[Any]) -> int:
    """Deterministic 32-bit fingerprint of a flow key.

    ``hash()`` is salted per process, so reproducers written by one run
    would not match the next; CRC32 over the repr is stable forever.
    """
    material = "|".join(repr(f) for f in fields)
    return zlib.crc32(material.encode())


class FlightRecorder:
    """Ring buffer of the last ``capacity`` per-packet events."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive: {capacity}")
        self.capacity = int(capacity)
        self._events: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        #: Interned path signatures: op-sequence -> small id.
        self._paths: dict[tuple, int] = {}
        self.total_recorded = 0

    def __len__(self) -> int:
        return len(self._events)

    def path_id(self, ops: Sequence) -> int:
        """Small id for this packet's (obj, op, write) sequence."""
        signature = tuple((op.obj, op.op, op.write) for op in ops)
        known = self._paths.get(signature)
        if known is None:
            known = len(self._paths)
            self._paths[signature] = known
        return known

    def record(
        self,
        index: int,
        port: int,
        core: int,
        action: str,
        out_port: int | None,
        flow: Iterable[Any],
        ops: Sequence,
    ) -> None:
        """Append one packet's event (evicting the oldest when full)."""
        self._events.append(
            {
                "index": index,
                "port": port,
                "core": core,
                "action": action,
                "out_port": out_port,
                "flow_hash": flow_fingerprint(flow),
                "path_id": self.path_id(ops),
                "state_ops": [
                    f"{op.obj}.{op.op}{'!' if op.write else ''}" for op in ops
                ],
            }
        )
        self.total_recorded += 1

    def snapshot(self) -> list[dict[str, Any]]:
        """The buffered events, oldest first — JSON-ready dicts."""
        return [dict(event) for event in self._events]

    def paths(self) -> dict[int, tuple]:
        """Interned path table: id -> (obj, op, write) sequence."""
        return {pid: signature for signature, pid in self._paths.items()}

    def clear(self) -> None:
        self._events.clear()
