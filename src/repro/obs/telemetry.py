"""Per-core windowed time-series: the runtime telemetry plane.

Run-scoped aggregate counters (PR 1) answer *how much*; this module
answers *when*.  A :class:`TelemetrySink` collects fixed-size windows of
per-core activity — packets, stateful reads/writes, new flows, lock-wait
events, steering-cache hits/misses — over **virtual time**: a window
closes every ``window_packets`` processed packets, not every N wall-clock
seconds, so series from deterministic replays are themselves
deterministic and comparable across machines.

Windows land in a bounded ring (``max_windows``), keeping memory at
O(cores × windows) regardless of trace length.  The simulator feeds the
sink in *window-sized batches* (one ``record_window`` call per chunk of
the trace) rather than per packet, which is what keeps the
telemetry-enabled path inside the <5% overhead gate
(``benchmarks/bench_obs_overhead.py``).

Attachment mirrors the tracer: a module-level stack with a no-op fast
path.  Producers ask :func:`active_telemetry` once per run and skip all
telemetry work when it returns ``None``:

>>> from repro import obs
>>> sink = obs.TelemetrySink(window_packets=256)
>>> with obs.telemetry(sink):
...     run_functional(parallel, trace)          # doctest: +SKIP
>>> sink.summary()["metrics"]["packets"]["total"]  # doctest: +SKIP

Like everything in ``repro.obs`` this module is stdlib-only (enforced by
the lint-guard test): producers hand in plain sequences of ints.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

from repro.obs.collect import percentile

__all__ = [
    "METRICS",
    "Window",
    "TelemetrySink",
    "attach_telemetry",
    "detach_telemetry",
    "telemetry",
    "active_telemetry",
    "telemetry_enabled",
]

#: Per-core metrics tracked in every window, in storage order.
#: ``lock_waits`` counts write-lock acquisitions (writes to objects the
#: :class:`~repro.core.codegen.LockPlan` guards — the contended operation
#: under LOCKS/TM); ``steer_hits``/``steer_misses`` count packets
#: dispatched from vs. hashed into the flow-steering cache.
METRICS: tuple[str, ...] = (
    "packets",
    "reads",
    "writes",
    "new_flows",
    "lock_waits",
    "steer_hits",
    "steer_misses",
)

_METRIC_INDEX = {name: i for i, name in enumerate(METRICS)}


@dataclass(frozen=True)
class Window:
    """One closed window: per-core counts over ``window_packets`` of
    virtual time (the final window of a run may be shorter)."""

    index: int
    start_packet: int
    end_packet: int  #: exclusive
    cores: tuple[tuple[int, ...], ...]  #: cores[core_id][metric_index]

    @property
    def n_packets(self) -> int:
        return self.end_packet - self.start_packet

    def metric(self, name: str) -> tuple[int, ...]:
        """Per-core values of one metric in this window."""
        i = _METRIC_INDEX[name]
        return tuple(core[i] for core in self.cores)

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "start_packet": self.start_packet,
            "end_packet": self.end_packet,
            "cores": [list(core) for core in self.cores],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Window":
        return cls(
            index=int(data["index"]),
            start_packet=int(data["start_packet"]),
            end_packet=int(data["end_packet"]),
            cores=tuple(tuple(int(v) for v in core) for core in data["cores"]),
        )


class TelemetrySink:
    """Ring-buffered per-core time-series over packet-count windows."""

    def __init__(
        self,
        window_packets: int = 1024,
        max_windows: int = 256,
        label: str = "",
    ) -> None:
        if window_packets <= 0:
            raise ValueError(f"window_packets must be positive: {window_packets}")
        if max_windows <= 0:
            raise ValueError(f"max_windows must be positive: {max_windows}")
        self.window_packets = int(window_packets)
        self.max_windows = int(max_windows)
        self.label = label
        self.windows: deque[Window] = deque(maxlen=self.max_windows)
        #: Virtual-time cursor: total packets recorded, including windows
        #: already evicted from the ring.
        self.total_packets = 0
        self._next_index = 0
        self.n_cores = 0
        #: Lifetime per-core totals (survive ring eviction), so the
        #: conservation property — window sums equal run aggregates —
        #: holds even when a long run overflows ``max_windows``.
        self._totals: list[list[int]] = []

    # ---------------------------------------------------------- #
    # Ingest
    # ---------------------------------------------------------- #
    def record_window(self, per_core: Sequence[Sequence[int]]) -> Window:
        """Close one window from per-core metric rows.

        ``per_core[core_id]`` is a row of :data:`METRICS` counts for the
        chunk of trace this window covers; the window's packet extent is
        derived from the rows' ``packets`` entries.  Rows shorter than
        ``METRICS`` are zero-padded (callers that don't track every
        metric stay compatible if the list grows).
        """
        rows: list[tuple[int, ...]] = []
        for row in per_core:
            values = [int(v) for v in row]
            if len(values) > len(METRICS):
                raise ValueError(
                    f"window row has {len(values)} values for "
                    f"{len(METRICS)} metrics"
                )
            values.extend(0 for _ in range(len(METRICS) - len(values)))
            rows.append(tuple(values))
        n_packets = sum(row[_METRIC_INDEX["packets"]] for row in rows)
        window = Window(
            index=self._next_index,
            start_packet=self.total_packets,
            end_packet=self.total_packets + n_packets,
            cores=tuple(rows),
        )
        self._next_index += 1
        self.total_packets = window.end_packet
        self.n_cores = max(self.n_cores, len(rows))
        while len(self._totals) < len(rows):
            self._totals.append([0] * len(METRICS))
        for core_id, row in enumerate(rows):
            totals = self._totals[core_id]
            for i, value in enumerate(row):
                totals[i] += value
        self.windows.append(window)
        return window

    # ---------------------------------------------------------- #
    # Queries
    # ---------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self.windows)

    @property
    def windows_recorded(self) -> int:
        """Lifetime window count, including evicted windows."""
        return self._next_index

    def series(self, metric: str) -> list[list[int]]:
        """Per-window per-core values (windows still in the ring),
        zero-padded to ``n_cores`` columns."""
        i = _METRIC_INDEX[metric]
        out: list[list[int]] = []
        for window in self.windows:
            row = [core[i] for core in window.cores]
            row.extend(0 for _ in range(self.n_cores - len(row)))
            out.append(row)
        return out

    def core_totals(self, metric: str) -> list[int]:
        """Lifetime per-core totals of one metric (eviction-proof)."""
        i = _METRIC_INDEX[metric]
        return [totals[i] for totals in self._totals]

    def total(self, metric: str) -> int:
        return sum(self.core_totals(metric))

    def core_shares(self) -> list[float]:
        """Lifetime fraction of packets each core processed."""
        totals = self.core_totals("packets")
        whole = sum(totals)
        if not whole:
            return [0.0] * len(totals)
        return [t / whole for t in totals]

    def summary(self) -> dict[str, Any]:
        """Distilled series: per-metric totals plus per-core p50/p95/max
        over the windows still in the ring."""
        metrics: dict[str, Any] = {}
        for metric in METRICS:
            series = self.series(metric)
            per_core_windows: list[list[float]] = [
                [float(row[c]) for row in series] for c in range(self.n_cores)
            ]
            metrics[metric] = {
                "total": self.total(metric),
                "per_core_total": self.core_totals(metric),
                "p50": [percentile(vs, 50) for vs in per_core_windows],
                "p95": [percentile(vs, 95) for vs in per_core_windows],
                "max": [max(vs) if vs else 0.0 for vs in per_core_windows],
            }
        return {
            "label": self.label,
            "window_packets": self.window_packets,
            "max_windows": self.max_windows,
            "n_windows": len(self.windows),
            "windows_recorded": self._next_index,
            "total_packets": self.total_packets,
            "n_cores": self.n_cores,
            "metrics": metrics,
        }

    # ---------------------------------------------------------- #
    # Serialization (see repro.obs.export for the JSONL file format)
    # ---------------------------------------------------------- #
    def to_dict(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "window_packets": self.window_packets,
            "max_windows": self.max_windows,
            "total_packets": self.total_packets,
            "windows_recorded": self._next_index,
            "n_cores": self.n_cores,
            "totals": [list(row) for row in self._totals],
            "windows": [w.to_dict() for w in self.windows],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TelemetrySink":
        sink = cls(
            window_packets=int(data["window_packets"]),
            max_windows=int(data["max_windows"]),
            label=data.get("label", ""),
        )
        sink.total_packets = int(data["total_packets"])
        sink._next_index = int(data["windows_recorded"])
        sink.n_cores = int(data["n_cores"])
        sink._totals = [[int(v) for v in row] for row in data["totals"]]
        for raw in data["windows"]:
            sink.windows.append(Window.from_dict(raw))
        return sink


# ---------------------------------------------------------------- #
# Module-level attachment (mirrors the tracer's collector stack)
# ---------------------------------------------------------------- #
_SINKS: list[TelemetrySink] = []


def attach_telemetry(sink: TelemetrySink) -> None:
    """Make ``sink`` the active telemetry sink until :func:`detach_telemetry`.

    Attachment is a stack: a nested attach shadows the outer sink (only
    the innermost receives windows), and detaching restores it.
    """
    _SINKS.append(sink)


def detach_telemetry(sink: TelemetrySink) -> None:
    _SINKS.remove(sink)


@contextmanager
def telemetry(sink: TelemetrySink) -> Iterator[TelemetrySink]:
    """``with obs.telemetry(sink):`` — scoped attach/detach."""
    attach_telemetry(sink)
    try:
        yield sink
    finally:
        detach_telemetry(sink)


def active_telemetry() -> TelemetrySink | None:
    """The innermost attached sink, or ``None`` (the no-op fast path)."""
    return _SINKS[-1] if _SINKS else None


def telemetry_enabled() -> bool:
    return bool(_SINKS)
