"""In-memory collection and aggregation of trace events.

:class:`MemoryCollector` is the workhorse: the pipeline attaches one per
``Maestro.analyze`` run (so every result carries its own trace), tests
attach one to make assertions, and the report CLI replays a JSONL file
into one to aggregate it.

Counters and histograms are aggregated *on ingest* keyed by
``(name, attrs)`` — a long simulation emitting one counter increment per
stateful operation stays O(distinct streams) in memory, not O(events).
Spans are kept as a list (completion-ordered) because per-span wall times
are exactly what ``summary()`` distills into p50/p95/max.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

from repro.obs.trace import SpanRecord

__all__ = ["MemoryCollector", "percentile"]

#: Hashable key identifying one counter/histogram stream.
_StreamKey = tuple[str, tuple[tuple[str, Any], ...]]


def _stream_key(name: str, attrs: dict[str, Any]) -> _StreamKey:
    return name, tuple(sorted(attrs.items()))


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (need not be sorted)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, math.ceil(q / 100.0 * len(ordered)) - 1)
    return ordered[rank]


class MemoryCollector:
    """Buffer events in memory and aggregate them on demand."""

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self._counters: dict[_StreamKey, int] = {}
        self._histograms: dict[_StreamKey, list[float]] = {}

    # ---------------------------------------------------------- #
    # Collector protocol
    # ---------------------------------------------------------- #
    def on_span(self, record: SpanRecord) -> None:
        self.spans.append(record)

    def on_counter(self, name: str, value: int, attrs: dict[str, Any]) -> None:
        key = _stream_key(name, attrs)
        self._counters[key] = self._counters.get(key, 0) + int(value)

    def on_histogram(self, name: str, value: float, attrs: dict[str, Any]) -> None:
        self._histograms.setdefault(_stream_key(name, attrs), []).append(
            float(value)
        )

    # ---------------------------------------------------------- #
    # Queries
    # ---------------------------------------------------------- #
    def spans_named(self, name: str) -> list[SpanRecord]:
        return [record for record in self.spans if record.name == name]

    def counters(self) -> Iterator[tuple[str, dict[str, Any], int]]:
        """Every counter stream as ``(name, attrs, total)``."""
        for (name, attr_items), total in self._counters.items():
            yield name, dict(attr_items), total

    def histograms(self) -> Iterator[tuple[str, dict[str, Any], list[float]]]:
        for (name, attr_items), values in self._histograms.items():
            yield name, dict(attr_items), list(values)

    def counter_total(self, name: str, **match: Any) -> int:
        """Sum of every ``name`` stream whose attrs contain ``match``."""
        total = 0
        for stream_name, attrs, value in self.counters():
            if stream_name != name:
                continue
            if all(attrs.get(k) == v for k, v in match.items()):
                total += value
        return total

    def histogram_values(self, name: str, **match: Any) -> list[float]:
        out: list[float] = []
        for stream_name, attrs, values in self.histograms():
            if stream_name != name:
                continue
            if all(attrs.get(k) == v for k, v in match.items()):
                out.extend(values)
        return out

    def __len__(self) -> int:
        return len(self.spans) + len(self._counters) + len(self._histograms)

    # ---------------------------------------------------------- #
    # Aggregation
    # ---------------------------------------------------------- #
    def summary(self) -> dict[str, Any]:
        """Distill the trace: per-span-name p50/p95/max, counter totals,
        histogram digests."""
        span_stats: dict[str, dict[str, float]] = {}
        by_name: dict[str, list[float]] = {}
        for record in self.spans:
            by_name.setdefault(record.name, []).append(record.duration_s)
        for name, durations in by_name.items():
            span_stats[name] = {
                "count": len(durations),
                "total_s": sum(durations),
                "p50_s": percentile(durations, 50),
                "p95_s": percentile(durations, 95),
                "max_s": max(durations),
            }

        counter_totals: dict[str, int] = {}
        for name, _attrs, total in self.counters():
            counter_totals[name] = counter_totals.get(name, 0) + total

        histogram_stats: dict[str, dict[str, float]] = {}
        merged: dict[str, list[float]] = {}
        for name, _attrs, values in self.histograms():
            merged.setdefault(name, []).extend(values)
        for name, values in merged.items():
            histogram_stats[name] = {
                "count": len(values),
                "mean": sum(values) / len(values),
                "p50": percentile(values, 50),
                "p95": percentile(values, 95),
                "max": max(values),
            }

        return {
            "spans": span_stats,
            "counters": counter_totals,
            "histograms": histogram_stats,
        }
