"""The Toeplitz-based RSS hash function (§3.5, Figure 4).

The hash "works by continuously left rotating the key k while iterating
through the selected packet fields bits d.  The running 32-bit hash value
is XOR'ed with the current 32 least significant bits of the key whenever
the current bit d_i is 1."  Equivalently: bit *b* of the hash is
``XOR_i d[i] & k[i + b]`` with MSB-first bit numbering — the GF(2)-linear
form Equation (1) encodes and our key solver exploits.

Two implementations live here:

* :func:`toeplitz_hash` — the scalar per-bit reference, bit-exact with
  the Microsoft RSS verification suite (``tests/rs3/test_toeplitz.py``).
  It is the oracle every batched result is checked against.
* :func:`toeplitz_hash_batch` — the vectorized fast path: a per-key
  *window table* (one uint32 per input-bit position, cached across
  calls) turns hashing a whole trace into a NumPy bit-unpack plus an
  XOR-reduce.  ``benchmarks/bench_fastpath.py`` gates it at ≥20× the
  scalar loop on a 100k-packet trace, bit-identical to the oracle.
"""

from __future__ import annotations

import operator
from functools import lru_cache
from typing import Iterable, Sequence

import numpy as np

from repro.nf.packet import PACKET_FIELDS, Packet
from repro.rs3.fields import FieldSetOption

__all__ = [
    "toeplitz_hash",
    "toeplitz_hash_batch",
    "key_window_table",
    "hash_input",
    "hash_input_matrix",
    "hash_packet",
    "hash_packets_batch",
    "key_bit",
    "MICROSOFT_TEST_KEY",
]

#: The well-known verification key from the Microsoft RSS specification.
MICROSOFT_TEST_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)


def key_bit(key: bytes, position: int) -> int:
    """Bit ``position`` of ``key``, MSB-first (bit 0 = MSB of key[0])."""
    return (key[position // 8] >> (7 - position % 8)) & 1


def _check_window(key_bits: int, data_bits: int) -> None:
    """Every input bit needs a full 32-bit key window (|k| >= |d| + |h|).

    Without this check, input bits past ``key_bits - 32`` would shift the
    key by a negative amount and silently hash garbage; data exactly
    filling the window (``key_bits == data_bits + 32``) is the legal
    boundary and passes.
    """
    if key_bits < data_bits + 32:
        raise ValueError(
            f"key too short: {key_bits} key bits provide "
            f"{max(0, key_bits - 32)} hash windows but the input has "
            f"{data_bits} bits (need len(key)*8 >= len(data)*8 + 32)"
        )


def toeplitz_hash(key: bytes, data: bytes) -> int:
    """32-bit Toeplitz hash of ``data`` under ``key``.

    Requires ``len(key)*8 >= len(data)*8 + 32`` so every input bit has a
    full 32-bit key window (the paper's ``|k| >= |d| + |h|``).
    """
    data_bits = len(data) * 8
    key_bits = len(key) * 8
    _check_window(key_bits, data_bits)
    key_int = int.from_bytes(key, "big")
    result = 0
    for i in range(data_bits):
        if (data[i // 8] >> (7 - i % 8)) & 1:
            # 32-bit window starting at MSB-first key bit i.
            result ^= (key_int >> (key_bits - 32 - i)) & 0xFFFFFFFF
    return result


@lru_cache(maxsize=128)
def key_window_table(key: bytes) -> np.ndarray:
    """Per-key window table: entry *i* is the 32-bit key window [i, i+31].

    This is the whole Toeplitz matrix collapsed to one uint32 per input
    bit: ``h(d) = XOR_{i : d_i = 1} table[i]``.  Cached per key, so a key
    pays the unpack cost once per process no matter how many traces it
    hashes.  The returned array is read-only.
    """
    bits = np.unpackbits(np.frombuffer(key, dtype=np.uint8))
    windows = np.lib.stride_tricks.sliding_window_view(bits, 32)
    powers = (1 << np.arange(31, -1, -1, dtype=np.uint64)).astype(np.uint64)
    table = (windows.astype(np.uint64) @ powers).astype(np.uint32)
    table.setflags(write=False)
    return table


@lru_cache(maxsize=128)
def _byte_tables(key: bytes, input_bytes: int) -> np.ndarray:
    """Per-(key, width) lookup tables: ``tables[b, v]`` is the XOR of the
    windows of the bits set in byte value ``v`` at byte position ``b``.

    By GF(2) linearity the hash of a row is then just the XOR of one
    table lookup per input byte — no per-bit work at hash time at all.
    """
    windows = key_window_table(key)
    value_bits = np.unpackbits(
        np.arange(256, dtype=np.uint8)[:, np.newaxis], axis=1
    ).astype(bool)
    tables = np.zeros((input_bytes, 256), dtype=np.uint32)
    for b in range(input_bytes):
        byte_windows = windows[b * 8 : b * 8 + 8]
        selected = np.where(value_bits, byte_windows[np.newaxis, :], np.uint32(0))
        tables[b] = np.bitwise_xor.reduce(selected, axis=1)
    tables.setflags(write=False)
    return tables


def toeplitz_hash_batch(key: bytes, data_matrix: np.ndarray) -> np.ndarray:
    """Vectorized Toeplitz: hash every row of ``data_matrix`` at once.

    ``data_matrix`` is a ``(n, input_bytes)`` uint8 array — one hash
    input per row, all the same width (RSS inputs of one field option
    always are).  Returns ``(n,)`` uint32 hashes, bit-identical to
    calling :func:`toeplitz_hash` on each row.
    """
    matrix = np.ascontiguousarray(data_matrix, dtype=np.uint8)
    if matrix.ndim != 2:
        raise ValueError(
            f"data_matrix must be 2-D (n, input_bytes), got shape "
            f"{matrix.shape}"
        )
    input_bytes = matrix.shape[1]
    _check_window(len(key) * 8, input_bytes * 8)
    if matrix.shape[0] == 0 or input_bytes == 0:
        return np.zeros(matrix.shape[0], dtype=np.uint32)
    tables = _byte_tables(key, input_bytes)
    out = tables[0][matrix[:, 0]]
    for b in range(1, input_bytes):
        out ^= tables[b][matrix[:, b]]
    return out


def hash_input(pkt: Packet, option: FieldSetOption) -> bytes:
    """Extract the RSS hash input of ``pkt`` under field option ``option``."""
    out = bytearray()
    for fld in option.fields:
        out += pkt.field(fld.packet_field).to_bytes(fld.width // 8, "big")
    return bytes(out)


def hash_input_matrix(
    packets: Sequence[Packet] | Iterable[Packet], option: FieldSetOption
) -> np.ndarray:
    """Stack the hash inputs of ``packets`` into one ``(n, bytes)`` matrix.

    Row *i* equals ``hash_input(packets[i], option)``: each field column
    is pulled out of the packets once, converted to big-endian bytes in
    bulk, and concatenated in the option's layout order.
    """
    packets = list(packets)
    n = len(packets)
    columns: list[np.ndarray] = []
    for fld in option.fields:
        name = fld.packet_field
        if name not in PACKET_FIELDS:
            raise KeyError(f"unknown packet field {name!r}")
        # attrgetter + map keeps the per-packet extraction in C; this is
        # the bulk-column equivalent of Packet.field(name).
        values = np.fromiter(
            map(operator.attrgetter(name), packets), dtype=np.int64, count=n
        )
        dtype = ">u4" if fld.width == 32 else ">u2"
        columns.append(values.astype(dtype).view(np.uint8).reshape(n, -1))
    if not columns:
        return np.zeros((n, 0), dtype=np.uint8)
    return np.concatenate(columns, axis=1)


def hash_packet(key: bytes, pkt: Packet, option: FieldSetOption) -> int:
    """RSS hash of a packet: extract fields, then Toeplitz."""
    return toeplitz_hash(key, hash_input(pkt, option))


def hash_packets_batch(
    key: bytes, packets: Sequence[Packet], option: FieldSetOption
) -> np.ndarray:
    """RSS hashes of many packets through the vectorized fast path."""
    return toeplitz_hash_batch(key, hash_input_matrix(packets, option))
