"""The Toeplitz-based RSS hash function (§3.5, Figure 4).

The hash "works by continuously left rotating the key k while iterating
through the selected packet fields bits d.  The running 32-bit hash value
is XOR'ed with the current 32 least significant bits of the key whenever
the current bit d_i is 1."  Equivalently: bit *b* of the hash is
``XOR_i d[i] & k[i + b]`` with MSB-first bit numbering — the GF(2)-linear
form Equation (1) encodes and our key solver exploits.

This implementation is bit-exact with the Microsoft RSS verification
suite (see ``tests/rs3/test_toeplitz.py``).
"""

from __future__ import annotations

from repro.nf.packet import Packet
from repro.rs3.fields import FieldSetOption

__all__ = [
    "toeplitz_hash",
    "hash_input",
    "hash_packet",
    "key_bit",
    "MICROSOFT_TEST_KEY",
]

#: The well-known verification key from the Microsoft RSS specification.
MICROSOFT_TEST_KEY = bytes(
    [
        0x6D, 0x5A, 0x56, 0xDA, 0x25, 0x5B, 0x0E, 0xC2,
        0x41, 0x67, 0x25, 0x3D, 0x43, 0xA3, 0x8F, 0xB0,
        0xD0, 0xCA, 0x2B, 0xCB, 0xAE, 0x7B, 0x30, 0xB4,
        0x77, 0xCB, 0x2D, 0xA3, 0x80, 0x30, 0xF2, 0x0C,
        0x6A, 0x42, 0xB7, 0x3B, 0xBE, 0xAC, 0x01, 0xFA,
    ]
)


def key_bit(key: bytes, position: int) -> int:
    """Bit ``position`` of ``key``, MSB-first (bit 0 = MSB of key[0])."""
    return (key[position // 8] >> (7 - position % 8)) & 1


def toeplitz_hash(key: bytes, data: bytes) -> int:
    """32-bit Toeplitz hash of ``data`` under ``key``.

    Requires ``len(key)*8 >= len(data)*8 + 32`` so every input bit has a
    full 32-bit key window (the paper's ``|k| >= |d| + |h|``).
    """
    data_bits = len(data) * 8
    key_bits = len(key) * 8
    if key_bits < data_bits + 32:
        raise ValueError(
            f"key too short: {key_bits} bits for {data_bits} input bits"
        )
    key_int = int.from_bytes(key, "big")
    result = 0
    for i in range(data_bits):
        if (data[i // 8] >> (7 - i % 8)) & 1:
            # 32-bit window starting at MSB-first key bit i.
            result ^= (key_int >> (key_bits - 32 - i)) & 0xFFFFFFFF
    return result


def hash_input(pkt: Packet, option: FieldSetOption) -> bytes:
    """Extract the RSS hash input of ``pkt`` under field option ``option``."""
    out = bytearray()
    for fld in option.fields:
        out += pkt.field(fld.packet_field).to_bytes(fld.width // 8, "big")
    return bytes(out)


def hash_packet(key: bytes, pkt: Packet, option: FieldSetOption) -> int:
    """RSS hash of a packet: extract fields, then Toeplitz."""
    return toeplitz_hash(key, hash_input(pkt, option))
