"""RS3: the RSS configuration-finding library (§3.5).

Standalone, like the paper's C library of the same name: give it key
requirements (cancellations and field mappings) and it returns per-port
Toeplitz keys that satisfy them, plus indirection-table management.
"""

from repro.rs3.config import PortRssConfig, RssConfiguration
from repro.rs3.fields import (
    E810,
    IPV4_ONLY,
    IPV4_TCP,
    IPV4_UDP,
    NON_RSS_FIELDS,
    PERMISSIVE_NIC,
    FieldSetOption,
    NicModel,
    RssField,
)
from repro.rs3.indirection import IndirectionTable
from repro.rs3.joint import (
    JointCompilation,
    compile_joint,
    solve_joint,
    verify_joint_steering,
)
from repro.rs3.solver import CancelBits, CancelField, KeySearchStats, MapFields, RssKeySolver
from repro.rs3.toeplitz import (
    MICROSOFT_TEST_KEY,
    hash_input,
    hash_packet,
    toeplitz_hash,
)

__all__ = [
    "PortRssConfig",
    "RssConfiguration",
    "E810",
    "PERMISSIVE_NIC",
    "IPV4_ONLY",
    "IPV4_TCP",
    "IPV4_UDP",
    "NON_RSS_FIELDS",
    "FieldSetOption",
    "NicModel",
    "RssField",
    "IndirectionTable",
    "JointCompilation",
    "compile_joint",
    "solve_joint",
    "verify_joint_steering",
    "CancelBits",
    "CancelField",
    "MapFields",
    "KeySearchStats",
    "RssKeySolver",
    "MICROSOFT_TEST_KEY",
    "hash_input",
    "hash_packet",
    "toeplitz_hash",
]
