"""RS3: the RSS key solver.

Takes bit-level key requirements — *cancel this field on this port* and
*these two fields (possibly on different ports) must hash identically* —
and finds per-port Toeplitz keys satisfying all of them, exactly as the
paper's RS3 library does with Z3 (Equations (1)-(3)).

The substitution (DESIGN.md §2): because the Toeplitz hash is GF(2)-linear
in the key, ``h(k, d) == h(k', d')`` *for all* ``d, d'`` related by a
field bijection reduces to per-bit key equalities, and field cancellation
reduces to zeroing a contiguous key window.  The requirements therefore
compile to a homogeneous GF(2) linear system solved exactly; the paper's
Partial-MaxSAT densification ("set as many key bits to 1 as possible ...
seeded with random bits ... multiple parallel solvers until one is found
with an acceptable workload distribution", §4) becomes randomized sampling
of the nullspace with an identical acceptance loop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.errors import RssUnsatisfiableError
from repro.rs3.fields import FieldSetOption, NicModel, RssField
from repro.rs3.indirection import IndirectionTable
from repro.rs3.toeplitz import toeplitz_hash
from repro.solver import gf2

__all__ = ["CancelField", "CancelBits", "MapFields", "KeySearchStats", "RssKeySolver"]


@dataclass(frozen=True)
class CancelField:
    """Require that ``field``'s bits never influence ``port``'s hash.

    Needed when the NIC forces a field into the hash input that the
    sharding solution must ignore (e.g. the Policer's ports on the E810).
    """

    port: int
    field: RssField


@dataclass(frozen=True)
class CancelBits:
    """Require that specific *bits* of ``field`` never influence
    ``port``'s hash.

    The bit-granular generalization of :class:`CancelField`, used for
    prefix/subnet sharding (§3.5's Hierarchical Heavy Hitter case: shard
    on ``src_ip[31:8]`` means the low 8 bits must be cancelled while the
    prefix bits keep hashing).  ``bits`` are LSB-numbered field bit
    indices.
    """

    port: int
    field: RssField
    bits: frozenset[int]

    def __post_init__(self) -> None:
        if not self.bits:
            raise RssUnsatisfiableError("CancelBits needs at least one bit")
        if max(self.bits) >= self.field.width or min(self.bits) < 0:
            raise RssUnsatisfiableError(
                f"CancelBits out of range for {self.field.value}"
            )


@dataclass(frozen=True)
class MapFields:
    """Require ``h(k_a, d)`` to track ``field_a`` exactly as ``h(k_b, d')``
    tracks ``field_b``: whenever ``d.field_a == d'.field_b`` (and all other
    mapped/cancelled requirements hold), the two hashes agree.

    ``port_a == port_b`` with different fields expresses *same-port
    symmetry* (Woo & Park); different ports express the firewall/NAT
    cross-interface symmetry of Figure 3.
    """

    port_a: int
    field_a: RssField
    port_b: int
    field_b: RssField

    def __post_init__(self) -> None:
        if self.field_a.width != self.field_b.width:
            raise RssUnsatisfiableError(
                f"cannot map {self.field_a.value} onto {self.field_b.value}: "
                "different widths"
            )


@dataclass
class KeySearchStats:
    """Diagnostics from a key search (surfaced in Figure 6 timings and in
    ``MaestroResult.describe()``)."""

    attempts: int = 0
    constraint_rows: int = 0
    free_bits: int = 0
    rejected_quality: int = 0
    #: GF(2) rank of the compiled constraint system.
    gf2_rank: int = 0
    #: Wall time of the whole search (matrix build through acceptance).
    elapsed_s: float = 0.0


class RssKeySolver:
    """Finds per-port RSS keys satisfying cancellation/mapping requirements."""

    def __init__(
        self,
        nic: NicModel,
        port_options: dict[int, FieldSetOption],
        *,
        n_queues: int = 16,
        quality_factor: float = 2.0,
        quality_samples: int = 2048,
    ):
        self.nic = nic
        self.port_options = dict(port_options)
        self.ports = sorted(self.port_options)
        self.key_bits = nic.key_bytes * 8
        self.n_queues = n_queues
        self.quality_factor = quality_factor
        self.quality_samples = quality_samples
        self._var_base = {port: i * self.key_bits for i, port in enumerate(self.ports)}

    # -------------------------------------------------------------- #
    # Constraint matrix construction
    # -------------------------------------------------------------- #
    def _var(self, port: int, bit: int) -> int:
        if bit >= self.key_bits:
            raise RssUnsatisfiableError(
                f"key bit {bit} beyond {self.key_bits}-bit key"
            )
        return self._var_base[port] + bit

    def build_system(
        self, requirements: list["CancelField | CancelBits | MapFields"]
    ) -> np.ndarray:
        """Compile requirements to a homogeneous GF(2) system."""
        n_vars = len(self.ports) * self.key_bits
        rows: list[np.ndarray] = []

        def row_of(vars_: list[int]) -> np.ndarray:
            row = np.zeros(n_vars, dtype=np.uint8)
            for v in vars_:
                row[v] ^= 1
            return row

        # Cancellation constraints are scoped to the *table-index* hash
        # bits.  Demanding full 32-bit hash insensitivity (Equation (2)'s
        # formulation) can be physically degenerate: cancelling a field
        # zeroes every key window overlapping it, and neighbouring cancels
        # can jointly zero a wanted field's whole window (sharding on
        # src_port alone) or the low hash bits the indirection table
        # indexes (prefix sharding).  Queue colocation only needs the
        # index bits to be insensitive, which leaves the remaining key
        # freedom to spread the sharded traffic.  Field *mappings* keep
        # the full-hash formulation: it costs nothing there and keeps
        # symmetric keys independent of the table size.
        reta_bits = max(1, (self.nic.reta_size - 1).bit_length())

        def cancel_position(port: int, position: int) -> None:
            for offset in range(32 - reta_bits, 32):
                rows.append(row_of([self._var(port, position + offset)]))

        for req in requirements:
            if isinstance(req, CancelField):
                option = self.port_options[req.port]
                for position in option.bit_positions(req.field):
                    cancel_position(req.port, position)
            elif isinstance(req, CancelBits):
                option = self.port_options[req.port]
                start = option.offsets()[req.field]
                width = req.field.width
                for field_bit in req.bits:
                    # LSB field bit i sits at MSB-first input position
                    # start + (width - 1 - i).
                    cancel_position(req.port, start + (width - 1 - field_bit))
            elif isinstance(req, MapFields):
                opt_a = self.port_options[req.port_a]
                opt_b = self.port_options[req.port_b]
                pos_a = opt_a.bit_positions(req.field_a)
                pos_b = opt_b.bit_positions(req.field_b)
                span = req.field_a.width + 31
                for t in range(span):
                    var_a = self._var(req.port_a, pos_a.start + t)
                    var_b = self._var(req.port_b, pos_b.start + t)
                    if var_a == var_b:
                        continue  # identity mapping is trivially satisfied
                    rows.append(row_of([var_a, var_b]))
            else:  # pragma: no cover - type-narrowing guard
                raise TypeError(f"unknown requirement {req!r}")

        if not rows:
            return np.zeros((0, n_vars), dtype=np.uint8)
        return np.stack(rows)

    # -------------------------------------------------------------- #
    # Key extraction and quality control
    # -------------------------------------------------------------- #
    def _keys_from_solution(self, solution: np.ndarray) -> dict[int, bytes]:
        keys: dict[int, bytes] = {}
        for port in self.ports:
            base = self._var_base[port]
            bits = solution[base : base + self.key_bits]
            key_int = 0
            for bit in bits:
                key_int = (key_int << 1) | int(bit)
            keys[port] = key_int.to_bytes(self.nic.key_bytes, "big")
        return keys

    def _window_nonzero(self, key: bytes, option: FieldSetOption) -> bool:
        """The key bits that can influence hashes must not all be zero."""
        used_bits = option.input_bits + 31
        window = int.from_bytes(key, "big") >> (self.key_bits - used_bits)
        return window != 0

    def _distribution_ok(
        self,
        keys: dict[int, bytes],
        requirements: list["CancelField | CancelBits | MapFields"],
        rng: np.random.Generator,
    ) -> bool:
        """Accept keys only if random traffic spreads acceptably (§4).

        A semantically valid key can still be degenerate (the paper's
        example: only the first bit set yields two possible hashes).  We
        sample random hash inputs, vary only non-cancelled bits, and
        require the most-loaded of ``n_queues`` queues to stay under
        ``quality_factor / n_queues`` of the traffic.
        """
        table = IndirectionTable(self.n_queues, size=self.nic.reta_size)
        for port in self.ports:
            option = self.port_options[port]
            cancelled = {
                req.field
                for req in requirements
                if isinstance(req, CancelField) and req.port == port
            }
            active = [f for f in option.fields if f not in cancelled]
            if not active:
                continue  # everything cancelled: nothing to balance
            counts = np.zeros(self.n_queues, dtype=np.int64)
            for _ in range(self.quality_samples):
                data = bytearray(option.input_bytes)
                for fld in active:
                    start = option.offsets()[fld] // 8
                    width_bytes = fld.width // 8
                    data[start : start + width_bytes] = rng.bytes(width_bytes)
                queue = table.lookup(toeplitz_hash(keys[port], bytes(data)))
                counts[queue] += 1
            max_share = counts.max() / max(1, counts.sum())
            if max_share > self.quality_factor / self.n_queues:
                return False
        return True

    # -------------------------------------------------------------- #
    # Search loop
    # -------------------------------------------------------------- #
    def solve(
        self,
        requirements: list["CancelField | CancelBits | MapFields"],
        *,
        rng: np.random.Generator | None = None,
        max_attempts: int = 64,
        stats: KeySearchStats | None = None,
    ) -> dict[int, bytes]:
        """Find acceptable per-port keys; raise if none exist.

        Mirrors the paper's randomized densification loop: sample a random
        element of the solution space, reject degenerate or badly
        distributing keys, repeat.  Diagnostics (attempts, GF(2) rank,
        quality rejections, elapsed wall time) go into ``stats`` and are
        mirrored as ``rs3.*`` observability counters.
        """
        rng = rng or np.random.default_rng()
        stats = stats if stats is not None else KeySearchStats()
        start = time.perf_counter()
        with obs.span("rs3.key_search", ports=len(self.ports)) as sp:
            try:
                return self._solve(requirements, rng, max_attempts, stats)
            finally:
                stats.elapsed_s = time.perf_counter() - start
                sp.set("attempts", stats.attempts)
                obs.counter("rs3.attempts", stats.attempts)
                obs.counter("rs3.constraint_rows", stats.constraint_rows)
                obs.counter("rs3.gf2_rank", stats.gf2_rank)
                obs.counter("rs3.free_bits", stats.free_bits)
                obs.counter("rs3.rejected_quality", stats.rejected_quality)

    def _solve(
        self,
        requirements: list["CancelField | CancelBits | MapFields"],
        rng: np.random.Generator,
        max_attempts: int,
        stats: KeySearchStats,
    ) -> dict[int, bytes]:
        for port in self.ports:
            cancelled = {
                req.field
                for req in requirements
                if isinstance(req, CancelField) and req.port == port
            }
            option = self.port_options[port]
            if cancelled >= set(option.fields):
                raise RssUnsatisfiableError(
                    f"port {port}: every hashable field is cancelled — no "
                    "key can spread traffic across queues"
                )
        matrix = self.build_system(requirements)
        basis = gf2.nullspace(matrix)
        stats.constraint_rows = matrix.shape[0]
        stats.free_bits = int(basis.shape[0])
        stats.gf2_rank = int(matrix.shape[1]) - int(basis.shape[0])
        if basis.shape[0] == 0:
            raise RssUnsatisfiableError(
                "the sharding constraints admit only the all-zero key"
            )
        for attempt in range(1, max_attempts + 1):
            stats.attempts = attempt
            coeffs = rng.integers(0, 2, size=basis.shape[0], dtype=np.uint8)
            solution = (coeffs @ basis) & 1
            keys = self._keys_from_solution(solution)
            if not all(
                self._window_nonzero(keys[p], self.port_options[p])
                for p in self.ports
            ):
                continue
            if self._distribution_ok(keys, requirements, rng):
                return keys
            stats.rejected_quality += 1
        raise RssUnsatisfiableError(
            f"no acceptable key found in {max_attempts} attempts "
            "(constraints admit keys, but none distributed traffic well)"
        )

    # -------------------------------------------------------------- #
    # Verification
    # -------------------------------------------------------------- #
    def verify(
        self,
        requirements: list["CancelField | CancelBits | MapFields"],
        keys: dict[int, bytes],
        *,
        rng: np.random.Generator | None = None,
        samples: int = 256,
    ) -> None:
        """Property-check keys against the requirements on random inputs.

        Raises :class:`RssUnsatisfiableError` on the first violated sample
        (used by tests and by the pipeline's self-check).
        """
        rng = rng or np.random.default_rng(7)
        cancelled_by_port: dict[int, set[RssField]] = {p: set() for p in self.ports}
        for req in requirements:
            if isinstance(req, CancelField):
                cancelled_by_port[req.port].add(req.field)

        def random_input(port: int) -> bytearray:
            return bytearray(rng.bytes(self.port_options[port].input_bytes))

        def with_field(
            data: bytearray, port: int, fld: RssField, value: bytes
        ) -> bytearray:
            out = bytearray(data)
            start = self.port_options[port].offsets()[fld] // 8
            out[start : start + fld.width // 8] = value
            return out

        for req in requirements:
            for _ in range(samples):
                if isinstance(req, CancelField):
                    base = random_input(req.port)
                    flipped = with_field(
                        base, req.port, req.field, rng.bytes(req.field.width // 8)
                    )
                    mask = self.nic.reta_size - 1
                    if (
                        toeplitz_hash(keys[req.port], bytes(base)) & mask
                    ) != (toeplitz_hash(keys[req.port], bytes(flipped)) & mask):
                        raise RssUnsatisfiableError(
                            f"cancellation violated for {req.field.value} on "
                            f"port {req.port}"
                        )
                elif isinstance(req, CancelBits):
                    base = random_input(req.port)
                    start = self.port_options[req.port].offsets()[req.field]
                    width = req.field.width
                    flipped = bytearray(base)
                    for field_bit in req.bits:
                        position = start + (width - 1 - field_bit)
                        if rng.random() < 0.7:
                            flipped[position // 8] ^= 1 << (7 - position % 8)
                    # Scoped to the table-index bits (see build_system).
                    mask = self.nic.reta_size - 1
                    index_base = toeplitz_hash(keys[req.port], bytes(base)) & mask
                    index_flip = (
                        toeplitz_hash(keys[req.port], bytes(flipped)) & mask
                    )
                    if index_base != index_flip:
                        raise RssUnsatisfiableError(
                            f"bit cancellation violated for {req.field.value} "
                            f"on port {req.port}"
                        )
                else:
                    # Two packets agreeing on every mapped field pair (and
                    # with all non-cancelled unmapped fields equal too) must
                    # collide.  Construct d' from d via the full mapping set.
                    data_a = random_input(req.port_a)
                    data_b = random_input(req.port_b)
                    for other in requirements:
                        if not isinstance(other, MapFields):
                            continue
                        if other.port_a != req.port_a or other.port_b != req.port_b:
                            continue
                        start = (
                            self.port_options[other.port_a].offsets()[other.field_a]
                            // 8
                        )
                        value = bytes(
                            data_a[start : start + other.field_a.width // 8]
                        )
                        data_b = with_field(
                            data_b, other.port_b, other.field_b, value
                        )
                    # Queue colocation is the specification: compare the
                    # table-index bits (cancelled fields may legitimately
                    # perturb the unused high hash bits).
                    mask = self.nic.reta_size - 1
                    hash_a = toeplitz_hash(keys[req.port_a], bytes(data_a)) & mask
                    hash_b = toeplitz_hash(keys[req.port_b], bytes(data_b)) & mask
                    if hash_a != hash_b:
                        raise RssUnsatisfiableError(
                            f"mapping violated: {req.field_a.value}@{req.port_a}"
                            f" -> {req.field_b.value}@{req.port_b}"
                        )
