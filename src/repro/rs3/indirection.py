"""The RSS indirection table, with RSS++-style static balancing (§4).

The low bits of the Toeplitz hash index a table of queue identifiers.
Under uniform traffic a round-robin fill spreads load evenly; under
Zipfian traffic some entries carry elephant flows and overload their
queue.  ``balance`` implements the *static* version of the RSS++
rebalancer the paper integrated: given measured per-entry loads, it
reassigns entries (swapping from overloaded to underloaded queues) to
flatten the per-queue load — Figure 5's "balanced" series.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError

__all__ = ["IndirectionTable"]


@dataclass
class IndirectionTable:
    """Maps hash values to queue (core) identifiers."""

    n_queues: int
    size: int = 512

    def __post_init__(self) -> None:
        if self.n_queues <= 0:
            raise SimulationError("need at least one queue")
        if self.size <= 0 or self.size & (self.size - 1):
            raise SimulationError("table size must be a power of two")
        self.entries = np.arange(self.size, dtype=np.int64) % self.n_queues
        #: Bumped on every entry reassignment; steering caches key on it
        #: so a rebalance invalidates previously cached flow->core maps.
        self.generation = 0

    def lookup(self, hash_value: int) -> int:
        """Queue id for a 32-bit RSS hash."""
        return int(self.entries[hash_value & (self.size - 1)])

    def lookup_many(self, hashes: np.ndarray) -> np.ndarray:
        return self.entries[np.asarray(hashes) & (self.size - 1)]

    def steer_batch(self, hashes: np.ndarray) -> np.ndarray:
        """Vectorized hashes -> table slots -> queues for a whole trace.

        The batched twin of :meth:`lookup`: masks every 32-bit hash down
        to its table slot and gathers the queue ids in one shot.  Returns
        an int64 array the same length as ``hashes``.
        """
        return self.entries[np.asarray(hashes, dtype=np.int64) & (self.size - 1)]

    def reprogram(self, entries: np.ndarray) -> int:
        """Install a full replacement entry array (elastic re-sharding).

        The incremental RETA reprogramming primitive: the elastic-scaling
        controller computes a target assignment off to the side, migrates
        state bucket-by-bucket, then commits the new table in one shot.
        The generation is bumped **iff** at least one entry actually
        changed — a no-op reprogram must not invalidate steering caches
        or compiled-kernel memos.  Returns the number of entries moved.
        """
        new = np.asarray(entries, dtype=np.int64)
        if new.shape != self.entries.shape:
            raise SimulationError(
                f"reprogram needs {self.entries.shape[0]} entries, "
                f"got {new.shape}"
            )
        if new.size and (new.min() < 0 or new.max() >= max(self.n_queues, new.max() + 1)):
            raise SimulationError("reprogram entries must be non-negative")
        moved = int((new != self.entries).sum())
        if moved:
            self.entries = new.copy()
            self.generation += 1
        return moved

    def retarget(self, n_queues: int) -> None:
        """Change the queue count without touching entries.

        Used by the elastic rescale: the entry array is reprogrammed
        separately (and owns the generation bump); this only records how
        many queues are active so ``queue_loads`` and round-robin helpers
        size their outputs correctly.
        """
        if n_queues <= 0:
            raise SimulationError("need at least one queue")
        self.n_queues = n_queues

    def queue_loads(self, entry_loads: np.ndarray) -> np.ndarray:
        """Per-queue load given per-entry load (e.g. packet counts)."""
        if entry_loads.shape != (self.size,):
            raise SimulationError(
                f"entry_loads must have shape ({self.size},)"
            )
        loads = np.zeros(self.n_queues, dtype=np.float64)
        np.add.at(loads, self.entries, entry_loads)
        return loads

    def rebalance(self, entry_loads: np.ndarray, max_moves: int = 8) -> int:
        """Incremental (dynamic) RSS++-style rebalancing.

        Where :meth:`balance` recomputes the whole table offline, this
        moves at most ``max_moves`` entries from the most- to the
        least-loaded queues — the bounded-migration behaviour the dynamic
        RSS++ rebalancer uses online so state migration stays cheap (§4:
        "their dynamic versions could be used to handle changes in skew
        over time").  Returns the number of entries moved.
        """
        if entry_loads.shape != (self.size,):
            raise SimulationError(
                f"entry_loads must have shape ({self.size},)"
            )
        moves = 0
        for _ in range(max_moves):
            loads = self.queue_loads(entry_loads)
            heavy = int(loads.argmax())
            light = int(loads.argmin())
            if heavy == light:
                break
            gap = loads[heavy] - loads[light]
            candidates = np.nonzero(self.entries == heavy)[0]
            if candidates.size <= 1:
                break
            # Move the heaviest entry that still shrinks the gap.
            weights = entry_loads[candidates]
            order = np.argsort(weights)[::-1]
            moved = False
            for index in order:
                entry = int(candidates[index])
                if 0 < entry_loads[entry] < gap:
                    self.entries[entry] = light
                    moves += 1
                    moved = True
                    break
            if not moved:
                break
        if moves:
            self.generation += 1
        return moves

    def balance(self, entry_loads: np.ndarray) -> None:
        """Reassign entries to flatten per-queue load (static RSS++).

        Greedy longest-processing-time assignment: walk entries from the
        heaviest down, placing each on the currently least-loaded queue.
        This is what "balanced indirection tables" means throughout the
        experiments (Figures 5 and 14).
        """
        if entry_loads.shape != (self.size,):
            raise SimulationError(
                f"entry_loads must have shape ({self.size},)"
            )
        self.generation += 1
        order = np.argsort(entry_loads)[::-1]
        loads = np.zeros(self.n_queues, dtype=np.float64)
        counts = np.zeros(self.n_queues, dtype=np.int64)
        for entry in order:
            # Least-loaded queue; tie-break on entry count to keep the
            # table useful if the measured loads were all zero.
            queue = int(np.lexsort((counts, loads))[0])
            self.entries[entry] = queue
            loads[queue] += float(entry_loads[entry])
            counts[queue] += 1
