"""RSS packet fields, hash-input layouts, and NIC capability models.

RSS hashes a NIC-selected set of packet fields (§3.5).  The *layout* of
the hash input follows the Microsoft RSS specification: for IPv4+TCP/UDP,
``src_ip ++ dst_ip ++ src_port ++ dst_port`` (12 bytes, 96 bits).

Each NIC supports only a subset of the field combinations DPDK defines
(§5, *RSS limitations*); the paper's Intel E810 cannot hash IPv4 addresses
without the L4 ports, which is why the Policer's key must *cancel out* the
port bits.  :data:`E810` models that behaviour.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import NicCapabilityError

__all__ = [
    "RssField",
    "FieldSetOption",
    "IPV4_TCP",
    "IPV4_UDP",
    "IPV4_ONLY",
    "NicModel",
    "E810",
    "PERMISSIVE_NIC",
]


class RssField(enum.Enum):
    """Packet fields RSS can feed into the Toeplitz hash."""

    SRC_IP = "src_ip"
    DST_IP = "dst_ip"
    SRC_PORT = "src_port"
    DST_PORT = "dst_port"

    @property
    def width(self) -> int:
        return 32 if self in (RssField.SRC_IP, RssField.DST_IP) else 16

    @property
    def packet_field(self) -> str:
        """The canonical :mod:`repro.nf.packet` field name."""
        return self.value


#: Packet header fields that *no* RSS field option covers (MACs, metadata).
NON_RSS_FIELDS = frozenset(
    {"src_mac", "dst_mac", "eth_type", "proto", "wire_size"}
)


@dataclass(frozen=True)
class FieldSetOption:
    """One hashable field combination, with its hash-input layout."""

    name: str
    fields: tuple[RssField, ...]

    @property
    def input_bits(self) -> int:
        return sum(f.width for f in self.fields)

    @property
    def input_bytes(self) -> int:
        return self.input_bits // 8

    def offsets(self) -> dict[RssField, int]:
        """MSB-first bit offset of each field within the hash input."""
        out: dict[RssField, int] = {}
        offset = 0
        for fld in self.fields:
            out[fld] = offset
            offset += fld.width
        return out

    def bit_positions(self, fld: RssField) -> range:
        """The hash-input bit positions covered by ``fld``."""
        start = self.offsets()[fld]
        return range(start, start + fld.width)


IPV4_TCP = FieldSetOption(
    "ipv4_tcp",
    (RssField.SRC_IP, RssField.DST_IP, RssField.SRC_PORT, RssField.DST_PORT),
)
IPV4_UDP = FieldSetOption(
    "ipv4_udp",
    (RssField.SRC_IP, RssField.DST_IP, RssField.SRC_PORT, RssField.DST_PORT),
)
IPV4_ONLY = FieldSetOption("ipv4_only", (RssField.SRC_IP, RssField.DST_IP))


@dataclass(frozen=True)
class NicModel:
    """What the NIC's RSS engine can do.

    ``key_bytes`` is 52 for the Intel E810 (footnote 3 of the paper);
    ``reta_size`` is the indirection-table length.
    """

    name: str
    options: tuple[FieldSetOption, ...]
    key_bytes: int = 52
    reta_size: int = 512
    max_queues: int = 64

    def best_option_for(self, fields: frozenset[RssField]) -> FieldSetOption:
        """The smallest supported option covering ``fields``.

        Raises :class:`NicCapabilityError` when no option covers them —
        the situation rule R4 reports for MAC-keyed state.
        """
        candidates = [
            opt for opt in self.options if fields <= frozenset(opt.fields)
        ]
        if not candidates:
            raise NicCapabilityError(
                f"{self.name}: no RSS field option covers "
                f"{sorted(f.value for f in fields)}"
            )
        return min(candidates, key=lambda opt: opt.input_bits)

    def supports_exactly(self, fields: frozenset[RssField]) -> bool:
        return any(frozenset(opt.fields) == fields for opt in self.options)


#: The paper's NIC: IPv4 hashing only together with L4 ports.
E810 = NicModel("intel-e810", options=(IPV4_TCP, IPV4_UDP))

#: A hypothetical NIC that also supports IP-only hashing (for ablations).
PERMISSIVE_NIC = NicModel(
    "permissive", options=(IPV4_TCP, IPV4_UDP, IPV4_ONLY)
)
