"""Joint RSS key search for service chains.

A chain is end-to-end shardable when one Toeplitz steering at the chain
ingress satisfies *every* hop's sharding constraints simultaneously.
The chain analysis (:mod:`repro.analysis.chain_passes`) reduces the
hops' per-port field sets to a per-chain-port intersection (sound by
the generalized R2 rule: any non-empty subset of a port's active field
set is a valid, coarser sharding) plus pair maps lifted to chain ports;
this module translates that composition into the existing GF(2)
requirement language and reuses :class:`repro.rs3.solver.RssKeySolver`
— the joint search is the same homogeneous system, just built from the
intersection of all hops' constraint sets.

``verify_joint_steering`` is the independent batch-hash check: it
steers randomly generated packet pairs related by the lifted pair maps
through the concrete :class:`~repro.rs3.config.RssConfiguration` and
demands queue colocation, catching any gap between the GF(2) model and
the installed keys/indirection tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import NicCapabilityError, RssUnsatisfiableError
from repro.core.sharding import PairMap
from repro.nf.packet import Packet
from repro.rs3.config import RssConfiguration
from repro.rs3.fields import IPV4_TCP, FieldSetOption, NicModel, RssField
from repro.rs3.solver import (
    CancelField,
    KeySearchStats,
    MapFields,
    RssKeySolver,
)

__all__ = [
    "JointCompilation",
    "compile_joint",
    "solve_joint",
    "verify_joint_steering",
]

_FIELD_BY_NAME = {f.value: f for f in RssField}


@dataclass
class JointCompilation:
    """The chain-level requirement set over the chain's ingress ports."""

    port_options: dict[int, FieldSetOption]
    requirements: list["CancelField | MapFields"] = field(default_factory=list)
    #: chain ports with no constrained hop behind them (random key)
    free_ports: list[int] = field(default_factory=list)


def compile_joint(
    chain_ports: list[int],
    joint_fields: dict[int, tuple[str, ...]],
    pairs: list[PairMap],
    nic: NicModel,
    *,
    label: str = "chain",
) -> JointCompilation:
    """Translate composed chain constraints into solver requirements.

    ``joint_fields`` maps each *constrained* chain ingress port to the
    intersection of the reachable hops' sharding field sets; ports
    absent from the dict are unconstrained.  ``pairs`` are hop pair
    maps lifted to chain ports (restricted to the joint fields).
    """
    port_options: dict[int, FieldSetOption] = {}
    requirements: list["CancelField | MapFields"] = []
    free_ports: list[int] = []

    for port in chain_ports:
        active_names = joint_fields.get(port)
        if not active_names:
            port_options[port] = IPV4_TCP
            free_ports.append(port)
            continue
        try:
            active = frozenset(_FIELD_BY_NAME[name] for name in active_names)
        except KeyError as exc:
            raise RssUnsatisfiableError(
                f"{label}: joint field {exc} is not RSS-hashable"
            ) from exc
        try:
            option = nic.best_option_for(active)
        except NicCapabilityError as exc:
            raise RssUnsatisfiableError(str(exc)) from exc
        port_options[port] = option
        for fld in option.fields:
            if fld not in active:
                requirements.append(CancelField(port, fld))

    seen: set[tuple[int, str, int, str]] = set()
    for pair in pairs:
        for name_a, name_b in pair.field_map:
            field_a = _FIELD_BY_NAME.get(name_a)
            field_b = _FIELD_BY_NAME.get(name_b)
            if field_a is None or field_b is None:
                raise RssUnsatisfiableError(
                    f"{label}: lifted pair map uses non-RSS fields "
                    f"{name_a}->{name_b}"
                )
            if pair.port_a == pair.port_b and field_a == field_b:
                continue  # identity: trivially satisfied
            key = (pair.port_a, name_a, pair.port_b, name_b)
            if key in seen:
                continue  # several hops may lift to the same mapping
            seen.add(key)
            requirements.append(
                MapFields(pair.port_a, field_a, pair.port_b, field_b)
            )

    return JointCompilation(
        port_options=port_options,
        requirements=requirements,
        free_ports=free_ports,
    )


def solve_joint(
    compilation: JointCompilation,
    nic: NicModel,
    *,
    n_queues: int = 16,
    rng: np.random.Generator | None = None,
    stats: KeySearchStats | None = None,
) -> dict[int, bytes]:
    """Solve + property-check the joint system; raise when unsatisfiable."""
    rng = rng or np.random.default_rng()
    solver = RssKeySolver(nic, compilation.port_options, n_queues=n_queues)
    keys = solver.solve(compilation.requirements, rng=rng, stats=stats)
    solver.verify(compilation.requirements, keys, rng=rng, samples=32)
    return keys


def _random_packet(rng: np.random.Generator) -> Packet:
    return Packet(
        src_ip=int(rng.integers(1, 2**32)),
        dst_ip=int(rng.integers(1, 2**32)),
        src_port=int(rng.integers(1, 2**16)),
        dst_port=int(rng.integers(1, 2**16)),
    )


def verify_joint_steering(
    rss: RssConfiguration,
    pairs: list[PairMap],
    *,
    samples: int = 256,
    seed: int = 7,
) -> None:
    """Batch-hash check of the installed configuration.

    For every lifted pair map, generate random packets on ``port_a``
    and their mapped counterparts on ``port_b`` (mapped fields copied,
    everything else independently random — the joint key must have
    cancelled it), steer both batches through the concrete keys and
    indirection tables, and require identical cores.  This is the
    steering-level complement of ``RssKeySolver.verify``: it exercises
    the exact table lookups the functional simulator uses.
    """
    rng = np.random.default_rng(seed)
    for pair in pairs:
        originals = [_random_packet(rng) for _ in range(samples)]
        partners = []
        for pkt in originals:
            partner = _random_packet(rng)
            mapped = {
                name_b: pkt.field(name_a)
                for name_a, name_b in pair.field_map
            }
            partners.append(replace(partner, **mapped))
        cores_a = rss.port_config(pair.port_a).steer_batch(originals)
        cores_b = rss.port_config(pair.port_b).steer_batch(partners)
        bad = int(np.count_nonzero(cores_a != cores_b))
        if bad:
            raise RssUnsatisfiableError(
                f"joint steering violated: {bad}/{samples} mapped packet "
                f"pairs split cores across chain ports "
                f"{pair.port_a}->{pair.port_b}"
            )
