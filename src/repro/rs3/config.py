"""Concrete RSS configurations: keys + field sets + indirection tables.

This is what the Code Generator installs on each port of the simulated
NIC: the product of the whole analysis pipeline, and the object the
functional simulator uses to steer every packet to a core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import SimulationError
from repro.nf.packet import Packet
from repro.rs3.fields import FieldSetOption
from repro.rs3.indirection import IndirectionTable
from repro.rs3.toeplitz import hash_input_matrix, hash_packet, toeplitz_hash_batch

__all__ = ["PortRssConfig", "RssConfiguration"]


@dataclass
class PortRssConfig:
    """RSS state of one NIC port."""

    port: int
    key: bytes
    option: FieldSetOption
    table: IndirectionTable

    def hash(self, pkt: Packet) -> int:
        return hash_packet(self.key, pkt, self.option)

    def hash_batch(self, packets: Sequence[Packet]) -> np.ndarray:
        """Vectorized RSS hashes of many packets arriving on this port."""
        return toeplitz_hash_batch(
            self.key, hash_input_matrix(packets, self.option)
        )

    def hash_rows(self, rows: np.ndarray) -> np.ndarray:
        """Vectorized hashes of pre-extracted ``(n, input_bytes)`` rows."""
        return toeplitz_hash_batch(self.key, rows)

    def queue_for(self, pkt: Packet) -> int:
        return self.table.lookup(self.hash(pkt))

    def steer_batch(self, packets: Sequence[Packet]) -> np.ndarray:
        """Cores for many packets: batch hash, then batch table lookup."""
        return self.table.steer_batch(self.hash_batch(packets))

    def key_hex(self) -> str:
        return self.key.hex(":")


@dataclass
class RssConfiguration:
    """Per-port RSS configuration for a whole NF deployment."""

    ports: dict[int, PortRssConfig]

    @classmethod
    def build(
        cls,
        keys: dict[int, bytes],
        options: dict[int, FieldSetOption],
        n_queues: int,
        reta_size: int = 512,
    ) -> "RssConfiguration":
        if set(keys) != set(options):
            raise SimulationError("keys and options must cover the same ports")
        return cls(
            ports={
                port: PortRssConfig(
                    port=port,
                    key=keys[port],
                    option=options[port],
                    table=IndirectionTable(n_queues, size=reta_size),
                )
                for port in keys
            }
        )

    @property
    def n_queues(self) -> int:
        return next(iter(self.ports.values())).table.n_queues

    def core_for(self, port: int, pkt: Packet) -> int:
        """The core that will process ``pkt`` arriving on ``port``."""
        return self.port_config(port).queue_for(pkt)

    def port_config(self, port: int) -> PortRssConfig:
        try:
            return self.ports[port]
        except KeyError:
            raise SimulationError(f"no RSS configuration for port {port}") from None

    def steer_trace(self, trace: Sequence[tuple[int, Packet]]) -> np.ndarray:
        """Core of every ``(port, packet)`` in ``trace``, fully batched.

        Packets are grouped per ingress port, hashed through the
        vectorized Toeplitz path, and steered through each port's
        indirection table in bulk; results come back in trace order.
        """
        cores = np.zeros(len(trace), dtype=np.int64)
        by_port: dict[int, list[int]] = {}
        for i, (port, _) in enumerate(trace):
            by_port.setdefault(port, []).append(i)
        for port, indices in by_port.items():
            config = self.port_config(port)
            packets = [trace[i][1] for i in indices]
            cores[indices] = config.steer_batch(packets)
        return cores

    @property
    def steering_generation(self) -> int:
        """Monotonic counter over every table mutation.

        Flow-steering caches (:class:`repro.sim.functional.FlowSteeringCache`)
        snapshot this value and drop their entries whenever it moves —
        rebalancing an indirection table silently remaps flows to other
        cores, so any cached dispatch decision may be stale.
        """
        return sum(config.table.generation for config in self.ports.values())

    def balance_tables(
        self, sample: list[tuple[int, Packet]]
    ) -> None:
        """Statically rebalance every port's indirection table from a
        traffic sample (the RSS++ mechanism used in Figures 5/14)."""
        for port, config in self.ports.items():
            packets = [pkt for in_port, pkt in sample if in_port == port]
            loads = np.zeros(config.table.size, dtype=np.float64)
            if packets:
                hashes = config.hash_batch(packets)
                slots = hashes.astype(np.int64) & (config.table.size - 1)
                np.add.at(loads, slots, 1.0)
            config.table.balance(loads)
