"""Concrete RSS configurations: keys + field sets + indirection tables.

This is what the Code Generator installs on each port of the simulated
NIC: the product of the whole analysis pipeline, and the object the
functional simulator uses to steer every packet to a core.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.nf.packet import Packet
from repro.rs3.fields import FieldSetOption
from repro.rs3.indirection import IndirectionTable
from repro.rs3.toeplitz import hash_packet

__all__ = ["PortRssConfig", "RssConfiguration"]


@dataclass
class PortRssConfig:
    """RSS state of one NIC port."""

    port: int
    key: bytes
    option: FieldSetOption
    table: IndirectionTable

    def hash(self, pkt: Packet) -> int:
        return hash_packet(self.key, pkt, self.option)

    def queue_for(self, pkt: Packet) -> int:
        return self.table.lookup(self.hash(pkt))

    def key_hex(self) -> str:
        return self.key.hex(":")


@dataclass
class RssConfiguration:
    """Per-port RSS configuration for a whole NF deployment."""

    ports: dict[int, PortRssConfig]

    @classmethod
    def build(
        cls,
        keys: dict[int, bytes],
        options: dict[int, FieldSetOption],
        n_queues: int,
        reta_size: int = 512,
    ) -> "RssConfiguration":
        if set(keys) != set(options):
            raise SimulationError("keys and options must cover the same ports")
        return cls(
            ports={
                port: PortRssConfig(
                    port=port,
                    key=keys[port],
                    option=options[port],
                    table=IndirectionTable(n_queues, size=reta_size),
                )
                for port in keys
            }
        )

    @property
    def n_queues(self) -> int:
        return next(iter(self.ports.values())).table.n_queues

    def core_for(self, port: int, pkt: Packet) -> int:
        """The core that will process ``pkt`` arriving on ``port``."""
        try:
            config = self.ports[port]
        except KeyError:
            raise SimulationError(f"no RSS configuration for port {port}") from None
        return config.queue_for(pkt)

    def balance_tables(
        self, sample: list[tuple[int, Packet]]
    ) -> None:
        """Statically rebalance every port's indirection table from a
        traffic sample (the RSS++ mechanism used in Figures 5/14)."""
        for port, config in self.ports.items():
            loads = np.zeros(config.table.size, dtype=np.float64)
            for in_port, pkt in sample:
                if in_port == port:
                    loads[config.hash(pkt) & (config.table.size - 1)] += 1.0
            config.table.balance(loads)
