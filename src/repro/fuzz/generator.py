"""Seeded random NF generator: well-typed programs over ``NfContext``.

The generator is grammar-based rather than mutation-based: it draws an
:class:`NfSpec` — state objects plus a per-object program block — from a
seeded RNG, renders it to Python source built exclusively from the
idioms the bundled corpus uses (``ctx.cond`` branches, literal state
names, bounded straight-line code), and compiles it into a live
:class:`~repro.nf.api.NF` subclass.  Every generated NF is therefore a
valid input to ``Maestro.analyze`` and passes ``repro.analysis lint``
with zero findings *by construction* — a generated NF that fails the
pipeline indicates a pipeline bug, which is exactly what the
differential oracle is hunting.

Shape knobs (:class:`NfShape`) bound the draw: number of state groups,
guard (branch) depth, write/read mix, capacity range, and the
probability of expiry, port asymmetry, and non-RSS-hashable keys.

Rendered source is registered with :mod:`linecache` under a
content-hashed pseudo-filename, so ``inspect.getsource`` — and with it
the AST front end of :mod:`repro.analysis` and the race sanitizer's
waiver anchoring — works on generated NFs exactly as on file-backed
ones.
"""

from __future__ import annotations

import hashlib
import linecache
from dataclasses import asdict, dataclass, replace

import numpy as np

from repro.nf.api import NF

__all__ = [
    "GuardSpec",
    "GroupSpec",
    "NfSpec",
    "NfShape",
    "SHAPES",
    "random_spec",
    "render_source",
    "build_nf",
]

#: Packet fields a generated key may shard on (RSS-hashable).
HASHABLE_KEY_FIELDS: tuple[str, ...] = (
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
)
#: Fields that force a LOCKS verdict when keyed on (not RSS-hashable).
NON_HASHABLE_KEY_FIELDS: tuple[str, ...] = ("src_mac", "proto")

#: Fields a guard may compare, with their widths.
GUARD_FIELDS: dict[str, int] = {
    "proto": 8,
    "src_port": 16,
    "dst_port": 16,
    "wire_size": 16,
}

GROUP_KINDS: tuple[str, ...] = ("flow", "plain_map", "sketch", "global")


@dataclass(frozen=True)
class GuardSpec:
    """One header-field guard wrapping a state block."""

    field: str
    op: str  # "eq" | "lt"
    value: int
    width: int
    else_drop: bool = False

    def condition(self) -> str:
        return f"ctx.{self.op}(pkt.{self.field}, ctx.const({self.value}, {self.width}))"


@dataclass(frozen=True)
class GroupSpec:
    """One stateful object group and its per-packet program block."""

    kind: str  # one of GROUP_KINDS
    prefix: str  # state-name prefix, e.g. "g0"
    key_fields: tuple[str, ...]  # empty for "global"
    capacity: int
    guards: tuple[GuardSpec, ...] = ()
    drop_on_full: bool = False  # flow: drop when allocation fails
    rejuvenate: bool = False  # flow: refresh aging timestamp on hit

    def state_names(self) -> tuple[str, ...]:
        p = self.prefix
        if self.kind == "flow":
            return (f"{p}_map", f"{p}_chain", f"{p}_vals")
        if self.kind == "plain_map":
            return (f"{p}_map",)
        if self.kind == "sketch":
            return (f"{p}_sketch",)
        return (f"{p}_total",)


@dataclass(frozen=True)
class NfSpec:
    """A complete generated NF, serializable for reproducer files."""

    seed: int
    groups: tuple[GroupSpec, ...]
    asymmetric: bool = False  # non-port-0 packets early-forward to port 0
    expire: bool = False  # expiry sweep on the first flow group
    terminal: str = "other"  # "other" | "port1" | "flood"

    @property
    def name(self) -> str:
        return f"fuzz_s{self.seed}"

    def state_names(self) -> tuple[str, ...]:
        return tuple(n for g in self.groups for n in g.state_names())

    def n_state_objects(self) -> int:
        return len(self.state_names())

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "NfSpec":
        groups = tuple(
            GroupSpec(
                kind=g["kind"],
                prefix=g["prefix"],
                key_fields=tuple(g["key_fields"]),
                capacity=int(g["capacity"]),
                guards=tuple(
                    GuardSpec(
                        field=w["field"],
                        op=w["op"],
                        value=int(w["value"]),
                        width=int(w["width"]),
                        else_drop=bool(w.get("else_drop", False)),
                    )
                    for w in g.get("guards", ())
                ),
                drop_on_full=bool(g.get("drop_on_full", False)),
                rejuvenate=bool(g.get("rejuvenate", False)),
            )
            for g in data["groups"]
        )
        return cls(
            seed=int(data["seed"]),
            groups=groups,
            asymmetric=bool(data.get("asymmetric", False)),
            expire=bool(data.get("expire", False)),
            terminal=data.get("terminal", "other"),
        )


@dataclass(frozen=True)
class NfShape:
    """Tunable knobs bounding the random draw."""

    max_groups: int = 3
    max_guard_depth: int = 1
    min_capacity: int = 64
    max_capacity: int = 512
    #: probability a group is a writing "flow" group (write/read mix)
    p_flow: float = 0.45
    p_sketch: float = 0.2
    p_global: float = 0.1
    p_guard: float = 0.5
    p_expire: float = 0.3
    p_asymmetric: float = 0.3
    p_non_hashable_key: float = 0.15
    p_drop_on_full: float = 0.4
    p_else_drop: float = 0.25


#: Named presets for the ``--shape`` CLI knob.
SHAPES: dict[str, NfShape] = {
    "small": NfShape(max_groups=2, max_guard_depth=1),
    "medium": NfShape(max_groups=3, max_guard_depth=2),
    "large": NfShape(
        max_groups=4,
        max_guard_depth=2,
        p_flow=0.55,
        p_guard=0.6,
        min_capacity=32,
    ),
}


# ------------------------------------------------------------------ #
# Random draw
# ------------------------------------------------------------------ #
def _draw_key(rng: np.random.Generator, shape: NfShape) -> tuple[str, ...]:
    if rng.random() < shape.p_non_hashable_key:
        extra = NON_HASHABLE_KEY_FIELDS[int(rng.integers(len(NON_HASHABLE_KEY_FIELDS)))]
        base = [extra]
        if rng.random() < 0.5:
            base.append(HASHABLE_KEY_FIELDS[int(rng.integers(4))])
        return tuple(dict.fromkeys(base))
    n = int(rng.integers(1, len(HASHABLE_KEY_FIELDS) + 1))
    picks = rng.choice(len(HASHABLE_KEY_FIELDS), size=n, replace=False)
    return tuple(HASHABLE_KEY_FIELDS[i] for i in sorted(picks))


def _draw_guards(rng: np.random.Generator, shape: NfShape) -> tuple[GuardSpec, ...]:
    guards: list[GuardSpec] = []
    depth = int(rng.integers(0, shape.max_guard_depth + 1))
    for _ in range(depth):
        if rng.random() >= shape.p_guard:
            continue
        fields = tuple(GUARD_FIELDS)
        name = fields[int(rng.integers(len(fields)))]
        width = GUARD_FIELDS[name]
        if name == "proto":
            op, value = "eq", int(rng.choice([6, 17]))
        elif name == "wire_size":
            op, value = "lt", int(rng.choice([128, 576, 1500]))
        else:
            op = "lt" if rng.random() < 0.7 else "eq"
            value = int(rng.choice([53, 67, 1024, 8080, 49152]))
        guards.append(
            GuardSpec(
                field=name,
                op=op,
                value=value,
                width=width,
                else_drop=bool(rng.random() < shape.p_else_drop),
            )
        )
    return tuple(guards)


def _draw_group(
    rng: np.random.Generator, shape: NfShape, index: int
) -> GroupSpec:
    roll = rng.random()
    if roll < shape.p_flow:
        kind = "flow"
    elif roll < shape.p_flow + shape.p_sketch:
        kind = "sketch"
    elif roll < shape.p_flow + shape.p_sketch + shape.p_global:
        kind = "global"
    else:
        kind = "plain_map"
    capacity = int(rng.integers(shape.min_capacity, shape.max_capacity + 1))
    return GroupSpec(
        kind=kind,
        prefix=f"g{index}",
        key_fields=() if kind == "global" else _draw_key(rng, shape),
        capacity=1 if kind == "global" else capacity,
        guards=_draw_guards(rng, shape),
        drop_on_full=bool(
            kind == "flow" and rng.random() < shape.p_drop_on_full
        ),
        rejuvenate=bool(kind == "flow" and rng.random() < 0.5),
    )


def random_spec(seed: int, shape: NfShape | str | None = None) -> NfSpec:
    """Draw a deterministic :class:`NfSpec` from ``seed``.

    ``shape`` is an :class:`NfShape` or one of the :data:`SHAPES` names.
    """
    if isinstance(shape, str):
        shape = SHAPES[shape]
    shape = shape or SHAPES["medium"]
    rng = np.random.default_rng(np.random.SeedSequence([0xF022, seed]))
    n_groups = int(rng.integers(1, shape.max_groups + 1))
    groups = tuple(_draw_group(rng, shape, i) for i in range(n_groups))
    has_flow = any(g.kind == "flow" for g in groups)
    terminal = ("other", "port1", "flood")[int(rng.choice([0, 0, 0, 1, 2]))]
    return NfSpec(
        seed=seed,
        groups=groups,
        asymmetric=bool(rng.random() < shape.p_asymmetric),
        expire=bool(has_flow and rng.random() < shape.p_expire),
        terminal=terminal,
    )


# ------------------------------------------------------------------ #
# Source rendering
# ------------------------------------------------------------------ #
def _key_expr(key_fields: tuple[str, ...]) -> str:
    inner = ", ".join(f"pkt.{f}" for f in key_fields)
    comma = "," if len(key_fields) == 1 else ""
    return f"({inner}{comma})"


def _emit_group(lines: list[str], group: GroupSpec, indent: str) -> None:
    p = group.prefix
    body_indent = indent + "    " * len(group.guards)
    for depth, guard in enumerate(group.guards):
        pad = indent + "    " * depth
        lines.append(f"{pad}if ctx.cond({guard.condition()}):")
    key = _key_expr(group.key_fields) if group.key_fields else None
    b = body_indent
    if group.kind == "flow":
        lines.append(f"{b}found, idx = ctx.map_get(\"{p}_map\", {key})")
        lines.append(f"{b}if ctx.cond(found):")
        if group.rejuvenate:
            lines.append(f"{b}    ctx.dchain_rejuvenate(\"{p}_chain\", idx)")
        lines.append(f"{b}    rec = ctx.vector_borrow(\"{p}_vals\", idx)")
        lines.append(
            f"{b}    ctx.vector_put(\"{p}_vals\", idx, "
            "{\"count\": ctx.add(rec[\"count\"], ctx.const(1, 32))})"
        )
        lines.append(f"{b}else:")
        lines.append(f"{b}    ok, idx = ctx.dchain_allocate(\"{p}_chain\")")
        lines.append(f"{b}    if ctx.cond(ok):")
        lines.append(f"{b}        ctx.map_put(\"{p}_map\", {key}, idx)")
        lines.append(
            f"{b}        ctx.vector_put(\"{p}_vals\", idx, {{\"count\": 1}})"
        )
        if group.drop_on_full:
            lines.append(f"{b}    else:")
            lines.append(f"{b}        ctx.drop()")
    elif group.kind == "plain_map":
        lines.append(f"{b}found, _val = ctx.map_get(\"{p}_map\", {key})")
        lines.append(f"{b}if ctx.cond(ctx.lnot(found)):")
        lines.append(
            f"{b}    ctx.map_put(\"{p}_map\", {key}, ctx.const(1, 32))"
        )
    elif group.kind == "sketch":
        lines.append(f"{b}ctx.sketch_fetch(\"{p}_sketch\", {key})")
        lines.append(f"{b}ctx.sketch_touch(\"{p}_sketch\", {key})")
    else:  # global
        lines.append(
            f"{b}rec = ctx.vector_borrow(\"{p}_total\", ctx.const(0, 16))"
        )
        lines.append(
            f"{b}ctx.vector_put(\"{p}_total\", ctx.const(0, 16), "
            "{\"count\": ctx.add(rec[\"count\"], ctx.const(1, 64))})"
        )
    # else-drop arms, innermost guard first
    for depth in range(len(group.guards) - 1, -1, -1):
        guard = group.guards[depth]
        if guard.else_drop:
            pad = indent + "    " * depth
            lines.append(f"{pad}else:")
            lines.append(f"{pad}    ctx.drop()")


def _emit_state(lines: list[str], spec: NfSpec) -> None:
    lines.append("    def state(self):")
    lines.append("        return [")
    for group in spec.groups:
        p = group.prefix
        cap = group.capacity
        if group.kind == "flow":
            lines.append(
                f"            StateDecl(\"{p}_map\", StateKind.MAP, {cap}),"
            )
            lines.append(
                f"            StateDecl(\"{p}_chain\", StateKind.DCHAIN, {cap}),"
            )
            lines.append(
                f"            StateDecl(\"{p}_vals\", StateKind.VECTOR, {cap}, "
                "value_layout=((\"count\", 32),)),"
            )
        elif group.kind == "plain_map":
            lines.append(
                f"            StateDecl(\"{p}_map\", StateKind.MAP, {cap}),"
            )
        elif group.kind == "sketch":
            lines.append(
                f"            StateDecl(\"{p}_sketch\", StateKind.SKETCH, {cap}),"
            )
        else:
            lines.append(
                f"            StateDecl(\"{p}_total\", StateKind.VECTOR, 1, "
                "value_layout=((\"count\", 64),)),"
            )
    lines.append("        ]")


def render_source(spec: NfSpec) -> str:
    """Python source of the NF class ``spec`` describes."""
    expire_group = next(
        (g for g in spec.groups if g.kind == "flow"), None
    ) if spec.expire else None
    lines = [
        "from repro.nf.api import NF, StateDecl, StateKind",
        "",
        "",
        "class GeneratedNF(NF):",
        f"    name = \"{spec.name}\"",
        "    ports = {\"lan\": 0, \"wan\": 1}",
    ]
    if expire_group is not None:
        lines.append("    expiration_time = 60.0")
    lines.append("")
    _emit_state(lines, spec)
    lines.append("")
    lines.append("    def process(self, ctx, port, pkt):")
    if expire_group is not None:
        p = expire_group.prefix
        lines.append(
            f"        ctx.expire_flows(\"{p}_map\", \"{p}_chain\")"
        )
    if spec.asymmetric:
        lines.append("        if port != 0:")
        lines.append("            ctx.forward(0)")
    for group in spec.groups:
        _emit_group(lines, group, "        ")
    if spec.terminal == "port1":
        lines.append("        ctx.forward(1)")
    elif spec.terminal == "flood":
        lines.append("        ctx.flood()")
    else:
        lines.append("        ctx.forward(self.other_port(port))")
    return "\n".join(lines) + "\n"


def build_nf(spec: NfSpec) -> NF:
    """Compile ``spec`` into a live NF instance.

    The rendered source is registered with :mod:`linecache` under a
    content-hashed pseudo-filename so ``inspect.getsource`` (and thus
    the static analyzer) can read generated methods; the hash keeps
    shrunk variants of the same seed from shadowing each other.
    """
    source = render_source(spec)
    digest = hashlib.blake2b(source.encode(), digest_size=8).hexdigest()
    filename = f"<repro.fuzz {spec.name} {digest}>"
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(keepends=True),
        filename,
    )
    namespace: dict = {}
    exec(compile(source, filename, "exec"), namespace)
    return namespace["GeneratedNF"]()


# ------------------------------------------------------------------ #
# Shrinking primitives (used by repro.fuzz.shrink)
# ------------------------------------------------------------------ #
def spec_reductions(spec: NfSpec):
    """Candidate one-step simplifications of ``spec``, simplest first.

    Order matters for shrink quality: dropping a whole state group is
    tried before stripping its guards, so the minimized reproducer ends
    up with as few state objects as the failure allows.
    """
    if len(spec.groups) > 1:
        for i in range(len(spec.groups)):
            yield replace(
                spec, groups=spec.groups[:i] + spec.groups[i + 1 :]
            )
    for i, group in enumerate(spec.groups):
        if group.guards:
            stripped = replace(group, guards=())
            yield replace(
                spec,
                groups=spec.groups[:i] + (stripped,) + spec.groups[i + 1 :],
            )
    if spec.expire:
        yield replace(spec, expire=False)
    if spec.asymmetric:
        yield replace(spec, asymmetric=False)
    for i, group in enumerate(spec.groups):
        simpler = replace(group, drop_on_full=False, rejuvenate=False)
        if simpler != group:
            yield replace(
                spec,
                groups=spec.groups[:i] + (simpler,) + spec.groups[i + 1 :],
            )
    if spec.terminal != "other":
        yield replace(spec, terminal="other")
