"""Fuzz session driver: corpus replay, case loop, shrink-and-save.

A :class:`FuzzSession` is one deterministic campaign:

1. replay every checked-in reproducer (``corpus_dir``) and check its
   ``expect`` semantics — regressions and silent fixes both fail the
   session before any new fuzzing happens;
2. for each case ``i`` derive a case seed from ``(seed, i)``, generate
   an NF spec and a handful of workloads, and run the differential
   oracle across every applicable strategy;
3. on a new failure, shrink it along both axes and (``save=True``)
   write the minimized reproducer into ``corpus_dir``.

Counters: ``fuzz.cases`` per oracle pass, ``fuzz.failures`` per
failing check, ``fuzz.shrink_steps`` per accepted reduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

import repro
from repro import obs
from repro.fuzz.corpus import (
    CorpusEntry,
    ReplayOutcome,
    replay_corpus,
    save_reproducer,
)
from repro.fuzz.generator import build_nf, random_spec
from repro.fuzz.oracle import run_oracle
from repro.fuzz.shrink import shrink_case
from repro.fuzz.workloads import materialize_workload, random_workload

__all__ = ["FuzzReport", "FuzzSession"]


@dataclass
class FuzzReport:
    """Everything one fuzz session did, JSON-ready."""

    seed: int
    shape: str
    runs_requested: int
    fault: str | None = None
    workload_kind: str | None = None
    cases_run: int = 0
    checks: int = 0
    rescale_checks: int = 0
    capacity_divergences: int = 0
    replay: list[ReplayOutcome] = field(default_factory=list)
    failures: list[dict] = field(default_factory=list)
    reproducers: list[str] = field(default_factory=list)
    elapsed_s: float = 0.0
    budget_exhausted: bool = False

    @property
    def replay_ok(self) -> bool:
        return all(outcome.ok for outcome in self.replay)

    @property
    def clean(self) -> bool:
        return self.replay_ok and not self.failures

    @property
    def exit_code(self) -> int:
        return 0 if self.clean else 1

    def to_dict(self) -> dict:
        return {
            "pipeline_version": repro.__version__,
            "seed": self.seed,
            "shape": self.shape,
            "runs_requested": self.runs_requested,
            "fault": self.fault,
            "workload_kind": self.workload_kind,
            "cases_run": self.cases_run,
            "checks": self.checks,
            "rescale_checks": self.rescale_checks,
            "capacity_divergences": self.capacity_divergences,
            "replay": [outcome.to_dict() for outcome in self.replay],
            "failures": self.failures,
            "reproducers": self.reproducers,
            "elapsed_s": round(self.elapsed_s, 3),
            "budget_exhausted": self.budget_exhausted,
            "clean": self.clean,
        }

    def describe(self) -> str:
        lines = [
            f"fuzz: seed={self.seed} shape={self.shape} "
            f"cases={self.cases_run}/{self.runs_requested} "
            f"checks={self.checks} "
            f"rescale_checks={self.rescale_checks} "
            f"capacity_divergences={self.capacity_divergences} "
            f"elapsed={self.elapsed_s:.1f}s"
            + (" (budget exhausted)" if self.budget_exhausted else "")
        ]
        for outcome in self.replay:
            mark = "ok" if outcome.ok else "FAIL"
            lines.append(
                f"  replay [{mark}] {outcome.entry.name}: {outcome.detail}"
            )
        for failure in self.failures:
            lines.append(
                f"  case s{failure['case_seed']} FAILED "
                f"{failure['failure']['signature']}: "
                f"{failure['failure']['detail'][:140]}"
            )
        for path in self.reproducers:
            lines.append(f"  reproducer written: {path}")
        lines.append("clean" if self.clean else "FAILURES FOUND")
        return "\n".join(lines)


@dataclass
class FuzzSession:
    """One deterministic differential-fuzzing campaign."""

    seed: int = 0
    runs: int = 50
    shape: str = "medium"
    time_budget: float | None = None  #: seconds, None = unbounded
    n_cores: int = 4
    corpus_dir: str | Path | None = "tests/fuzz_corpus"
    save: bool = True  #: write shrunk reproducers into ``corpus_dir``
    fault: str | None = None  #: inject a known bug into every case
    #: force every workload to one kind (e.g. ``"rescale"`` in the
    #: nightly elastic-scaling sweep); None keeps the random mix.
    workload_kind: str | None = None
    workloads_per_case: int = 2
    shrink: bool = True
    max_shrink_probes: int = 150
    replay: bool = True

    def case_seed(self, index: int) -> int:
        return int(
            np.random.default_rng(
                np.random.SeedSequence([0xF0CA, self.seed, index])
            ).integers(2**31)
        )

    def run(self) -> FuzzReport:
        from repro.fuzz.workloads import WORKLOAD_KINDS

        if (
            self.workload_kind is not None
            and self.workload_kind not in WORKLOAD_KINDS
        ):
            raise ValueError(
                f"unknown workload kind {self.workload_kind!r} "
                f"(known: {WORKLOAD_KINDS})"
            )
        start = time.monotonic()
        report = FuzzReport(
            seed=self.seed,
            shape=self.shape,
            runs_requested=self.runs,
            fault=self.fault,
            workload_kind=self.workload_kind,
        )
        with obs.span("fuzz.session", seed=self.seed, runs=self.runs):
            if self.replay and self.corpus_dir is not None:
                report.replay = replay_corpus(self.corpus_dir)
            for index in range(self.runs):
                if (
                    self.time_budget is not None
                    and time.monotonic() - start > self.time_budget
                ):
                    report.budget_exhausted = True
                    break
                self._run_case(report, index)
        report.elapsed_s = time.monotonic() - start
        return report

    # -------------------------------------------------------------- #
    def _run_case(self, report: FuzzReport, index: int) -> None:
        case_seed = self.case_seed(index)
        spec = random_spec(case_seed, shape=self.shape)
        wl_rng = np.random.default_rng(
            np.random.SeedSequence([0xF0AD, self.seed, index])
        )
        workloads = [
            random_workload(wl_rng) for _ in range(self.workloads_per_case)
        ]
        if self.workload_kind is not None:
            from dataclasses import replace

            workloads = [
                replace(workload, kind=self.workload_kind)
                for workload in workloads
            ]
        maestro_seed = case_seed % 100_000
        oracle = run_oracle(
            spec,
            workloads,
            n_cores=self.n_cores,
            maestro_seed=maestro_seed,
            fault=self.fault,
        )
        report.cases_run += 1
        report.checks += oracle.checks
        report.rescale_checks += oracle.rescale_checks
        report.capacity_divergences += oracle.capacity_divergences
        if obs.enabled():
            obs.counter("fuzz.cases", 1, seed=case_seed)
        if oracle.ok:
            return
        if obs.enabled():
            obs.counter("fuzz.failures", len(oracle.failures), seed=case_seed)
        for failure in oracle.failures:
            entry = {
                "case_seed": case_seed,
                "maestro_seed": maestro_seed,
                "verdict": oracle.verdict,
                "failure": failure.to_dict(),
            }
            report.failures.append(entry)
        # Shrink (and save) the first failure only: one minimized
        # reproducer per case keeps triage tractable.
        first = oracle.failures[0]
        if not self.shrink:
            return
        trace = self._failing_trace(spec, first, oracle, maestro_seed)
        if trace is None:
            return
        shrunk = shrink_case(
            spec,
            trace,
            first.signature,
            fault=self.fault,
            n_cores=self.n_cores,
            maestro_seed=maestro_seed,
            max_probes=self.max_shrink_probes,
        )
        report.failures[-len(oracle.failures)]["shrink"] = {
            "steps": shrunk.steps,
            "probes": shrunk.probes,
            "n_state_objects": shrunk.n_state_objects,
            "n_packets": len(shrunk.trace),
            "exhausted": shrunk.exhausted,
        }
        if self.save and self.corpus_dir is not None:
            corpus_entry = CorpusEntry(
                name="",
                spec=shrunk.spec,
                trace=shrunk.trace,
                signature=first.signature,
                expect="fail",
                fault=self.fault,
                seed=case_seed,
                n_cores=self.n_cores,
                maestro_seed=maestro_seed,
                failure=first.to_dict(),
                shrink={"steps": shrunk.steps, "probes": shrunk.probes},
            )
            path = save_reproducer(self.corpus_dir, corpus_entry)
            report.reproducers.append(str(path))

    def _failing_trace(self, spec, failure, oracle, maestro_seed):
        """Re-materialize the trace behind ``failure`` for shrinking."""
        from repro.core.pipeline import Maestro
        from repro.fuzz.workloads import WorkloadSpec

        if failure.workload is None:
            return None
        workload = WorkloadSpec.from_dict(failure.workload)
        guard_values = tuple(
            guard.value for group in spec.groups for guard in group.guards
        )
        min_capacity = min(group.capacity for group in spec.groups)
        rss = None
        if workload.kind == "collide":
            result = Maestro(seed=maestro_seed).analyze(build_nf(spec))
            rss = result.rss_configuration(self.n_cores)
        return materialize_workload(
            workload,
            guard_values=guard_values,
            min_capacity=min_capacity,
            rss=rss,
        )
