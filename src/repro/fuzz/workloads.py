"""Adversarial traffic synthesis for the differential oracle.

Each :class:`WorkloadSpec` names one traffic model; materialization
produces a concrete ``(port, Packet)`` trace so reproducer files can
pin the exact packets (replays must not depend on generator RNG state).

Models reuse the simulation substrate:

* ``uniform`` / ``zipf`` — :class:`repro.traffic.TrafficGenerator`,
  with symmetric replies mixed in;
* ``churn`` — :func:`repro.traffic.churn.churn_trace` burst (high
  relative churn, the Figure 9 stressor);
* ``exhaust`` — uniform traffic with several times more flows than the
  smallest state capacity, driving per-core shards into refusal (the
  §4 capacity-divergence corner);
* ``collide`` — :func:`repro.sim.attack.find_colliding_flows` aimed at
  one indirection-table entry of the generated RSS config (the §5
  attacker), so one core absorbs the whole trace;
* ``boundary`` — handcrafted extreme header values (zero/max
  addresses and ports, guard-constant neighbors, odd protocols and
  frame sizes) cycled over a small flow set;
* ``rescale`` — a churn trace layered with the elastic-scaling
  stressor: the oracle replays it with a mid-trace grow *and* shrink
  (``repro.scale``) whenever the verdict permits shared-nothing, so
  live state migration is differentially checked against the same
  sequential reference.  Materialization itself is churn traffic (the
  rescale events are the oracle's job — reproducer files pin packets,
  not controller actions).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

import numpy as np

from repro.nf.packet import PROTO_TCP, PROTO_UDP, Packet
from repro.traffic.churn import churn_trace
from repro.traffic.distributions import paper_zipf_weights
from repro.traffic.generator import Trace, TrafficGenerator

__all__ = ["WORKLOAD_KINDS", "WorkloadSpec", "materialize_workload"]

WORKLOAD_KINDS: tuple[str, ...] = (
    "uniform",
    "zipf",
    "churn",
    "exhaust",
    "collide",
    "boundary",
    "rescale",
)

#: Boundary values per 16-bit port field, mixed with guard constants.
_PORT_EDGES = (0, 1, 53, 67, 1023, 1024, 8080, 49151, 49152, 65535)
_IP_EDGES = (0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF)
_PROTO_EDGES = (0, PROTO_TCP, PROTO_UDP, 255)
_SIZE_EDGES = (64, 127, 128, 575, 576, 1499, 1500)


@dataclass(frozen=True)
class WorkloadSpec:
    """One traffic model draw, serializable for reproducer files."""

    kind: str
    seed: int
    n_packets: int = 128
    n_flows: int = 32

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadSpec":
        return cls(
            kind=data["kind"],
            seed=int(data["seed"]),
            n_packets=int(data.get("n_packets", 128)),
            n_flows=int(data.get("n_flows", 32)),
        )


def random_workload(
    rng: np.random.Generator,
    *,
    n_packets: int = 128,
    n_flows: int = 32,
) -> WorkloadSpec:
    """Draw one workload kind with a derived seed."""
    kind = WORKLOAD_KINDS[int(rng.integers(len(WORKLOAD_KINDS)))]
    return WorkloadSpec(
        kind=kind,
        seed=int(rng.integers(2**31)),
        n_packets=n_packets,
        n_flows=n_flows,
    )


def _boundary_trace(spec: WorkloadSpec, guard_values: tuple[int, ...]) -> Trace:
    rng = np.random.default_rng(spec.seed)
    ports = list(_PORT_EDGES) + [
        v & 0xFFFF for v in guard_values
    ] + [max(0, (v & 0xFFFF) - 1) for v in guard_values] + [
        (v + 1) & 0xFFFF for v in guard_values
    ]
    flows: list[Packet] = []
    for _ in range(max(4, spec.n_flows // 2)):
        flows.append(
            Packet(
                src_ip=int(rng.choice(_IP_EDGES)),
                dst_ip=int(rng.choice(_IP_EDGES)),
                src_port=int(rng.choice(ports)),
                dst_port=int(rng.choice(ports)),
                proto=int(rng.choice(_PROTO_EDGES)),
                wire_size=int(rng.choice(_SIZE_EDGES)),
            )
        )
    trace: Trace = []
    for i in range(spec.n_packets):
        pkt = flows[int(rng.integers(len(flows)))]
        in_port = int(rng.random() < 0.25)
        pkt = Packet(
            **{
                **{f: getattr(pkt, f) for f in (
                    "src_ip", "dst_ip", "src_port", "dst_port", "proto",
                    "src_mac", "dst_mac", "eth_type", "wire_size",
                )},
                "timestamp": i / 1e6,
            }
        )
        trace.append((in_port, pkt))
    return trace


def _collide_trace(spec: WorkloadSpec, rss) -> Trace:
    from repro.sim.attack import find_colliding_flows

    config = rss.port_config(0)
    attack = find_colliding_flows(
        config,
        spec.n_flows,
        rng=np.random.default_rng(spec.seed),
        max_probes=100_000,
    )
    flows = attack.flows
    if not flows:  # pathological table: fall back to uniform
        return _uniform_like(spec, weights=None)
    rng = np.random.default_rng(spec.seed + 1)
    picks = rng.integers(len(flows), size=spec.n_packets)
    return [
        (0, flows[int(p)].packet(64, i / 1e6))
        for i, p in enumerate(picks)
    ]


def _uniform_like(spec: WorkloadSpec, weights) -> Trace:
    generator = TrafficGenerator(seed=spec.seed)
    flows = generator.make_flows(spec.n_flows)
    return generator.trace(
        spec.n_packets,
        flows,
        weights=weights,
        reply_port=1,
        reply_fraction=0.25,
    )


def materialize_workload(
    spec: WorkloadSpec,
    *,
    guard_values: tuple[int, ...] = (),
    min_capacity: int | None = None,
    rss=None,
) -> Trace:
    """Build the concrete trace for ``spec``.

    ``guard_values`` (the generated NF's branch constants) seed the
    boundary model; ``min_capacity`` scales the exhaustion model;
    ``rss`` (an :class:`~repro.rs3.config.RssConfiguration`) enables the
    collision model — without it the collision workload degrades to
    uniform traffic.
    """
    if spec.kind == "uniform":
        return _uniform_like(spec, weights=None)
    if spec.kind == "zipf":
        return _uniform_like(spec, weights=paper_zipf_weights(spec.n_flows))
    if spec.kind in ("churn", "rescale"):
        # The rescale stressor is churn traffic by construction: state
        # churns while the oracle grows and shrinks the core count, so
        # migrations race flow creation/expiry.
        generator = TrafficGenerator(seed=spec.seed)
        return churn_trace(
            generator,
            spec.n_packets,
            max(8, spec.n_flows // 2),
            relative_churn_fpg=50_000.0,
        )
    if spec.kind == "exhaust":
        flows = max(spec.n_flows, 2 * (min_capacity or spec.n_flows))
        exhausted = WorkloadSpec(
            kind="uniform",
            seed=spec.seed,
            n_packets=spec.n_packets,
            n_flows=flows,
        )
        return _uniform_like(exhausted, weights=None)
    if spec.kind == "collide":
        if rss is None:
            return _uniform_like(spec, weights=None)
        return _collide_trace(spec, rss)
    if spec.kind == "boundary":
        return _boundary_trace(spec, guard_values)
    raise ValueError(f"unknown workload kind {spec.kind!r}")
