"""CLI: ``python -m repro.fuzz --seed 0 --runs 200``.

Replays the checked-in crash corpus first, then fuzzes fresh cases.
Exit codes match ``repro.analysis``: 0 when the corpus replays with
its recorded expectations and no new failure was found, 1 when any
check failed, 2 on usage mistakes.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.fuzz.generator import SHAPES
from repro.fuzz.oracle import FAULTS
from repro.fuzz.runner import FuzzSession
from repro.fuzz.workloads import WORKLOAD_KINDS


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description=(
            "Differential fuzzing of the Maestro pipeline: generated NFs "
            "× adversarial traffic × every parallelization strategy."
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default 0)"
    )
    parser.add_argument(
        "--runs", type=int, default=50, help="number of fresh cases (default 50)"
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop starting new cases after this many seconds",
    )
    parser.add_argument(
        "--shape",
        choices=sorted(SHAPES),
        default="medium",
        help="generated-NF size knobs (default medium)",
    )
    parser.add_argument(
        "--corpus",
        default="tests/fuzz_corpus",
        metavar="DIR",
        help=(
            "crash-corpus directory: replayed first, shrunk reproducers "
            "are written here (default tests/fuzz_corpus)"
        ),
    )
    parser.add_argument(
        "--no-replay",
        action="store_true",
        help="skip the corpus replay step",
    )
    parser.add_argument(
        "--no-save",
        action="store_true",
        help="don't write new reproducers into the corpus",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without minimizing them",
    )
    parser.add_argument(
        "--fault",
        choices=FAULTS,
        default=None,
        help="inject a known pipeline bug into every case (oracle self-test)",
    )
    parser.add_argument(
        "--workload",
        choices=WORKLOAD_KINDS,
        default=None,
        metavar="KIND",
        help=(
            "force every generated workload to one kind (e.g. 'rescale' "
            f"for the elastic-scaling sweep); choices: {', '.join(WORKLOAD_KINDS)}"
        ),
    )
    parser.add_argument(
        "--n-cores", type=int, default=4, help="cores per parallel build"
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="-",
        default=None,
        metavar="FILE",
        help="emit the full report as JSON (to FILE, or stdout with no arg)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.runs < 0 or args.n_cores <= 0:
        parser.print_usage(sys.stderr)
        print("error: --runs must be >= 0 and --n-cores > 0", file=sys.stderr)
        return 2
    session = FuzzSession(
        seed=args.seed,
        runs=args.runs,
        shape=args.shape,
        time_budget=args.time_budget,
        n_cores=args.n_cores,
        corpus_dir=args.corpus,
        save=not args.no_save,
        fault=args.fault,
        workload_kind=args.workload,
        shrink=not args.no_shrink,
        replay=not args.no_replay,
    )
    report = session.run()
    if (
        args.workload == "rescale"
        and args.runs > 0
        and not report.budget_exhausted
        and report.rescale_checks == 0
    ):
        # The whole point of --workload rescale is exercising live
        # migration; a campaign where the mutator never produced a
        # rescale check (every case drew a LOCKS verdict, or the check
        # was silently skipped) must not pass as green.
        print(
            "error: --workload rescale ran but zero rescale checks "
            "executed — the mutator was silently skipped",
            file=sys.stderr,
        )
        if args.json is None:
            print(report.describe())
        return 1
    if args.json is not None:
        payload = json.dumps(report.to_dict(), indent=2)
        if args.json == "-":
            print(payload)
        else:
            Path(args.json).parent.mkdir(parents=True, exist_ok=True)
            Path(args.json).write_text(payload + "\n")
            print(f"report written to {args.json}", file=sys.stderr)
            print(report.describe(), file=sys.stderr)
    else:
        print(report.describe())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
