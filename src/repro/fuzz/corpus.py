"""Crash corpus: minimized reproducers under ``tests/fuzz_corpus/``.

Each reproducer is one JSON file pinning everything a replay needs:
the NF spec (not the seed-derived shape — the *shrunk* spec), the
exact packet list, the fault-injection mode, the failure signature,
and the pipeline version that produced it.  ``expect`` records the
replay semantics:

* ``"fail"`` — the case must *still fail with the same signature*
  (green-as-failing: a reproducer that stops failing means the bug was
  fixed, and the file should be promoted to ``expect: "clean"`` or
  deleted after triage);
* ``"clean"`` — a regression test: the case must stay clean.

Replays run before any new fuzzing (`python -m repro.fuzz --corpus`),
so CI catches both regressions and silent fixes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import repro
from repro.fuzz.generator import NfSpec, render_source
from repro.fuzz.oracle import OracleReport, run_oracle
from repro.nf.packet import Packet

__all__ = [
    "CORPUS_FORMAT",
    "CorpusEntry",
    "ReplayOutcome",
    "load_corpus",
    "replay_corpus",
    "save_reproducer",
]

CORPUS_FORMAT = "repro.fuzz/1"

_PACKET_FIELDS = (
    "src_ip",
    "dst_ip",
    "src_port",
    "dst_port",
    "proto",
    "src_mac",
    "dst_mac",
    "eth_type",
    "wire_size",
    "timestamp",
)


def packet_to_dict(pkt: Packet) -> dict:
    return {name: getattr(pkt, name) for name in _PACKET_FIELDS}


def packet_from_dict(data: dict) -> Packet:
    return Packet(**{name: data[name] for name in _PACKET_FIELDS if name in data})


@dataclass
class CorpusEntry:
    """One reproducer file, fully pinned."""

    name: str
    spec: NfSpec
    trace: list  #: [(port, Packet), ...]
    signature: str
    expect: str = "fail"  #: "fail" | "clean"
    fault: str | None = None
    seed: int | None = None  #: fuzz-session case seed that found it
    n_cores: int = 4
    maestro_seed: int = 0
    pipeline_version: str = ""
    failure: dict | None = None
    shrink: dict | None = None
    nf_source: str = ""
    path: Path | None = field(default=None, repr=False)

    def to_dict(self) -> dict:
        return {
            "format": CORPUS_FORMAT,
            "name": self.name,
            "expect": self.expect,
            "signature": self.signature,
            "fault": self.fault,
            "seed": self.seed,
            "n_cores": self.n_cores,
            "maestro_seed": self.maestro_seed,
            "pipeline_version": self.pipeline_version or repro.__version__,
            "spec": self.spec.to_dict(),
            "trace": [[port, packet_to_dict(pkt)] for port, pkt in self.trace],
            "failure": self.failure,
            "shrink": self.shrink,
            "nf_source": self.nf_source,
        }

    @classmethod
    def from_dict(cls, data: dict, path: Path | None = None) -> "CorpusEntry":
        if data.get("format") != CORPUS_FORMAT:
            raise ValueError(
                f"{path or '<data>'}: unknown corpus format "
                f"{data.get('format')!r} (expected {CORPUS_FORMAT})"
            )
        return cls(
            name=data["name"],
            spec=NfSpec.from_dict(data["spec"]),
            trace=[
                (int(port), packet_from_dict(pkt))
                for port, pkt in data["trace"]
            ],
            signature=data["signature"],
            expect=data.get("expect", "fail"),
            fault=data.get("fault"),
            seed=data.get("seed"),
            n_cores=int(data.get("n_cores", 4)),
            maestro_seed=int(data.get("maestro_seed", 0)),
            pipeline_version=data.get("pipeline_version", ""),
            failure=data.get("failure"),
            shrink=data.get("shrink"),
            nf_source=data.get("nf_source", ""),
            path=path,
        )

    @property
    def flight(self) -> list[dict]:
        """The embedded flight-recorder snapshot (last-N-packets context
        captured when the recorded failure tripped), if any."""
        if not self.failure:
            return []
        return list(self.failure.get("flight", []))

    def replay(self) -> OracleReport:
        """Run the oracle on this entry's exact (spec, trace, fault)."""
        return run_oracle(
            self.spec,
            [],
            traces=[(None, list(self.trace))],
            n_cores=self.n_cores,
            maestro_seed=self.maestro_seed,
            fault=self.fault,
        )


@dataclass
class ReplayOutcome:
    """Result of replaying one corpus entry against expectations."""

    entry: CorpusEntry
    report: OracleReport
    ok: bool
    detail: str

    def to_dict(self) -> dict:
        return {
            "name": self.entry.name,
            "path": str(self.entry.path) if self.entry.path else None,
            "expect": self.entry.expect,
            "signature": self.entry.signature,
            "ok": self.ok,
            "detail": self.detail,
        }


def _slug(signature: str) -> str:
    keep = [c if c.isalnum() else "-" for c in signature.lower()]
    out = "".join(keep).strip("-")
    while "--" in out:
        out = out.replace("--", "-")
    return out or "case"


def save_reproducer(corpus_dir: str | Path, entry: CorpusEntry) -> Path:
    """Write ``entry`` to ``corpus_dir`` and return the file path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    stem = entry.name or f"{_slug(entry.signature)}-s{entry.seed or 0}"
    path = corpus_dir / f"{stem}.json"
    if not entry.nf_source:
        entry.nf_source = render_source(entry.spec)
    entry.name = stem
    entry.path = path
    path.write_text(json.dumps(entry.to_dict(), indent=2) + "\n")
    return path


def load_corpus(corpus_dir: str | Path) -> list[CorpusEntry]:
    """Load every ``*.json`` reproducer in ``corpus_dir`` (sorted)."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    entries = []
    for path in sorted(corpus_dir.glob("*.json")):
        entries.append(
            CorpusEntry.from_dict(json.loads(path.read_text()), path=path)
        )
    return entries


def replay_corpus(corpus_dir: str | Path) -> list[ReplayOutcome]:
    """Replay every reproducer and check its ``expect`` semantics.

    ``expect: "fail"`` passes only while the recorded signature still
    fails; ``expect: "clean"`` passes only while the oracle is clean.
    """
    outcomes = []
    for entry in load_corpus(corpus_dir):
        report = entry.replay()
        signatures = {f.signature for f in report.failures}
        if entry.expect == "fail":
            ok = entry.signature in signatures
            detail = (
                f"still fails with {entry.signature}"
                if ok
                else (
                    "no longer fails with recorded signature "
                    f"{entry.signature} (got: {sorted(signatures) or 'clean'})"
                    " — bug fixed? retriage this reproducer"
                )
            )
        else:
            ok = report.ok
            detail = (
                "clean"
                if ok
                else f"regressed: {sorted(signatures)}"
            )
        outcomes.append(
            ReplayOutcome(entry=entry, report=report, ok=ok, detail=detail)
        )
    return outcomes
