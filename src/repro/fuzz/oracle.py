"""Differential oracle: sequential reference vs. every parallel build.

For one generated NF and a set of workloads the oracle runs the full
pipeline (``Maestro.analyze`` with lint) and then checks, per
applicable strategy and per trace:

* **equivalence** — :func:`repro.sim.check_equivalence` with
  ``sanitize=True``: observable behaviour must match the sequential
  reference packet-for-packet, modulo the allowed capacity
  divergences;
* **static vs. dynamic cross-check** — a sharding verdict the race
  sanitizer refutes (any active MAE10x finding on an untampered build)
  is a pipeline bug, not a test failure, and is reported as such;
* **certification vs. observed kernels** — the plan certifier
  (:func:`repro.analysis.certify_nf`, MAE3xx) must pass on the
  untampered NF, and the compiled leg is cross-checked against it:
  every lane the dispatcher stamped as kernel-executed must carry a
  path id the certifier proved fully lowered, and a certificate with
  lowered paths (and no uncompiled port) must actually yield a
  dispatcher.  The converse per-lane direction is deliberately *not* a
  finding — a certified lane may still fall back dynamically (hazard
  demotion, out-of-bounds keys), which is the runtime exercising
  exactly the fallback set the certifier proved sound;
* **warm vs. cold fast path vs. compiled** — the same trace through
  the reference path, a cold
  :class:`~repro.sim.functional.FlowSteeringCache`, a pre-warmed
  cache (both with kernels pinned off), and the compiled batch
  dataplane (kernels on) must yield identical per-packet
  (core, action) sequences; cache hit/miss/invalidation accounting
  and compiled kernel-coverage stats are attached to the report.

Fault injection (``fault=``) seeds known pipeline bugs so the oracle
and shrinker can be validated end to end:

* ``drop-lock`` — remove one object from the generated
  :class:`~repro.core.codegen.LockPlan` (the sanitizer must raise
  MAE101/MAE102);
* ``forge-shared-nothing`` — force a shared-nothing build from a
  forged ``Verdict.SHARED_NOTHING`` solution when the analysis said
  LOCKS (the equivalence check or MAE103 must trip);
* ``stale-cache`` — corrupt one warm steering-cache entry (the
  warm/cold comparison must diverge);
* ``skew-kernel`` — corrupt one compiled-kernel scatter mask so a
  single kernel lane emits a flipped action (the compiled leg must
  diverge from the reference).
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.core.codegen import LockPlan, ParallelNF, Strategy
from repro.core.pipeline import Maestro
from repro.core.sharding import Verdict
from repro.fuzz.generator import NfSpec, build_nf
from repro.fuzz.workloads import WorkloadSpec, materialize_workload
from repro.obs.flight import FlightRecorder
from repro.sim.equivalence import check_equivalence
from repro.sim.functional import (
    FlowSteeringCache,
    _get_dispatcher,
    run_functional,
)

__all__ = ["FAULTS", "FuzzFailure", "OracleReport", "run_oracle"]

#: Known fault-injection modes (see module docstring).
FAULTS: tuple[str, ...] = (
    "drop-lock",
    "forge-shared-nothing",
    "stale-cache",
    "skew-kernel",
)


@dataclass(frozen=True)
class FuzzFailure:
    """One oracle check that did not come back clean."""

    kind: str  #: lint | certify | equivalence | race | rescale | fastpath | crash
    detail: str
    strategy: str | None = None
    workload: dict | None = None
    fault: str | None = None
    codes: tuple[str, ...] = ()
    mismatches: int = 0
    #: last-N-packets flight-recorder snapshot (tuple of event dicts)
    #: captured at the moment the check tripped; rides into the saved
    #: reproducer via :meth:`to_dict`.
    flight: tuple = ()

    @property
    def signature(self) -> str:
        """Stable identity for shrinking: same bug ⟺ same signature.

        Deliberately excludes the workload (trace bisection must keep
        matching) and the mismatch count (shrinking reduces it).
        """
        return f"{self.kind}/{self.strategy}/{','.join(sorted(set(self.codes)))}"

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "strategy": self.strategy,
            "workload": self.workload,
            "fault": self.fault,
            "codes": list(self.codes),
            "mismatches": self.mismatches,
            "signature": self.signature,
            "flight": [dict(event) for event in self.flight],
        }


@dataclass
class OracleReport:
    """Everything one (NF, workloads[, fault]) oracle pass observed."""

    spec: NfSpec
    fault: str | None = None
    verdict: str = ""
    strategies: tuple[str, ...] = ()
    checks: int = 0
    #: sanitized equivalence runs that applied a mid-trace grow+shrink
    #: (``rescale`` workloads under a shared-nothing verdict).
    rescale_checks: int = 0
    capacity_divergences: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    cache_stats: dict | None = None
    compiled_stats: dict | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "fault": self.fault,
            "verdict": self.verdict,
            "strategies": list(self.strategies),
            "checks": self.checks,
            "rescale_checks": self.rescale_checks,
            "capacity_divergences": self.capacity_divergences,
            "failures": [f.to_dict() for f in self.failures],
            "cache_stats": self.cache_stats,
            "compiled_stats": self.compiled_stats,
        }


def _crash_detail(exc: BaseException) -> str:
    last = traceback.extract_tb(exc.__traceback__)[-1:] if exc.__traceback__ else []
    where = f" at {last[0].filename}:{last[0].lineno}" if last else ""
    return f"{type(exc).__name__}: {exc}{where}"


def _observable(core: int, result) -> tuple:
    mods = tuple(sorted((result.mods or {}).items()))
    return (core, result.kind, result.port, mods)


def _guard_values(spec: NfSpec) -> tuple[int, ...]:
    return tuple(
        guard.value for group in spec.groups for guard in group.guards
    )


#: Header-field swaps for the reply orientation of a flow key.
_SWAPPED = {
    "src_ip": "dst_ip",
    "dst_ip": "src_ip",
    "src_port": "dst_port",
    "dst_port": "src_port",
    "src_mac": "dst_mac",
    "dst_mac": "src_mac",
}


def _spec_flow_keys(spec: NfSpec):
    """Per-group tagged flow-key extractor for capacity tainting.

    The generated NF's key structure is known exactly, so the
    equivalence checker can taint capacity-refused flows at the right
    granularity — a partial key (e.g. src_port only) aliases many
    header tuples onto one state entry, which the default full-header
    taint cannot see.
    """
    keyed = [
        (group.prefix, group.key_fields)
        for group in spec.groups
        if group.key_fields
    ]

    def flow_keys(port: int, pkt) -> list[tuple]:
        out = []
        for tag, fields in keyed:
            out.append((tag, tuple(getattr(pkt, f) for f in fields)))
            out.append(
                (tag, tuple(getattr(pkt, _SWAPPED.get(f, f)) for f in fields))
            )
        return out

    return flow_keys


def _drop_one_lock(parallel: ParallelNF) -> str | None:
    """Remove the first locked object from the plan; return its name."""
    plan = parallel.lock_plan
    if not plan.locked:
        return None
    victim = sorted(plan.locked)[0]
    parallel.lock_plan = LockPlan(
        strategy=plan.strategy,
        locked=plan.locked - {victim},
        order=tuple(name for name in plan.order if name != victim),
    )
    return victim


def run_oracle(
    spec: NfSpec,
    workloads: Sequence[WorkloadSpec],
    *,
    n_cores: int = 4,
    maestro_seed: int = 0,
    fault: str | None = None,
    check_fastpath: bool = True,
    traces: Sequence[tuple[WorkloadSpec | None, list]] | None = None,
) -> OracleReport:
    """Differentially test ``spec`` against every applicable strategy.

    ``traces`` pins pre-materialized ``(workload, trace)`` pairs and
    skips workload materialization entirely — the shrinker and corpus
    replay use this so a reproducer exercises its exact packets.
    """
    if fault is not None and fault not in FAULTS:
        raise ValueError(f"unknown fault {fault!r} (known: {FAULTS})")
    report = OracleReport(spec=spec, fault=fault)

    def make_nf():
        return build_nf(spec)

    maestro = Maestro(seed=maestro_seed)
    try:
        result = maestro.analyze(make_nf(), lint=True)
    except Exception as exc:  # noqa: BLE001 — any pipeline crash is a finding
        report.failures.append(
            FuzzFailure(kind="crash", detail=_crash_detail(exc), fault=fault)
        )
        return report
    verdict = result.solution.verdict
    report.verdict = verdict.value

    lint_errors = [d for d in result.diagnostics if d.is_error]
    if lint_errors:
        report.failures.append(
            FuzzFailure(
                kind="lint",
                detail="; ".join(str(d) for d in lint_errors[:3]),
                codes=tuple(d.code for d in lint_errors),
                fault=fault,
            )
        )

    # Static certification of the untampered NF: a lowering the plan
    # certifier cannot prove equivalent is a pipeline bug regardless of
    # whether any dynamic check later trips.  The certificate is kept so
    # the compiled leg can cross-check observed kernel lanes against it.
    from repro.analysis.plan_passes import certify_nf

    try:
        certificate = certify_nf(
            make_nf(), tree=result.tree, solution=result.solution
        )
    except Exception as exc:  # noqa: BLE001 — certifier crash is a finding
        certificate = None
        report.failures.append(
            FuzzFailure(kind="crash", detail=_crash_detail(exc), fault=fault)
        )
    if certificate is not None and not certificate.clean:
        cert_errors = [d for d in certificate.diagnostics if d.is_error]
        report.failures.append(
            FuzzFailure(
                kind="certify",
                detail="; ".join(str(d) for d in cert_errors[:3]),
                codes=tuple(d.code for d in cert_errors),
                fault=fault,
            )
        )

    strategies = (
        [Strategy.LOCKS, Strategy.TM]
        if verdict is Verdict.LOCKS
        else [Strategy.SHARED_NOTHING, Strategy.LOCKS, Strategy.TM]
    )
    forged_solution = None
    if fault == "forge-shared-nothing" and verdict is Verdict.LOCKS:
        # Bypass generate()'s guard with a forged analysis verdict: this
        # is the build a wrong Constraints Generator answer would emit.
        forged_solution = replace(result.solution, verdict=Verdict.SHARED_NOTHING)
        strategies.insert(0, Strategy.SHARED_NOTHING)
    report.strategies = tuple(s.value for s in strategies)

    if traces is None:
        guard_values = _guard_values(spec)
        min_capacity = min(group.capacity for group in spec.groups)
        traces = [
            (
                workload,
                materialize_workload(
                    workload,
                    guard_values=guard_values,
                    min_capacity=min_capacity,
                    rss=result.rss_configuration(n_cores),
                ),
            )
            for workload in workloads
        ]

    def make_parallel(strategy: Strategy) -> ParallelNF:
        solution = result.solution
        if strategy is Strategy.SHARED_NOTHING and forged_solution is not None:
            solution = forged_solution
        parallel = ParallelNF.generate(
            build_nf(spec),
            solution,
            result.rss_configuration(n_cores),
            n_cores,
            strategy=strategy,
        )
        if fault == "drop-lock":
            _drop_one_lock(parallel)
        return parallel

    for strategy in strategies:
        for index, (workload, trace) in enumerate(traces):
            failed = _check_one(
                report, spec, make_nf, make_parallel, strategy, workload,
                trace, result.tree, fault,
            )
            if (
                strategy is Strategy.SHARED_NOTHING
                and forged_solution is None
                and workload is not None
                and workload.kind == "rescale"
            ):
                _check_rescale(
                    report, spec, make_nf, make_parallel, workload,
                    trace, result.tree, n_cores, fault,
                )
            if check_fastpath and (
                failed
                or index == 0
                or fault in ("stale-cache", "skew-kernel")
            ):
                _check_fastpath(
                    report, make_nf, make_parallel, strategy, workload,
                    trace, result.tree, n_cores, fault, certificate,
                )
    return report


def _check_one(
    report, spec, make_nf, make_parallel, strategy, workload, trace, tree, fault
) -> bool:
    """One sanitized equivalence run; returns True if it failed."""
    recorder = FlightRecorder()
    try:
        parallel = make_parallel(strategy)
        eq = check_equivalence(
            make_nf,
            parallel,
            trace,
            sanitize=True,
            tree=tree,
            flow_keys=_spec_flow_keys(spec),
            flight=recorder,
        )
    except Exception as exc:  # noqa: BLE001
        report.failures.append(
            FuzzFailure(
                kind="crash",
                detail=_crash_detail(exc),
                strategy=strategy.value,
                workload=workload.to_dict() if workload else None,
                fault=fault,
            )
        )
        return True
    report.checks += 1
    report.capacity_divergences += eq.capacity_divergences
    codes = tuple(d.code for d in eq.race_diagnostics)
    if eq.mismatches:
        report.failures.append(
            FuzzFailure(
                kind="equivalence",
                detail=eq.describe(),
                strategy=strategy.value,
                workload=workload.to_dict() if workload else None,
                fault=fault,
                codes=codes,
                mismatches=len(eq.mismatches),
                flight=tuple(eq.flight_snapshot),
            )
        )
        return True
    if codes:
        # Behaviour matched but the sanitizer refuted the build: the
        # static analysis promised an isolation the runtime broke.
        report.failures.append(
            FuzzFailure(
                kind="race",
                detail="; ".join(
                    str(d) for d in eq.race_diagnostics[:3]
                ),
                strategy=strategy.value,
                workload=workload.to_dict() if workload else None,
                fault=fault,
                codes=codes,
                flight=tuple(eq.flight_snapshot),
            )
        )
        return True
    return False


def _check_rescale(
    report, spec, make_nf, make_parallel, workload, trace, tree, n_cores,
    fault,
) -> bool:
    """Sanitized equivalence with a mid-trace grow *and* shrink.

    Exercises live re-sharding (``repro.scale``) under adversarial
    generated NFs: the table is re-programmed bucket-by-bucket twice
    while state churns, and the run must stay equivalent to the
    sequential reference with no MAE10x finding — MAE103 proves every
    ownership handoff committed atomically, MAE105 that no packet was
    served inside a migration's unowned epoch.  Migration refusals
    (receiver shard full) are the capacity story and taint like it.
    """
    from repro.scale.elastic import enable_elastic

    n = len(trace)
    events = [(n // 3, n_cores * 2), (2 * n // 3, max(1, n_cores - 1))]
    try:
        parallel = enable_elastic(make_parallel(Strategy.SHARED_NOTHING))
        eq = check_equivalence(
            make_nf,
            parallel,
            trace,
            sanitize=True,
            tree=tree,
            flow_keys=_spec_flow_keys(spec),
            rescale_events=events,
        )
    except Exception as exc:  # noqa: BLE001
        report.failures.append(
            FuzzFailure(
                kind="crash",
                detail=_crash_detail(exc),
                strategy=Strategy.SHARED_NOTHING.value,
                workload=workload.to_dict() if workload else None,
                fault=fault,
            )
        )
        return True
    report.checks += 1
    report.rescale_checks += 1
    report.capacity_divergences += eq.capacity_divergences
    codes = tuple(d.code for d in eq.race_diagnostics)
    if eq.mismatches or codes:
        report.failures.append(
            FuzzFailure(
                kind="rescale",
                detail=eq.describe(),
                strategy=Strategy.SHARED_NOTHING.value,
                workload=workload.to_dict() if workload else None,
                fault=fault,
                codes=codes,
                mismatches=len(eq.mismatches),
                flight=tuple(eq.flight_snapshot),
            )
        )
        return True
    return False


def _check_fastpath(
    report, make_nf, make_parallel, strategy, workload, trace, tree,
    n_cores, fault, certificate=None,
) -> None:
    """Reference vs. cold/warm fast path vs. compiled kernels.

    The interpreter legs are pinned ``kernels=False`` so each leg
    isolates one mechanism: steering-cache dispatch (cold and warm) and
    the compiled batch dataplane (kernels on).  When a ``certificate``
    (:class:`repro.analysis.CertifyReport`) is supplied, the compiled
    leg is cross-checked against it: kernel-executed lanes must carry
    certified path ids, and a certificate with lowered paths must
    produce a dispatcher.
    """
    try:
        reference = run_functional(make_parallel(strategy), trace, fastpath=False)
        cold_parallel = make_parallel(strategy)
        cold_cache = FlowSteeringCache(cold_parallel.rss)
        cold = run_functional(
            cold_parallel, trace, fastpath=True, flow_cache=cold_cache,
            kernels=False,
        )
        warm_parallel = make_parallel(strategy)
        warm_cache = FlowSteeringCache(warm_parallel.rss)
        warm_cache.steer(trace)  # warming only touches the cache, not NF state
        if fault == "stale-cache" and warm_cache._cores:
            key = sorted(warm_cache._cores)[0]
            warm_cache._cores[key] = (warm_cache._cores[key] + 1) % n_cores
            # The whole-trace memo would otherwise replay the pre-fault
            # decisions verbatim; drop it so the corrupted entry steers.
            warm_cache._trace_memo = None
        warm = run_functional(
            warm_parallel, trace, fastpath=True, flow_cache=warm_cache,
            kernels=False,
        )
        comp_parallel = make_parallel(strategy)
        # The analysis already explored this NF; reuse its tree so the
        # compiled leg lowers the exact paths the oracle verified.
        comp_parallel.symbex_tree = tree
        if fault == "skew-kernel":
            dispatcher = _get_dispatcher(comp_parallel)
            if dispatcher is not None:
                dispatcher.fault = "skew-kernel"
        compiled = run_functional(
            comp_parallel, trace, fastpath=True,
            flow_cache=FlowSteeringCache(comp_parallel.rss), kernels=True,
        )
    except Exception as exc:  # noqa: BLE001
        report.failures.append(
            FuzzFailure(
                kind="crash",
                detail=_crash_detail(exc),
                strategy=strategy.value,
                workload=workload.to_dict() if workload else None,
                fault=fault,
            )
        )
        return
    report.checks += 1
    report.cache_stats = {
        "cold": cold_cache.stats(),
        "warm": warm_cache.stats(),
    }
    report.compiled_stats = getattr(compiled, "compiled", None)
    if certificate is not None:
        certified = set(certificate.supported_pids)
        path_ids = getattr(compiled, "compiled_path_ids", None)
        observed = (
            sorted({int(p) for p in path_ids.tolist() if p >= 0})
            if path_ids is not None
            else []
        )
        rogue = [p for p in observed if p not in certified]
        if rogue:
            # A kernel executed a path the certifier did not prove
            # lowered — the dispatcher and the certificate disagree
            # about which plans are trusted.  (The converse — a
            # certified lane falling back — is legitimate demotion.)
            report.failures.append(
                FuzzFailure(
                    kind="certify",
                    detail=(
                        f"kernel lanes executed path id(s) {rogue} that the "
                        f"plan certifier did not certify as lowered "
                        f"(certified: {sorted(certified)})"
                    ),
                    strategy=strategy.value,
                    workload=workload.to_dict() if workload else None,
                    fault=fault,
                    codes=("certify-lanes",),
                )
            )
        elif certified and not certificate.uncompiled and (
            _get_dispatcher(comp_parallel) is None
        ):
            report.failures.append(
                FuzzFailure(
                    kind="certify",
                    detail=(
                        f"certifier proved {len(certified)} path(s) lowered "
                        f"with no uncompiled port, but compile_parallel "
                        f"built no dispatcher"
                    ),
                    strategy=strategy.value,
                    workload=workload.to_dict() if workload else None,
                    fault=fault,
                    codes=("certify-compile",),
                )
            )
    for label, run in (("cold", cold), ("warm", warm), ("compiled", compiled)):
        for i, ((ref_core, ref_res), (run_core, run_res)) in enumerate(
            zip(reference.results, run.results)
        ):
            if _observable(ref_core, ref_res) != _observable(run_core, run_res):
                report.failures.append(
                    FuzzFailure(
                        kind="fastpath",
                        detail=(
                            f"{label} fast path diverges from reference at "
                            f"packet #{i}: "
                            f"{_observable(ref_core, ref_res)} != "
                            f"{_observable(run_core, run_res)} "
                            f"(cache {report.cache_stats.get(label, report.compiled_stats)})"
                        ),
                        strategy=strategy.value,
                        workload=workload.to_dict() if workload else None,
                        fault=fault,
                        codes=(f"fastpath-{label}",),
                    )
                )
                break
