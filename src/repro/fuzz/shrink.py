"""Two-axis minimization of failing fuzz cases.

A failure is identified by its :attr:`FuzzFailure.signature` (kind,
strategy, diagnostic codes).  The shrinker repeats two greedy passes
until neither makes progress, re-running the oracle after every
candidate reduction and keeping it only if the *same* signature still
fails:

* **NF axis** — :func:`repro.fuzz.generator.spec_reductions` yields
  one-step simplifications (drop a state-object group, strip guards,
  disable expiry/asymmetry/full-drop, simplify the terminal action);
* **trace axis** — ddmin-style chunk deletion over the pinned packet
  list, halving the chunk size down to single packets.

Every accepted reduction bumps the ``fuzz.shrink_steps`` counter; the
total number of oracle probes is bounded by ``max_probes`` so a flaky
signature cannot stall a fuzz session.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.fuzz.generator import NfSpec, spec_reductions
from repro.fuzz.oracle import OracleReport, run_oracle

__all__ = ["ShrinkResult", "shrink_case"]


@dataclass
class ShrinkResult:
    """A minimized failing case, still failing with ``signature``."""

    spec: NfSpec
    trace: list
    signature: str
    steps: int = 0
    probes: int = 0
    exhausted: bool = False  #: hit the probe budget before a fixpoint
    report: OracleReport | None = field(default=None, repr=False)
    #: every accepted intermediate as ``(spec, trace)`` — each one still
    #: failed with ``signature`` when it was accepted
    history: list = field(default_factory=list, repr=False)

    @property
    def n_state_objects(self) -> int:
        return self.spec.n_state_objects()


def shrink_case(
    spec: NfSpec,
    trace: list,
    signature: str,
    *,
    fault: str | None = None,
    n_cores: int = 4,
    maestro_seed: int = 0,
    max_probes: int = 150,
) -> ShrinkResult:
    """Minimize ``(spec, trace)`` while ``signature`` keeps failing.

    The inputs must already fail with ``signature`` — shrinking an
    already-clean case returns it unchanged (``steps == 0``).
    """
    state = ShrinkResult(spec=spec, trace=list(trace), signature=signature)

    def still_fails(candidate_spec: NfSpec, candidate_trace: list) -> OracleReport | None:
        if state.probes >= max_probes:
            state.exhausted = True
            return None
        state.probes += 1
        report = run_oracle(
            candidate_spec,
            [],
            traces=[(None, candidate_trace)],
            n_cores=n_cores,
            maestro_seed=maestro_seed,
            fault=fault,
        )
        if any(f.signature == signature for f in report.failures):
            return report
        return None

    def accept(new_spec: NfSpec, new_trace: list, report: OracleReport) -> None:
        state.spec = new_spec
        state.trace = new_trace
        state.report = report
        state.steps += 1
        state.history.append((new_spec, list(new_trace)))
        if obs.enabled():
            obs.counter("fuzz.shrink_steps", 1, signature=signature)

    progress = True
    while progress and not state.exhausted:
        progress = False
        # NF axis: retry from the first reduction after every success so
        # chains of drops (group 3, then group 2, ...) all get a chance.
        reduced = True
        while reduced and not state.exhausted:
            reduced = False
            for candidate in spec_reductions(state.spec):
                report = still_fails(candidate, state.trace)
                if report is not None:
                    accept(candidate, state.trace, report)
                    reduced = True
                    progress = True
                    break
                if state.exhausted:
                    break
        # Trace axis: ddmin-style — delete chunks, halving the grain.
        chunk = max(1, len(state.trace) // 2)
        while chunk >= 1 and not state.exhausted:
            start = 0
            any_removed = False
            while start < len(state.trace) and not state.exhausted:
                candidate_trace = (
                    state.trace[:start] + state.trace[start + chunk:]
                )
                if not candidate_trace:
                    break
                report = still_fails(state.spec, candidate_trace)
                if report is not None:
                    accept(state.spec, candidate_trace, report)
                    any_removed = True
                    progress = True
                    # keep start: the next chunk slid into this position
                else:
                    start += chunk
            if chunk == 1 and not any_removed:
                break
            chunk //= 2
    return state
