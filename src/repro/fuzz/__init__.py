"""repro.fuzz — differential fuzzing of the Maestro pipeline.

The bundled 8-NF corpus samples a tiny corner of the NF space the
pipeline claims to handle.  This package closes the gap with
property-based differential testing:

* a **seeded generator** (:mod:`repro.fuzz.generator`) composes
  well-typed NFs over the :class:`repro.nf.api.NfContext` API — every
  generated NF is a valid ``Maestro.analyze`` input and lints clean;
* a **traffic mutator** (:mod:`repro.fuzz.workloads`) derives uniform,
  Zipfian, churn-burst, hash-collision, capacity-exhaustion, and
  boundary-value workloads from :mod:`repro.traffic` and
  :mod:`repro.sim.attack`;
* a **differential oracle** (:mod:`repro.fuzz.oracle`) replays each
  (NF, trace) pair through the sequential reference and the generated
  :class:`~repro.core.codegen.ParallelNF` under every applicable
  strategy, cross-checks the static linter against the dynamic race
  sanitizer, and compares the warm-cache fast path against the cold
  reference path;
* a **shrinker** (:mod:`repro.fuzz.shrink`) minimizes failing cases
  along both axes (state objects / branches, then the trace) while the
  failure signature keeps reproducing;
* a **crash corpus** (:mod:`repro.fuzz.corpus`) stores minimized
  reproducers under ``tests/fuzz_corpus/`` with the seed and pipeline
  version recorded, and replays them ahead of every fuzz run.

Entry point: ``python -m repro.fuzz --seed 0 --runs 200``.  Exit codes
match ``repro.analysis`` (0 clean, 1 failures, 2 usage).  Progress is
counted through ``repro.obs`` (``fuzz.cases``, ``fuzz.failures``,
``fuzz.shrink_steps``).
"""

from repro.fuzz.corpus import (
    CorpusEntry,
    load_corpus,
    replay_corpus,
    save_reproducer,
)
from repro.fuzz.generator import (
    SHAPES,
    GroupSpec,
    GuardSpec,
    NfShape,
    NfSpec,
    build_nf,
    random_spec,
    render_source,
)
from repro.fuzz.oracle import FuzzFailure, OracleReport, run_oracle
from repro.fuzz.runner import FuzzReport, FuzzSession
from repro.fuzz.shrink import ShrinkResult, shrink_case
from repro.fuzz.workloads import WORKLOAD_KINDS, WorkloadSpec, materialize_workload

__all__ = [
    "SHAPES",
    "GroupSpec",
    "GuardSpec",
    "NfShape",
    "NfSpec",
    "build_nf",
    "random_spec",
    "render_source",
    "WORKLOAD_KINDS",
    "WorkloadSpec",
    "materialize_workload",
    "FuzzFailure",
    "OracleReport",
    "run_oracle",
    "ShrinkResult",
    "shrink_case",
    "CorpusEntry",
    "load_corpus",
    "replay_corpus",
    "save_reproducer",
    "FuzzReport",
    "FuzzSession",
]
