"""The chain DSL: declare hops and wire their ports together.

A ``.chain`` file is line-oriented (Lemur's ``nfcp_chain_parser`` user
language is the exemplar — a flat declaration list, no nesting)::

    # Firewall in front of a connection limiter.
    chain fw_cl
    hop fw: fw
    hop cl: cl

    ingress 0 -> fw.0
    wire fw.1 -> cl.0
    egress cl.1 -> 1

    ingress 1 -> cl.1
    wire cl.0 -> fw.1
    egress fw.0 -> 0

Semantics:

* ``chain <name>`` — names the chain (first non-comment line).
* ``hop <alias>: <nf-name>`` — instantiate a corpus NF under ``alias``.
* ``ingress <chain-port> -> <alias>.<port>`` — packets arriving on the
  chain-level port enter the hop on that hop port.
* ``wire <a>.<p> -> <b>.<q>`` — packets hop ``a`` forwards out of its
  port ``p`` enter hop ``b`` on port ``q``.
* ``egress <a>.<p> -> <chain-port>`` — packets forwarded out of that
  hop port leave the chain on the chain-level port.

Each ``(alias, port)`` can be the source of at most one wire *or*
egress — routing is deterministic.  ``# maestro: waive[MAE2xx]``
comments are line-scoped, exactly like NF-source waivers: a chain
diagnostic anchored to that line with a listed code is suppressed.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ChainError

__all__ = [
    "Hop",
    "Ingress",
    "Wire",
    "Egress",
    "Chain",
    "parse_chain",
    "load_chain",
    "default_registry",
]

_ENDPOINT_RE = re.compile(r"^(?P<alias>[A-Za-z_][A-Za-z0-9_]*)\.(?P<port>\d+)$")


@dataclass(frozen=True)
class Hop:
    """One NF instance in the chain."""

    alias: str
    nf_name: str
    line: int


@dataclass(frozen=True)
class Ingress:
    """A chain-level ingress port attached to a hop port."""

    chain_port: int
    hop: str
    port: int
    line: int


@dataclass(frozen=True)
class Wire:
    """Hop-to-hop connection: ``src`` forwards out of ``src_port`` into
    ``dst`` on ``dst_port``."""

    src: str
    src_port: int
    dst: str
    dst_port: int
    line: int


@dataclass(frozen=True)
class Egress:
    """A hop port whose forwarded packets leave the chain."""

    hop: str
    port: int
    chain_port: int
    line: int


@dataclass
class Chain:
    """A parsed chain: hops in declaration order plus the port map."""

    name: str
    hops: dict[str, Hop] = field(default_factory=dict)
    ingresses: list[Ingress] = field(default_factory=list)
    wires: list[Wire] = field(default_factory=list)
    egresses: list[Egress] = field(default_factory=list)
    file: str | None = None
    #: absolute line -> waived MAE codes (``# maestro: waive[...]``)
    waivers: dict[int, frozenset[str]] = field(default_factory=dict)

    def hop_order(self) -> list[str]:
        return list(self.hops)

    def ingress_ports(self) -> list[int]:
        return sorted({ing.chain_port for ing in self.ingresses})

    def ingress_for(self, chain_port: int) -> Ingress:
        for ing in self.ingresses:
            if ing.chain_port == chain_port:
                return ing
        raise ChainError(f"{self.name}: no ingress for chain port {chain_port}")

    def next_of(self, alias: str, port: int) -> Wire | Egress | None:
        """Where packets forwarded out of ``(alias, port)`` go, if mapped."""
        for wire in self.wires:
            if wire.src == alias and wire.src_port == port:
                return wire
        for egress in self.egresses:
            if egress.hop == alias and egress.port == port:
                return egress
        return None

    def waived(self, code: str, line: int | None) -> bool:
        if line is None:
            return False
        return code in self.waivers.get(line, frozenset())

    def describe(self) -> str:
        lines = [f"chain {self.name}: {len(self.hops)} hop(s)"]
        for hop in self.hops.values():
            lines.append(f"  hop {hop.alias}: {hop.nf_name}")
        for ing in self.ingresses:
            lines.append(f"  ingress {ing.chain_port} -> {ing.hop}.{ing.port}")
        for wire in self.wires:
            lines.append(
                f"  wire {wire.src}.{wire.src_port} -> {wire.dst}.{wire.dst_port}"
            )
        for egress in self.egresses:
            lines.append(f"  egress {egress.hop}.{egress.port} -> {egress.chain_port}")
        return "\n".join(lines)


def default_registry() -> dict[str, type]:
    """Name -> NF class for every corpus NF (bundled + micro).

    Imported lazily so the DSL itself stays dependency-light; the
    analysis CLI passes its own richer registry (example NFs included).
    """
    from repro.nf.nfs import ALL_NFS
    from repro.nf.nfs.micro import (
        DhcpGuard,
        DualCounter,
        FlowCounter,
        GlobalCounter,
        SrcStats,
    )

    registry: dict[str, type] = dict(ALL_NFS)
    registry.update(
        {
            "flow_counter": FlowCounter,
            "src_stats": SrcStats,
            "dual_counter": DualCounter,
            "global_counter": GlobalCounter,
            "dhcp_guard": DhcpGuard,
        }
    )
    return registry


def _endpoint(text: str, *, file: str, line: int) -> tuple[str, int]:
    match = _ENDPOINT_RE.match(text.strip())
    if match is None:
        raise ChainError(
            f"{file}:{line}: malformed endpoint {text.strip()!r} "
            "(expected <alias>.<port>)"
        )
    return match.group("alias"), int(match.group("port"))


def _arrow_split(rest: str, *, file: str, line: int) -> tuple[str, str]:
    if "->" not in rest:
        raise ChainError(f"{file}:{line}: expected '<lhs> -> <rhs>'")
    lhs, rhs = rest.split("->", 1)
    return lhs.strip(), rhs.strip()


def parse_chain(text: str, *, file: str | None = None) -> Chain:
    """Parse the chain DSL; raise :class:`ChainError` on malformed input.

    Structural validation happens here (duplicate aliases, unknown
    aliases in wires, duplicate routing sources); *semantic* validation
    against the NFs' actual forwarding behaviour (dead wires, dangling
    forward ports) is the analyzer's job — it emits ``MAE204``.
    """
    # Waiver comments are collected with the shared, validating
    # collector so unknown codes fail loudly here too.
    from repro.analysis.source import collect_waivers

    display = file or "<chain>"
    raw_waivers = collect_waivers(text, display, first_line=1)
    chain: Chain | None = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        keyword, _, rest = line.partition(" ")
        rest = rest.strip()
        if keyword == "chain":
            if chain is not None:
                raise ChainError(
                    f"{display}:{lineno}: duplicate 'chain' declaration"
                )
            if not rest or " " in rest:
                raise ChainError(f"{display}:{lineno}: 'chain' needs one name")
            chain = Chain(name=rest, file=file)
            continue
        if chain is None:
            raise ChainError(
                f"{display}:{lineno}: first declaration must be 'chain <name>'"
            )
        if keyword == "hop":
            alias, _, nf_name = rest.partition(":")
            alias, nf_name = alias.strip(), nf_name.strip()
            if not alias or not nf_name:
                raise ChainError(
                    f"{display}:{lineno}: expected 'hop <alias>: <nf-name>'"
                )
            if alias in chain.hops:
                raise ChainError(
                    f"{display}:{lineno}: duplicate hop alias {alias!r}"
                )
            chain.hops[alias] = Hop(alias=alias, nf_name=nf_name, line=lineno)
        elif keyword == "ingress":
            lhs, rhs = _arrow_split(rest, file=display, line=lineno)
            if not lhs.isdigit():
                raise ChainError(
                    f"{display}:{lineno}: ingress chain port must be an integer"
                )
            alias, port = _endpoint(rhs, file=display, line=lineno)
            chain_port = int(lhs)
            if any(i.chain_port == chain_port for i in chain.ingresses):
                raise ChainError(
                    f"{display}:{lineno}: duplicate ingress for chain port "
                    f"{chain_port}"
                )
            chain.ingresses.append(
                Ingress(chain_port=chain_port, hop=alias, port=port, line=lineno)
            )
        elif keyword == "wire":
            lhs, rhs = _arrow_split(rest, file=display, line=lineno)
            src, src_port = _endpoint(lhs, file=display, line=lineno)
            dst, dst_port = _endpoint(rhs, file=display, line=lineno)
            chain.wires.append(
                Wire(
                    src=src,
                    src_port=src_port,
                    dst=dst,
                    dst_port=dst_port,
                    line=lineno,
                )
            )
        elif keyword == "egress":
            lhs, rhs = _arrow_split(rest, file=display, line=lineno)
            alias, port = _endpoint(lhs, file=display, line=lineno)
            if not rhs.isdigit():
                raise ChainError(
                    f"{display}:{lineno}: egress chain port must be an integer"
                )
            chain.egresses.append(
                Egress(hop=alias, port=port, chain_port=int(rhs), line=lineno)
            )
        else:
            raise ChainError(
                f"{display}:{lineno}: unknown declaration {keyword!r} "
                "(expected chain/hop/ingress/wire/egress)"
            )

    if chain is None:
        raise ChainError(f"{display}: empty chain file")
    if not chain.hops:
        raise ChainError(f"{display}: chain {chain.name!r} declares no hops")
    if not chain.ingresses:
        raise ChainError(f"{display}: chain {chain.name!r} has no ingress")
    _validate_references(chain, display)
    chain.waivers = {line: codes for (_, line), codes in raw_waivers.items()}
    return chain


def _validate_references(chain: Chain, display: str) -> None:
    def check_alias(alias: str, lineno: int) -> None:
        if alias not in chain.hops:
            raise ChainError(
                f"{display}:{lineno}: unknown hop alias {alias!r} "
                f"(declared: {', '.join(chain.hops) or 'none'})"
            )

    for ing in chain.ingresses:
        check_alias(ing.hop, ing.line)
    sources: dict[tuple[str, int], int] = {}
    for wire in chain.wires:
        check_alias(wire.src, wire.line)
        check_alias(wire.dst, wire.line)
        key = (wire.src, wire.src_port)
        if key in sources:
            raise ChainError(
                f"{display}:{wire.line}: duplicate route from "
                f"{wire.src}.{wire.src_port} (first at line {sources[key]})"
            )
        sources[key] = wire.line
    for egress in chain.egresses:
        check_alias(egress.hop, egress.line)
        key = (egress.hop, egress.port)
        if key in sources:
            raise ChainError(
                f"{display}:{egress.line}: duplicate route from "
                f"{egress.hop}.{egress.port} (first at line {sources[key]})"
            )
        sources[key] = egress.line


def load_chain(path: str | Path) -> Chain:
    """Parse a ``.chain`` file from disk."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ChainError(f"cannot read chain file {path}: {exc}") from exc
    return parse_chain(text, file=str(path))
