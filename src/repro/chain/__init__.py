"""repro.chain — service-chain composition of corpus NFs.

Maestro parallelizes a *single* NF; production deployments run chains
(firewall → NAT → load balancer), and a per-NF verdict is unsound for
the chain: two NFs can each be shardable yet disagree on the flow key,
so no single RSS steering keeps a flow on one core end-to-end.

This package provides the chain description layer:

* :mod:`repro.chain.dsl` — a small text DSL (``.chain`` files under
  ``examples/chains/``) declaring hops, chain-level ingress ports, the
  hop-to-hop port wiring, and chain egress ports;
* :mod:`repro.chain.runtime` — a sequential reference executor and a
  parallel chain executor (one joint RSS steering, or per-hop steering
  with core handoffs).

The whole-chain static analysis lives in
:mod:`repro.analysis.chain_passes` (MAE2xx diagnostics) and the joint
Toeplitz key search in :mod:`repro.rs3.joint`.
"""

from repro.chain.dsl import (
    Chain,
    Egress,
    Hop,
    Ingress,
    Wire,
    default_registry,
    load_chain,
    parse_chain,
)
from repro.chain.runtime import (
    ChainResult,
    HopStep,
    ParallelChain,
    SequentialChainRunner,
    benchmark_chain_trace,
)

__all__ = [
    "Chain",
    "Hop",
    "Ingress",
    "Wire",
    "Egress",
    "parse_chain",
    "load_chain",
    "default_registry",
    "ChainResult",
    "HopStep",
    "SequentialChainRunner",
    "ParallelChain",
    "benchmark_chain_trace",
]
