"""Chain execution: sequential reference and parallel chain runner.

Both executors run each packet to completion through the chain: a hop's
``FORWARD`` follows the chain's wire/egress map (header rewrites are
applied to the packet before the next hop sees it), ``DROP`` and
``FLOOD`` terminate the packet at chain level.

The parallel runner supports the two steering modes the chain analysis
produces:

* ``joint`` — one RSS decision at the chain ingress (the joint Toeplitz
  key from :mod:`repro.rs3.joint`); every hop then runs on that same
  core.  This is the shared-nothing end-to-end plan: no cross-core
  handoffs, per-hop shard ownership follows from the joint key
  satisfying the intersection of all hops' constraints.
* ``fallback`` — every hop steers with its own per-NF RSS key (the
  NFork-style per-NF scaling contrast).  Correct per hop, but a flow
  may migrate between cores at each hop boundary; the runner counts
  those handoffs so :mod:`repro.sim.perf` can price them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.codegen import ParallelNF
from repro.errors import ChainError, SimulationError
from repro.chain.dsl import Chain, Egress, Wire, default_registry
from repro.nf.api import NF, ActionKind
from repro.nf.packet import PACKET_FIELDS, Packet
from repro.nf.runtime import PacketResult, SequentialRunner
from repro.rs3.config import RssConfiguration

__all__ = [
    "HopStep",
    "ChainResult",
    "SequentialChainRunner",
    "ParallelChain",
    "benchmark_chain_trace",
]


@dataclass(frozen=True)
class HopStep:
    """One hop's contribution to a packet's journey."""

    alias: str
    port: int
    core: int | None
    result: PacketResult


@dataclass
class ChainResult:
    """The chain-level outcome of one packet."""

    kind: ActionKind
    #: chain egress port for FORWARD; None for DROP/FLOOD
    port: int | None
    #: the packet as it left the chain (hop rewrites applied)
    pkt: Packet
    steps: list[HopStep] = field(default_factory=list)
    #: accumulated header rewrites (later hops override earlier ones)
    mods: dict[str, int] = field(default_factory=dict)
    #: fallback mode: number of hop boundaries that changed core
    handoffs: int = 0


def _apply_mods(pkt: Packet, mods: dict[str, int]) -> Packet:
    if not mods:
        return pkt
    known = {k: v for k, v in mods.items() if k in PACKET_FIELDS}
    return replace(pkt, **known)


def instantiate_hops(
    chain: Chain, registry: dict[str, type] | None = None
) -> dict[str, NF]:
    """Fresh NF instances for every hop, in declaration order."""
    registry = registry if registry is not None else default_registry()
    hops: dict[str, NF] = {}
    for hop in chain.hops.values():
        try:
            cls = registry[hop.nf_name]
        except KeyError:
            raise ChainError(
                f"{chain.name}: hop {hop.alias!r} names unknown NF "
                f"{hop.nf_name!r} (known: {', '.join(sorted(registry))})"
            ) from None
        hops[hop.alias] = cls()
    return hops


def _walk(
    chain: Chain,
    chain_port: int,
    pkt: Packet,
    run_hop,
) -> ChainResult:
    """Shared run-to-completion traversal.

    ``run_hop(alias, port, pkt) -> (core, PacketResult)`` executes one
    hop; the traversal handles wiring, rewrites, and termination.
    """
    ingress = chain.ingress_for(chain_port)
    alias, port = ingress.hop, ingress.port
    cur = pkt
    steps: list[HopStep] = []
    mods: dict[str, int] = {}
    budget = 4 * len(chain.hops) + 4
    for _ in range(budget):
        core, result = run_hop(alias, port, cur)
        steps.append(HopStep(alias=alias, port=port, core=core, result=result))
        if result.mods:
            mods.update(result.mods)
            cur = _apply_mods(cur, result.mods)
        if result.kind is ActionKind.DROP:
            return ChainResult(ActionKind.DROP, None, cur, steps, mods)
        if result.kind is ActionKind.FLOOD:
            # A mid-chain flood is a chain-level flood: the packet leaves
            # on every chain port, which downstream comparison treats as
            # one terminal observable.
            return ChainResult(ActionKind.FLOOD, None, cur, steps, mods)
        if not isinstance(result.port, int):
            raise ChainError(
                f"{chain.name}: hop {alias!r} forwarded to non-integer "
                f"port {result.port!r}"
            )
        nxt = chain.next_of(alias, result.port)
        if nxt is None:
            raise ChainError(
                f"{chain.name}: hop {alias!r} forwarded out of unmapped "
                f"port {result.port} (no wire or egress; the analyzer "
                "reports this as MAE204)"
            )
        if isinstance(nxt, Egress):
            return ChainResult(
                ActionKind.FORWARD, nxt.chain_port, cur, steps, mods
            )
        assert isinstance(nxt, Wire)
        alias, port = nxt.dst, nxt.dst_port
    raise ChainError(
        f"{chain.name}: packet exceeded {budget} hop traversals "
        "(wiring cycle?)"
    )


class SequentialChainRunner:
    """The sequential reference: every hop is a fresh single-core NF."""

    def __init__(self, chain: Chain, registry: dict[str, type] | None = None):
        self.chain = chain
        self.runners: dict[str, SequentialRunner] = {
            alias: SequentialRunner(nf)
            for alias, nf in instantiate_hops(chain, registry).items()
        }

    def process(self, chain_port: int, pkt: Packet) -> ChainResult:
        def run_hop(alias: str, port: int, cur: Packet):
            return None, self.runners[alias].process(port, cur)

        return _walk(self.chain, chain_port, pkt, run_hop)

    def process_trace(
        self, trace: list[tuple[int, Packet]]
    ) -> list[ChainResult]:
        return [self.process(port, pkt) for port, pkt in trace]


@dataclass
class ParallelChain:
    """A parallel chain deployment: per-hop generated NFs + steering mode."""

    chain: Chain
    hops: dict[str, ParallelNF]
    #: "joint" (one chain-ingress steering) or "fallback" (per-hop RSS)
    mode: str
    #: chain-ingress RSS configuration; required in joint mode
    joint_rss: RssConfiguration | None = None
    handoffs: int = 0
    hop_transitions: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("joint", "fallback"):
            raise SimulationError(f"unknown chain mode {self.mode!r}")
        if self.mode == "joint" and self.joint_rss is None:
            raise SimulationError("joint mode needs a joint RSS configuration")
        cores = {parallel.n_cores for parallel in self.hops.values()}
        if len(cores) > 1:
            raise SimulationError(
                f"hops disagree on core count: {sorted(cores)}"
            )

    @property
    def n_cores(self) -> int:
        return next(iter(self.hops.values())).n_cores

    def process(self, chain_port: int, pkt: Packet) -> ChainResult:
        if self.mode == "joint":
            core = self.joint_rss.core_for(chain_port, pkt)

            def run_hop(alias: str, port: int, cur: Packet):
                return core, self.hops[alias].cores[core].run(port, cur)

            return _walk(self.chain, chain_port, pkt, run_hop)

        last_core: int | None = None
        handoffs = 0
        transitions = 0

        def run_hop(alias: str, port: int, cur: Packet):
            nonlocal last_core, handoffs, transitions
            core, result = self.hops[alias].process(port, cur)
            if last_core is not None:
                transitions += 1
                if core != last_core:
                    handoffs += 1
            last_core = core
            return core, result

        result = _walk(self.chain, chain_port, pkt, run_hop)
        result.handoffs = handoffs
        self.handoffs += handoffs
        self.hop_transitions += transitions
        return result

    def process_trace(
        self, trace: list[tuple[int, Packet]]
    ) -> list[ChainResult]:
        return [self.process(port, pkt) for port, pkt in trace]

    def handoff_fraction(self) -> float:
        """Observed fraction of hop boundaries that changed core."""
        if not self.hop_transitions:
            return 0.0
        return self.handoffs / self.hop_transitions

    def reset_stats(self) -> None:
        self.handoffs = self.hop_transitions = 0
        for parallel in self.hops.values():
            parallel.reset_stats()


def benchmark_chain_trace(
    chain: Chain,
    n_flows: int = 128,
    packets: int = 512,
    *,
    seed: int = 12345,
    pkt_size: int = 64,
    reply_fraction: float = 0.25,
) -> list[tuple[int, Packet]]:
    """A uniform chain workload over the chain's ingress ports.

    Forward flows enter on the first declared chain ingress; when a
    second ingress exists, a ``reply_fraction`` of packets for
    already-seen flows arrives there with inverted headers (the
    symmetric-reply pattern of the per-NF benchmark traces).
    """
    ports = [ing.chain_port for ing in chain.ingresses]
    forward_port = ports[0]
    reply_port = ports[1] if len(ports) > 1 else None
    rng = np.random.default_rng(seed)
    flows = [
        Packet(
            src_ip=int(rng.integers(1, 2**32)),
            dst_ip=int(rng.integers(1, 2**32)),
            src_port=int(rng.integers(1, 2**16)),
            dst_port=int(rng.integers(1, 2**16)),
            wire_size=pkt_size,
        )
        for _ in range(n_flows)
    ]
    trace: list[tuple[int, Packet]] = []
    seen: set[int] = set()
    for _ in range(packets):
        pick = int(rng.integers(0, n_flows))
        pkt = flows[pick]
        if (
            reply_port is not None
            and pick in seen
            and rng.random() < reply_fraction
        ):
            trace.append((reply_port, pkt.inverted()))
        else:
            seen.add(pick)
            trace.append((forward_port, pkt))
    return trace
