"""The elastic-scaling controller: telemetry windows in, decisions out.

A deterministic control loop over the observability plane: it reads the
most recent per-core window from a :class:`repro.obs.telemetry.TelemetrySink`
(the same windowed series the drift detectors consume), runs the
``detect_skew`` finder, and decides whether the core count should grow,
shrink, or hold.  The decision is a pure function of the window data and
the controller's configuration — no wall clock, no randomness — so every
decision is replayable in tests and CI.

The policy is the classic utilization band with a skew override:

* **grow** when per-core utilization exceeds ``grow_util`` (the cores
  are running hot) *or* the skew finder reports imbalance above its
  threshold while utilization is not idle — RSS++-style rebalancing
  handles skew first, but a hot *and* skewed fleet needs headroom;
* **shrink** when utilization falls below ``shrink_util`` with no skew —
  the diurnal-valley case the ROADMAP's north star calls out;
* **hold** otherwise, and always during the post-rescale cooldown
  (migration has a cost; flapping pays it twice for nothing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.obs.detect import detect_skew
from repro.obs.telemetry import TelemetrySink

__all__ = ["ScaleDecision", "ElasticController"]


@dataclass(frozen=True)
class ScaleDecision:
    """One controller verdict over one telemetry window."""

    action: str  # "grow" | "shrink" | "hold"
    n_cores: int  # target core count (= current for "hold")
    reason: str
    utilization: float
    imbalance: float

    def to_json(self) -> dict:
        return {
            "action": self.action,
            "n_cores": self.n_cores,
            "reason": self.reason,
            "utilization": round(self.utilization, 4),
            "imbalance": round(self.imbalance, 4),
        }


@dataclass
class ElasticController:
    """Deterministic grow/shrink policy over telemetry windows."""

    min_cores: int = 1
    max_cores: int = 16
    #: packets one core is provisioned to absorb per window; utilization
    #: is measured against this budget.
    core_budget_pps: int = 1024
    grow_util: float = 0.8
    shrink_util: float = 0.45
    skew_threshold: float = 1.5
    #: windows to hold after a rescale before deciding again.
    cooldown_windows: int = 2

    def __post_init__(self) -> None:
        if self.min_cores <= 0 or self.max_cores < self.min_cores:
            raise SimulationError(
                f"bad core bounds [{self.min_cores}, {self.max_cores}]"
            )
        if not 0.0 < self.shrink_util < self.grow_util:
            raise SimulationError(
                "need 0 < shrink_util < grow_util "
                f"(got {self.shrink_util}, {self.grow_util})"
            )
        self._cooldown = 0

    def decide(self, sink: TelemetrySink, active_cores: int) -> ScaleDecision:
        """One control step over the sink's most recent window."""
        windows = sink.series("packets")
        finding = detect_skew(
            sink, metric="packets", threshold=self.skew_threshold
        )
        imbalance = finding.imbalance if windows else 0.0
        if not windows:
            return ScaleDecision(
                "hold", active_cores, "no telemetry windows yet", 0.0, 0.0
            )
        last = windows[-1]
        # Utilization over the *active* cores only: retired cores report
        # zero packets and would dilute the average.
        total = sum(last[:active_cores])
        utilization = total / (active_cores * self.core_budget_pps)
        if self._cooldown > 0:
            self._cooldown -= 1
            return ScaleDecision(
                "hold",
                active_cores,
                f"cooldown ({self._cooldown + 1} window(s) left)",
                utilization,
                imbalance,
            )
        hot = utilization >= self.grow_util
        skewed = finding.detected and utilization > self.shrink_util
        if (hot or skewed) and active_cores < self.max_cores:
            target = min(self.max_cores, max(active_cores + 1, active_cores * 2))
            self._cooldown = self.cooldown_windows
            reason = (
                f"utilization {utilization:.2f} >= {self.grow_util}"
                if hot
                else f"imbalance {imbalance:.2f} >= {self.skew_threshold} "
                f"on core {finding.hot_core}"
            )
            return ScaleDecision("grow", target, reason, utilization, imbalance)
        if (
            utilization <= self.shrink_util
            and not finding.detected
            and active_cores > self.min_cores
        ):
            # Shrink to what the load needs (with grow_util headroom),
            # one step of at most halving per decision.
            needed = max(
                self.min_cores,
                -(-total // int(self.core_budget_pps * self.grow_util)),
            )
            target = max(needed, active_cores // 2, self.min_cores)
            if target < active_cores:
                self._cooldown = self.cooldown_windows
                return ScaleDecision(
                    "shrink",
                    target,
                    f"utilization {utilization:.2f} <= {self.shrink_util}",
                    utilization,
                    imbalance,
                )
        return ScaleDecision(
            "hold", active_cores, "within band", utilization, imbalance
        )
