"""Elastic scaling: live RSS re-sharding with loss-free state migration.

The static pipeline (``repro.core``) fixes the core count at generation
time.  This package makes that decision *revisable at runtime*: an
:class:`ElasticController` watches the per-core telemetry windows the
observability plane already collects, decides grow/shrink/hold, and
:func:`rescale_parallel` carries the decision out — re-programming the
512-entry indirection table bucket-by-bucket with a two-phase ownership
handoff so every keyed shard entry (map rows, vector rows, dchain slots)
migrates between cores without a packet being dropped, duplicated, or
served by a core that does not own its state.

Layers:

* :mod:`repro.scale.migrate` — the mechanism: bucket-tagged state
  (:class:`BucketIndex`), shard extraction/installation, the rescale
  protocol itself (:func:`rescale_parallel`).
* :mod:`repro.scale.elastic` — execution: :func:`enable_elastic` flips a
  generated shared-nothing NF into elastic mode; :func:`run_elastic`
  replays a trace with mid-trace :class:`RescaleEvent` boundaries
  through the batch simulator (reference/fastpath/compiled all
  bit-identical).
* :mod:`repro.scale.controller` — policy: the deterministic
  :class:`ElasticController` band + skew + cooldown loop.

``python -m repro.scale verify`` replays seeded churn traces with a
mid-trace grow *and* shrink through every shared-nothing NF and checks
(1) bit-identical batch/reference parity, (2) sequential equivalence
under the race sanitizer with zero MAE103/MAE105 findings.  CI's
``rescale-gate`` job runs exactly that.
"""

from repro.scale.controller import ElasticController, ScaleDecision
from repro.scale.elastic import (
    ElasticRun,
    RescaleEvent,
    enable_elastic,
    run_elastic,
)
from repro.scale.migrate import (
    BucketIndex,
    MigrationStats,
    ShardDelta,
    extract_bucket,
    install_bucket,
    plan_rescale,
    rescale_parallel,
)

__all__ = [
    "BucketIndex",
    "ElasticController",
    "ElasticRun",
    "MigrationStats",
    "RescaleEvent",
    "ScaleDecision",
    "ShardDelta",
    "enable_elastic",
    "extract_bucket",
    "install_bucket",
    "plan_rescale",
    "rescale_parallel",
    "run_elastic",
]
