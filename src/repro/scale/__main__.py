"""CLI: ``python -m repro.scale verify <name ...|--all>``.

The elastic-scaling gate.  For every selected shared-nothing NF it
replays a seeded churn trace with a mid-trace **grow** (4 -> 8 cores)
and a mid-trace **shrink** (8 -> 3 cores) and checks, end to end:

1. **parity** — the batch simulator (fastpath + compiled kernels) and
   the packet-at-a-time reference produce bit-identical ``(core_id,
   result)`` sequences across both rescales;
2. **equivalence** — the rescaled parallel NF matches a fresh
   sequential reference (``check_equivalence``), replayed under the
   race sanitizer with **zero** MAE103 (cross-shard ownership) and
   MAE105 (packet served during an unowned migration epoch) findings.

NFs whose Maestro verdict is not shared-nothing are reported as
``skipped`` (LOCKS/TM plans share one store; there is nothing to
migrate) and do not fail the gate.

``--json`` emits the machine-readable report on stdout and ``--out``
writes it to a CI artifact (the ``rescale-gate`` job uploads
``rescale-report.json``).  Exit codes match ``repro.analysis``:

====  ======================================================
code  meaning
====  ======================================================
0     every verified NF is clean
1     at least one parity/equivalence/sanitizer failure
2     usage mistake (unknown NF name, no NFs selected, ...)
====  ======================================================
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.diagnostics import SCHEMA_VERSION
from repro.core.codegen import ParallelNF, Strategy
from repro.nf.nfs import ALL_NFS

#: trace direction + compare options per NF (mirrors the equivalence
#: suite): the NAT's external src_port is allocator-dependent, so the
#: sequential comparison ignores it; the policer meters WAN->LAN
#: traffic arriving on port 1.
_NF_TRAFFIC: dict[str, dict] = {
    "policer": {"in_port": 1},
    "nat": {"in_port": 0, "ignore_mods": ("src_port",)},
}


@dataclass
class RescaleVerification:
    """Outcome of the grow+shrink scenario for one NF."""

    nf_name: str
    status: str  # "clean" | "failed" | "skipped"
    n_packets: int = 0
    events: list[tuple[int, int]] = field(default_factory=list)
    parity_ok: bool | None = None
    equivalent: bool | None = None
    mismatches: int = 0
    mae103: int = 0
    mae105: int = 0
    race_findings: list[str] = field(default_factory=list)
    rescales: list[dict] = field(default_factory=list)
    detail: str = ""

    @property
    def clean(self) -> bool:
        return self.status != "failed"

    def to_json(self) -> dict:
        return {
            "nf": self.nf_name,
            "status": self.status,
            "n_packets": self.n_packets,
            "events": [list(event) for event in self.events],
            "parity_ok": self.parity_ok,
            "equivalent": self.equivalent,
            "mismatches": self.mismatches,
            "mae103": self.mae103,
            "mae105": self.mae105,
            "race_findings": self.race_findings,
            "rescales": self.rescales,
            "detail": self.detail,
        }

    def describe(self) -> str:
        if self.status == "skipped":
            return f"[{self.nf_name}] skipped: {self.detail}"
        moved = sum(r.get("entries_moved", 0) for r in self.rescales)
        head = (
            f"[{self.nf_name}] {self.status}: {self.n_packets} packets, "
            f"{len(self.events)} rescale(s), {moved} entries migrated"
        )
        if self.status == "clean":
            return head
        return f"{head} — {self.detail}"


def _build_parallel(nf_cls, result, n_cores: int) -> ParallelNF:
    return ParallelNF.generate(
        nf_cls(),
        result.solution,
        result.rss_configuration(n_cores),
        n_cores,
    )


def verify_nf(
    name: str,
    *,
    seed: int = 12345,
    packets: int = 900,
    n_flows: int = 96,
    churn_fpg: float = 60_000.0,
    n_cores: int = 4,
    grow_to: int = 8,
    shrink_to: int = 3,
    result=None,
) -> RescaleVerification:
    """Run the grow+shrink gate scenario for one bundled NF."""
    from repro.core.pipeline import Maestro
    from repro.scale.elastic import RescaleEvent, enable_elastic, run_elastic
    from repro.sim.equivalence import check_equivalence
    from repro.traffic.churn import churn_trace
    from repro.traffic.generator import TrafficGenerator

    nf_cls = ALL_NFS[name]
    if result is None:
        result = Maestro(seed=seed).analyze(nf_cls())
    strategy = Strategy.default_for(result.solution.verdict)
    if strategy is not Strategy.SHARED_NOTHING:
        return RescaleVerification(
            nf_name=name,
            status="skipped",
            detail=(
                f"verdict maps to {strategy.value}; elastic re-sharding "
                "applies to shared-nothing plans only"
            ),
        )

    traffic = _NF_TRAFFIC.get(name, {})
    trace = churn_trace(
        TrafficGenerator(seed=seed),
        packets,
        n_flows,
        churn_fpg,
        in_port=traffic.get("in_port", 0),
    )
    n = len(trace)
    events = [(n // 3, grow_to), (2 * n // 3, shrink_to)]

    # 1. Parity: batch fastpath+kernels vs packet-at-a-time reference,
    #    both applying the same rescales at the same boundaries.
    rescale_events = [RescaleEvent(at, cores) for at, cores in events]
    fast = run_elastic(
        enable_elastic(_build_parallel(nf_cls, result, n_cores)),
        trace,
        rescale_events,
        fastpath=True,
        kernels=True,
    )
    ref = run_elastic(
        enable_elastic(_build_parallel(nf_cls, result, n_cores)),
        trace,
        rescale_events,
        fastpath=False,
    )
    parity_ok = list(fast.results) == list(ref.results)

    # 2. Equivalence vs a fresh sequential NF, under the sanitizer.
    parallel = enable_elastic(_build_parallel(nf_cls, result, n_cores))
    report = check_equivalence(
        nf_cls,
        parallel,
        trace,
        ignore_mods=traffic.get("ignore_mods", ()),
        sanitize=True,
        tree=result.tree,
        rescale_events=events,
    )
    mae103 = sum(1 for d in report.race_diagnostics if d.code == "MAE103")
    mae105 = sum(1 for d in report.race_diagnostics if d.code == "MAE105")

    failures = []
    if not parity_ok:
        failures.append("batch/reference parity broke across a rescale")
    if not report.equivalent:
        failures.append(
            f"{len(report.mismatches)} packet(s) diverged from the "
            "sequential reference"
        )
    if mae103 or mae105:
        failures.append(
            f"sanitizer: {mae103} MAE103 + {mae105} MAE105 finding(s)"
        )

    return RescaleVerification(
        nf_name=name,
        status="failed" if failures else "clean",
        n_packets=n,
        events=events,
        parity_ok=parity_ok,
        equivalent=report.equivalent,
        mismatches=len(report.mismatches),
        mae103=mae103,
        mae105=mae105,
        race_findings=[d.render() for d in report.race_diagnostics],
        rescales=[stats.to_json() for stats in fast.rescales],
        detail="; ".join(failures),
    )


def _run_verify(verify: argparse.ArgumentParser, args) -> int:
    if args.all:
        selected = sorted(ALL_NFS)
    else:
        selected = list(dict.fromkeys(args.names))
    if not selected:
        verify.print_usage(sys.stderr)
        print("error: give at least one nf-name or --all", file=sys.stderr)
        return 2
    unknown = [name for name in selected if name not in ALL_NFS]
    if unknown:
        print(
            f"error: unknown NF(s) {', '.join(unknown)}; "
            f"known: {', '.join(sorted(ALL_NFS))}",
            file=sys.stderr,
        )
        return 2

    verifications = [
        verify_nf(
            name,
            seed=args.seed,
            packets=args.packets,
            n_flows=args.flows,
            n_cores=args.cores,
            grow_to=args.grow_to,
            shrink_to=args.shrink_to,
        )
        for name in selected
    ]

    payload = {
        "schema": SCHEMA_VERSION,
        "reports": [v.to_json() for v in verifications],
    }
    if args.out:
        Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        for v in verifications:
            print(v.describe())
            for finding in v.race_findings:
                print(f"  {finding}")
        verified = [v for v in verifications if v.status != "skipped"]
        bad = sum(1 for v in verified if not v.clean)
        print(
            f"{len(verified)} NF(s) verified "
            f"({len(verifications) - len(verified)} skipped), "
            f"{bad} with failures"
        )
    return 1 if any(not v.clean for v in verifications) else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scale",
        description="Elastic-scaling verification: mid-trace grow+shrink "
        "re-sharding, checked for parity, equivalence, and sanitizer "
        "cleanliness.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    verify = sub.add_parser(
        "verify",
        help="replay a churn trace with a mid-trace grow and shrink and "
        "gate on bit-identical, sanitizer-clean results",
    )
    verify.add_argument(
        "names",
        nargs="*",
        metavar="nf-name",
        help=f"NFs to verify (bundled: {', '.join(sorted(ALL_NFS))})",
    )
    verify.add_argument(
        "--all",
        action="store_true",
        help="verify every bundled NF (non-shared-nothing ones are "
        "reported as skipped)",
    )
    verify.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    verify.add_argument(
        "--out",
        metavar="PATH",
        help="also write the JSON report to PATH (CI artifact)",
    )
    verify.add_argument(
        "--seed", type=int, default=12345, help="pipeline + trace seed"
    )
    verify.add_argument(
        "--packets",
        type=int,
        default=900,
        help="churn-trace length (default 900)",
    )
    verify.add_argument(
        "--flows", type=int, default=96, help="live flows (default 96)"
    )
    verify.add_argument(
        "--cores", type=int, default=4, help="initial cores (default 4)"
    )
    verify.add_argument(
        "--grow-to", type=int, default=8, help="mid-trace grow target"
    )
    verify.add_argument(
        "--shrink-to", type=int, default=3, help="mid-trace shrink target"
    )
    args = parser.parse_args(argv)
    return _run_verify(verify, args)


if __name__ == "__main__":
    sys.exit(main())
