"""Elastic execution: enabling bucket tagging and running rescale traces.

``enable_elastic`` flips a generated shared-nothing :class:`ParallelNF`
into elastic mode: every core gets a :class:`BucketIndex`, and from then
on each processed packet carries its indirection-table slot so created
state is bucket-tagged — the precondition for live migration
(:func:`repro.scale.migrate.rescale_parallel`).

``run_elastic`` is the batch-simulator entry point: it splits a trace at
:class:`RescaleEvent` boundaries, runs each segment through the normal
:func:`repro.sim.functional.run_functional` machinery (reference,
fastpath, or compiled — all bit-identical), and applies the rescale
between segments.  Rescales therefore always land on chunk boundaries,
exactly as the hardware would quiesce RX queues before reprogramming the
RETA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import obs
from repro.core.codegen import ParallelNF, Strategy
from repro.errors import SimulationError
from repro.scale.migrate import BucketIndex, MigrationStats, rescale_parallel
from repro.sim.functional import FlowSteeringCache, FunctionalRun, run_functional
from repro.traffic.generator import Trace

__all__ = ["RescaleEvent", "enable_elastic", "run_elastic", "ElasticRun"]


@dataclass(frozen=True)
class RescaleEvent:
    """Rescale to ``n_cores`` just before packet ``at_packet`` is processed."""

    at_packet: int
    n_cores: int


def enable_elastic(parallel: ParallelNF) -> ParallelNF:
    """Switch a generated shared-nothing NF into elastic mode.

    Must be called before traffic: state created pre-enable carries no
    bucket tag and would be left behind by a later migration.  Verifies
    the per-port indirection tables are in lockstep (identical entries) —
    elastic mode keys bucket identity on the table *slot*, which is only
    port-independent while every port's table is reprogrammed
    identically.  Incompatible with :meth:`RssConfiguration.balance_tables`
    / per-table ``rebalance``, which drift the tables apart.
    """
    if parallel.strategy is not Strategy.SHARED_NOTHING:
        raise SimulationError(
            "elastic scaling requires a shared-nothing plan "
            f"({parallel.nf.name} is {parallel.strategy.value}); LOCKS/TM "
            "plans share one store, so there is no state to migrate"
        )
    tables = [config.table for config in parallel.rss.ports.values()]
    reference = tables[0]
    for other in tables[1:]:
        if other.size != reference.size or not np.array_equal(
            other.entries, reference.entries
        ):
            raise SimulationError(
                "elastic mode needs lockstep port tables: every port must "
                "map each bucket to the same core (did balance_tables or "
                "a per-table rebalance run first?)"
            )
    for core in parallel.cores:
        if core.ctx.bucket_index is None:
            core.ctx.bucket_index = BucketIndex()
    parallel.elastic = True
    return parallel


@dataclass
class ElasticRun:
    """Results of one elastic trace execution."""

    run: FunctionalRun
    rescales: list[MigrationStats]

    @property
    def results(self):
        return self.run.results


def run_elastic(
    parallel: ParallelNF,
    trace: Trace,
    events: Sequence[RescaleEvent],
    *,
    fastpath: bool = True,
    flow_cache: FlowSteeringCache | None = None,
    kernels: bool = True,
    sanitize: bool = False,
) -> ElasticRun:
    """Execute ``trace`` with mid-trace rescales at the event boundaries.

    Each segment between events runs through
    :func:`~repro.sim.functional.run_functional` with the given execution
    flags, so the fastpath/compiled paths stay bit-identical to the
    reference within every segment; the rescale itself happens between
    segments, where no packet is in flight.  Events are applied in
    ``at_packet`` order; duplicate positions are rejected (one rescale
    per boundary — the controller never emits more).
    """
    if not parallel.elastic:
        enable_elastic(parallel)
    ordered = sorted(events, key=lambda e: e.at_packet)
    seen: set[int] = set()
    for event in ordered:
        if not 0 <= event.at_packet <= len(trace):
            raise SimulationError(
                f"rescale event at packet {event.at_packet} is outside "
                f"the trace (0..{len(trace)})"
            )
        if event.at_packet in seen:
            raise SimulationError(
                f"two rescale events at packet {event.at_packet}"
            )
        seen.add(event.at_packet)

    combined = FunctionalRun(parallel=parallel, capacity=len(trace))
    stats: list[MigrationStats] = []
    cursor = 0
    with obs.span(
        "scale.run_elastic",
        nf=parallel.nf.name,
        n_packets=len(trace),
        n_events=len(ordered),
    ):
        for event in ordered:
            segment = trace[cursor : event.at_packet]
            if segment:
                seg_run = run_functional(
                    parallel,
                    segment,
                    fastpath=fastpath,
                    flow_cache=flow_cache,
                    kernels=kernels,
                    sanitize=sanitize,
                )
                combined._bulk_install(
                    seg_run.core_ids, list(seg_run._packet_results)
                )
            stats.append(rescale_parallel(parallel, event.n_cores))
            cursor = event.at_packet
        tail = trace[cursor:]
        if tail:
            seg_run = run_functional(
                parallel,
                tail,
                fastpath=fastpath,
                flow_cache=flow_cache,
                kernels=kernels,
                sanitize=sanitize,
            )
            combined._bulk_install(
                seg_run.core_ids, list(seg_run._packet_results)
            )
    return ElasticRun(run=combined, rescales=stats)
