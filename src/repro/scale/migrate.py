"""Live state migration: bucket-granular re-sharding of a running NF.

Elastic scaling re-programs the RSS indirection table while traffic is
in flight.  Under shared-nothing (paper §4, *State sharding*), every
keyed state entry lives on exactly the core its flow's hash bucket steers
to — so moving a bucket to another core means moving the state those
flows own, or established connections break the moment the table flips.

The protocol here is the classic two-phase handoff (cf. the consistent-
hashing live-migration exemplars and State-Compute Replication's
state-as-transferable-delta framing):

1. **prepare** — the donor core stops accepting the bucket's packets
   (in the discrete simulator, rescales happen between packets, so the
   quiesce is implicit; the race sanitizer still checks the epoch);
2. **extract** — every map key, vector row, and dchain index the bucket
   owns is pulled out of the donor's shard as a :class:`ShardDelta`,
   using the write-time :class:`BucketIndex` so extraction is
   proportional to the bucket's state, not the shard capacity;
3. **install** — the delta lands in the receiver's shard.  DChain
   indices are re-allocated there (per-core allocators mean the old
   index may be taken), and the paired map values / vector rows are
   rewritten through the old->new index remap;
4. **commit** — the table entry flips to the receiver and the steering
   generation bumps, invalidating flow-steering caches and compiled
   memos.

Every handoff is reported to an installed :class:`RaceMonitor` so the
MAE103 ownership checker transfers ownership atomically at the commit
position and the MAE105 checker proves no packet was served inside the
unowned epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro import obs
from repro.core.codegen import CoreInstance, ParallelNF, Strategy
from repro.errors import SimulationError
from repro.nf.api import StateKind
from repro.nf.runtime import ConcreteContext, StateStore
from repro.rs3.indirection import IndirectionTable

__all__ = [
    "BucketIndex",
    "ShardDelta",
    "MigrationStats",
    "plan_rescale",
    "extract_bucket",
    "install_bucket",
    "rescale_parallel",
    "QUIESCE_US_PER_BUCKET",
    "MIGRATE_US_PER_ENTRY",
]

#: Modeled cost constants for the ``scale.quiesce_us`` counter: draining
#: a bucket's in-flight packets costs a fixed window, and each moved
#: entry pays a copy across the core interconnect.  The absolute values
#: are calibration knobs (the benchmark gate tracks the *per-entry*
#: migration cost, which is measured, not modeled).
QUIESCE_US_PER_BUCKET = 5.0
MIGRATE_US_PER_ENTRY = 0.25


class BucketIndex:
    """Which indirection-table bucket owns each state entry of one core.

    Maintained incrementally by the runtime's stateful-op wrappers
    (:class:`~repro.nf.runtime.ConcreteContext` tags every successful
    ``map_put`` / ``vector_put`` / ``dchain_allocate`` with the bucket
    that steered the creating packet).  Extraction then enumerates a
    migrating bucket's entries directly instead of scanning the whole
    shard — the property that keeps migration cost proportional to the
    moved state.
    """

    def __init__(self) -> None:
        # obj -> key/index -> bucket.  Keyed (tuple) and indexed (int)
        # namespaces are separate because a map and a vector may share a
        # name prefix but never an address space.
        self._keys: dict[str, dict[Any, int]] = {}
        self._indices: dict[str, dict[int, int]] = {}

    # Write-time tagging (runtime hot path) ------------------------- #
    def note_key(self, obj: str, key: Any, bucket: int) -> None:
        self._keys.setdefault(obj, {})[key] = bucket

    def drop_key(self, obj: str, key: Any) -> None:
        keys = self._keys.get(obj)
        if keys is not None:
            keys.pop(key, None)

    def note_index(self, obj: str, index: int, bucket: int) -> None:
        self._indices.setdefault(obj, {})[int(index)] = bucket

    def drop_index(self, obj: str, index: int) -> None:
        indices = self._indices.get(obj)
        if indices is not None:
            indices.pop(int(index), None)

    # Extraction-time queries --------------------------------------- #
    def keys_in(self, obj: str, bucket: int) -> list[Any]:
        """Keys of ``obj`` owned by ``bucket``, deterministically ordered."""
        keys = self._keys.get(obj, {})
        return sorted(k for k, b in keys.items() if b == bucket)

    def indices_in(self, obj: str, bucket: int) -> list[int]:
        indices = self._indices.get(obj, {})
        return sorted(i for i, b in indices.items() if b == bucket)

    def bucket_of_key(self, obj: str, key: Any) -> int | None:
        return self._keys.get(obj, {}).get(key)

    def bucket_of_index(self, obj: str, index: int) -> int | None:
        return self._indices.get(obj, {}).get(int(index))

    def entry_count(self) -> int:
        return sum(len(d) for d in self._keys.values()) + sum(
            len(d) for d in self._indices.values()
        )


@dataclass
class ShardDelta:
    """One bucket's extracted state, in transferable form.

    ``chains`` carries ``(old_index, last_touched)`` pairs; ``vectors``
    carries ``(old_index, record)``; ``maps`` carries ``(key, value)``.
    Old dchain indices are donor-local — installation re-allocates them
    in the receiver's chain and remaps the paired values/rows.
    """

    bucket: int
    maps: dict[str, list[tuple[Any, int]]] = field(default_factory=dict)
    vectors: dict[str, list[tuple[int, dict[str, int]]]] = field(
        default_factory=dict
    )
    chains: dict[str, list[tuple[int, float]]] = field(default_factory=dict)

    @property
    def n_entries(self) -> int:
        return (
            sum(len(v) for v in self.maps.values())
            + sum(len(v) for v in self.vectors.values())
            + sum(len(v) for v in self.chains.values())
        )


@dataclass
class MigrationStats:
    """Aggregate outcome of one rescale."""

    action: str = "hold"
    n_cores_before: int = 0
    n_cores_after: int = 0
    buckets_moved: int = 0
    entries_moved: int = 0
    #: entries dropped because the receiving shard had no room (receiver
    #: map/chain at capacity) — the shard-full behaviour the sequential
    #: semantics already exhibit globally, surfaced per migration.
    refused: int = 0
    #: (obj, key) map entries among the refusals — consumers (the
    #: equivalence checker's capacity tainting) treat those flows like
    #: capacity-refused ones.
    refused_keys: list[tuple[str, Any]] = field(default_factory=list)
    quiesce_us: float = 0.0
    generation_before: int = 0
    generation_after: int = 0

    def to_json(self) -> dict:
        return {
            "action": self.action,
            "cores": [self.n_cores_before, self.n_cores_after],
            "buckets_moved": self.buckets_moved,
            "entries_moved": self.entries_moved,
            "refused": self.refused,
            "quiesce_us": round(self.quiesce_us, 3),
            "generation": [self.generation_before, self.generation_after],
        }


def plan_rescale(
    table: IndirectionTable, n_new: int
) -> tuple[np.ndarray, list[tuple[int, int, int]]]:
    """Minimal-move reassignment of table entries onto ``n_new`` cores.

    Returns ``(new_entries, moves)`` where ``moves`` is a deterministic
    list of ``(slot, src_core, dst_core)``.  Only surplus slots move:
    retired cores (id >= ``n_new``) donate everything; survivors donate
    down to their fair share ``size // n_new`` (+1 for the remainder
    cores); receivers fill up to theirs in core order.  A no-op rescale
    (``n_new`` equals the current queue count) moves nothing.  Growing
    past the bucket count is legal — the surplus cores simply own zero
    buckets.
    """
    if n_new <= 0:
        raise SimulationError(f"cannot rescale to {n_new} cores")
    entries = table.entries.copy()
    if n_new == table.n_queues:
        return entries, []
    size = table.size
    base, extra = divmod(size, n_new)
    target = [base + (1 if c < extra else 0) for c in range(n_new)]
    counts = [0] * n_new
    for slot in range(size):
        owner = int(entries[slot])
        if owner < n_new:
            counts[owner] += 1
    moves: list[tuple[int, int, int]] = []
    receiver = 0
    for slot in range(size):
        owner = int(entries[slot])
        if owner < n_new and counts[owner] <= target[owner]:
            continue
        while receiver < n_new and counts[receiver] >= target[receiver]:
            receiver += 1
        if receiver >= n_new:  # pragma: no cover - surplus always = deficit
            raise SimulationError("rescale plan ran out of receivers")
        if owner < n_new:
            counts[owner] -= 1
        counts[receiver] += 1
        entries[slot] = receiver
        moves.append((slot, owner, receiver))
    return entries, moves


def extract_bucket(
    donor: CoreInstance, bucket: int, decls
) -> ShardDelta:
    """Pull every entry ``bucket`` owns out of the donor's shard.

    The donor's state is left as if those flows had expired: map keys
    erased, vector rows reset to the template, dchain indices freed.
    """
    ctx: ConcreteContext = donor.ctx
    index = ctx.bucket_index
    if index is None:
        raise SimulationError(
            f"core {donor.core_id} has no bucket index — elastic mode was "
            "never enabled, so bucket ownership is unknown"
        )
    store: StateStore = ctx.store
    delta = ShardDelta(bucket=bucket)
    for decl in decls:
        if decl.read_only:
            continue
        name = decl.name
        if decl.kind is StateKind.MAP:
            moved: list[tuple[Any, int]] = []
            for key in index.keys_in(name, bucket):
                found, value = store[name].get(key)
                if not found:
                    index.drop_key(name, key)
                    continue
                store[name].erase(key)
                store.note_erase(name, key)
                index.drop_key(name, key)
                moved.append((key, value))
            if moved:
                delta.maps[name] = moved
        elif decl.kind is StateKind.VECTOR:
            rows: list[tuple[int, dict[str, int]]] = []
            vector = store[name]
            for idx in index.indices_in(name, bucket):
                rows.append((idx, vector.borrow(idx)))
                vector.reset(idx)
                index.drop_index(name, idx)
            if rows:
                delta.vectors[name] = rows
        elif decl.kind is StateKind.DCHAIN:
            chain = store[name]
            slots: list[tuple[int, float]] = []
            for idx in index.indices_in(name, bucket):
                if chain.is_allocated(idx):
                    slots.append((idx, chain.last_touched(idx)))
                    chain.free_index(idx)
                index.drop_index(name, idx)
            if slots:
                delta.chains[name] = slots
        # SKETCH: count-min sketches have no per-key extraction (counts
        # are folded into shared rows), so sketch contents stay behind.
        # Approximate counters may split across cores after a rescale —
        # an over-count-only error, same direction as the sketch itself.
    return delta


def _common_prefix(a: str, b: str) -> int:
    n = 0
    for x, y in zip(a, b):
        if x != y:
            break
        n += 1
    return n


def _paired_chain(
    name: str, old_index: int, chain_domains: dict[str, set[int]]
) -> str | None:
    """Which migrated chain's index space does this value/row belong to?

    NFs pair a map (flow key -> index) and vector (index -> record) with
    the dchain that allocated the index, but the pairing is a naming
    convention, not a declared relation.  Heuristic: candidate chains in
    this delta whose moved-index set contains ``old_index``; a unique
    candidate wins, ties go to the longest common name prefix, then
    lexicographically.  Values outside every chain's moved set are plain
    integers and stay untouched.
    """
    candidates = [
        chain for chain, dom in chain_domains.items() if old_index in dom
    ]
    if not candidates:
        return None
    if len(candidates) == 1:
        return candidates[0]
    best = max(_common_prefix(name, c) for c in candidates)
    return sorted(c for c in candidates if _common_prefix(name, c) == best)[0]


def install_bucket(
    receiver: CoreInstance, delta: ShardDelta, decls
) -> tuple[list[tuple[str, Any]], int, int, list[tuple[str, Any]]]:
    """Land a :class:`ShardDelta` in the receiver's shard.

    Returns ``(keyed, installed, refused, refused_keys)``: the
    ``(obj, key)`` map entries whose ownership transferred (for the race
    monitor), the number of entries installed, the number refused for
    lack of room, and the ``(obj, key)`` map entries among the refusals.
    Ownership transfers for *every* migrated key, refused or not — the
    bucket now steers to the receiver, so any later touch of a refused
    key legitimately happens there (it re-establishes, exactly as a
    capacity-refused flow would).  DChain indices are re-allocated in
    the receiver's chain with their original timestamps; map values and
    vector rows that referred to a moved index are rewritten through the
    old->new remap.
    """
    ctx: ConcreteContext = receiver.ctx
    index = ctx.bucket_index
    if index is None:
        raise SimulationError(
            f"core {receiver.core_id} has no bucket index — cannot receive "
            "a migrated bucket"
        )
    store: StateStore = ctx.store
    bucket = delta.bucket
    installed = 0
    refused = 0
    # Phase 1: chains.  Build the old->new index remap; refusals poison
    # the old index so paired entries are dropped consistently.
    remaps: dict[str, dict[int, int]] = {}
    chain_domains: dict[str, set[int]] = {}
    for name, slots in delta.chains.items():
        chain = store[name]
        remap: dict[int, int] = {}
        domain: set[int] = set()
        for old_idx, stamp in slots:
            domain.add(old_idx)
            ok, new_idx = chain.allocate(stamp)
            if not ok:
                refused += 1
                continue
            remap[old_idx] = new_idx
            index.note_index(name, new_idx, bucket)
            installed += 1
        remaps[name] = remap
        chain_domains[name] = domain
    # Phase 2: vectors, rows remapped through their paired chain.
    for name, rows in delta.vectors.items():
        vector = store[name]
        for old_idx, record in rows:
            chain = _paired_chain(name, old_idx, chain_domains)
            if chain is not None:
                new_idx = remaps[chain].get(old_idx)
                if new_idx is None:  # paired allocation was refused
                    refused += 1
                    continue
            else:
                new_idx = old_idx
                if not 0 <= new_idx < vector.capacity:
                    refused += 1
                    continue
            vector.put(new_idx, record)
            index.note_index(name, new_idx, bucket)
            installed += 1
    # Phase 3: maps, values remapped through their paired chain.
    keyed: list[tuple[str, Any]] = []
    refused_keys: list[tuple[str, Any]] = []
    for name, pairs in delta.maps.items():
        flow_map = store[name]
        for key, value in pairs:
            keyed.append((name, key))
            chain = _paired_chain(name, value, chain_domains)
            if chain is not None:
                new_value = remaps[chain].get(value)
                if new_value is None:
                    refused += 1
                    refused_keys.append((name, key))
                    continue
            else:
                new_value = value
            if not flow_map.put(key, new_value):
                refused += 1
                refused_keys.append((name, key))
                continue
            store.note_put(name, key, new_value)
            index.note_key(name, key, bucket)
            installed += 1
    return keyed, installed, refused, refused_keys


def _revive_core(parallel: ParallelNF, core_id: int) -> CoreInstance:
    """A fresh worker core for a grow: new shard, setup, bucket index."""
    template = parallel.cores[0].ctx
    decls = parallel.nf.state()
    store = StateStore(decls, scale=template.store.scale)
    ctx = ConcreteContext(parallel.nf, store)
    parallel.nf.setup(ctx)
    # Bucket tagging attaches *after* setup: setup-time state (static
    # tables, vector fills) is replicated on every core, never migrated.
    ctx.bucket_index = BucketIndex()
    return CoreInstance(core_id=core_id, ctx=ctx)


def _monitor_of(parallel: ParallelNF):
    """The installed RaceMonitor, if any, discovered via core 0's probe."""
    if not parallel.cores:
        return None
    probe = parallel.cores[0].ctx.access_probe
    return getattr(probe, "_monitor", None)


def rescale_parallel(
    parallel: ParallelNF,
    n_new: int,
    *,
    torn_hook: Callable[[int, int, int], None] | None = None,
) -> MigrationStats:
    """Rescale a live elastic :class:`ParallelNF` to ``n_new`` cores.

    The full protocol: plan the minimal bucket moves, revive/create the
    receiving cores, migrate each moving bucket's state (two-phase, each
    handoff reported to the race monitor when one is installed), then
    commit every port's table with exactly **one** reprogram — so the
    steering generation bumps once per rescale and flow-steering caches
    plus compiled memos invalidate themselves.

    ``torn_hook(slot, src, dst)`` is a fault-injection point between
    extract and install (the unowned epoch); tests use it to prove the
    MAE105 checker catches packets served mid-handoff.
    """
    if not parallel.elastic:
        raise SimulationError(
            "rescale requires elastic mode — call "
            "repro.scale.enable_elastic(parallel) first"
        )
    if parallel.strategy is not Strategy.SHARED_NOTHING:
        raise SimulationError(
            f"elastic rescaling only applies to shared-nothing plans, "
            f"not {parallel.strategy.value}"
        )
    tables = [config.table for config in parallel.rss.ports.values()]
    reference = tables[0]
    for other in tables[1:]:
        if not np.array_equal(other.entries, reference.entries):
            raise SimulationError(
                "elastic rescale needs lockstep port tables — a port "
                "drifted (was balance_tables applied after enable_elastic?)"
            )
    current = reference.n_queues
    stats = MigrationStats(
        action=("grow" if n_new > current else "shrink" if n_new < current else "hold"),
        n_cores_before=current,
        n_cores_after=n_new,
        generation_before=parallel.rss.steering_generation,
    )
    new_entries, moves = plan_rescale(reference, n_new)
    if not moves:
        stats.n_cores_after = current
        stats.generation_after = stats.generation_before
        return stats

    nf_name = parallel.nf.name
    monitor = _monitor_of(parallel)
    with obs.span("scale.rescale", nf=nf_name, action=stats.action):
        # Bring receiving cores online before any state moves.
        while len(parallel.cores) < n_new:
            core = _revive_core(parallel, len(parallel.cores))
            parallel.cores.append(core)
            if monitor is not None and hasattr(monitor, "attach_core"):
                monitor.attach_core(core)
        parallel.n_cores = max(parallel.n_cores, len(parallel.cores))

        # Migrate every moving bucket, two-phase.
        decls = parallel.nf.state()
        for slot, src, dst in moves:
            prepare = len(monitor.packets) if monitor is not None else 0
            delta = extract_bucket(parallel.cores[src], slot, decls)
            if torn_hook is not None:
                torn_hook(slot, src, dst)
            keyed, installed, refused, refused_keys = install_bucket(
                parallel.cores[dst], delta, decls
            )
            stats.buckets_moved += 1
            stats.entries_moved += installed
            stats.refused += refused
            stats.refused_keys.extend(refused_keys)
            # Every move is reported, even when no bytes moved: bucket
            # ownership transfers regardless (a sketch-only bucket
            # migrates zero entries, yet its keys now live on dst).
            if monitor is not None:
                monitor.note_migration(
                    slot, src, dst, tuple(keyed), prepare_position=prepare
                )

        # Commit: one reprogram per port table, all in lockstep.
        for table in tables:
            table.reprogram(new_entries)
            table.retarget(n_new)

        # Compiled dispatchers cache per-core contexts at construction;
        # refresh so freshly revived cores are dispatchable.  The memo
        # itself self-invalidates via the steering generation.
        dispatcher = getattr(parallel, "_compiled_dispatcher", None)
        if dispatcher is not None and hasattr(dispatcher, "_ctxs"):
            dispatcher._ctxs = [core.ctx for core in parallel.cores]

    stats.quiesce_us = (
        stats.buckets_moved * QUIESCE_US_PER_BUCKET
        + stats.entries_moved * MIGRATE_US_PER_ENTRY
    )
    stats.generation_after = parallel.rss.steering_generation
    obs.counter("scale.events", 1, nf=nf_name, action=stats.action)
    obs.counter("scale.migrated_entries", stats.entries_moved, nf=nf_name)
    obs.counter("scale.quiesce_us", int(round(stats.quiesce_us)), nf=nf_name)
    return stats
