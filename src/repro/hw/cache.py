"""Cache-hierarchy model: working sets, hit fractions, access costs.

The paper's state-sharding discussion (§4) hinges on this effect: "If each
core has a smaller working-set, more of it will fit in the local L1+L2
data caches", producing the compound speed-up shared-nothing enjoys on
state-intensive NFs (PSD's 19x with 16 cores, §6.4).

The model is deliberately first-order: for a working set of ``W`` bytes
accessed uniformly, the fraction resident in a cache of ``C`` bytes is
``min(1, C/W)`` (ideal LRU steady state); for Zipfian access the resident
fraction is the cumulative popularity of the flows whose state fits —
which is also why a *single* core runs faster under Zipfian traffic than
uniform (Figure 5's 1-core points).
"""

from __future__ import annotations

import numpy as np

from repro.hw import params

__all__ = ["CacheHierarchy", "DEFAULT_HIERARCHY"]


class CacheHierarchy:
    """L1 / L2 / LLC-slice model with per-level access costs."""

    def __init__(
        self,
        l1_bytes: int = params.L1D_BYTES,
        l2_bytes: int = params.L2_BYTES,
        llc_bytes: int = params.LLC_BYTES,
        ddio_fraction: float = params.DDIO_LLC_FRACTION,
        llc_sharers: int = 1,
    ):
        self.l1_bytes = l1_bytes
        self.l2_bytes = l2_bytes
        # DDIO reserves a slice of the LLC for in-flight packet buffers
        # (§4); the rest is shared between the active cores.
        usable_llc = llc_bytes * (1.0 - ddio_fraction)
        self.llc_bytes = usable_llc / max(1, llc_sharers)

    # -------------------------------------------------------------- #
    def _resident_fraction(
        self, cache_bytes: float, working_set: float, weights: np.ndarray | None
    ) -> float:
        """Fraction of accesses served at or below a cache of this size."""
        if working_set <= 0:
            return 1.0
        if weights is None:
            return min(1.0, cache_bytes / working_set)
        # Zipf: hottest entries stay resident; hit fraction is their
        # cumulative popularity.  `weights` are sorted descending and sum
        # to 1; each entry occupies working_set / len(weights) bytes.
        per_entry = working_set / len(weights)
        resident_entries = int(cache_bytes / per_entry)
        if resident_entries >= len(weights):
            return 1.0
        return float(np.cumsum(weights)[resident_entries - 1]) if resident_entries else 0.0

    def hit_fractions(
        self, working_set: float, weights: np.ndarray | None = None
    ) -> dict[str, float]:
        """Probability an access is served by each level."""
        at_l1 = self._resident_fraction(self.l1_bytes, working_set, weights)
        at_l2 = self._resident_fraction(self.l2_bytes, working_set, weights)
        at_llc = self._resident_fraction(self.llc_bytes, working_set, weights)
        at_l2 = max(at_l2, at_l1)
        at_llc = max(at_llc, at_l2)
        return {
            "l1": at_l1,
            "l2": at_l2 - at_l1,
            "llc": at_llc - at_l2,
            "dram": 1.0 - at_llc,
        }

    def access_cycles(
        self,
        working_set: float,
        weights: np.ndarray | None = None,
        *,
        numa_remote: bool = False,
    ) -> float:
        """Expected cycles per stateful access for this working set."""
        f = self.hit_fractions(working_set, weights)
        dram = params.DRAM_CYCLES + (
            params.NUMA_REMOTE_EXTRA_CYCLES if numa_remote else 0.0
        )
        return (
            f["l1"] * params.L1_CYCLES
            + f["l2"] * params.L2_CYCLES
            + f["llc"] * params.LLC_CYCLES
            + f["dram"] * dram
        )


DEFAULT_HIERARCHY = CacheHierarchy()
