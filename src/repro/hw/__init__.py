"""Simulated testbed hardware: CPU, caches, PCIe, locks, TM, NUMA, VPP."""

from repro.hw import params
from repro.hw.cache import DEFAULT_HIERARCHY, CacheHierarchy
from repro.hw.cpu import BASE_PROFILES, NfCostProfile, measure_profile, profile_for
from repro.hw.locks import RwLockModel
from repro.hw.numa import DEFAULT_TOPOLOGY, NumaTopology, PinningAdvice
from repro.hw.pcie import Bottleneck, bottleneck_for, io_ceiling_pps
from repro.hw.tm import TmModel
from repro.hw.vpp import VPP_NAT44_EI, VppModel

__all__ = [
    "params",
    "CacheHierarchy",
    "DEFAULT_HIERARCHY",
    "NfCostProfile",
    "BASE_PROFILES",
    "measure_profile",
    "profile_for",
    "RwLockModel",
    "NumaTopology",
    "PinningAdvice",
    "DEFAULT_TOPOLOGY",
    "Bottleneck",
    "bottleneck_for",
    "io_ceiling_pps",
    "TmModel",
    "VPP_NAT44_EI",
    "VppModel",
]
