"""Model of Maestro's optimized per-core read/write lock (§3.6, §4).

The generated lock-based NFs use "a series of per-core, cache-aligned,
atomic spin-locks": a read needs only the local core's lock (no shared
cache line touched), while a write must take *all* core locks in order —
and, because packets are processed speculatively as readers, a write
packet restarts processing from the beginning after upgrading.

The model exposes the two quantities the throughput calculation needs:
the extra per-packet cycles on the executing core, and the duration of the
globally exclusive critical section (during which every other core's
readers stall).

It also accounts for the §4 *lock-based rejuvenation* optimization:
per-core copies of entry aging data mean flow rejuvenation needs **no**
write lock in steady state, so only genuine state mutations (new flows,
token-bucket updates) count as writes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw import params
from repro.hw.cpu import NfCostProfile

__all__ = ["RwLockModel"]


@dataclass(frozen=True)
class RwLockModel:
    """Cost model for the custom read/write lock."""

    read_cycles: float = params.RWLOCK_READ_CYCLES
    write_base_cycles: float = params.RWLOCK_WRITE_BASE_CYCLES
    write_per_core_cycles: float = params.RWLOCK_WRITE_PER_CORE_CYCLES

    def read_overhead(self) -> float:
        """Per-packet cycles added on the fast (read-only) path."""
        return self.read_cycles

    def write_overhead(self, n_cores: int, profile: NfCostProfile) -> float:
        """Extra cycles a write packet spends on its own core.

        Includes the speculative-read restart (§3.6: "we stop processing,
        release the local lock, acquire all core-specific locks, and
        restart processing the packet from the beginning").
        """
        acquire_all = self.write_base_cycles + self.write_per_core_cycles * n_cores
        restart = profile.base_cycles  # the discarded speculative pass
        return acquire_all + restart

    def exclusive_section(self, n_cores: int, profile: NfCostProfile) -> float:
        """Cycles during which all other cores are blocked per write.

        The lock is held while the packet's stateful body re-executes
        (`write_critical_cycles`) plus the staggered acquisition itself.
        """
        return (
            profile.write_critical_cycles
            + self.write_per_core_cycles * n_cores
        )
