"""Per-NF CPU cost profiles.

A packet's service time is ``base_cycles`` (parsing, branching, header
rewrites, TX) plus one memory-hierarchy access per stateful operation —
the operation counts are *measured* by running the real sequential NF on a
sample trace (:func:`measure_profile`), so the cost model stays tied to
the actual implementations rather than hand-waved per-NF constants.

``state_bytes_per_flow`` (hash-bucket + vector entry + allocator entry,
cache-line padded) and ``base_cycles`` come from the table below, sized
after the Vigor data structures the paper's NFs use.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.nf.api import NF
from repro.nf.packet import Packet
from repro.nf.runtime import SequentialRunner

__all__ = [
    "NfCostProfile",
    "BASE_PROFILES",
    "benchmark_trace",
    "measure_profile",
    "profile_for",
]


@dataclass(frozen=True)
class NfCostProfile:
    """Everything the performance model needs to price one packet."""

    name: str
    #: stateless per-packet work: parse, branch, rewrite, enqueue for TX
    base_cycles: float
    #: cache-line-padded state footprint per tracked flow (bytes)
    state_bytes_per_flow: float
    #: entries the NF effectively tracks per 5-tuple flow (PSD tracks one
    #: per (src, dst_port) pair, inflating its footprint)
    entries_per_flow: float = 1.0
    #: measured stateful operations per packet
    mem_ops_per_packet: float = 2.0
    #: measured fraction of packets doing a non-rejuvenation write when
    #: there is no churn (the Policer's token bucket makes this 1.0)
    intrinsic_write_fraction: float = 0.0
    #: cycles spent inside an exclusive critical section per write packet
    write_critical_cycles: float = 120.0
    #: relative conflict weight of one transaction (drives TM aborts)
    tm_conflict_weight: float = 1.0


#: Static per-NF constants (cycles calibrated to the §6.4 single-core
#: rates; footprints from the Vigor structure layouts).
BASE_PROFILES: dict[str, NfCostProfile] = {
    profile.name: profile
    for profile in [
        NfCostProfile("nop", base_cycles=110.0, state_bytes_per_flow=0.0,
                      tm_conflict_weight=0.0),
        NfCostProfile("sbridge", base_cycles=150.0, state_bytes_per_flow=64.0,
                      tm_conflict_weight=0.1),
        NfCostProfile("dbridge", base_cycles=240.0, state_bytes_per_flow=128.0,
                      write_critical_cycles=140.0, tm_conflict_weight=1.2),
        NfCostProfile("policer", base_cycles=200.0, state_bytes_per_flow=128.0,
                      write_critical_cycles=150.0, tm_conflict_weight=1.5),
        NfCostProfile("fw", base_cycles=260.0, state_bytes_per_flow=192.0,
                      write_critical_cycles=160.0, tm_conflict_weight=1.6),
        NfCostProfile("psd", base_cycles=380.0, state_bytes_per_flow=192.0,
                      entries_per_flow=6.0, write_critical_cycles=200.0,
                      tm_conflict_weight=2.4),
        NfCostProfile("nat", base_cycles=300.0, state_bytes_per_flow=256.0,
                      write_critical_cycles=180.0, tm_conflict_weight=1.8),
        NfCostProfile("lb", base_cycles=320.0, state_bytes_per_flow=256.0,
                      write_critical_cycles=190.0, tm_conflict_weight=2.0),
        NfCostProfile("cl", base_cycles=420.0, state_bytes_per_flow=256.0,
                      entries_per_flow=1.5, write_critical_cycles=220.0,
                      tm_conflict_weight=2.6),
    ]
}


def benchmark_trace(
    nf: NF,
    n_flows: int = 256,
    packets: int = 1024,
    *,
    seed: int = 12345,
    pkt_size: int = 64,
) -> list[tuple[int, Packet]]:
    """A uniform trace matching the NF's ``benchmark_traffic`` spec.

    Used both for profiling and by the figure harnesses: the stateful
    direction (and optional symmetric replies / registration heartbeats)
    follow each NF's declared benchmark workload.
    """
    rng = np.random.default_rng(seed)
    spec = nf.benchmark_traffic
    forward_port = spec.get("forward_port", 0)
    reply_port = spec.get("reply_port")
    reply_fraction = spec.get("reply_fraction", 0.0)
    heartbeats = spec.get("warmup_heartbeats", 0)
    other = [p for p in nf.port_ids() if p != forward_port]
    trace: list[tuple[int, Packet]] = []

    for beat in range(heartbeats):
        # Registration traffic (LB backends) from stable addresses.
        trace.append(
            (
                other[0] if other else forward_port,
                Packet(
                    src_ip=0x0A000001 + beat,
                    dst_ip=0x0A00FFFE,
                    src_port=5000,
                    dst_port=5000,
                    wire_size=pkt_size,
                ),
            )
        )

    flows = [
        Packet(
            src_ip=int(rng.integers(1, 2**32)),
            dst_ip=int(rng.integers(1, 2**32)),
            src_port=int(rng.integers(1, 2**16)),
            dst_port=int(rng.integers(1, 2**16)),
            wire_size=pkt_size,
        )
        for _ in range(n_flows)
    ]
    seen: set[int] = set()
    for i in range(packets):
        pick = int(rng.integers(0, n_flows))
        pkt = flows[pick]
        is_reply = (
            reply_port is not None
            and rng.random() < reply_fraction
            and pick in seen
        )
        if is_reply:
            trace.append((reply_port, pkt.inverted()))
        else:
            seen.add(pick)
            trace.append((forward_port, pkt))
    return trace


def measure_profile(nf: NF, base: NfCostProfile | None = None) -> NfCostProfile:
    """Measure per-packet operation counts by running the sequential NF."""
    base = base or BASE_PROFILES.get(
        nf.name, NfCostProfile(nf.name, base_cycles=250.0, state_bytes_per_flow=128.0)
    )
    runner = SequentialRunner(nf)
    trace = benchmark_trace(nf)
    # Warm-up pass: flow tables fill, so the measured pass reflects the
    # steady state (the paper's no-churn, read-heavy workload of §6.4).
    for i, (port, pkt) in enumerate(trace):
        runner.process(port, pkt, now=i * 1e-6)
    mem_ops = 0
    writers = 0
    total = 0
    for port, pkt in trace:
        result = runner.process(port, pkt, now=1.0 + total * 1e-6)
        total += 1
        mem_ops += len(result.ops)
        hard_writes = [
            op
            for op in result.ops
            if op.write and op.op not in ("dchain_rejuvenate", "expire")
        ]
        writers += bool(hard_writes)
    return replace(
        base,
        mem_ops_per_packet=mem_ops / max(1, total),
        intrinsic_write_fraction=writers / max(1, total),
    )


_PROFILE_CACHE: dict[str, NfCostProfile] = {}


def profile_for(nf: NF) -> NfCostProfile:
    """Measured profile for ``nf`` (cached per NF name)."""
    if nf.name not in _PROFILE_CACHE:
        _PROFILE_CACHE[nf.name] = measure_profile(nf)
    return _PROFILE_CACHE[nf.name]
