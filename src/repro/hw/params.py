"""Calibration constants for the simulated testbed (§6.2).

Models the paper's hardware: dual-socket Intel Xeon Gold 6226R @ 2.90 GHz,
Intel E810 100 Gbps NICs on PCIe 3.0 x16, DDIO enabled.  Values are either
published hardware parameters or calibrated so the *bottleneck structure*
matches the paper's measurements (e.g. ~45 Gbps / ~91 Mpps for 64-byte
packets against the PCIe ceiling of Figure 8).  All uses reference this
module, so recalibration is a one-file change.
"""

from __future__ import annotations

#: Xeon Gold 6226R nominal frequency (Turbo Boost disabled, §6.2).
CPU_FREQ_HZ: float = 2.9e9

#: Line rate of the testbed NICs.
LINE_RATE_GBPS: float = 100.0

#: Ethernet preamble + inter-frame gap, counted against line rate.
WIRE_OVERHEAD_BYTES: int = 20

#: Effective PCIe 3.0 x16 payload bandwidth (after 128b/130b coding and
#: TLP framing: ~15.75 GB/s raw, ~14 GB/s effective).
PCIE_EFFECTIVE_GBPS: float = 112.0

#: Per-packet PCIe cost beyond the payload: descriptor fetch/writeback,
#: doorbells, TLP headers.  Calibrated so 64 B packets top out at
#: ~91 Mpps (~46 Gbps on the wire), matching Figure 8 and [57, 6]; the
#: PCIe/line-rate crossover lands near 555 B, so large packets and the
#: Internet mix are line-rate-bound as in the paper.
PCIE_PER_PACKET_OVERHEAD_BYTES: float = 89.0

# ------------------------------------------------------------------ #
# Cache hierarchy (per §4, *NUMA considerations*)
# ------------------------------------------------------------------ #
L1D_BYTES: int = 32 * 1024
L2_BYTES: int = 1024 * 1024
#: Shared LLC per socket (Xeon Gold 6226R: 22 MB); a slice is reserved
#: for DDIO packet buffers, hence the usable fraction below.
LLC_BYTES: int = 22 * 1024 * 1024
DDIO_LLC_FRACTION: float = 0.10

#: Access costs in cycles per stateful operation when the operand resides
#: at each level.
L1_CYCLES: float = 4.0
L2_CYCLES: float = 14.0
LLC_CYCLES: float = 44.0
DRAM_CYCLES: float = 180.0

#: Extra cycles for a DRAM access on the remote NUMA node (QPI hop).
NUMA_REMOTE_EXTRA_CYCLES: float = 120.0

# ------------------------------------------------------------------ #
# Read/write lock model (§3.6, custom per-core cache-aligned rwlock)
# ------------------------------------------------------------------ #
#: Taking/releasing the core-local read lock: one uncontended,
#: cache-resident atomic pair.
RWLOCK_READ_CYCLES: float = 24.0
#: Fixed cost of switching to write mode (release local, restart logic).
RWLOCK_WRITE_BASE_CYCLES: float = 160.0
#: Acquiring each core-specific lock (in order) costs one cross-core
#: cache-line transfer.
RWLOCK_WRITE_PER_CORE_CYCLES: float = 70.0

#: Extra exclusive cycles per *churn-induced* write under locks/TM-fallback:
#: creating a flow implies expiring another, and expiry under the global
#: write lock must inspect the per-core aging copies on every core (§4,
#: *Lock-based rejuvenation*), erase the map entry, and free the allocator
#: index — a cascade of cross-core cache misses plus the restart of any
#: speculative readers.  Calibrated so the lock-based FW's collapse knee
#: lands near the paper's ~100k fpm (Figure 9, 64 B packets).
CHURN_EXCLUSIVE_EXTRA_CYCLES: float = 60_000.0

# ------------------------------------------------------------------ #
# Hardware transactional memory model (Intel RTM, §6)
# ------------------------------------------------------------------ #
TM_BEGIN_COMMIT_CYCLES: float = 50.0
TM_ABORT_PENALTY_CYCLES: float = 180.0
TM_MAX_RETRIES: int = 8
#: Scale factor mapping (conflict weight x writers x footprint) to a
#: per-pair conflict probability.
TM_CONFLICT_SCALE: float = 1.0

# ------------------------------------------------------------------ #
# Simulation protocol
# ------------------------------------------------------------------ #
#: Loss tolerance of the rate search (§6.2: "less than 0.1% loss").
LOSS_TOLERANCE: float = 0.001
#: Queue depth per core used by the latency model.
RX_QUEUE_DEPTH: int = 512


def wire_pps(gbps: float, pkt_size: int) -> float:
    """Packets/s a given wire rate carries at ``pkt_size`` (incl. IFG)."""
    return gbps * 1e9 / 8.0 / (pkt_size + WIRE_OVERHEAD_BYTES)


def line_rate_pps(pkt_size: int) -> float:
    """Line-rate ceiling in packets per second."""
    return wire_pps(LINE_RATE_GBPS, pkt_size)


def pcie_pps(pkt_size: int) -> float:
    """PCIe ceiling in packets per second (the Figure 8 bottleneck)."""
    per_packet_bytes = pkt_size + PCIE_PER_PACKET_OVERHEAD_BYTES
    return PCIE_EFFECTIVE_GBPS * 1e9 / 8.0 / per_packet_bytes


def pps_to_gbps(pps: float, pkt_size: int) -> float:
    """Data rate (payload bits on the wire, as the paper reports)."""
    return pps * pkt_size * 8.0 / 1e9
