"""VPP baseline model (§6.4, Figure 11).

VPP extends batching to the whole packet-processing pipeline: vectors of
packets traverse each graph node together, amortizing instruction-cache
misses — a lower *stateless* per-packet cost than a run-to-completion
design.  Its nat44-ei, however, is a shared-memory design: "packets can
end up on any core without regard to flows or locality", so its state
working set is the whole table on every core and its per-flow cache
locality is worse.  The paper's perf measurements (55% vs 46% L1 hit rate,
3% vs 4% DRAM) anchor the ``locality_penalty`` below.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.cpu import NfCostProfile

__all__ = ["VppModel", "VPP_NAT44_EI"]


@dataclass(frozen=True)
class VppModel:
    """Cost adjustments for a VPP-style batched shared-memory NF."""

    #: multiplier on base cycles from vectorized batching (i-cache wins)
    batching_factor: float = 0.82
    #: per-packet cycles for the thread-safe shared session table
    #: (bucket locks / atomics in nat44-ei's data plane)
    atomic_cycles: float = 70.0
    #: multiplier on memory-access cycles from the flow-oblivious core
    #: assignment (Maestro NAT: 55% L1 / 3% RAM vs VPP: 46% L1 / 4% RAM)
    locality_penalty: float = 1.22

    def adjust_profile(self, profile: NfCostProfile) -> NfCostProfile:
        """A profile with VPP's batched base cost."""
        from dataclasses import replace

        return replace(
            profile,
            name=f"vpp-{profile.name}",
            base_cycles=profile.base_cycles * self.batching_factor
            + self.atomic_cycles,
        )


#: The comparison target of Figure 11 (feature-stripped nat44-ei).
VPP_NAT44_EI = VppModel()
