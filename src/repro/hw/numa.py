"""NUMA placement model (§4, *NUMA considerations*).

Implements the paper's rule of thumb: "if the LLC is large enough to hold
all packet buffers at line-rate, then we should pin both the CPU and
memory to the same NUMA node as the NIC.  If, however, the LLC is too
small ... it's better to distribute cores evenly across NUMA nodes."
On the modelled testbed the LLC is large enough, so all experiments pin to
the NIC's node — matching the paper's setup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw import params

__all__ = ["NumaTopology", "PinningAdvice", "DEFAULT_TOPOLOGY"]


@dataclass(frozen=True)
class PinningAdvice:
    """The placement decision and its rationale."""

    single_node: bool
    buffers_bytes: int
    ddio_capacity_bytes: int
    reason: str


@dataclass(frozen=True)
class NumaTopology:
    """A dual-socket host with one dual-port NIC on node 0."""

    nodes: int = 2
    cores_per_node: int = 16
    nic_node: int = 0
    llc_bytes: int = params.LLC_BYTES
    ddio_fraction: float = params.DDIO_LLC_FRACTION

    def in_flight_buffer_bytes(
        self, pkt_size: int, rx_descriptors: int = params.RX_QUEUE_DEPTH, queues: int = 16
    ) -> int:
        """Worst-case bytes of packet buffers DDIO keeps in the LLC."""
        # DPDK mbufs are rounded up to 2 KiB data rooms; the descriptor
        # ring bounds how many can be in flight per queue.
        buffer_bytes = max(2048, pkt_size)
        return rx_descriptors * queues * buffer_bytes // 8

    def advise(self, pkt_size: int = 64, queues: int = 16) -> PinningAdvice:
        """Apply the paper's rule of thumb."""
        ddio_capacity = int(self.llc_bytes * self.ddio_fraction)
        buffers = self.in_flight_buffer_bytes(pkt_size, queues=queues)
        single = buffers <= ddio_capacity
        reason = (
            "LLC holds all in-flight packet buffers: pin CPU+memory to the "
            "NIC's node"
            if single
            else "DDIO slice overflows: spread cores across nodes for more "
            "aggregate LLC"
        )
        return PinningAdvice(
            single_node=single,
            buffers_bytes=buffers,
            ddio_capacity_bytes=ddio_capacity,
            reason=reason,
        )

    def remote_access_extra_cycles(self) -> float:
        return params.NUMA_REMOTE_EXTRA_CYCLES


DEFAULT_TOPOLOGY = NumaTopology()
