"""Hardware transactional memory model (Intel RTM baseline, §6).

Each packet runs inside a transaction; a transaction aborts when another
core concurrently touches an overlapping cache line.  The per-attempt
conflict probability grows with (a) the transaction's footprint — complex
NFs touch more state per packet — (b) the number of concurrent cores, and
(c) the fraction of packets that *write* (new flows under churn, plus the
NF's intrinsic writes; unlike the read/write-lock design, TM cannot avoid
transactional aging updates, which is part of why the paper finds it
"performs abysmally" on complex NFs even without churn).

Aborted transactions retry up to ``TM_MAX_RETRIES`` times, then fall back
to a global lock — matching the standard RTM usage pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw import params
from repro.hw.cpu import NfCostProfile

__all__ = ["TmModel"]


@dataclass(frozen=True)
class TmModel:
    """Abort-probability + retry cost model for RTM."""

    begin_commit_cycles: float = params.TM_BEGIN_COMMIT_CYCLES
    abort_penalty_cycles: float = params.TM_ABORT_PENALTY_CYCLES
    max_retries: int = params.TM_MAX_RETRIES
    conflict_scale: float = params.TM_CONFLICT_SCALE

    def abort_probability(
        self, n_cores: int, profile: NfCostProfile, write_fraction: float
    ) -> float:
        """Per-attempt abort probability with ``n_cores`` concurrent."""
        if n_cores <= 1:
            return 0.0
        # Unlike the rwlock design (whose §4 rejuvenation optimization
        # keeps aging updates core-local), TM cannot avoid transactional
        # aging writes, hash-bucket sharing, or capacity aborts; the
        # conflict weight summarizes the transaction's footprint.
        per_pair = (
            0.02
            * self.conflict_scale
            * profile.tm_conflict_weight
            * (0.5 + 2.0 * write_fraction)
        )
        per_pair = min(0.6, per_pair)
        return min(0.97, 1.0 - (1.0 - per_pair) ** (n_cores - 1))

    def expected_attempts(self, abort_probability: float) -> float:
        """Mean attempts per packet, capped by the lock fallback."""
        if abort_probability <= 0.0:
            return 1.0
        # Truncated geometric: retries stop at max_retries (then the
        # fallback path runs once under a global lock).
        p = abort_probability
        attempts = (1.0 - p**self.max_retries) / (1.0 - p)
        return attempts + p**self.max_retries  # fallback execution

    def packet_overhead(
        self,
        n_cores: int,
        profile: NfCostProfile,
        write_fraction: float,
        body_cycles: float,
    ) -> tuple[float, float]:
        """(extra cycles per packet, serialized fallback cycles per packet).

        ``body_cycles`` is the transactional body (base + memory work);
        wasted attempts re-execute it.
        """
        p_abort = self.abort_probability(n_cores, profile, write_fraction)
        attempts = self.expected_attempts(p_abort)
        wasted = attempts - 1.0
        extra = (
            self.begin_commit_cycles * attempts
            + wasted * (body_cycles + self.abort_penalty_cycles)
        )
        fallback_fraction = p_abort**self.max_retries
        serialized = fallback_fraction * (
            body_cycles + profile.write_critical_cycles
        )
        return extra, serialized
