"""PCIe and line-rate bottleneck models (Figure 8).

"Prior work has pointed out that this bottleneck comes from PCIe 3.0 x16
and cannot be overcome without improved hardware" — small packets pay a
fixed per-packet PCIe cost (descriptors, doorbells, TLP framing) that caps
throughput near ~91 Mpps regardless of how many cores are available, while
large packets reach the 100 Gbps line rate.
"""

from __future__ import annotations

import enum

from repro.hw import params

__all__ = ["Bottleneck", "io_ceiling_pps", "bottleneck_for"]


class Bottleneck(enum.Enum):
    """What limited an experiment's throughput."""

    CPU = "cpu"
    PCIE = "pcie"
    LINE_RATE = "line-rate"


def io_ceiling_pps(pkt_size: int) -> float:
    """The I/O throughput ceiling: min(PCIe, line rate) in packets/s."""
    return min(params.pcie_pps(pkt_size), params.line_rate_pps(pkt_size))


def bottleneck_for(achieved_pps: float, cpu_pps: float, pkt_size: int) -> Bottleneck:
    """Classify which ceiling bound an achieved rate."""
    pcie = params.pcie_pps(pkt_size)
    line = params.line_rate_pps(pkt_size)
    ceilings = {
        Bottleneck.CPU: cpu_pps,
        Bottleneck.PCIE: pcie,
        Bottleneck.LINE_RATE: line,
    }
    return min(ceilings, key=lambda k: ceilings[k])
