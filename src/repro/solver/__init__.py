"""Solvers: GF(2) linear algebra and equality-logic satisfiability.

These replace the paper's use of Z3 (see DESIGN.md §2 for the soundness
argument of the substitution).
"""

from repro.solver import eqsmt, gf2
from repro.solver.eqsmt import Result, check, find_model, is_definitely_unsat

__all__ = [
    "gf2",
    "eqsmt",
    "Result",
    "check",
    "find_model",
    "is_definitely_unsat",
]
