"""Linear algebra over GF(2).

The Toeplitz hash used by RSS (§3.5, Figure 4 of the paper) is linear over
GF(2) in the key bits for any fixed input.  RS3's key-search problem —
Equation (3): *find keys such that all packet pairs satisfying the sharding
constraints collide* — therefore compiles to a homogeneous linear system
over GF(2) for the constraint class emitted by the Constraints Generator
(conjunctions of packet-field equalities).  This module provides the exact
solver for such systems: row reduction, nullspace computation, and random
sampling of the solution space (used by the key-densification loop that
replaces the paper's Partial MaxSAT formulation, see DESIGN.md §2).

Matrices are ``numpy`` arrays of dtype ``uint8`` holding only 0/1 values.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "rref",
    "rank",
    "nullspace",
    "solve",
    "random_solution",
    "is_in_span",
]


def _as_gf2(matrix: np.ndarray) -> np.ndarray:
    out = np.asarray(matrix, dtype=np.uint8) & 1
    if out.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got shape {out.shape}")
    return out


def rref(matrix: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row-echelon form of ``matrix`` over GF(2).

    Returns ``(reduced, pivot_columns)``.  The reduction is performed with
    vectorized XOR row updates, so systems with a few thousand variables
    (52-byte keys for several ports) solve in milliseconds.
    """
    m = _as_gf2(matrix).copy()
    rows, cols = m.shape
    pivots: list[int] = []
    row = 0
    for col in range(cols):
        if row >= rows:
            break
        # Find a pivot at or below `row` in this column.
        candidates = np.nonzero(m[row:, col])[0]
        if candidates.size == 0:
            continue
        pivot = row + int(candidates[0])
        if pivot != row:
            m[[row, pivot]] = m[[pivot, row]]
        # Eliminate this column from every other row.
        others = np.nonzero(m[:, col])[0]
        others = others[others != row]
        if others.size:
            m[others] ^= m[row]
        pivots.append(col)
        row += 1
    return m, pivots


def rank(matrix: np.ndarray) -> int:
    """Rank of ``matrix`` over GF(2)."""
    _, pivots = rref(matrix)
    return len(pivots)


def nullspace(matrix: np.ndarray) -> np.ndarray:
    """Basis of the right nullspace of ``matrix`` over GF(2).

    Returns an array of shape ``(dim, n_vars)`` whose rows form a basis of
    ``{x : matrix @ x == 0 (mod 2)}``.  An empty matrix (no constraints)
    yields the identity basis.
    """
    m = _as_gf2(matrix)
    n_vars = m.shape[1]
    if m.shape[0] == 0:
        return np.eye(n_vars, dtype=np.uint8)
    reduced, pivots = rref(m)
    pivot_set = set(pivots)
    free_cols = [c for c in range(n_vars) if c not in pivot_set]
    basis = np.zeros((len(free_cols), n_vars), dtype=np.uint8)
    for i, free in enumerate(free_cols):
        basis[i, free] = 1
        # Back-substitute: each pivot row determines its pivot variable.
        for row_idx, pivot_col in enumerate(pivots):
            if reduced[row_idx, free]:
                basis[i, pivot_col] = 1
    return basis


def solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    """One particular solution of ``matrix @ x == rhs`` over GF(2).

    Returns ``None`` when the system is inconsistent.
    """
    m = _as_gf2(matrix)
    b = np.asarray(rhs, dtype=np.uint8) & 1
    if b.ndim != 1 or b.shape[0] != m.shape[0]:
        raise ValueError("rhs shape does not match matrix")
    augmented = np.concatenate([m, b[:, None]], axis=1)
    reduced, pivots = rref(augmented)
    n_vars = m.shape[1]
    if n_vars in pivots:
        return None  # A pivot in the RHS column means 0 == 1.
    x = np.zeros(n_vars, dtype=np.uint8)
    for row_idx, pivot_col in enumerate(pivots):
        x[pivot_col] = reduced[row_idx, n_vars]
    return x


def random_solution(
    matrix: np.ndarray,
    rng: np.random.Generator,
    *,
    one_bias: float = 0.5,
) -> np.ndarray:
    """A random element of the nullspace of ``matrix``.

    ``one_bias`` biases the random combination towards solutions with many
    1-bits, mirroring the paper's soft-constraint preference for dense keys
    (§4, *Finding good RSS keys*).  With ``one_bias=0.5`` the solution is
    uniform over the nullspace.
    """
    basis = nullspace(matrix)
    if basis.shape[0] == 0:
        return np.zeros(matrix.shape[1], dtype=np.uint8)
    coeffs = (rng.random(basis.shape[0]) < one_bias).astype(np.uint8)
    return (coeffs @ basis) & 1


def is_in_span(matrix: np.ndarray, vector: np.ndarray) -> bool:
    """True when ``vector`` lies in the row-span of ``matrix``."""
    m = _as_gf2(matrix)
    v = (np.asarray(vector, dtype=np.uint8) & 1)[None, :]
    return rank(m) == rank(np.concatenate([m, v], axis=0))
