"""Lightweight satisfiability checking for ESE path conditions.

The paper hands path constraints to Z3 (§3.3).  The NF class Maestro
supports (Vigor-style, §5) only branches on (dis)equalities and unsigned
comparisons over packet fields and traced state, so a far smaller decision
procedure suffices here:

* **Equality logic with constants** is decided exactly via congruence
  closure (union-find over opaque terms, conflicts on distinct constants
  or violated disequalities).
* **Arithmetic / ordering atoms** fall back to bounded randomized model
  search.  When no model is found and no structural contradiction exists
  the result is :data:`Result.UNKNOWN`, which the ESE engine treats as
  *feasible* — pruning only provably-unsat paths keeps exploration sound.
"""

from __future__ import annotations

import enum
import itertools
import random
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.symbex import expr as E

__all__ = ["Result", "check", "is_definitely_unsat", "find_model"]


class Result(enum.Enum):
    """Tri-state satisfiability verdict."""

    SAT = "sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class _UnionFind:
    parent: dict[E.Expr, E.Expr] = field(default_factory=dict)

    def find(self, term: E.Expr) -> E.Expr:
        self.parent.setdefault(term, term)
        root = term
        while self.parent[root] != root:
            root = self.parent[root]
        # Path compression.
        while self.parent[term] != root:
            self.parent[term], term = root, self.parent[term]
        return root

    def union(self, lhs: E.Expr, rhs: E.Expr) -> None:
        root_l, root_r = self.find(lhs), self.find(rhs)
        if root_l == root_r:
            return
        # Prefer constants as class representatives so conflicts surface.
        if isinstance(root_l, E.Const):
            self.parent[root_r] = root_l
        else:
            self.parent[root_l] = root_r


def _normalize(literal: E.Expr) -> tuple[E.Expr, bool]:
    """Strip negations; returns ``(atom, polarity)``."""
    polarity = True
    while isinstance(literal, E.Not):
        literal = literal.expr
        polarity = not polarity
    return literal, polarity


def _flatten(literals: Iterable[E.Expr]) -> list[tuple[E.Expr, bool]] | None:
    """Expand conjunctions and normalize polarity.

    Returns ``None`` when a literal is the constant *false* (trivially
    UNSAT).
    """
    out: list[tuple[E.Expr, bool]] = []
    stack = list(literals)
    while stack:
        lit = stack.pop()
        atom, pol = _normalize(lit)
        if isinstance(atom, E.And) and pol:
            stack.extend([atom.lhs, atom.rhs])
            continue
        if isinstance(atom, E.Or) and not pol:
            # !(a | b) == !a & !b
            stack.extend([E.Not(atom.lhs), E.Not(atom.rhs)])
            continue
        if isinstance(atom, E.Const):
            if (atom.value == 1) != pol:
                return None
            continue
        out.append((atom, pol))
    return out


def _closure(
    atoms: Sequence[tuple[E.Expr, bool]],
) -> tuple[_UnionFind, list[tuple[E.Expr, E.Expr]], list[tuple[E.Expr, bool]]] | None:
    """Congruence closure over the equality atoms.

    Returns ``(uf, disequalities, residual_atoms)`` or ``None`` if an
    immediate contradiction (two distinct constants merged) arises.
    ``residual_atoms`` holds the atoms the closure cannot decide
    (orderings, arithmetic relations used as booleans).
    """
    uf = _UnionFind()
    disequalities: list[tuple[E.Expr, E.Expr]] = []
    residual: list[tuple[E.Expr, bool]] = []
    equalities: list[tuple[E.Expr, E.Expr]] = []

    for atom, pol in atoms:
        if isinstance(atom, E.Eq):
            pair = (atom.lhs, atom.rhs)
            (equalities if pol else disequalities).append(pair)
        elif isinstance(atom, E.Ne):
            pair = (atom.lhs, atom.rhs)
            (disequalities if pol else equalities).append(pair)
        elif isinstance(atom, E.Sym) and atom.width == 1:
            equalities.append((atom, E.Const(1, 1 if pol else 0)))
        else:
            residual.append((atom, pol))

    for lhs, rhs in equalities:
        uf.union(lhs, rhs)

    # Iterate to a fixpoint is unnecessary for plain equality logic without
    # uninterpreted functions; one pass of merges suffices, then conflicts:
    rep: dict[E.Expr, E.Expr] = {}
    for term in list(uf.parent):
        root = uf.find(term)
        if isinstance(term, E.Const):
            seen = rep.get(root)
            if seen is not None and seen.value != term.value:
                return None
            rep[root] = term
    for lhs, rhs in disequalities:
        if uf.find(lhs) == uf.find(rhs):
            return None
    return uf, disequalities, residual


def _random_model_search(
    literals: Sequence[E.Expr],
    uf: _UnionFind,
    *,
    attempts: int,
    seed: int,
) -> dict[str, int] | None:
    """Try random assignments consistent with the equality classes."""
    symbols: set[E.Sym] = set()
    for lit in literals:
        symbols |= E.free_symbols(lit)
    if not symbols:
        symbols = set()
    rng = random.Random(seed)
    interesting = [0, 1, 2, 255, 256, 65535]
    for _ in range(attempts):
        env: dict[str, int] = {}
        class_value: dict[E.Expr, int] = {}
        for sym in symbols:
            root = uf.find(sym) if sym in uf.parent else sym
            if isinstance(root, E.Const):
                env[sym.name] = root.value
                continue
            if root not in class_value:
                if rng.random() < 0.4:
                    class_value[root] = rng.choice(interesting)
                else:
                    class_value[root] = rng.getrandbits(min(sym.width, 62))
            env[sym.name] = class_value[root] & ((1 << sym.width) - 1)
        try:
            if all(E.evaluate(lit, env) == 1 for lit in literals):
                return env
        except Exception:  # noqa: BLE001 - unbound aux symbols etc.
            continue
    return None


def check(
    literals: Iterable[E.Expr],
    *,
    attempts: int = 64,
    seed: int = 0,
) -> Result:
    """Check satisfiability of a conjunction of 1-bit literals."""
    lits = list(literals)
    atoms = _flatten(lits)
    if atoms is None:
        return Result.UNSAT
    closed = _closure(atoms)
    if closed is None:
        return Result.UNSAT
    uf, _, residual = closed
    if not residual:
        # Pure equality logic: congruence closure is a decision procedure
        # here, so the absence of conflict means SAT.
        return Result.SAT
    model = _random_model_search(lits, uf, attempts=attempts, seed=seed)
    if model is not None:
        return Result.SAT
    return Result.UNKNOWN


def is_definitely_unsat(literals: Iterable[E.Expr]) -> bool:
    """True only when the conjunction is *provably* unsatisfiable."""
    return check(literals) is Result.UNSAT


def find_model(
    literals: Iterable[E.Expr],
    *,
    attempts: int = 256,
    seed: int = 0,
) -> dict[str, int] | None:
    """Best-effort model for a conjunction of literals (None on failure)."""
    lits = list(literals)
    atoms = _flatten(lits)
    if atoms is None:
        return None
    closed = _closure(atoms)
    if closed is None:
        return None
    uf, _, _ = closed
    return _random_model_search(lits, uf, attempts=attempts, seed=seed)
