"""Maestro reproduction: automatic parallelization of software NFs.

Python reproduction of *"Automatic Parallelization of Software Network
Functions"* (NSDI 2024): write a sequential NF against the Vigor-style
API, and :class:`repro.Maestro` analyzes it with exhaustive symbolic
execution, finds a sharding solution (rules R1-R5), solves for RSS keys
that realize it in the NIC, and generates a parallel implementation --
shared-nothing when possible, optimized read/write locks otherwise.

Quickstart::

    from repro import Maestro
    from repro.nf.nfs import Firewall

    maestro = Maestro(seed=0)
    result = maestro.analyze(Firewall())
    print(result.solution.describe())        # verdict + sharding + keys
    parallel = maestro.parallelize(Firewall(), n_cores=16, result=result)
    core, outcome = parallel.process(port=0, pkt=some_packet)

See ``examples/`` for runnable scenarios and ``python -m repro.eval all``
for the paper's figures.
"""

from repro import obs
from repro.core import (
    Maestro,
    MaestroResult,
    ParallelNF,
    ShardingSolution,
    Strategy,
    Verdict,
    emit_c,
)
from repro.nf import (
    NF,
    ActionKind,
    FiveTuple,
    NfContext,
    Packet,
    SequentialRunner,
    StateDecl,
    StateKind,
)
from repro.sim import (
    PerformanceModel,
    Workload,
    check_equivalence,
    run_functional,
)

__version__ = "1.0.0"

__all__ = [
    "obs",
    "Maestro",
    "MaestroResult",
    "ParallelNF",
    "ShardingSolution",
    "Strategy",
    "Verdict",
    "emit_c",
    "NF",
    "ActionKind",
    "FiveTuple",
    "NfContext",
    "Packet",
    "SequentialRunner",
    "StateDecl",
    "StateKind",
    "PerformanceModel",
    "Workload",
    "check_equivalence",
    "run_functional",
    "__version__",
]
