#!/usr/bin/env python3
"""Attacking state sharding — and why key randomization helps (§5).

Plays the attacker against a shared-nothing firewall: brute-force flows
whose RSS hashes collide into one indirection-table entry, exhaust the
victim core's (smaller) flow shard, and show legitimate flows on that
core being denied — then replay the same attack set against a deployment
with freshly randomized keys and watch it scatter.

    python examples/shard_attack.py
"""

import numpy as np

from repro import Maestro
from repro.nf.api import ActionKind
from repro.nf.flow import FiveTuple
from repro.nf.nfs import Firewall
from repro.sim.attack import evaluate_attack, find_colliding_flows

N_CORES = 8
CAPACITY = 64  # small table to make exhaustion visible


def main() -> None:
    maestro = Maestro(seed=1000)
    result = maestro.analyze(Firewall(capacity=CAPACITY))
    parallel = maestro.parallelize(
        Firewall(capacity=CAPACITY), n_cores=N_CORES, result=result
    )
    per_core = CAPACITY // N_CORES

    print(f"firewall: {CAPACITY}-flow table sharded over {N_CORES} cores "
          f"({per_core} flows per shard)\n")

    print("=== attacker: searching for hash-colliding flows ===")
    attack = find_colliding_flows(
        parallel.rss.ports[0], per_core * 2, rng=np.random.default_rng(13)
    )
    outcome = evaluate_attack(parallel, attack)
    print(f"found {len(attack)} colliding flows after {attack.probes} probes "
          f"(~1 in {attack.probes // max(1, len(attack))})")
    print(f"all on one core: {outcome.concentrated}\n")

    print("=== attack: exhausting the victim shard ===")
    for flow in attack.flows:
        parallel.process(0, flow.packet())
    victim_core = parallel.core_for(0, attack.flows[0].packet())

    # A legitimate new flow that happens to hash to the victim core...
    rng = np.random.default_rng(99)
    while True:
        legit = FiveTuple(
            int(rng.integers(1, 2**32)), int(rng.integers(1, 2**32)),
            int(rng.integers(1, 2**16)), int(rng.integers(1, 2**16)),
        )
        if parallel.core_for(0, legit.packet()) == victim_core:
            break
    parallel.process(0, legit.packet())           # untracked (shard full)
    _, reply = parallel.process(1, legit.inverted().packet())
    print(f"victim core {victim_core}: shard full; a legitimate flow's "
          f"reply is now *{reply.kind.value}ped* — "
          f"{per_core * 2} attack flows sufficed "
          f"(sequential NF would need {CAPACITY})\n")

    print("=== defense: redeploy with freshly randomized keys ===")
    fresh_maestro = Maestro(seed=2000)
    fresh_result = fresh_maestro.analyze(Firewall(capacity=CAPACITY))
    fresh = fresh_maestro.parallelize(
        Firewall(capacity=CAPACITY), n_cores=N_CORES, result=fresh_result
    )
    dispersed = evaluate_attack(fresh, attack)
    print(f"the same attack set now hits {dispersed.cores_hit} cores "
          f"(max share {dispersed.max_core_share * 100:.0f}%) — the "
          "precomputed collisions are worthless against the new key, while "
          "flow symmetry (and thus correctness) is preserved by the "
          "sharding constraints.")


if __name__ == "__main__":
    main()
