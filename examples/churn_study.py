#!/usr/bin/env python3
"""Churn study (miniature Figure 9): when do locks stop being enough?

Sweeps relative churn for the firewall under all three strategies and
prints throughput with the derived absolute churn, reproducing the paper's
headline: shared-nothing is churn-immune, locks collapse around the
100k-fpm region, TM collapses hardest.

    python examples/churn_study.py
"""

from repro import PerformanceModel, Strategy, Workload
from repro.eval.runner import format_table
from repro.hw.cpu import profile_for
from repro.nf.nfs import Firewall
from repro.traffic import absolute_churn_fpm, churn_trace, TrafficGenerator

CHURN_FPG = [0, 20, 200, 2_000, 20_000]
N_CORES = 16


def main() -> None:
    profile = profile_for(Firewall())
    model = PerformanceModel()

    rows = []
    for churn in CHURN_FPG:
        workload = Workload(
            pkt_size=64, n_flows=65_536, relative_churn_fpg=churn
        )
        cells = [f"{churn:g}"]
        for strategy in (Strategy.SHARED_NOTHING, Strategy.LOCKS, Strategy.TM):
            result = model.throughput(profile, strategy, N_CORES, workload)
            fpm = absolute_churn_fpm(churn, result.gbps)
            cells.append(f"{result.mpps:6.1f} ({fpm:9.3g} fpm)")
        rows.append(cells)

    print(f"Firewall on {N_CORES} cores, 64B packets:")
    print(
        format_table(
            ["churn [f/Gbit]", "shared-nothing", "locks", "tm"], rows
        )
    )
    print()

    # The same churn, as an actual cyclic PCAP-style trace (§6.3's
    # methodology), to show the trace builder in action.
    generator = TrafficGenerator(seed=9)
    trace = churn_trace(
        generator, n_packets=20_000, n_live_flows=1_000,
        relative_churn_fpg=20_000,
    )
    fresh = len({pkt.flow_tuple() for _, pkt in trace}) - 1_000
    print(
        f"cyclic churn trace: 20k packets, 1k live flows, {fresh} flow "
        "replacements spread evenly through the file"
    )


if __name__ == "__main__":
    main()
