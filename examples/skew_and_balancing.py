#!/usr/bin/env python3
"""Traffic skew and indirection-table balancing (miniature Figure 5).

Generates the paper's Zipfian workload (1k flows, the top 48 carrying 80%
of packets), pushes it through the *actual* generated RSS configuration of
the shared-nothing firewall, and shows per-core load with and without the
static RSS++ rebalancing of §4 — then what that means for throughput.

    python examples/skew_and_balancing.py
"""

import numpy as np

from repro import Maestro, PerformanceModel, Strategy, Workload
from repro.hw.cpu import profile_for
from repro.nf.nfs import Firewall
from repro.sim.functional import run_functional
from repro.traffic import TrafficGenerator, paper_zipf_weights

N_CORES = 8


def share_bar(shares: np.ndarray) -> str:
    return " ".join(f"{s * 100:4.1f}%" for s in shares)


def main() -> None:
    maestro = Maestro(seed=5)
    result = maestro.analyze(Firewall())
    generator = TrafficGenerator(seed=55)
    trace, _ = generator.zipf_trace(20_000, 1_000, in_port=0)

    print(f"Zipfian workload: 20k packets, 1k flows, "
          f"top-48 flows = {paper_zipf_weights(1000)[:48].sum() * 100:.0f}% "
          "of traffic\n")

    runs = {}
    for balanced in (False, True):
        parallel = maestro.parallelize(Firewall(), n_cores=N_CORES, result=result)
        run = run_functional(
            parallel, trace, balance_tables_with=trace if balanced else None
        )
        runs[balanced] = run
        label = "balanced table  " if balanced else "unbalanced table"
        print(f"{label}: per-core load  {share_bar(run.core_shares())}")
        print(f"{' ' * 18}imbalance {run.imbalance():.2f}x fair share")

    model = PerformanceModel()
    profile = profile_for(Firewall())
    print()
    for balanced, run in runs.items():
        workload = Workload(
            pkt_size=64,
            n_flows=1_000,
            zipf_weights=paper_zipf_weights(1_000),
            core_shares=run.core_shares(),
        )
        rate = model.throughput(profile, Strategy.SHARED_NOTHING, N_CORES, workload)
        label = "balanced" if balanced else "unbalanced"
        print(f"throughput with {label:>10} table: {rate.mpps:5.1f} Mpps "
              f"({rate.bottleneck.value}-bound)")


if __name__ == "__main__":
    main()
