#!/usr/bin/env python3
"""Quickstart: parallelize the paper's firewall with one call.

Runs the whole Maestro pipeline on the sequential firewall (§3.1), prints
the analysis verdict, the RSS keys RS3 found, the generated DPDK-style
code, and then pushes a few packets through the parallel implementation to
show flow/core affinity and semantic equivalence.

    python examples/quickstart.py
"""

from repro import Maestro, SequentialRunner, emit_c
from repro.nf.flow import FiveTuple
from repro.nf.nfs import Firewall


def main() -> None:
    maestro = Maestro(seed=2024)

    print("=== 1. Analyze the sequential firewall ===")
    result = maestro.analyze(Firewall())
    print(result.solution.describe())
    print()
    for port, key in sorted(result.keys.items()):
        print(f"RSS key for port {port}: {key.hex()}")
    print()

    print("=== 2. Generate the parallel implementation (16 cores) ===")
    parallel = maestro.parallelize(Firewall(), n_cores=16, result=result)
    print(emit_c(parallel))

    print("=== 3. Flow/core affinity in action ===")
    flow = FiveTuple(
        src_ip=0x0A000001, dst_ip=0x5DB8D822, src_port=44321, dst_port=443
    )
    lan_core, outcome = parallel.process(0, flow.packet())
    print(f"LAN packet of {flow} -> core {lan_core}, {outcome.kind.value}")
    wan_core, reply = parallel.process(1, flow.inverted().packet())
    print(f"its WAN reply           -> core {wan_core}, {reply.kind.value}")
    assert lan_core == wan_core, "symmetric RSS keys guarantee this"

    stranger = FiveTuple(0xDEADBEEF, 0x0A000001, 53, 53)
    _, dropped = parallel.process(1, stranger.inverted().packet())
    print(f"unsolicited WAN packet  -> {dropped.kind.value}")

    print()
    print("=== 4. Equivalence with the sequential reference ===")
    sequential = SequentialRunner(Firewall())
    same = (
        sequential.process(0, flow.packet()).observable()
        == outcome.observable()
    )
    print(f"sequential and parallel agree: {same}")


if __name__ == "__main__":
    main()
