#!/usr/bin/env python3
"""Bring your own NF: write it sequentially, let Maestro parallelize it.

Implements a DNS-amplification guard from scratch against the library's NF
API: it tracks, per client (destination IP of responses), how many DNS
response bytes were delivered without a matching request, and drops the
excess.  The example then shows the two developer experiences the paper
describes (§3.4):

* the guard as written shards cleanly (Maestro finds the fields);
* adding a seemingly innocent *global* statistics counter destroys the
  shared-nothing verdict — and Maestro's explanation pinpoints why, so the
  developer can fix the design (per-flow stats) and get sharding back.

    python examples/custom_nf.py
"""

from typing import Any

from repro import Maestro, StateDecl, StateKind, Verdict
from repro.nf.api import NF, NfContext

LAN, WAN = 0, 1
DNS_PORT = 53


class DnsGuard(NF):
    """Per-client cap on unsolicited DNS response traffic."""

    name = "dns_guard"
    ports = {"lan": LAN, "wan": WAN}
    expiration_time = 30.0

    def __init__(self, capacity: int = 65536, budget_bytes: int = 4096):
        self.capacity = capacity
        self.budget_bytes = budget_bytes

    def state(self) -> list[StateDecl]:
        return [
            StateDecl("dns_clients", StateKind.MAP, self.capacity),
            StateDecl("dns_chain", StateKind.DCHAIN, self.capacity),
            StateDecl(
                "dns_budgets",
                StateKind.VECTOR,
                self.capacity,
                value_layout=(("spent", 32),),
            ),
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if port == LAN:
            ctx.forward(WAN)  # outbound queries are free
        if ctx.cond(ctx.lnot(ctx.eq(pkt.src_port, ctx.const(DNS_PORT, 16)))):
            ctx.forward(LAN)  # not a DNS response
        ctx.expire_flows("dns_clients", "dns_chain")
        key = (pkt.dst_ip,)  # the client being answered
        found, index = ctx.map_get("dns_clients", key)
        if ctx.cond(ctx.lnot(found)):
            ok, index = ctx.dchain_allocate("dns_chain")
            if ctx.cond(ctx.lnot(ok)):
                ctx.forward(LAN)
            ctx.map_put("dns_clients", key, index)
            ctx.vector_put("dns_budgets", index, {"spent": 0})
        else:
            ctx.dchain_rejuvenate("dns_chain", index)
        budget = ctx.vector_borrow("dns_budgets", index)
        spent = ctx.add(budget["spent"], pkt.wire_size)
        if ctx.cond(ctx.gt(spent, ctx.const(self.budget_bytes, 32))):
            ctx.drop()  # amplification suspected
        ctx.vector_put("dns_budgets", index, {"spent": spent})
        ctx.forward(LAN)


class DnsGuardWithGlobalStats(DnsGuard):
    """The same guard, plus a single global drop counter — a classic
    maintenance tweak that silently breaks shardability (rule R4)."""

    name = "dns_guard_stats"

    def state(self) -> list[StateDecl]:
        return super().state() + [
            StateDecl(
                "dns_totals", StateKind.VECTOR, 1, value_layout=(("seen", 64),)
            )
        ]

    def process(self, ctx: NfContext, port: int, pkt: Any) -> None:
        if port == WAN:
            totals = ctx.vector_borrow("dns_totals", ctx.const(0, 16))
            ctx.vector_put(
                "dns_totals",
                ctx.const(0, 16),
                {"seen": ctx.add(totals["seen"], ctx.const(1, 64))},
            )
        super().process(ctx, port, pkt)


def main() -> None:
    maestro = Maestro(seed=7)

    print("=== The DNS guard as designed ===")
    result = maestro.analyze(DnsGuard())
    print(result.solution.describe())
    assert result.solution.verdict is Verdict.SHARED_NOTHING
    parallel = maestro.parallelize(DnsGuard(), n_cores=8, result=result)
    print(f"-> generated a {parallel.strategy.value} implementation on "
          f"{parallel.n_cores} cores")
    print()

    print("=== After adding a global statistics counter ===")
    broken = maestro.analyze(DnsGuardWithGlobalStats())
    print(broken.solution.describe())
    assert broken.solution.verdict is Verdict.LOCKS
    print("-> Maestro falls back to read/write locks and tells you why;")
    print("   move the counter into per-client state to restore sharding.")


if __name__ == "__main__":
    main()
