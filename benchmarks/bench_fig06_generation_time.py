"""Figure 6: time for Maestro to parallelize each NF.

This benchmark *is* the figure: the measured runtime of the pipeline per
NF (ESE + Constraints Generator + RS3 + codegen), averaged over rounds by
pytest-benchmark just as the paper averages over 10 runs.
"""

import pytest

from repro.core import Maestro
from repro.nf.nfs import ALL_NFS


@pytest.mark.parametrize("name", list(ALL_NFS))
def test_generation_time(benchmark, name):
    def generate():
        maestro = Maestro(seed=0)
        nf = ALL_NFS[name]()
        result = maestro.analyze(nf)
        maestro.parallelize(nf, n_cores=16, result=result)
        return result

    result = benchmark.pedantic(generate, rounds=3, iterations=1)
    benchmark.extra_info["verdict"] = result.solution.verdict.value
    benchmark.extra_info["rs3_seconds"] = round(result.timings["rs3"], 3)
    assert result.keys
