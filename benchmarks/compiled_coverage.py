"""Compiled-dataplane coverage report: kernel vs fallback, per corpus NF.

CI's bench-smoke job runs this after the benchmark suite::

    python benchmarks/compiled_coverage.py --quick --out compiled-coverage.json

For every bundled NF it runs one cold pass and one warm pass (same
trace, shared ``FlowSteeringCache``, established flow state) through
``run_functional`` with kernels enabled, and records how many packets
executed in compiled kernels vs the interpreter fallback.  The JSON
artifact is the per-NF coverage ledger; the gate **fails (exit 1) when
any NF hits 100% interpreter fallback in both passes** — that means the
compiler lost every path of that NF (a lowering or classification
regression), which wall-clock benchmarks on the flagship firewall would
never notice.

Cold coverage is allowed to be low (allocation paths are interpreter-
only by design), so only total blackout fails.  Exit codes: 0 ok,
1 coverage blackout, 2 usage/internal errors.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.pipeline import Maestro
from repro.nf.nfs import ALL_NFS
from repro.sim.functional import FlowSteeringCache, run_functional
from repro.traffic import TrafficGenerator


def measure_nf(name: str, n_packets: int, n_flows: int, n_cores: int) -> dict:
    parallel = Maestro(seed=7).parallelize(ALL_NFS[name](), n_cores=n_cores)
    generator = TrafficGenerator(seed=3)
    flows = generator.make_flows(n_flows)
    trace = generator.trace(
        n_packets, flows, reply_port=1, reply_fraction=0.3
    )
    cache = FlowSteeringCache(parallel.rss)
    cold = run_functional(parallel, trace, flow_cache=cache)
    warm = run_functional(parallel, trace, flow_cache=cache)
    if not hasattr(cold, "compiled"):
        # compile_parallel refused the NF outright: no kernels at all.
        return {
            "strategy": parallel.strategy.value,
            "compiled": False,
            "cold_coverage": 0.0,
            "warm_coverage": 0.0,
        }
    return {
        "strategy": parallel.strategy.value,
        "compiled": True,
        "paths": cold.compiled["paths"],
        "supported_paths": cold.compiled["supported_paths"],
        "cold_coverage": cold.compiled["coverage"],
        "cold_fallback_rate": cold.compiled["fallback_rate"],
        "warm_coverage": warm.compiled["coverage"],
        "warm_fallback_rate": warm.compiled["fallback_rate"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write the JSON report here")
    parser.add_argument(
        "--quick", action="store_true", help="smaller traces (CI smoke)"
    )
    parser.add_argument("--cores", type=int, default=8)
    args = parser.parse_args(argv)
    n_packets = 4_000 if args.quick else 20_000
    n_flows = 300 if args.quick else 600

    report: dict[str, object] = {
        "n_packets": n_packets,
        "n_flows": n_flows,
        "n_cores": args.cores,
        "nfs": {},
    }
    blackouts: list[str] = []
    for name in sorted(ALL_NFS):
        entry = measure_nf(name, n_packets, n_flows, args.cores)
        report["nfs"][name] = entry  # type: ignore[index]
        dark = entry["cold_coverage"] == 0.0 and entry["warm_coverage"] == 0.0
        if dark:
            blackouts.append(name)
        print(
            f"{name:10s} strategy={entry['strategy']:<14s} "
            f"cold={entry['cold_coverage']:.3f} "
            f"warm={entry['warm_coverage']:.3f} "
            f"{'BLACKOUT' if dark else 'ok'}"
        )
    report["blackouts"] = blackouts

    if args.out:
        with open(args.out, "w") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
    if blackouts:
        print(
            f"compiled coverage gate: 100% interpreter fallback on "
            f"{', '.join(blackouts)}",
            file=sys.stderr,
        )
        return 1
    print("compiled coverage gate: every NF runs kernels")
    return 0


if __name__ == "__main__":
    sys.exit(main())
