"""Benchmark regression gate: fresh quick-mode numbers vs. the baseline.

CI runs the quick-mode ``bench_fastpath`` suite with
``REPRO_BENCH_JSON`` pointing at a fresh file, then::

    python benchmarks/check_bench_regression.py \
        --baseline BENCH_fastpath.json --fresh bench-fresh.json

The gate fails (exit 1) when any tracked per-packet cost regressed by
more than ``--tolerance`` (default 25%) in *throughput* terms: fresh
``us_per_pkt`` may be at most ``baseline / (1 - tolerance)``.  Only
the optimized paths are gated — the scalar/reference measurements are
reported for context but a slower baseline interpreter is not a
product regression.

Improvements beyond the tolerance are reported too (update the
checked-in ``BENCH_fastpath.json`` to ratchet the gate), but they
don't fail the build: CI runners are noisy in both directions.

Exit codes: 0 within tolerance, 1 regression, 2 usage/shape errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (JSON section, metric) pairs gated on regression: the optimized paths.
GATED = (
    ("hash", "batch_us_per_pkt"),
    ("e2e", "fastpath_us_per_pkt"),
    ("compiled", "compiled_us_per_pkt"),
)

#: Reported for context only.
CONTEXT = (
    ("hash", "scalar_us_per_pkt"),
    ("e2e", "reference_us_per_pkt"),
    ("compiled", "reference_us_per_pkt"),
)

#: Absolute gates: fresh ``section.metric`` must stay under the ceiling
#: recorded in the baseline's ``section.ceiling_key`` (these are
#: fractions, not per-packet times — the relative-throughput math above
#: does not apply, and the value may legitimately be <= 0).  The
#: compiled fallback-rate gate is what makes *path-coverage* regressions
#: fail CI even when wall-clock noise hides them: a lowering bug that
#: demotes kernel paths to the interpreter raises the fallback rate
#: above the committed ceiling.
ABSOLUTE = (
    ("telemetry", "overhead_frac", "ceiling_frac"),
    ("compiled", "fallback_rate", "fallback_ceiling"),
    # Live-migration cost must stay proportional to moved state: a
    # full-shard scan creeping into extraction blows the per-entry cost
    # past the committed ceiling long before wall-clock gates notice.
    ("rescale", "per_entry_us", "per_entry_ceiling_us"),
)

#: Absolute floors: fresh ``section.metric`` must stay *at or above*
#: the baseline's ``section.floor_key``.  Used for ratios where bigger
#: is better — a live rescale must not leave the dataplane slower than
#: a statically provisioned build of the same width.
FLOORS = (
    ("rescale", "post_rescale_ratio", "ratio_floor"),
)


def _load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def _metric(data: dict, section: str, name: str, path: str) -> float:
    try:
        value = data[section][name]
    except (KeyError, TypeError):
        print(f"error: {path} has no {section}.{name}", file=sys.stderr)
        raise SystemExit(2)
    if not isinstance(value, (int, float)) or value <= 0:
        print(f"error: {path}: {section}.{name}={value!r}", file=sys.stderr)
        raise SystemExit(2)
    return float(value)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed JSON")
    parser.add_argument("--fresh", required=True, help="freshly measured JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed throughput regression fraction (default 0.25)",
    )
    args = parser.parse_args(argv)
    if not 0 < args.tolerance < 1:
        print("error: --tolerance must be in (0, 1)", file=sys.stderr)
        return 2

    baseline = _load(args.baseline)
    fresh = _load(args.fresh)
    if baseline.get("quick") != fresh.get("quick"):
        print(
            f"error: quick-mode mismatch (baseline quick="
            f"{baseline.get('quick')}, fresh quick={fresh.get('quick')}) — "
            "compare like with like",
            file=sys.stderr,
        )
        return 2

    failed = False
    for section, name in GATED:
        base = _metric(baseline, section, name, args.baseline)
        now = _metric(fresh, section, name, args.fresh)
        allowed = base / (1 - args.tolerance)
        ratio = now / base
        status = "ok"
        if now > allowed:
            status = "REGRESSION"
            failed = True
        elif now < base * (1 - args.tolerance):
            status = "improved (consider updating the baseline)"
        print(
            f"{section}.{name}: baseline {base:.4f} us/pkt, "
            f"fresh {now:.4f} us/pkt ({ratio:.2f}x, "
            f"allowed <= {allowed:.4f}) {status}"
        )
    for section, name in CONTEXT:
        base = _metric(baseline, section, name, args.baseline)
        now = _metric(fresh, section, name, args.fresh)
        print(
            f"{section}.{name}: baseline {base:.4f} us/pkt, "
            f"fresh {now:.4f} us/pkt (context only)"
        )
    for section, name, ceiling_key in ABSOLUTE:
        try:
            now = float(fresh[section][name])
            ceiling = float(baseline[section][ceiling_key])
        except (KeyError, TypeError, ValueError):
            print(
                f"error: missing {section}.{name} (fresh) or "
                f"{section}.{ceiling_key} (baseline)",
                file=sys.stderr,
            )
            return 2
        status = "ok"
        if now > ceiling:
            status = "REGRESSION"
            failed = True
        print(
            f"{section}.{name}: fresh {now:+.4f} "
            f"(ceiling {ceiling:.4f}) {status}"
        )
    for section, name, floor_key in FLOORS:
        try:
            now = float(fresh[section][name])
            floor = float(baseline[section][floor_key])
        except (KeyError, TypeError, ValueError):
            print(
                f"error: missing {section}.{name} (fresh) or "
                f"{section}.{floor_key} (baseline)",
                file=sys.stderr,
            )
            return 2
        status = "ok"
        if now < floor:
            status = "REGRESSION"
            failed = True
        print(
            f"{section}.{name}: fresh {now:.4f} "
            f"(floor {floor:.4f}) {status}"
        )
    if failed:
        print(
            f"benchmark gate: throughput regressed beyond "
            f"{args.tolerance:.0%} of BENCH_fastpath.json",
            file=sys.stderr,
        )
        return 1
    print("benchmark gate: within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
