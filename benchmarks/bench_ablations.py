"""Design ablations called out in DESIGN.md.

* Cache sharding: how much of shared-nothing's win is sharding the
  *traffic* vs. sharding the *state* (the §4 compound effect)?
* NUMA placement: the §4 rule of thumb, quantified.
* Balanced vs. unbalanced indirection tables under Zipf.
"""

import numpy as np
import pytest

from repro.core import Strategy
from repro.hw.cache import CacheHierarchy
from repro.hw.cpu import profile_for
from repro.hw.numa import NumaTopology
from repro.nf.nfs import ALL_NFS
from repro.sim.perf import PerformanceModel, Workload


def test_ablation_state_sharding_cache_effect(benchmark):
    """SN vs locks with identical coordination-free cost: the residual
    gap at 16 cores is pure cache-locality from sharded working sets."""
    model = PerformanceModel()
    profile = profile_for(ALL_NFS["psd"]())
    workload = Workload(pkt_size=64, n_flows=40_000)

    def measure():
        sharded = model.packet_cost(profile, Strategy.SHARED_NOTHING, 16, workload)[0]
        shared = model.packet_cost(profile, Strategy.LOCKS, 16, workload)[0]
        return sharded, shared

    sharded, shared = benchmark.pedantic(measure, rounds=3, iterations=1)
    benchmark.extra_info["sharded_cycles"] = round(sharded, 1)
    benchmark.extra_info["shared_cycles"] = round(shared, 1)
    # The sharded working set must be materially cheaper per packet.
    assert sharded < shared


def test_ablation_small_workload_nullifies_sharding(benchmark):
    """§6.4: 'Running these experiments with a workload of only 256
    flows — which fits entirely in L1 cache — nullifies this effect.'"""
    model = PerformanceModel()
    profile = profile_for(ALL_NFS["psd"]())
    tiny = Workload(pkt_size=64, n_flows=256)

    def measure():
        sharded = model.packet_cost(profile, Strategy.SHARED_NOTHING, 16, tiny)[0]
        shared = model.packet_cost(profile, Strategy.LOCKS, 16, tiny)[0]
        return sharded, shared

    sharded, shared = benchmark.pedantic(measure, rounds=3, iterations=1)
    # Without a cache effect the gap shrinks to the lock overhead itself.
    assert shared - sharded < 80


@pytest.mark.parametrize(
    "llc_mb,expect_single",
    [(22, True), (1, False)],
    ids=["large-llc-single-node", "small-llc-spread"],
)
def test_ablation_numa_rule_of_thumb(benchmark, llc_mb, expect_single):
    topology = NumaTopology(llc_bytes=llc_mb * 1024 * 1024)
    advice = benchmark.pedantic(
        topology.advise, kwargs={"pkt_size": 64}, rounds=3, iterations=1
    )
    benchmark.extra_info["reason"] = advice.reason
    assert advice.single_node is expect_single


def test_ablation_remote_numa_memory_penalty(benchmark):
    """Remote-node DRAM access costs a QPI hop (§4)."""
    cache = CacheHierarchy()
    working_set = 2**32  # DRAM-resident

    def measure():
        return (
            cache.access_cycles(working_set),
            cache.access_cycles(working_set, numa_remote=True),
        )

    local, remote = benchmark.pedantic(measure, rounds=3, iterations=1)
    benchmark.extra_info["local_cycles"] = round(local, 1)
    benchmark.extra_info["remote_cycles"] = round(remote, 1)
    assert remote > local * 1.4
