"""Figure 9: the firewall churn study across the three strategies."""

import pytest

from repro.eval import fig09


def test_fig9_churn_study(benchmark):
    experiment = benchmark.pedantic(
        fig09.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    sn = [s for s in experiment.series if s.label.startswith("shared-nothing")]
    locks = [s for s in experiment.series if s.label.startswith("locks")]
    tm = [s for s in experiment.series if s.label.startswith("tm")]
    benchmark.extra_info["sn_heavy_churn_mpps"] = round(sn[-1].values[-1], 1)
    benchmark.extra_info["locks_heavy_churn_mpps"] = round(
        locks[-1].values[-1], 1
    )
    # Shared-nothing is churn-immune; locks and TM collapse under heavy
    # churn; TM is never better than locks there.
    assert sn[-1].values[-1] > 0.9 * sn[0].values[-1]
    assert locks[-1].values[-1] < 0.2 * locks[0].values[-1]
    assert tm[-1].values[-1] <= locks[-1].values[-1] + 1.0
