"""Shared fixtures for the benchmark harness.

Every figure of the paper has a ``bench_figNN_*.py`` here; running

    pytest benchmarks/ --benchmark-only

regenerates each figure's data (printed through the benchmark's
``extra_info``) and records how long the regeneration takes.
"""

from __future__ import annotations

import pytest

from repro.core import Maestro
from repro.nf.nfs import ALL_NFS


@pytest.fixture(scope="session")
def maestro() -> Maestro:
    return Maestro(seed=42)


@pytest.fixture(scope="session")
def analyses(maestro):
    """Pre-analyzed corpus shared by the figure benchmarks."""
    return {name: maestro.analyze(cls()) for name, cls in ALL_NFS.items()}
