"""Shared fixtures for the benchmark harness.

Every figure of the paper has a ``bench_figNN_*.py`` here; running

    pytest benchmarks/ --benchmark-only

regenerates each figure's data (printed through the benchmark's
``extra_info``) and records how long the regeneration takes.

Set ``REPRO_OBS_TRACE=/path/to/trace.jsonl`` to capture a structured
observability trace of the whole benchmark session (pipeline spans,
symbex/RS3 counters, perf-model bottleneck attribution); render it with
``python -m repro.obs report trace.jsonl``.
"""

from __future__ import annotations

import os

import pytest

from repro import obs
from repro.core import Maestro
from repro.nf.nfs import ALL_NFS


@pytest.fixture(scope="session", autouse=True)
def obs_trace():
    """Session-wide JSONL trace export, gated on REPRO_OBS_TRACE."""
    path = os.environ.get("REPRO_OBS_TRACE")
    if not path:
        yield None
        return
    with obs.JsonlCollector(path) as collector:
        with obs.attached(collector):
            yield collector


@pytest.fixture(scope="session")
def maestro() -> Maestro:
    return Maestro(seed=42)


@pytest.fixture(scope="session")
def analyses(maestro):
    """Pre-analyzed corpus shared by the figure benchmarks."""
    return {name: maestro.analyze(cls()) for name, cls in ALL_NFS.items()}
