"""Figure 14: the scalability matrix under Zipfian traffic."""

import pytest

from repro.eval import fig10, fig14


def test_fig14_zipf_scalability(benchmark):
    experiment = benchmark.pedantic(
        fig14.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    by_label = {s.label: s for s in experiment.series}
    fw_sn = by_label["fw/shared-nothing"]
    fw_locks = by_label["fw/locks"]
    benchmark.extra_info["fw_sn_16c_mpps"] = round(fw_sn.values[-1], 1)
    # Same ordering as Figure 10 under skew...
    assert fw_sn.values[-1] >= fw_locks.values[-1]
    # ... but Zipf cannot beat uniform at scale (elephant-bound cores).
    uniform = fig10.run(fast=True)
    fw_uniform = next(
        s for s in uniform.series if s.label == "fw/shared-nothing"
    )
    assert fw_sn.values[-1] <= fw_uniform.values[-1] + 1e-6
    # TM remains the unreliable option for state-heavy NFs.
    cl_tm = by_label["cl/tm"]
    cl_locks = by_label["cl/locks"]
    assert cl_tm.values[-1] <= cl_locks.values[-1] + 1e-6
