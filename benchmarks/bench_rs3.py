"""RS3 microbenchmarks and the NIC-capability ablation.

Measures the cost of the key machinery (Toeplitz hashing, GF(2) key
search) and runs the DESIGN.md ablation: how much harder the key search is
on the E810 (which must cancel port bits for IP-level sharding) than on a
NIC with native IP-only hashing.
"""

import numpy as np
import pytest

from repro.nf.packet import Packet
from repro.rs3 import (
    E810,
    IPV4_ONLY,
    IPV4_TCP,
    PERMISSIVE_NIC,
    CancelField,
    KeySearchStats,
    MapFields,
    RssField,
    RssKeySolver,
    hash_packet,
    MICROSOFT_TEST_KEY,
)


def test_toeplitz_hash_rate(benchmark):
    key = (MICROSOFT_TEST_KEY + bytes(12))[:52]
    pkt = Packet(0x0A000001, 0x08080808, 1234, 443)
    result = benchmark(lambda: hash_packet(key, pkt, IPV4_TCP))
    assert 0 <= result < 2**32


def test_fw_symmetric_key_search(benchmark):
    reqs = [
        MapFields(0, RssField.SRC_IP, 1, RssField.DST_IP),
        MapFields(0, RssField.DST_IP, 1, RssField.SRC_IP),
        MapFields(0, RssField.SRC_PORT, 1, RssField.DST_PORT),
        MapFields(0, RssField.DST_PORT, 1, RssField.SRC_PORT),
    ]

    def solve():
        solver = RssKeySolver(E810, {0: IPV4_TCP, 1: IPV4_TCP})
        return solver.solve(reqs, rng=np.random.default_rng(3))

    keys = benchmark.pedantic(solve, rounds=3, iterations=1)
    assert len(keys) == 2


@pytest.mark.parametrize(
    "nic,option,expected_rows",
    [
        (E810, IPV4_TCP, 3),  # must cancel src_ip + both ports
        (PERMISSIVE_NIC, IPV4_ONLY, 1),  # only src_ip to cancel
    ],
    ids=["e810-cancel-ports", "permissive-ip-only"],
)
def test_ablation_policer_key_by_nic(benchmark, nic, option, expected_rows):
    """Ablation: the paper's Policer story depends on the NIC.

    On the E810 the dst_ip sharding must cancel 3 fields (longest
    generation time in Figure 6); a NIC with IP-only hashing needs far
    fewer constraints.
    """
    cancelled = [f for f in option.fields if f is not RssField.DST_IP]
    reqs = [CancelField(1, f) for f in cancelled]
    assert len(reqs) == expected_rows

    def solve():
        stats = KeySearchStats()
        solver = RssKeySolver(nic, {0: option, 1: option})
        keys = solver.solve(reqs, rng=np.random.default_rng(5), stats=stats)
        return keys, stats

    (keys, stats) = benchmark.pedantic(solve, rounds=3, iterations=1)
    benchmark.extra_info["constraint_rows"] = stats.constraint_rows
    benchmark.extra_info["free_key_bits"] = stats.free_bits
    solver = RssKeySolver(nic, {0: option, 1: option})
    solver.verify(reqs, keys, samples=32)
