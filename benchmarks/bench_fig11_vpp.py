"""Figure 11: Maestro NAT (shared-nothing / locks) vs VPP nat44-ei."""

import pytest

from repro.eval import fig11


def test_fig11_vpp_comparison(benchmark):
    experiment = benchmark.pedantic(fig11.run, rounds=1, iterations=1)
    by_label = {s.label: s for s in experiment.series}
    sn = by_label["maestro shared-nothing"]
    locks = by_label["maestro locks"]
    vpp = by_label["vpp nat44-ei"]
    benchmark.extra_info["sn_16c_mpps"] = round(sn.values[-1], 1)
    benchmark.extra_info["locks_16c_mpps"] = round(locks.values[-1], 1)
    benchmark.extra_info["vpp_16c_mpps"] = round(vpp.values[-1], 1)
    # "Maestro's shared-nothing decisively outperforms VPP, reaching the
    # PCIe bottleneck"; lock-based "slightly outperforms VPP".
    assert sn.values[-1] > 85
    for i in range(len(sn.values)):
        assert sn.values[i] >= locks.values[i] >= vpp.values[i]
    # All three scale.
    for series in (sn, locks, vpp):
        assert series.values[-1] > 3 * series.values[0]
