"""§6.4 latency probes: 11-12us, independent of the strategy."""

import numpy as np
import pytest

from repro.core import Strategy
from repro.hw.cpu import profile_for
from repro.nf.nfs import ALL_NFS
from repro.sim.latency import latency_probe


@pytest.mark.parametrize("name", ["nop", "fw", "nat", "cl"])
def test_latency_probe(benchmark, name):
    profile = profile_for(ALL_NFS[name]())

    def probe():
        return latency_probe(
            profile,
            Strategy.SHARED_NOTHING,
            16,
            n_probes=1000,
            rng=np.random.default_rng(0),
        )

    mean, std = benchmark.pedantic(probe, rounds=3, iterations=1)
    benchmark.extra_info["mean_us"] = round(mean, 2)
    benchmark.extra_info["std_us"] = round(std, 2)
    assert 9.0 < mean < 14.0
    assert std < 3.0
