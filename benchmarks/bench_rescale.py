"""Elastic-scaling performance gates (live migration + post-rescale).

Two numbers keep the rescale path honest in CI:

* **migration cost per entry** (``rescale.per_entry_us``) — wall-clock
  of a live grow divided by the state entries it moved.  The two-phase
  handoff is index-driven (write-time :class:`BucketIndex`), so the
  cost must stay proportional to the *moved state*, not the shard
  capacity; an accidental full-shard scan shows up as a per-entry blowup
  and trips the committed ceiling.
* **post-rescale throughput ratio** (``rescale.post_rescale_ratio``) —
  steady-state batch throughput after a live 4 -> 8 grow vs a statically
  built 8-core plan on the same trace.  Re-sharding must not leave the
  dataplane slower than if it had been provisioned at the target width
  from the start: the ratio is gated at >= 0.9x.

Both are best-of-rounds, both assert result fidelity before timing
means anything, and both export into the ``rescale`` section consumed
by ``check_bench_regression.py``.

Quick mode (``REPRO_BENCH_QUICK=1``) shrinks the trace for the CI smoke
job; ``REPRO_BENCH_JSON=path`` exports the measured numbers.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core.pipeline import Maestro
from repro.nf.nfs import Firewall
from repro.scale import enable_elastic, rescale_parallel
from repro.sim.functional import run_functional
from repro.traffic import TrafficGenerator
from repro.traffic.churn import churn_trace

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

N_PACKETS = 6_000 if QUICK else 30_000
N_FLOWS = 400 if QUICK else 1_500
ROUNDS = 5 if QUICK else 4

#: Ceiling on the measured per-entry migration cost.  Extraction and
#: installation are dict/array operations on exactly the moved entries;
#: even shared CI runners land far below this.
PER_ENTRY_CEILING_US = 200.0
#: Post-rescale steady state must stay within 10% of a static build.
POST_RESCALE_RATIO_FLOOR = 0.9

_RESULTS: dict[str, object] = {}


@pytest.fixture(scope="module", autouse=True)
def _export_json():
    yield
    path = os.environ.get("REPRO_BENCH_JSON")
    if path and _RESULTS:
        merged: dict[str, object] = {}
        if os.path.exists(path):
            try:
                with open(path) as fh:
                    merged = json.load(fh)
            except (OSError, ValueError):
                merged = {}
        merged["rescale"] = _RESULTS
        with open(path, "w") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)


@pytest.fixture(scope="module")
def trace():
    return churn_trace(
        TrafficGenerator(seed=3), N_PACKETS, N_FLOWS, 60_000.0, in_port=0
    )


def _elastic(n_cores=4):
    return enable_elastic(
        Maestro(seed=7).parallelize(Firewall(), n_cores=n_cores)
    )


def test_migration_cost_per_entry(trace):
    """Per-entry cost of a live grow, best-of-rounds."""
    best = float("inf")
    moved = 0
    for _ in range(ROUNDS):
        parallel = _elastic(4)
        for port, pkt in trace:
            parallel.process(port, pkt)
        t0 = time.perf_counter()
        stats = rescale_parallel(parallel, 8)
        elapsed = time.perf_counter() - t0
        assert stats.entries_moved > 0, "grow moved no state"
        assert stats.refused == 0
        moved = stats.entries_moved
        best = min(best, elapsed * 1e6 / stats.entries_moved)
    _RESULTS.update(
        {
            "per_entry_us": best,
            "per_entry_ceiling_us": PER_ENTRY_CEILING_US,
            "entries_moved": moved,
        }
    )
    print(f"\nmigration: {best:.3f} us/entry over {moved} entries")
    assert best <= PER_ENTRY_CEILING_US, (
        f"per-entry migration cost {best:.1f}us exceeds the "
        f"{PER_ENTRY_CEILING_US}us ceiling — is extraction scanning the "
        "whole shard instead of the bucket index?"
    )


def test_post_rescale_throughput(trace):
    """Batch throughput after a live 4 -> 8 grow vs a static 8-core plan."""
    rescaled = _elastic(4)
    warm = len(trace) // 3
    for port, pkt in trace[:warm]:
        rescaled.process(port, pkt)
    rescale_parallel(rescaled, 8)

    static = Maestro(seed=7).parallelize(Firewall(), n_cores=8)
    run_functional(static, trace[:warm], fastpath=False)

    steady = trace[warm:]
    # Untimed warmup so one-time costs (classification memos, steering
    # cache fill after the generation bump) hit neither side's timings.
    run_functional(rescaled, steady)
    run_functional(static, steady)

    t_rescaled = float("inf")
    t_static = float("inf")
    results_rescaled = results_static = None
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        run_r = run_functional(rescaled, steady)
        t_rescaled = min(t_rescaled, time.perf_counter() - t0)
        t0 = time.perf_counter()
        run_s = run_functional(static, steady)
        t_static = min(t_static, time.perf_counter() - t0)
        results_rescaled = list(run_r.results)
        results_static = list(run_s.results)
    # Fidelity first: both plans are shared-nothing over the same NF, so
    # packet outcomes must agree even though steering layouts differ.
    assert [r for _, r in results_rescaled] == [r for _, r in results_static]

    post_us = t_rescaled * 1e6 / len(steady)
    static_us = t_static * 1e6 / len(steady)
    ratio = static_us / post_us
    _RESULTS.update(
        {
            "post_rescale_us_per_pkt": post_us,
            "static_us_per_pkt": static_us,
            "post_rescale_ratio": ratio,
            "ratio_floor": POST_RESCALE_RATIO_FLOOR,
        }
    )
    print(
        f"\npost-rescale {post_us:.3f} us/pkt vs static {static_us:.3f} "
        f"us/pkt (ratio {ratio:.2f}x)"
    )
    assert ratio >= POST_RESCALE_RATIO_FLOOR, (
        f"post-rescale throughput is {ratio:.2f}x the static build "
        f"(floor {POST_RESCALE_RATIO_FLOOR}x) — rescaling left the "
        "dataplane degraded"
    )
