"""Fast-path performance gates (vectorized RSS + batched simulation).

Three speedup floors, measured on the firewall (the flagship stateful
NF):

* batched Toeplitz hashing must be >= 20x the scalar reference on a
  full trace's hash inputs (the byte-table gather path is ~2 orders of
  magnitude faster in practice);
* end-to-end ``run_functional`` with the interpreter fast path
  (steering cache + grouped execution, ``kernels=False``) must beat the
  seed packet-at-a-time path from a cold start;
* the compiled dataplane (``kernels=True``, the default) must beat the
  reference by a much larger factor in *steady state* — a warmed
  ``FlowSteeringCache`` plus hot kernel memos, the regime a long-lived
  dataplane actually runs in — and its kernel coverage is gated too,
  so a path-classification regression fails even if wall-clock noise
  hides it.

All gates use *best-of-rounds* minima — the standard noise-robust
estimator for wall-clock micro-benchmarks — and all assert the fast
results are bit-identical to the scalar oracle before timing means
anything.

Quick mode (``REPRO_BENCH_QUICK=1``, used by the CI smoke job) shrinks
the trace and relaxes the end-to-end floor for noisy shared runners.
Set ``REPRO_BENCH_JSON=path`` to export the measured numbers as JSON.
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.core.pipeline import Maestro
from repro.nf.nfs import Firewall
from repro.rs3.toeplitz import (
    hash_input_matrix,
    toeplitz_hash,
    toeplitz_hash_batch,
)
from repro.sim.functional import FlowSteeringCache, run_functional
from repro.traffic import TrafficGenerator

QUICK = os.environ.get("REPRO_BENCH_QUICK") == "1"

N_PACKETS = 20_000 if QUICK else 100_000
N_FLOWS = 600 if QUICK else 2_000
#: Scalar hashing is ~22us/packet; cap the scalar sample so the baseline
#: measurement stays fast (per-hash cost is constant, so the ratio holds).
SCALAR_SAMPLE = 5_000
ROUNDS = 3 if QUICK else 4

HASH_SPEEDUP_FLOOR = 20.0
E2E_SPEEDUP_FLOOR = 4.0 if QUICK else 5.0
#: Steady-state compiled dataplane vs the packet-at-a-time reference.
COMPILED_SPEEDUP_FLOOR = 12.0
#: Fraction of packets a warm run must execute through kernels.
COMPILED_COVERAGE_FLOOR = 0.95

_RESULTS: dict[str, object] = {"quick": QUICK, "n_packets": N_PACKETS}


@pytest.fixture(scope="module", autouse=True)
def _export_json():
    yield
    path = os.environ.get("REPRO_BENCH_JSON")
    if path:
        # Read-merge-write: bench_obs_overhead exports its telemetry
        # section to the same file, and module teardown order between
        # benchmark files is not guaranteed.
        merged: dict[str, object] = {}
        if os.path.exists(path):
            try:
                with open(path) as fh:
                    merged = json.load(fh)
            except (OSError, ValueError):
                merged = {}
        merged.update(_RESULTS)
        with open(path, "w") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)


@pytest.fixture(scope="module")
def parallel_factory():
    def build():
        return Maestro(seed=7).parallelize(Firewall(), n_cores=8)

    return build


@pytest.fixture(scope="module")
def trace():
    generator = TrafficGenerator(seed=3)
    flows = generator.make_flows(N_FLOWS)
    return generator.trace(N_PACKETS, flows, reply_port=1, reply_fraction=0.3)


def test_batch_hash_speedup_and_exactness(parallel_factory, trace):
    parallel = parallel_factory()
    config = parallel.rss.ports[0]
    packets = [pkt for _, pkt in trace]
    matrix = hash_input_matrix(packets, config.option)

    batch = toeplitz_hash_batch(config.key, matrix)
    sample = min(SCALAR_SAMPLE, len(packets))
    scalar = np.array(
        [toeplitz_hash(config.key, matrix[i].tobytes()) for i in range(sample)],
        dtype=np.uint32,
    )
    assert np.array_equal(batch[:sample], scalar), (
        "batched Toeplitz differs from the scalar oracle"
    )

    t_batch = float("inf")
    t_scalar = float("inf")
    for _ in range(ROUNDS):
        start = time.perf_counter()
        toeplitz_hash_batch(config.key, matrix)
        t_batch = min(t_batch, (time.perf_counter() - start) / len(packets))
        start = time.perf_counter()
        for i in range(sample):
            toeplitz_hash(config.key, matrix[i].tobytes())
        t_scalar = min(t_scalar, (time.perf_counter() - start) / sample)

    speedup = t_scalar / t_batch
    _RESULTS["hash"] = {
        "scalar_us_per_pkt": t_scalar * 1e6,
        "batch_us_per_pkt": t_batch * 1e6,
        "speedup": speedup,
        "floor": HASH_SPEEDUP_FLOOR,
    }
    assert speedup >= HASH_SPEEDUP_FLOOR, (
        f"batched hashing only {speedup:.1f}x scalar "
        f"(scalar {t_scalar * 1e6:.2f}us, batch {t_batch * 1e6:.3f}us; "
        f"floor {HASH_SPEEDUP_FLOOR:.0f}x)"
    )


def test_run_functional_speedup_and_exactness(parallel_factory, trace):
    # Exactness first: one reference/fast pair compared in depth.
    par_ref = parallel_factory()
    par_fast = parallel_factory()
    run_ref = run_functional(par_ref, trace, fastpath=False)
    run_fast = run_functional(par_fast, trace, kernels=False)
    assert list(run_ref.results) == list(run_fast.results)
    assert np.array_equal(run_ref.core_ids, run_fast.core_ids)
    assert run_ref.action_counts() == run_fast.action_counts()
    assert run_ref.write_fraction() == run_fast.write_fraction()
    for ref_core, fast_core in zip(par_ref.cores, par_fast.cores):
        assert (
            ref_core.packets,
            ref_core.reads,
            ref_core.writes,
            ref_core.new_flows,
        ) == (
            fast_core.packets,
            fast_core.reads,
            fast_core.writes,
            fast_core.new_flows,
        )

    # Then the wall-clock gate, interleaved rounds, best-of-rounds.
    t_ref = float("inf")
    t_fast = float("inf")
    for _ in range(ROUNDS):
        parallel = parallel_factory()
        start = time.perf_counter()
        run_functional(parallel, trace, fastpath=False)
        t_ref = min(t_ref, time.perf_counter() - start)
        parallel = parallel_factory()
        start = time.perf_counter()
        run_functional(parallel, trace, kernels=False)
        t_fast = min(t_fast, time.perf_counter() - start)

    speedup = t_ref / t_fast
    _RESULTS["e2e"] = {
        "reference_us_per_pkt": t_ref * 1e6 / len(trace),
        "fastpath_us_per_pkt": t_fast * 1e6 / len(trace),
        "speedup": speedup,
        "floor": E2E_SPEEDUP_FLOOR,
    }
    assert speedup >= E2E_SPEEDUP_FLOOR, (
        f"fast path only {speedup:.2f}x the seed path "
        f"(ref {t_ref * 1e6 / len(trace):.1f}us/pkt, "
        f"fast {t_fast * 1e6 / len(trace):.1f}us/pkt; "
        f"floor {E2E_SPEEDUP_FLOOR:.0f}x)"
    )


def test_compiled_steady_state_speedup(parallel_factory, trace):
    """Compiled kernels vs the reference, in steady state.

    A long-lived dataplane runs warm: the steering cache knows every
    flow, every flow's state is established, and the kernel memo has
    classified every (flow, path) pair.  Each leg keeps one ParallelNF
    (and, for the compiled leg, one FlowSteeringCache) across rounds —
    one untimed warm-up round, then timed rounds, best-of-rounds.  Both
    legs replay the same trace every round, so their per-round state
    evolutions stay in lockstep and the last round is compared
    bit-for-bit.
    """
    par_ref = parallel_factory()
    par_comp = parallel_factory()
    cache = FlowSteeringCache(par_comp.rss)
    run_functional(par_ref, trace, fastpath=False)  # warm-up, untimed
    run_functional(par_comp, trace, flow_cache=cache)

    t_ref = float("inf")
    t_comp = float("inf")
    run_ref = run_comp = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        run_ref = run_functional(par_ref, trace, fastpath=False)
        t_ref = min(t_ref, time.perf_counter() - start)
        start = time.perf_counter()
        run_comp = run_functional(par_comp, trace, flow_cache=cache)
        t_comp = min(t_comp, time.perf_counter() - start)

    assert list(run_ref.results) == list(run_comp.results)
    assert np.array_equal(run_ref.core_ids, run_comp.core_ids)
    assert run_ref.action_counts() == run_comp.action_counts()

    coverage = run_comp.compiled["coverage"]
    fallback_rate = run_comp.compiled["fallback_rate"]
    speedup = t_ref / t_comp
    _RESULTS["compiled"] = {
        "reference_us_per_pkt": t_ref * 1e6 / len(trace),
        "compiled_us_per_pkt": t_comp * 1e6 / len(trace),
        "speedup": speedup,
        "floor": COMPILED_SPEEDUP_FLOOR,
        "coverage": coverage,
        "coverage_floor": COMPILED_COVERAGE_FLOOR,
        "fallback_rate": fallback_rate,
        "fallback_ceiling": round(1.0 - COMPILED_COVERAGE_FLOOR, 6),
    }
    assert coverage >= COMPILED_COVERAGE_FLOOR, (
        f"kernel coverage only {coverage:.3f} in steady state "
        f"(fallback rate {fallback_rate:.3f}; "
        f"floor {COMPILED_COVERAGE_FLOOR})"
    )
    assert speedup >= COMPILED_SPEEDUP_FLOOR, (
        f"compiled dataplane only {speedup:.2f}x the seed path "
        f"(ref {t_ref * 1e6 / len(trace):.2f}us/pkt, "
        f"compiled {t_comp * 1e6 / len(trace):.2f}us/pkt; "
        f"floor {COMPILED_SPEEDUP_FLOOR:.0f}x)"
    )
