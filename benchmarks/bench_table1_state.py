"""Table 1 microbenchmarks: the stateful constructors' operation costs.

Not a figure, but the substrate every result rests on: map/vector/dchain/
sketch operation throughput in the concrete runtime.
"""

import pytest

from repro.nf.state import DChain, Map, Sketch, Vector


def test_map_get_hit(benchmark):
    m = Map(65536)
    for i in range(10000):
        m.put((i, i + 1), i)
    benchmark(lambda: m.get((5000, 5001)))


def test_map_put_update(benchmark):
    m = Map(65536)
    m.put((1, 2), 0)
    benchmark(lambda: m.put((1, 2), 7))


def test_vector_borrow_put(benchmark):
    v = Vector(4096, initial={"a": 0, "b": 0})

    def cycle():
        record = v.borrow(100)
        record["a"] += 1
        v.put(100, record)

    benchmark(cycle)


def test_dchain_allocate_free(benchmark):
    chain = DChain(4096)

    def cycle():
        ok, index = chain.allocate(0.0)
        assert ok
        chain.free_index(index)

    benchmark(cycle)


def test_dchain_rejuvenate(benchmark):
    chain = DChain(4096)
    _, index = chain.allocate(0.0)
    benchmark(lambda: chain.rejuvenate(index, 1.0))


def test_sketch_touch(benchmark):
    sketch = Sketch(2**16, depth=5)
    benchmark(lambda: sketch.touch((0x0A000001, 0x08080808)))


def test_sketch_fetch(benchmark):
    sketch = Sketch(2**16, depth=5)
    sketch.touch((1, 2))
    benchmark(lambda: sketch.fetch((1, 2)))
