"""Figure 8: NOP throughput vs packet size (PCIe vs line-rate ceilings)."""

import pytest

from repro.eval import fig08


def test_fig8_packet_size_sweep(benchmark):
    experiment = benchmark.pedantic(fig08.run, rounds=1, iterations=1)
    gbps = next(s for s in experiment.series if s.label == "Gbps")
    mpps = next(s for s in experiment.series if s.label == "Mpps")
    for label, value in zip(experiment.x_values, gbps.values):
        benchmark.extra_info[f"gbps_{label}"] = round(value, 1)
    # The paper's shape: ~45 Gbps at 64B (PCIe), line rate at 1500B.
    assert 43 < gbps.values[0] < 49
    assert mpps.values[0] > 85
    assert gbps.values[experiment.x_values.index("1500")] > 93
