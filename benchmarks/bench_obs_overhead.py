"""Instrumentation overhead guard.

The whole point of `repro.obs` is that it is safe to leave enabled:
tracing `Maestro.analyze` with a full in-memory collector attached must
cost < 5% over running with no collector (the no-op fast path).  Runs are
interleaved and the minimum over rounds compared — the minimum is the
standard noise-robust estimator for wall-clock micro-benchmarks.

Also pins the raw no-op entry-point cost, which bounds what per-packet
instrumentation (``nf.state_op``) adds to uninstrumented simulations.
"""

from __future__ import annotations

import time

from repro import obs
from repro.core import Maestro
from repro.nf.nfs import Firewall

#: Enough rounds for min() to converge to the noise floor: single runs of
#: analyze(Firewall) spread ±8% on a busy machine, but the floor is stable.
ROUNDS = 12
MAX_OVERHEAD = 0.05


def _analyze_once(with_collector: bool) -> float:
    maestro = Maestro(seed=0)
    nf = Firewall()
    if with_collector:
        collector = obs.MemoryCollector()
        start = time.perf_counter()
        with obs.attached(collector):
            maestro.analyze(nf)
        elapsed = time.perf_counter() - start
        assert len(collector) > 0  # the traced run really collected events
        return elapsed
    start = time.perf_counter()
    maestro.analyze(nf)
    return time.perf_counter() - start


def test_analyze_overhead_under_5_percent():
    _analyze_once(False)  # warm imports, caches, rng paths
    _analyze_once(True)
    baseline = float("inf")
    traced = float("inf")
    for _ in range(ROUNDS):
        baseline = min(baseline, _analyze_once(False))
        traced = min(traced, _analyze_once(True))
    overhead = traced / baseline - 1.0
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"(baseline {baseline * 1e3:.1f}ms, traced {traced * 1e3:.1f}ms)"
    )


def test_noop_entry_points_are_cheap():
    """No-collector calls must stay in the tens-of-nanoseconds regime."""
    n = 100_000
    start = time.perf_counter()
    for _ in range(n):
        obs.counter("free", 1, obj="x", kind="read")
    per_call = (time.perf_counter() - start) / n
    # Generous ceiling (2µs) — catches accidental work on the no-op path
    # (e.g. building SpanRecords or touching collectors) without being
    # flaky on slow CI machines.
    assert per_call < 2e-6, f"no-op counter costs {per_call * 1e9:.0f}ns"
