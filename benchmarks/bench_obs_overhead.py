"""Instrumentation overhead guard.

The whole point of `repro.obs` is that it is safe to leave enabled:
tracing `Maestro.analyze` with a full in-memory collector attached must
cost < 5% over running with no collector (the no-op fast path).  Runs are
interleaved and the minimum over rounds compared — the minimum is the
standard noise-robust estimator for wall-clock micro-benchmarks.

Also pins the raw no-op entry-point cost, which bounds what per-packet
instrumentation (``nf.state_op``) adds to uninstrumented simulations,
and gates the *telemetry plane*: ``run_functional`` with a
:class:`~repro.obs.TelemetrySink` attached (windowed per-core series)
must stay within the same < 5% budget over the plain fast path — that
is what the window-chunked design buys.  Set ``REPRO_BENCH_JSON=path``
to merge ``telemetry.overhead_frac`` into the benchmark JSON the
regression gate reads.
"""

from __future__ import annotations

import gc
import json
import os
import time

import pytest

from repro import obs
from repro.core import Maestro
from repro.nf.nfs import Firewall
from repro.sim.functional import run_functional
from repro.traffic import TrafficGenerator

#: Enough rounds for min() to converge to the noise floor: single runs of
#: analyze(Firewall) spread ±8% on a busy machine, but the floor is stable.
ROUNDS = 12
MAX_OVERHEAD = 0.05

#: Telemetry-enabled simulation: each run is ~100ms, so rounds are
#: adaptive — sample until the min-based estimate passes the ceiling or
#: the cap is hit.  The minimum converges to the true floor from above,
#: so extra rounds can only sharpen the estimate; a real regression
#: stays over the ceiling no matter how many samples are drawn.
TELEMETRY_MIN_ROUNDS = 6
TELEMETRY_MAX_ROUNDS = 24
TELEMETRY_PACKETS = 20_000
TELEMETRY_FLOWS = 600

_RESULTS: dict[str, object] = {}


@pytest.fixture(scope="module", autouse=True)
def _export_json():
    yield
    path = os.environ.get("REPRO_BENCH_JSON")
    if path and _RESULTS:
        # Read-merge-write: bench_fastpath exports its sections to the
        # same file, and module teardown order is not guaranteed.
        merged: dict[str, object] = {}
        if os.path.exists(path):
            try:
                with open(path) as fh:
                    merged = json.load(fh)
            except (OSError, ValueError):
                merged = {}
        merged.update(_RESULTS)
        with open(path, "w") as fh:
            json.dump(merged, fh, indent=2, sort_keys=True)


def _analyze_once(with_collector: bool) -> float:
    maestro = Maestro(seed=0)
    nf = Firewall()
    if with_collector:
        collector = obs.MemoryCollector()
        start = time.perf_counter()
        with obs.attached(collector):
            maestro.analyze(nf)
        elapsed = time.perf_counter() - start
        assert len(collector) > 0  # the traced run really collected events
        return elapsed
    start = time.perf_counter()
    maestro.analyze(nf)
    return time.perf_counter() - start


def test_analyze_overhead_under_5_percent():
    _analyze_once(False)  # warm imports, caches, rng paths
    _analyze_once(True)
    baseline = float("inf")
    traced = float("inf")
    for _ in range(ROUNDS):
        baseline = min(baseline, _analyze_once(False))
        traced = min(traced, _analyze_once(True))
    overhead = traced / baseline - 1.0
    assert overhead < MAX_OVERHEAD, (
        f"tracing overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"(baseline {baseline * 1e3:.1f}ms, traced {traced * 1e3:.1f}ms)"
    )


def test_telemetry_overhead_under_5_percent():
    """Windowed per-core telemetry must ride the fast path for ~free.

    One O(cores) snapshot per window boundary instead of any per-packet
    callback — the gate holds the telemetry-enabled ``run_functional``
    to < 5% over the plain fast path on the flagship firewall trace.

    Both legs pin ``kernels=False``: the < 5% promise belongs to the
    interpreter fast path, whose window snapshots are pure O(cores)
    additions.  The compiled dataplane aligns its chunk grid to the
    window grid instead, so its telemetry cost is a granularity trade
    (per-chunk classification amortizes over fewer packets) — it still
    beats the telemetry-enabled fast path in absolute us/pkt, which is
    what ``bench_fastpath``'s compiled gate enforces.
    """
    generator = TrafficGenerator(seed=3)
    flows = generator.make_flows(TELEMETRY_FLOWS)
    trace = generator.trace(
        TELEMETRY_PACKETS, flows, reply_port=1, reply_fraction=0.3
    )

    def build():
        return Maestro(seed=7).parallelize(Firewall(), n_cores=8)

    def run_once(with_sink: bool) -> float:
        parallel = build()
        sink = obs.TelemetrySink(window_packets=1024) if with_sink else None
        # Keep the collector out of the timed region: a GC cycle triggered
        # by one run's garbage landing inside another run's timing is pure
        # noise at this scale.
        gc.collect()
        gc.disable()
        try:
            if with_sink:
                start = time.perf_counter()
                with obs.telemetry(sink):
                    run_functional(parallel, trace, kernels=False)
                elapsed = time.perf_counter() - start
            else:
                start = time.perf_counter()
                run_functional(parallel, trace, kernels=False)
                elapsed = time.perf_counter() - start
        finally:
            gc.enable()
        if with_sink:
            # The instrumented run really recorded a full series.
            assert sink.total_packets == len(trace)
            assert len(sink) > 1
        return elapsed

    run_once(False)  # warm imports, caches, rng paths
    run_once(True)
    pairs: list[tuple[float, float]] = []
    overhead = float("inf")
    # Adaptive sampling with two complementary estimators.  Shared CI
    # runners show ±25% run-to-run noise, far above the 5% signal:
    # min/min converges to the true floors but one lucky baseline run
    # during a slow stretch fakes a regression; the median of *paired*
    # ratios is immune to that (each pair runs back-to-back under the
    # same machine state) but has a wider spread.  A real regression
    # elevates both — gate on whichever reads lower, and keep sampling
    # pairs until the estimate clears the ceiling or the cap says it
    # genuinely cannot.
    while len(pairs) < TELEMETRY_MAX_ROUNDS:
        pairs.append((run_once(False), run_once(True)))
        if len(pairs) < TELEMETRY_MIN_ROUNDS:
            continue
        baseline = min(base for base, _ in pairs)
        telemetered = min(tele for _, tele in pairs)
        ratios = sorted(tele / base for base, tele in pairs)
        median_ratio = ratios[len(ratios) // 2]
        overhead = min(telemetered / baseline, median_ratio) - 1.0
        if overhead < MAX_OVERHEAD:
            break
    rounds = len(pairs)
    _RESULTS["telemetry"] = {
        "overhead_frac": overhead,
        "ceiling_frac": MAX_OVERHEAD,
        "baseline_us_per_pkt": baseline * 1e6 / len(trace),
        "telemetry_us_per_pkt": telemetered * 1e6 / len(trace),
        "n_packets": len(trace),
        "rounds": rounds,
    }
    assert overhead < MAX_OVERHEAD, (
        f"telemetry overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%} "
        f"(baseline {baseline * 1e3:.1f}ms, telemetered {telemetered * 1e3:.1f}ms)"
    )


def test_noop_entry_points_are_cheap():
    """No-collector calls must stay in the tens-of-nanoseconds regime."""
    n = 100_000
    start = time.perf_counter()
    for _ in range(n):
        obs.counter("free", 1, obj="x", kind="read")
    per_call = (time.perf_counter() - start) / n
    # Generous ceiling (2µs) — catches accidental work on the no-op path
    # (e.g. building SpanRecords or touching collectors) without being
    # flaky on slow CI machines.
    assert per_call < 2e-6, f"no-op counter costs {per_call * 1e9:.0f}ns"
