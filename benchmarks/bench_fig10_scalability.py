"""Figure 10: the full 8-NF x 3-strategy scalability matrix (uniform)."""

import pytest

from repro.core import Strategy, Verdict
from repro.eval.runner import CORE_COUNTS
from repro.hw.cpu import profile_for
from repro.nf.nfs import ALL_NFS
from repro.sim.perf import PerformanceModel, Workload

WORKLOAD = Workload(pkt_size=64, n_flows=40_000)


@pytest.mark.parametrize("name", list(ALL_NFS))
def test_fig10_scalability(benchmark, analyses, name):
    model = PerformanceModel()
    profile = profile_for(ALL_NFS[name]())
    verdict = analyses[name].solution.verdict
    strategies = [Strategy.LOCKS, Strategy.TM]
    if verdict is not Verdict.LOCKS:
        strategies.insert(0, Strategy.SHARED_NOTHING)

    def sweep():
        return {
            strategy.value: [
                model.throughput(profile, strategy, cores, WORKLOAD).mpps
                for cores in CORE_COUNTS
            ]
            for strategy in strategies
        }

    series = benchmark.pedantic(sweep, rounds=2, iterations=1)
    for strategy, values in series.items():
        benchmark.extra_info[f"{strategy}_16c_mpps"] = round(values[-1], 1)
    # Shape assertions per the figure:
    if "shared-nothing" in series:
        sn = series["shared-nothing"]
        assert all(a <= b + 1e-6 for a, b in zip(sn, sn[1:]))  # scales
        assert sn[-1] >= series["locks"][-1]
    if name == "policer":
        assert series["shared-nothing"][-1] / series["locks"][-1] > 10
    if name == "psd":
        assert series["shared-nothing"][-1] / series["shared-nothing"][0] > 12
