"""Figure 5: shared-nothing FW under uniform vs Zipf, +/- balanced tables."""

import pytest

from repro.eval import fig05


def test_fig5_skew_study(benchmark):
    experiment = benchmark.pedantic(
        fig05.run, kwargs={"fast": True}, rounds=1, iterations=1
    )
    by_label = {s.label: s for s in experiment.series}
    uniform = by_label["uniform"]
    unbalanced = by_label["zipf unbalanced"]
    balanced = by_label["zipf balanced"]
    benchmark.extra_info["uniform_16c_mpps"] = round(uniform.values[-1], 1)
    benchmark.extra_info["zipf_unbalanced_16c_mpps"] = round(
        unbalanced.values[-1], 1
    )
    benchmark.extra_info["zipf_balanced_16c_mpps"] = round(balanced.values[-1], 1)
    # Paper shape: uniform >= balanced >= unbalanced at scale; single-core
    # Zipf >= uniform (cache locality on the elephants).
    assert uniform.values[-1] >= balanced.values[-1] >= unbalanced.values[-1]
    assert balanced.values[0] >= uniform.values[0]
