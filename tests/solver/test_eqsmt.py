"""Path-feasibility solver: the only pruning ESE is allowed to do."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver import eqsmt
from repro.solver.eqsmt import Result
from repro.symbex import expr as E


def sym(name: str, width: int = 32) -> E.Sym:
    return E.Sym(width, name)


class TestEqualityLogic:
    def test_empty_conjunction_sat(self):
        assert eqsmt.check([]) is Result.SAT

    def test_simple_equality_sat(self):
        assert eqsmt.check([E.Eq(sym("a"), sym("b"))]) is Result.SAT

    def test_contradiction_unsat(self):
        a, b = sym("a"), sym("b")
        assert eqsmt.check([E.Eq(a, b), E.Ne(a, b)]) is Result.UNSAT

    def test_distinct_constants_unsat(self):
        a = sym("a")
        literals = [E.Eq(a, E.Const(32, 1)), E.Eq(a, E.Const(32, 2))]
        assert eqsmt.check(literals) is Result.UNSAT

    def test_transitive_conflict(self):
        a, b, c = sym("a"), sym("b"), sym("c")
        literals = [E.Eq(a, b), E.Eq(b, c), E.Ne(a, c)]
        assert eqsmt.check(literals) is Result.UNSAT

    def test_boolean_symbol_polarity(self):
        found = sym("found", 1)
        assert eqsmt.check([found, E.Not(found)]) is Result.UNSAT
        assert eqsmt.check([found]) is Result.SAT

    def test_double_negation_normalized(self):
        found = sym("found", 1)
        assert eqsmt.check([E.Not(E.Not(found)), E.Not(found)]) is Result.UNSAT

    def test_conjunction_flattening(self):
        a, b = sym("a"), sym("b")
        conj = E.And(E.Eq(a, E.Const(32, 1)), E.Eq(b, E.Const(32, 2)))
        assert eqsmt.check([conj, E.Ne(a, b)]) is Result.SAT
        assert eqsmt.check([conj, E.Eq(a, b)]) is Result.UNSAT

    def test_negated_disjunction(self):
        a = sym("a", 1)
        b = sym("b", 1)
        # !(a | b) implies !a
        assert eqsmt.check([E.Not(E.Or(a, b)), a]) is Result.UNSAT

    def test_constant_false_literal(self):
        assert eqsmt.check([E.FALSE]) is Result.UNSAT
        assert eqsmt.check([E.TRUE]) is Result.SAT


class TestArithmeticFallback:
    def test_satisfiable_comparison(self):
        a = sym("a", 16)
        assert eqsmt.check([E.Ult(a, E.Const(16, 100))]) is Result.SAT

    def test_comparison_with_equalities(self):
        a, b = sym("a", 16), sym("b", 16)
        literals = [E.Eq(a, b), E.Ult(a, E.Const(16, 5))]
        assert eqsmt.check(literals) is Result.SAT

    def test_unknown_not_reported_as_unsat(self):
        # x < 0 (unsigned) has no model; the solver may say UNKNOWN but
        # must never claim SAT.
        a = sym("a", 8)
        verdict = eqsmt.check([E.Ult(a, E.Const(8, 0))])
        assert verdict in (Result.UNKNOWN, Result.UNSAT)

    def test_is_definitely_unsat_is_conservative(self):
        a = sym("a", 8)
        assert not eqsmt.is_definitely_unsat([E.Ult(a, E.Const(8, 0))])


class TestFindModel:
    def test_model_satisfies_literals(self):
        a, b = sym("a"), sym("b")
        literals = [E.Eq(a, E.Const(32, 7)), E.Ne(a, b)]
        model = eqsmt.find_model(literals)
        assert model is not None
        assert all(E.evaluate(lit, model) == 1 for lit in literals)

    def test_no_model_for_contradiction(self):
        a = sym("a")
        assert eqsmt.find_model([E.Eq(a, a), E.Ne(a, a)]) is None

    @given(st.integers(0, 2**16 - 1))
    @settings(max_examples=25, deadline=None)
    def test_pinned_value_respected(self, value):
        a = sym("a", 16)
        model = eqsmt.find_model([E.Eq(a, E.Const(16, value))])
        assert model is not None and model["a"] == value
